#!/bin/sh
# Lint gate: library code must not use partial functions or escape hatches
# that can abort the process without context (convert them to Result values
# or diagnostics, or raise Invalid_argument with enough context to debug).
# Intentional exceptions are substrings listed in bin/lint_allowlist.txt,
# one per line, matched against the "file:line:code" hit verbatim.
set -u
cd "$(dirname "$0")/.."

PATTERN='List\.hd|List\.tl|Option\.get|failwith|Obj\.magic|assert false'
ALLOWLIST=bin/lint_allowlist.txt

hits=$(find lib -name '*.ml' -exec grep -nE "$PATTERN" /dev/null {} + 2>/dev/null)

if [ -f "$ALLOWLIST" ]; then
  while IFS= read -r entry; do
    case "$entry" in '' | '#'*) continue ;; esac
    hits=$(printf '%s\n' "$hits" | grep -vF "$entry")
  done <"$ALLOWLIST"
fi

hits=$(printf '%s\n' "$hits" | sed '/^[[:space:]]*$/d')

if [ -n "$hits" ]; then
  echo "lint: partial functions or escape hatches in library code:" >&2
  printf '%s\n' "$hits" >&2
  echo "lint: convert to Result/diagnostics, or allowlist the line in $ALLOWLIST" >&2
  exit 1
fi
echo "lint: ok"
