(* Source lint gate: the OCaml successor of the old bin/lint.sh shell grep.
   Scans lib/ (or the roots given on the command line) with the Forksafe
   checker — partial functions, Marshal / fork outside the pool, shared
   channel writes, mutable toplevel state — honouring the same
   bin/lint_allowlist.txt fixed-substring format. Exit 1 on any hit. *)

module Forksafe = Sun_analysis.Forksafe
module D = Sun_analysis.Diagnostic

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | roots -> roots
  in
  let allowlist = Forksafe.load_allowlist "bin/lint_allowlist.txt" in
  let reports = List.map (fun root -> Forksafe.scan ~allowlist ~root ()) roots in
  let files = List.fold_left (fun acc r -> acc + r.Forksafe.files_scanned) 0 reports in
  let suppressed = List.fold_left (fun acc r -> acc + r.Forksafe.suppressed) 0 reports in
  let hits = List.concat_map (fun r -> r.Forksafe.hits) reports in
  if hits = [] then
    Printf.printf "lint: ok (%d files scanned, %d allowlisted hit%s)\n" files suppressed
      (if suppressed = 1 then "" else "s")
  else begin
    Printf.eprintf "lint: fork-unsafe or partial patterns in library code:\n";
    List.iter
      (fun h ->
        Printf.eprintf "%s [%s %s]\n" (Forksafe.hit_string h)
          (D.code_id h.Forksafe.diag.D.code)
          (D.code_name h.Forksafe.diag.D.code))
      hits;
    Printf.eprintf
      "lint: convert to Result/diagnostics, or allowlist the line in bin/lint_allowlist.txt\n";
    exit 1
  end
