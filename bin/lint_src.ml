(* Source lint gate: thin driver over the srclint engine — the Forksafe
   fork-hygiene rules (SA040-SA044), the daemon-era passes (SA061-SA064),
   and the whole-program passes (cross-module SA060 plus the SA070-SA074
   hot-path lint) with inline (* sunstone-lint: allow ... *) suppressions.
   Scans lib/ bin/ bench/ by default; roots may be directories or single
   .ml files, and --unscoped drops the production path scoping so ci.sh can
   point the scanner at a deliberately-bad fixture and demand a non-zero
   exit. Stale suppressions print as warnings; only hits fail the gate. *)

module Srclint = Sun_analysis.Srclint
module Rules = Sun_analysis.Rules
module D = Sun_analysis.Diagnostic

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let unscoped = List.mem "--unscoped" args in
  let roots =
    match List.filter (fun a -> a <> "--unscoped") args with
    | [] -> [ "lib"; "bin"; "bench" ]
    | roots -> roots
  in
  let rules =
    let base = Rules.default_rules () in
    if unscoped then Rules.unscoped base else base
  in
  let report = Srclint.scan ~rules ~roots () in
  List.iter
    (fun d -> Format.eprintf "%a@." D.pp d)
    report.Srclint.stale;
  if report.Srclint.hits = [] then
    Printf.printf "lint: ok (%d files, %d tokens scanned, %d suppressed hit%s)\n"
      report.Srclint.files_scanned report.Srclint.tokens_seen report.Srclint.suppressed
      (if report.Srclint.suppressed = 1 then "" else "s")
  else begin
    Printf.eprintf "lint: fork-unsafe, daemon-unsafe or partial patterns:\n";
    List.iter
      (fun (h : Srclint.hit) ->
        Printf.eprintf "%s [%s %s]\n" (Srclint.hit_string h)
          (D.code_id h.Srclint.h_diag.D.code)
          (D.code_name h.Srclint.h_diag.D.code))
      report.Srclint.hits;
    Printf.eprintf
      "lint: fix the site, or suppress it inline with (* sunstone-lint: allow SAxxx reason \
       *)\n";
    exit 1
  end
