(* Command-line front end for the Sunstone scheduler.

   sunstone list                         - workloads and architectures
   sunstone reuse -w conv1d              - Table III-style reuse inference
   sunstone schedule -w resnet18/conv2_x -a simba [...]
   sunstone compare -w mttkrp/nell2 -a conventional -t sunstone,tl-fast
   sunstone batch -i reqs.jsonl -o out.jsonl --cache-dir ~/.cache/sunstone [--jobs 4]
   sunstone serve --listen unix:/tmp/sun.sock [--jobs 4] [--max-queue 64]
   sunstone client --connect unix:/tmp/sun.sock -i reqs.jsonl -o out.jsonl
   sunstone export -w matmul -a simba -o mapping.json
   sunstone check [--admissibility] [--json]
   sunstone check --mapping mapping.json
   sunstone experiment fig6              - run a paper experiment *)

open Cmdliner
module W = Sun_tensor.Workload
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Runners = Sun_experiments.Runners
module Registry = Sun_serve.Registry
module Tel = Sun_telemetry.Metrics

(* ------------------------------------------------------------------ *)
(* Workload / architecture resolution (shared table: Sun_serve.Registry) *)
(* ------------------------------------------------------------------ *)

let find_workload name =
  Result.map_error (fun m -> `Msg m) (Registry.find_workload name)

let find_arch name = Result.map_error (fun m -> `Msg m) (Registry.find_arch name)

(* ------------------------------------------------------------------ *)
(* Common args                                                         *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  let doc = "Workload name (see `sunstone list`)." in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let arch_arg =
  let doc = "Architecture preset: conventional, simba, diannao or toy." in
  Arg.(value & opt string "conventional" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let beam_arg =
  let doc = "Beam width of the level-by-level search." in
  Arg.(value & opt int Opt.default_config.Opt.beam_width & info [ "beam" ] ~docv:"N" ~doc)

let top_down_arg =
  let doc = "Optimize top-down instead of bottom-up (Table VI ablation)." in
  Arg.(value & flag & info [ "top-down" ] ~doc)

let loopnest_arg =
  let doc = "Also print the mapped loop nest as pseudocode." in
  Arg.(value & flag & info [ "emit-loopnest" ] ~doc)

let metrics_arg =
  let doc =
    "Enable telemetry and write the run's metrics (counters and latency histograms) to $(docv) \
     as JSON when the command finishes; \"-\" writes stdout. `sunstone stats $(docv)` \
     pretty-prints the file."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Telemetry is off by default; [--metrics FILE] turns it on for the span of
   the wrapped command and dumps the registry on the way out — including the
   error path, so a failing run still leaves its counters behind. *)
let with_metrics metrics run =
  match metrics with
  | None -> run ()
  | Some path ->
    Tel.set_enabled true;
    Tel.reset ();
    Fun.protect
      ~finally:(fun () ->
        let text = Tel.to_json (Tel.snapshot ()) ^ "\n" in
        Tel.set_enabled false;
        if path = "-" then print_string text
        else
          match open_out path with
          | exception Sys_error m -> Printf.eprintf "cannot write metrics to %s: %s\n" path m
          | oc -> Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text))
      run

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "Workloads:";
    List.iter (fun (name, w) -> Printf.printf "  %-24s %s\n" name w.W.name) (Registry.workloads ());
    print_endline "";
    print_endline "Architectures:";
    List.iter
      (fun (name, a) -> Printf.printf "  %-24s %s\n" name a.Sun_arch.Arch.arch_name)
      Registry.architectures;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads and architecture presets")
    Term.(const run $ const ())

let reuse_cmd =
  let run workload =
    match find_workload workload with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w ->
      Format.printf "%a@." Sun_tensor.Workload.pp w;
      Format.printf "%a@." Sun_tensor.Reuse.pp (Sun_tensor.Reuse.analyze w);
      0
  in
  Cmd.v
    (Cmd.info "reuse" ~doc:"Infer each operand's reuse pattern (paper Table III)")
    Term.(const run $ workload_arg)

let schedule_cmd =
  let run workload arch beam top_down emit_loopnest metrics =
    with_metrics metrics @@ fun () ->
    match (find_workload workload, find_arch arch) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w, Ok a -> (
      let config =
        {
          Opt.default_config with
          Opt.beam_width = beam;
          direction = (if top_down then Opt.Top_down else Opt.Bottom_up);
        }
      in
      match Opt.optimize ~config w a with
      | Error msg ->
        Printf.eprintf "no valid mapping: %s\n" msg;
        1
      | Ok r ->
        Printf.printf "workload:     %s\narchitecture: %s\n\n" w.W.name a.Sun_arch.Arch.arch_name;
        Printf.printf "%s\n\n" (M.to_string r.Opt.mapping);
        Format.printf "%a@." Model.pp_cost r.Opt.cost;
        Printf.printf
          "\nsearch: %d candidates examined, %d evaluated, %d pruned, %d build errors, %d eval \
           errors, %.2fs\n"
          r.Opt.stats.Opt.examined r.Opt.stats.Opt.evaluated r.Opt.stats.Opt.pruned_alpha_beta
          r.Opt.stats.Opt.build_errors r.Opt.stats.Opt.eval_errors r.Opt.stats.Opt.wall_seconds;
        if emit_loopnest then begin
          print_newline ();
          print_string (Sun_mapping.Loopnest.emit w r.Opt.mapping)
        end;
        0)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Find the best dataflow mapping for a workload on an architecture")
    Term.(
      const run $ workload_arg $ arch_arg $ beam_arg $ top_down_arg $ loopnest_arg $ metrics_arg)

let tools =
  [
    ("sunstone", Runners.sunstone ());
    ("tl-fast", Runners.timeloop_fast);
    ("tl-slow", Runners.timeloop_slow);
    ("dmaze-fast", Runners.dmaze_fast);
    ("dmaze-slow", Runners.dmaze_slow);
    ("interstellar", Runners.interstellar);
    ("cosa", Runners.cosa);
  ]

let compare_cmd =
  let tools_arg =
    let doc = "Comma-separated mappers: sunstone, tl-fast, tl-slow, dmaze-fast, dmaze-slow, interstellar, cosa." in
    Arg.(value & opt string "sunstone,tl-fast" & info [ "t"; "tools" ] ~docv:"TOOLS" ~doc)
  in
  let run workload arch tool_names =
    match (find_workload workload, find_arch arch) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w, Ok a ->
      let names = String.split_on_char ',' tool_names in
      let selected =
        List.filter_map (fun n -> Option.map (fun t -> t) (List.assoc_opt (String.trim n) tools)) names
      in
      if selected = [] then begin
        prerr_endline "no known tools selected";
        1
      end
      else begin
        Printf.printf "%-14s %-12s %-10s %-10s %s\n" "tool" "EDP" "time" "examined" "status";
        List.iter
          (fun (t : Runners.tool) ->
            let o = t.Runners.run w a in
            Printf.printf "%-14s %-12s %-10s %-10d %s\n" t.Runners.tool_name (Runners.edp_cell o)
              (Runners.time_cell o) o.Sun_baselines.Mapper.examined
              (if o.Sun_baselines.Mapper.valid then "ok" else "INVALID"))
          selected;
        0
      end
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run several mappers on one workload and compare EDP / time")
    Term.(const run $ workload_arg $ arch_arg $ tools_arg)

let batch_cmd =
  let input_arg =
    let doc = "JSONL request file; one {\"workload\":NAME,\"arch\":ARCH,...} per line. \"-\" reads stdin." in
    Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)
  in
  let output_arg =
    let doc = "JSONL response file. \"-\" writes stdout." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let cache_dir_arg =
    let doc = "Persist schedules under $(docv) (one JSON file per request fingerprint); later runs reuse them." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable caching entirely: every request runs a fresh search." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Schedule cache misses on $(docv) forked worker processes. Responses keep input order and \
       are identical to a sequential run (up to wall_s); 1 (the default) stays fully in-process."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run input output cache_dir no_cache jobs beam top_down metrics =
    with_metrics metrics @@ fun () ->
    let config =
      {
        Opt.default_config with
        Opt.beam_width = beam;
        direction = (if top_down then Opt.Top_down else Opt.Bottom_up);
      }
    in
    let cache =
      if no_cache then None else Some (Sun_serve.Cache.create ?dir:cache_dir ())
    in
    match Sun_serve.Pipeline.run_files ?cache ~config ~jobs ~input ~output () with
    | exception Sys_error m ->
      Printf.eprintf "cannot run batch: %s\n" m;
      1
    | summary ->
      Printf.eprintf "%s\n" (Sun_serve.Pipeline.summary_line summary);
      if summary.Sun_serve.Pipeline.errors > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Schedule a JSONL stream of requests through the mapping cache. Cache misses whose \
          shape family has a cached member are warm-started from the nearest neighbor's \
          mapping; set SUNSTONE_TRANSFER=off to disable transfer and reproduce cold searches \
          exactly.")
    Term.(
      const run $ input_arg $ output_arg $ cache_dir_arg $ no_cache_arg $ jobs_arg $ beam_arg
      $ top_down_arg $ metrics_arg)

let export_cmd =
  let output_arg =
    let doc = "Destination JSON file. \"-\" writes stdout." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run workload arch output beam top_down =
    match (find_workload workload, find_arch arch) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w, Ok a -> (
      let config =
        {
          Opt.default_config with
          Opt.beam_width = beam;
          direction = (if top_down then Opt.Top_down else Opt.Bottom_up);
        }
      in
      match Opt.optimize ~config w a with
      | Error msg ->
        Printf.eprintf "no valid mapping: %s\n" msg;
        1
      | Ok r ->
        let doc =
          Sun_serve.Json.Obj
            [
              ("v", Sun_serve.Json.Int Sun_serve.Codec.version);
              ("kind", Sun_serve.Json.String "export");
              ("workload_name", Sun_serve.Json.String workload);
              ("arch_name", Sun_serve.Json.String arch);
              ("fingerprint", Sun_serve.Json.String (Sun_serve.Fingerprint.request ~config w a));
              ("workload", Sun_serve.Codec.encode_workload w);
              ("config", Sun_serve.Codec.encode_config config);
              ("mapping", Sun_serve.Codec.encode_mapping r.Opt.mapping);
              ("cost", Sun_serve.Codec.encode_cost r.Opt.cost);
            ]
        in
        let text = Sun_serve.Json.to_string_pretty doc ^ "\n" in
        if output = "-" then begin
          print_string text;
          0
        end
        else begin
          match open_out output with
          | exception Sys_error m ->
            Printf.eprintf "cannot write %s: %s\n" output m;
            1
          | oc ->
            Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
            0
        end)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Schedule one workload and write the mapping, cost and fingerprint as JSON")
    Term.(const run $ workload_arg $ arch_arg $ output_arg $ beam_arg $ top_down_arg)

(* ------------------------------------------------------------------ *)
(* sunstone check: the static-analysis passes                           *)
(* ------------------------------------------------------------------ *)

module Diag = Sun_analysis.Diagnostic
module J = Sun_serve.Json

(* One row of check output: which pass ran, on what, and what it found. *)
type check_result = { pass : string; subject : string; note : string; diags : Diag.t list }

let check_json_of_result r =
  J.Obj
    ([ ("pass", J.String r.pass); ("subject", J.String r.subject) ]
    @ (if r.note = "" then [] else [ ("note", J.String r.note) ])
    @ [ ("diagnostics", J.List (List.map Sun_serve.Codec.encode_diagnostic r.diags)) ])

let print_check_results ~json results =
  let all_diags = List.concat_map (fun r -> r.diags) results in
  let errors = Diag.errors all_diags in
  if json then begin
    let doc =
      J.Obj
        [
          ("v", J.Int Sun_serve.Codec.version);
          ("kind", J.String "check");
          ("passes", J.List (List.map check_json_of_result results));
          ("errors", J.Int (List.length errors));
        ]
    in
    print_endline (J.to_string_pretty doc)
  end
  else begin
    List.iter
      (fun r ->
        if r.diags <> [] || r.note <> "" then begin
          Printf.printf "%s: %s%s\n" r.pass r.subject
            (if r.note = "" then "" else " (" ^ r.note ^ ")");
          if r.diags <> [] then Format.printf "%a@." Diag.pp_list r.diags
        end)
      results;
    Printf.printf "check: %d subject(s), %s\n" (List.length results) (Diag.summary all_diags)
  end;
  if errors <> [] then 1 else 0

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Legality of a mapping document (an `sunstone export` file or a bare
   Codec mapping next to a workload): structural checks always, capacity
   and fanout when the architecture is recoverable from "arch_name". *)
let check_mapping_file file =
  let ( let* ) = Result.bind in
  let* text = try Ok (read_file file) with Sys_error m -> Error m in
  let* doc = J.of_string text in
  let* wjson = Result.map_error (fun e -> "export document: " ^ e) (J.field "workload" doc) in
  let* w = Sun_serve.Codec.decode_workload wjson in
  let* mjson = Result.map_error (fun e -> "export document: " ^ e) (J.field "mapping" doc) in
  let* levels = Sun_serve.Codec.decode_mapping_raw mjson in
  let arch =
    match J.member "arch_name" doc with
    | Some (J.String name) -> (
      match Registry.find_arch name with Ok a -> Some a | Error _ -> None)
    | _ -> None
  in
  match arch with
  | Some a ->
    Ok
      {
        pass = "legality";
        subject = Printf.sprintf "%s on %s" w.W.name a.Sun_arch.Arch.arch_name;
        note = "";
        diags = Sun_analysis.Legality.check_all w a levels;
      }
  | None ->
    Ok
      {
        pass = "legality";
        subject = w.W.name;
        note = "no architecture named; structural checks only";
        diags = Sun_analysis.Legality.check_levels w levels;
      }

let check_cmd =
  let mapping_arg =
    let doc = "Check the legality of one exported mapping document instead of the registry." in
    Arg.(value & opt (some string) None & info [ "mapping" ] ~docv:"FILE" ~doc)
  in
  let admissibility_arg =
    let doc =
      "Also run the alpha-beta bound admissibility pass: exhaustive differential search on a \
       suite of small workloads."
    in
    Arg.(value & flag & info [ "admissibility" ] ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON instead of human-readable lines." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let src_arg =
    let doc =
      "Run the srclint source-analysis pass over the repository at $(docv) (default $(b,.)) \
       instead of the registry passes: fork-safety, event-loop blocking, fd discipline, \
       signal-handler safety, determinism and exception-swallowing rules over the lib/, bin/ \
       and bench/ subtrees. Findings are silenced by inline comments of the form (* \
       sunstone-lint: allow SAxxx reason *); suppressions matching nothing are reported as \
       stale."
    in
    Arg.(value & opt ~vopt:(Some ".") (some string) None & info [ "src" ] ~docv:"DIR" ~doc)
  in
  let list_rules_arg =
    let doc =
      "Print the full SA diagnostic code table (code, severity, summary, scope) and exit."
    in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let list_rules ~json =
    let table = Sun_analysis.Diagnostic.rule_table () in
    if json then begin
      let entries =
        List.map
          (fun (id, sev, summary, scope) ->
            Printf.sprintf
              "{\"code\":%S,\"severity\":%S,\"summary\":%S,\"scope\":%S}" id sev summary
              scope)
          table
      in
      Printf.printf "[%s]\n" (String.concat "," entries)
    end
    else
      List.iter
        (fun (id, sev, summary, scope) ->
          Printf.printf "%-6s %-8s %-72s %s\n" id sev summary scope)
        table;
    0
  in
  let check_src ~json dir =
    let roots =
      List.filter
        (fun p -> Sys.file_exists p && Sys.is_directory p)
        (List.map (Filename.concat dir) [ "lib"; "bin"; "bench" ])
    in
    if roots = [] then begin
      Printf.eprintf "cannot scan %s: no lib/, bin/ or bench/ subtree\n" dir;
      1
    end
    else begin
      let r = Sun_analysis.Srclint.scan ~roots () in
      print_check_results ~json
        [
          {
            pass = "srclint";
            subject = String.concat " " (List.map Filename.basename roots);
            note =
              Printf.sprintf "%d files, %d tokens scanned, %d suppressed hit(s)"
                r.Sun_analysis.Srclint.files_scanned r.Sun_analysis.Srclint.tokens_seen
                r.Sun_analysis.Srclint.suppressed;
            diags = Sun_analysis.Srclint.diagnostics r;
          };
        ]
    end
  in
  let run mapping_file admissibility json src list_rules_flag =
    if list_rules_flag then list_rules ~json
    else
    match (mapping_file, src) with
    | Some file, _ -> (
      match check_mapping_file file with
      | Error msg ->
        Printf.eprintf "cannot check %s: %s\n" file msg;
        1
      | Ok r -> print_check_results ~json [ r ])
    | None, Some dir -> check_src ~json dir
    | None, None ->
      let wellformed =
        List.map
          (fun (name, a) ->
            { pass = "wellformed"; subject = name; note = ""; diags = Sun_analysis.Wellformed.check_arch a })
          Registry.architectures
        @ List.map
            (fun (name, w) ->
              {
                pass = "wellformed";
                subject = name;
                note = "";
                diags = Sun_analysis.Wellformed.check_workload w;
              })
            (Registry.workloads ())
      in
      let pruning =
        List.map
          (fun (r : Sun_analysis.Pruning.report) ->
            {
              pass = "pruning";
              subject = r.Sun_analysis.Pruning.workload;
              note =
                Printf.sprintf "%d orderings, %d dropped dims probed"
                  r.Sun_analysis.Pruning.orderings r.Sun_analysis.Pruning.dropped_dims_checked;
              diags = r.Sun_analysis.Pruning.diagnostics;
            })
          (Sun_analysis.Pruning.check_many (Registry.workloads ()))
      in
      let admissible =
        if not admissibility then []
        else
          List.map
            (fun (r : Sun_analysis.Admissibility.report) ->
              {
                pass = "admissibility";
                subject =
                  Printf.sprintf "%s on %s" r.Sun_analysis.Admissibility.workload
                    r.Sun_analysis.Admissibility.arch;
                note =
                  Printf.sprintf "%d mappings enumerated, exhaustive EDP %.4e, search EDP %.4e"
                    r.Sun_analysis.Admissibility.mappings_checked
                    r.Sun_analysis.Admissibility.exhaustive_edp
                    r.Sun_analysis.Admissibility.search_edp;
                diags = r.Sun_analysis.Admissibility.diagnostics;
              })
            (Sun_analysis.Admissibility.check_suite ())
      in
      print_check_results ~json (wellformed @ pruning @ admissible)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the static-analysis passes: mapping legality, pruning soundness, bound \
          admissibility, config/arch well-formedness, (with $(b,--src)) the srclint source \
          scan, and (with $(b,--list-rules)) the SA code table")
    Term.(const run $ mapping_arg $ admissibility_arg $ json_arg $ src_arg $ list_rules_arg)

(* ------------------------------------------------------------------ *)
(* sunstone audit: the mapspace auditor                                 *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let module Audit = Sun_analysis.Audit in
  let kernels_arg =
    let doc =
      "Audit only the first $(docv) bundled kernels (cheapest first); 0 means all of them."
    in
    Arg.(value & opt int 0 & info [ "kernels" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON instead of human-readable lines." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let inject_arg =
    let doc =
      "Test hook: deliberately break the pruning the oracles audit ($(b,order) drops a \
       load-bearing trie candidate, $(b,frontier) shrinks a tiling frontier) to prove the \
       auditor fires. The exit code must become non-zero."
    in
    let inject_conv =
      Arg.enum
        [ ("order", Audit.Drop_order_candidate); ("frontier", Audit.Shrink_frontier) ]
    in
    Arg.(value & opt (some inject_conv) None & info [ "inject" ] ~docv:"RULE" ~doc)
  in
  let src_arg =
    let doc = "Repository root for the fork-safety source scan (its lib/ subtree is scanned)." in
    Arg.(value & opt string "." & info [ "src" ] ~docv:"DIR" ~doc)
  in
  let run kernels json inject src metrics =
    with_metrics metrics @@ fun () ->
    let inject = Option.value ~default:Audit.No_injection inject in
    let audits =
      List.map
        (fun (r : Audit.kernel_report) ->
          {
            pass = "audit";
            subject = Printf.sprintf "%s on %s" r.Audit.kernel r.Audit.arch;
            note =
              Printf.sprintf
                "%d/%d orders kept, %d frontier tiles, %d mappings enumerated, exhaustive EDP \
                 %.6e, pruned EDP %.6e"
                r.Audit.orders_kept r.Audit.orders_total r.Audit.frontier_checked
                r.Audit.mappings_enumerated r.Audit.exhaustive_edp r.Audit.search_edp;
            diags = r.Audit.diagnostics;
          })
        (Audit.check_kernels ~inject ~limit:kernels ())
    in
    let units =
      List.map
        (fun (r : Sun_analysis.Unitlint.report) ->
          {
            pass = "units";
            subject = r.Sun_analysis.Unitlint.arch;
            note =
              Printf.sprintf "%d quantities checked" r.Sun_analysis.Unitlint.quantities_checked;
            diags = r.Sun_analysis.Unitlint.diagnostics;
          })
        (Sun_analysis.Unitlint.check_presets ())
    in
    let forksafe =
      let root = Filename.concat src "lib" in
      if Sys.file_exists root && Sys.is_directory root then begin
        let r = Sun_analysis.Forksafe.scan ~root () in
        [
          {
            pass = "forksafe";
            subject = root;
            note =
              Printf.sprintf "%d files scanned, %d suppressed inline"
                r.Sun_analysis.Forksafe.files_scanned r.Sun_analysis.Forksafe.suppressed;
            diags = Sun_analysis.Forksafe.diagnostics r;
          };
        ]
      end
      else
        [
          {
            pass = "forksafe";
            subject = root;
            note = "";
            diags =
              [
                Diag.info Diag.Audit_skipped
                  (Printf.sprintf "source scan skipped: %s is not a directory" root);
              ];
          };
        ]
    in
    print_check_results ~json (audits @ units @ forksafe)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run the mapspace auditor: differential trie/tiling oracles against brute force, the \
          cost-model unit lint, and the fork-safety source scan")
    Term.(const run $ kernels_arg $ json_arg $ inject_arg $ src_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* sunstone stats: pretty-print a --metrics dump                        *)
(* ------------------------------------------------------------------ *)

(* Rebuild a [Tel.snapshot] from the JSON that [Tel.to_json] wrote. Lives
   here rather than in [Sun_telemetry] because the telemetry library is
   dependency-free by design — it cannot see [Sun_serve.Json]. *)
let snapshot_of_json doc =
  let ( let* ) = Result.bind in
  let* () =
    match J.member "kind" doc with
    | Some (J.String "telemetry") -> Ok ()
    | _ -> Error "not a telemetry document (expected \"kind\": \"telemetry\")"
  in
  let entries what = function
    | None -> Ok []
    | Some (J.Obj fields) -> Ok fields
    | Some _ -> Error (Printf.sprintf "%S: expected an object" what)
  in
  let rec map_entries f = function
    | [] -> Ok []
    | (k, v) :: rest ->
      let* x = Result.map_error (fun e -> Printf.sprintf "%s: %s" k e) (f v) in
      let* xs = map_entries f rest in
      Ok ((k, x) :: xs)
  in
  let* counter_fields = entries "counters" (J.member "counters" doc) in
  let* counters = map_entries J.as_int counter_fields in
  let* hist_fields = entries "histograms" (J.member "histograms" doc) in
  let* hists =
    map_entries
      (fun v ->
        let* count = Result.bind (J.field "count" v) J.as_int in
        let* sum = Result.bind (J.field "sum" v) J.as_float in
        let* h_min = Result.bind (J.field "min" v) J.as_float in
        let* h_max = Result.bind (J.field "max" v) J.as_float in
        let* bucket_list = Result.bind (J.field "buckets" v) J.as_list in
        let* buckets = map_entries J.as_int (List.map (fun b -> ("bucket", b)) bucket_list) in
        Ok
          {
            Tel.h_count = count;
            h_sum = sum;
            h_min;
            h_max;
            h_buckets = Array.of_list (List.map snd buckets);
          })
      hist_fields
  in
  Ok { Tel.s_counters = counters; s_hists = hists }

let stats_cmd =
  let file_arg =
    let doc = "Metrics JSON file written by --metrics; \"-\" reads stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let text =
      if file = "-" then Ok (In_channel.input_all stdin)
      else match read_file file with t -> Ok t | exception Sys_error m -> Error m
    in
    let snap = Result.bind text (fun t -> Result.bind (J.of_string t) snapshot_of_json) in
    match snap with
    | Error msg ->
      Printf.eprintf "cannot read metrics from %s: %s\n" file msg;
      1
    | Ok snap ->
      print_string (Tel.to_table snap);
      0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Pretty-print a telemetry metrics file (see --metrics) as tables")
    Term.(const run $ file_arg)

let experiment_cmd =
  let exp_arg =
    let doc = "Experiment id: table1, table3, table6, fig6, fig7, fig8, fig9." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run name =
    match List.assoc_opt name Sun_experiments.Figures.all with
    | Some driver ->
      print_string (driver ());
      print_newline ();
      0
    | None ->
      Printf.eprintf "unknown experiment %S\n" name;
      1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables or figures")
    Term.(const run $ exp_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the long-lived scheduling daemon                    *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let listen_arg =
    let doc = "Address to listen on: unix:PATH, tcp:HOST:PORT or HOST:PORT." in
    Arg.(required & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let cache_dir_arg =
    let doc = "Persist schedules under $(docv); the daemon owns the cache for its lifetime." in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable caching entirely: every request runs a fresh search." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Compute on $(docv) forked worker processes. Even 1 keeps compute off the accept loop."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Admission bound: a request arriving while $(docv) admitted requests are unanswered is \
       shed with a status:\"overloaded\" response instead of queued. Unbounded by default."
    in
    Arg.(value & opt (some int) None & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let run listen cache_dir no_cache jobs max_queue beam top_down metrics =
    match Sun_serve.Server.parse_listen listen with
    | Error msg ->
      Printf.eprintf "cannot serve: %s\n" msg;
      1
    | Ok addr -> (
      let config =
        {
          Opt.default_config with
          Opt.beam_width = beam;
          direction = (if top_down then Opt.Top_down else Opt.Bottom_up);
        }
      in
      let cache = if no_cache then None else Some (Sun_serve.Cache.create ?dir:cache_dir ()) in
      let drain = ref false in
      let force = ref false in
      let hup = ref false in
      (* first SIGTERM/SIGINT drains gracefully; a second escalates to an
         immediate shutdown even if a client never reads its responses *)
      let stop _ = if !drain then force := true else drain := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> hup := true));
      (* a `stats` control request reports the live registry, so telemetry
         is on for the daemon's lifetime even without --metrics *)
      if metrics = None then begin
        Tel.set_enabled true;
        Tel.reset ()
      end;
      let metrics_path = match metrics with Some p when p <> "-" -> Some p | _ -> None in
      match Sun_serve.Server.listener addr with
      | Error msg ->
        Printf.eprintf "cannot listen on %s: %s\n" listen msg;
        1
      | Ok listen_fd ->
        Fun.protect ~finally:(fun () -> Sun_serve.Server.close_listener addr listen_fd)
        @@ fun () ->
        with_metrics metrics @@ fun () ->
        Printf.eprintf "sunstone: serving on %s (pid %d)\n%!" listen Unix.(getpid ());
        let s =
          Sun_serve.Server.serve ?cache ~config ~jobs ?max_queue ~drain_flag:drain
            ~force_flag:force ~hup_flag:hup ?metrics_path ~listen_fd ()
        in
        Printf.eprintf
          "sunstone: drained after %.2fs: %d connections, %d requests (%d hits, %d computed, \
           %d errors, %d overloaded, %d expired)\n"
          s.Sun_serve.Server.wall_s s.Sun_serve.Server.connections s.Sun_serve.Server.requests
          s.Sun_serve.Server.hits s.Sun_serve.Server.computed s.Sun_serve.Server.errors
          s.Sun_serve.Server.overloaded s.Sun_serve.Server.expired;
        0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived scheduling daemon: the batch pipeline behind a socket, with \
          per-request deadlines, admission control and graceful drain on SIGTERM. Like batch, \
          cache misses are warm-started from nearest-neighbor cached mappings of the same \
          shape family (SUNSTONE_TRANSFER=off disables)")
    Term.(
      const run $ listen_arg $ cache_dir_arg $ no_cache_arg $ jobs_arg $ max_queue_arg $ beam_arg
      $ top_down_arg $ metrics_arg)

let client_cmd =
  let connect_arg =
    let doc = "Daemon address: unix:PATH, tcp:HOST:PORT or HOST:PORT." in
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let input_arg =
    let doc = "JSONL request file replayed to the daemon. \"-\" reads stdin." in
    Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)
  in
  let output_arg =
    let doc = "JSONL response file. \"-\" writes stdout." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let read_lines path =
    let ic = if path = "-" then stdin else open_in path in
    Fun.protect
      ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let run conn input output =
    (* a daemon shedding or killing the connection mid-replay must surface
       as EPIPE inside [replay], not kill this process *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Sun_serve.Server.parse_listen conn with
    | Error msg ->
      Printf.eprintf "cannot connect: %s\n" msg;
      1
    | Ok addr -> (
      match read_lines input with
      | exception Sys_error msg ->
        Printf.eprintf "cannot read %s: %s\n" input msg;
        1
      | lines -> (
        match Sun_serve.Server.connect addr with
        | Error msg ->
          Printf.eprintf "cannot connect to %s: %s\n" conn msg;
          1
        | Ok fd -> (
          let responses = Sun_serve.Server.replay fd lines in
          let write oc = List.iter (fun r -> output_string oc (r ^ "\n")) responses in
          match
            if output = "-" then write stdout
            else
              let oc = open_out output in
              Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc)
          with
          | () -> 0
          | exception Sys_error msg ->
            Printf.eprintf "cannot write %s: %s\n" output msg;
            1)))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Replay a JSONL request file through a running sunstone daemon and collect responses")
    Term.(const run $ connect_arg $ input_arg $ output_arg)

let () =
  let info =
    Cmd.info "sunstone" ~version:"1.0.0"
      ~doc:"Scalable and versatile scheduler for tensor algebra on spatial accelerators"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            reuse_cmd;
            schedule_cmd;
            compare_cmd;
            batch_cmd;
            serve_cmd;
            client_cmd;
            export_cmd;
            check_cmd;
            audit_cmd;
            stats_cmd;
            experiment_cmd;
          ]))
