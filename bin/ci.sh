#!/bin/sh
# One-command tier-1 verification: build, tests, and (when the formatter is
# installed) formatting. CI and pre-commit hooks should run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== lint (partial functions in lib/)"
sh bin/lint.sh

echo "== sunstone check (static analysis over the registry)"
dune exec bin/sunstone_cli.exe -- check --admissibility

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== ok"
