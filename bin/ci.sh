#!/bin/sh
# One-command tier-1 verification: build, tests, and (when the formatter is
# installed) formatting. CI and pre-commit hooks should run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
# Includes the Gc ground-truth oracle (test_model_hot "gc oracle"): the
# SA070 static verdict and the measured minor-heap words must agree, in
# both directions, or the suite fails.
dune runtest

echo "== lint (srclint source scan over lib/, bin/ and bench/)"
dune exec bin/lint_src.exe -- lib bin bench

echo "== sunstone check --src (the same scan through the CLI, JSON path)"
dune exec bin/sunstone_cli.exe -- check --src --json >/dev/null

echo "== srclint injection (every daemon-era and hot-path rule must fire on its fixture)"
# The linter itself is gated the same way as the audit oracles: each
# deliberately-bad fixture must turn the exit code non-zero, or the rule
# is vacuous. The fixtures are never compiled, only lexed by the linter.
for fixture in sa060_block sa061_fd sa062_signal sa063_det sa064_swallow \
  sa070_hot sa071_io sa072_rec sa073_unresolved sa074_stale; do
  if dune exec bin/lint_src.exe -- --unscoped "test/fixtures/srclint/$fixture.ml" >/dev/null 2>&1; then
    echo "srclint injection: $fixture.ml did not fail the lint" >&2
    exit 1
  fi
done
echo "srclint injection: ok (all 10 injected faults detected)"

echo "== srclint cross-module (interprocedural passes see across files)"
# The whole point of the project-graph passes: the root file of each pair
# is provably clean on its own (the old per-file analysis finds nothing)
# and the hazard only appears when the directory scan resolves the dotted
# call into the sibling module.
for pair in sa060_cross:feeder sa070_cross:ticker; do
  dir=${pair%%:*}
  root=${pair##*:}
  if ! dune exec bin/lint_src.exe -- --unscoped "test/fixtures/srclint/$dir/$root.ml" >/dev/null 2>&1; then
    echo "srclint cross-module: $dir/$root.ml alone was flagged (single-file scan should be clean)" >&2
    exit 1
  fi
  if dune exec bin/lint_src.exe -- --unscoped "test/fixtures/srclint/$dir" >/dev/null 2>&1; then
    echo "srclint cross-module: $dir did not fail the whole-directory lint" >&2
    exit 1
  fi
done
echo "srclint cross-module: ok (both pairs clean alone, caught together)"

echo "== sunstone check (static analysis over the registry)"
dune exec bin/sunstone_cli.exe -- check --admissibility

echo "== sunstone audit (differential pruning oracles + unit lint)"
dune exec bin/sunstone_cli.exe -- audit --kernels 3

echo "== audit injection (a broken pruning rule must fail the audit)"
# The auditor itself is gated: deliberately breaking a pruning rule through
# the test hook must turn the exit code non-zero, or the oracle is vacuous.
for rule in order frontier; do
  if dune exec bin/sunstone_cli.exe -- audit --kernels 1 --inject "$rule" >/dev/null 2>&1; then
    echo "audit injection: --inject $rule did not fail the audit" >&2
    exit 1
  fi
done
echo "audit injection: ok (both injected faults detected)"

echo "== batch --jobs parity (sequential vs 4 workers, mixed fixture)"
# The parallel pipeline must produce byte-identical, order-preserving
# responses: same bytes as --jobs 1 on the mixed valid/illegal/malformed
# fixture, modulo the inherently nondeterministic wall_s timings.
PARITY_TMP=$(mktemp -d)
trap 'rm -rf "$PARITY_TMP"' EXIT
set +e
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/seq.jsonl" --cache-dir "$PARITY_TMP/cache-seq" --jobs 1 2>/dev/null
seq_rc=$?
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/par.jsonl" --cache-dir "$PARITY_TMP/cache-par" --jobs 4 2>/dev/null
par_rc=$?
set -e
if [ "$seq_rc" -ne "$par_rc" ]; then
  echo "batch parity: exit codes differ (--jobs 1: $seq_rc, --jobs 4: $par_rc)" >&2
  exit 1
fi
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/seq.jsonl" >"$PARITY_TMP/seq.norm"
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/par.jsonl" >"$PARITY_TMP/par.norm"
if ! diff -u "$PARITY_TMP/seq.norm" "$PARITY_TMP/par.norm"; then
  echo "batch parity: --jobs 4 output differs from --jobs 1" >&2
  exit 1
fi
echo "batch parity: ok ($(wc -l <"$PARITY_TMP/seq.norm" | tr -d ' ') responses identical)"

echo "== telemetry counter parity (--metrics at --jobs 1 vs --jobs 4)"
# Workers ship their telemetry back as snapshots merged by the parent, so
# the optimizer/model/serve counter totals must not depend on the worker
# count. parpool.* (parent-only, no pool at --jobs 1) and histograms
# (deferred requests re-classify in parallel mode) are excluded by the grep.
set +e
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o /dev/null --cache-dir "$PARITY_TMP/cache-tel-seq" --jobs 1 \
  --metrics "$PARITY_TMP/seq-metrics.json" 2>/dev/null
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o /dev/null --cache-dir "$PARITY_TMP/cache-tel-par" --jobs 4 \
  --metrics "$PARITY_TMP/par-metrics.json" 2>/dev/null
set -e
# counter lines are `"name": N`; histogram lines carry a `{` payload
grep -E '"(optimizer|model|serve)\.' "$PARITY_TMP/seq-metrics.json" | grep -v '{' >"$PARITY_TMP/seq-counters"
grep -E '"(optimizer|model|serve)\.' "$PARITY_TMP/par-metrics.json" | grep -v '{' >"$PARITY_TMP/par-counters"
if ! diff -u "$PARITY_TMP/seq-counters" "$PARITY_TMP/par-counters"; then
  echo "telemetry parity: --jobs 4 counter totals differ from --jobs 1" >&2
  exit 1
fi
echo "telemetry parity: ok ($(wc -l <"$PARITY_TMP/seq-counters" | tr -d ' ') counters identical)"

echo "== serve daemon (live replay parity, warm cache, SIGHUP, SIGTERM drain)"
# The daemon must answer a cold replay of the mixed fixture byte-identically
# (modulo wall_s) to batch --jobs 1, serve the second replay entirely from
# the warm cache, re-open its metrics file on SIGHUP, and drain cleanly on
# SIGTERM: exit 0 with a final metrics snapshot written.
SUNSTONE=_build/default/bin/sunstone_cli.exe
SOCK="$PARITY_TMP/sunstone.sock"
"$SUNSTONE" serve --listen "unix:$SOCK" --jobs 2 \
  --cache-dir "$PARITY_TMP/cache-daemon" \
  --metrics "$PARITY_TMP/daemon-metrics.json" 2>"$PARITY_TMP/daemon.log" &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null; rm -rf "$PARITY_TMP"' EXIT
i=0
while ! [ -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve daemon: socket never appeared" >&2
    cat "$PARITY_TMP/daemon.log" >&2
    exit 1
  fi
  sleep 0.05
done
"$SUNSTONE" client --connect "unix:$SOCK" \
  -i test/fixtures/batch_mixed.jsonl -o "$PARITY_TMP/daemon.jsonl"
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/daemon.jsonl" >"$PARITY_TMP/daemon.norm"
if ! diff -u "$PARITY_TMP/seq.norm" "$PARITY_TMP/daemon.norm"; then
  echo "serve daemon: cold replay differs from batch --jobs 1" >&2
  exit 1
fi
"$SUNSTONE" client --connect "unix:$SOCK" \
  -i test/fixtures/batch_mixed.jsonl -o "$PARITY_TMP/daemon2.jsonl"
if grep -q '"status":"computed"' "$PARITY_TMP/daemon2.jsonl"; then
  echo "serve daemon: second replay recomputed instead of hitting the warm cache" >&2
  exit 1
fi
rm -f "$PARITY_TMP/daemon-metrics.json"
kill -HUP "$DAEMON_PID"
i=0
while ! [ -s "$PARITY_TMP/daemon-metrics.json" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve daemon: SIGHUP did not re-create the metrics file" >&2
    exit 1
  fi
  sleep 0.05
done
kill -TERM "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
daemon_rc=$?
set -e
trap 'rm -rf "$PARITY_TMP"' EXIT
if [ "$daemon_rc" -ne 0 ]; then
  echo "serve daemon: SIGTERM drain exited $daemon_rc, want 0" >&2
  cat "$PARITY_TMP/daemon.log" >&2
  exit 1
fi
if ! [ -s "$PARITY_TMP/daemon-metrics.json" ]; then
  echo "serve daemon: no final metrics snapshot after drain" >&2
  exit 1
fi
echo "serve daemon: ok (parity, warm replay, SIGHUP re-open, clean drain)"

echo "== bench serve-daemon (latency percentiles + warm hit rate)"
dune exec bench/main.exe -- serve-daemon

echo "== bench telemetry (overhead budget)"
dune exec bench/main.exe -- telemetry

echo "== bench lint (scan throughput >= 0.5x committed baseline, clean-tree gate)"
dune exec bench/main.exe -- lint

echo "== bench evaluate (cost-model hot path, >=2x gate on hardest kernel)"
dune exec bench/main.exe -- evaluate
if ! [ -s BENCH_evaluate.json ]; then
  echo "bench evaluate: BENCH_evaluate.json missing or empty" >&2
  exit 1
fi

echo "== probe memo parity (SUNSTONE_PROBE_MEMO=off vs default, mixed batch)"
# The footprint memo must be invisible in every emitted cost record: a
# batch run with the memo disabled has to produce byte-identical
# responses, modulo wall_s timings.
set +e
SUNSTONE_PROBE_MEMO=off dune exec bin/sunstone_cli.exe -- batch \
  -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/memo-off.jsonl" --cache-dir "$PARITY_TMP/cache-memo-off" --jobs 1 2>/dev/null
off_rc=$?
dune exec bin/sunstone_cli.exe -- batch \
  -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/memo-on.jsonl" --cache-dir "$PARITY_TMP/cache-memo-on" --jobs 1 2>/dev/null
on_rc=$?
set -e
if [ "$off_rc" -ne "$on_rc" ]; then
  echo "memo parity: exit codes differ (memo off: $off_rc, memo on: $on_rc)" >&2
  exit 1
fi
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/memo-off.jsonl" >"$PARITY_TMP/memo-off.norm"
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/memo-on.jsonl" >"$PARITY_TMP/memo-on.norm"
if ! diff -u "$PARITY_TMP/memo-off.norm" "$PARITY_TMP/memo-on.norm"; then
  echo "memo parity: memoized responses differ from memo-off baseline" >&2
  exit 1
fi
echo "memo parity: ok ($(wc -l <"$PARITY_TMP/memo-on.norm" | tr -d ' ') responses identical)"

echo "== transfer-off parity (SUNSTONE_TRANSFER=off vs committed golden fixture)"
# The warm-start kill switch must restore pre-transfer behavior exactly:
# with SUNSTONE_TRANSFER=off the batch pipeline's responses are pinned
# byte-identical (modulo wall_s) to the golden fixture generated before
# the transfer subsystem existed. Any drift in the cold path — seeded
# bounds, margins, refine changes leaking into unseeded searches — fails
# here.
set +e
SUNSTONE_TRANSFER=off dune exec bin/sunstone_cli.exe -- batch \
  -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/transfer-off.jsonl" --cache-dir "$PARITY_TMP/cache-transfer-off" --jobs 1 2>/dev/null
set -e
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/transfer-off.jsonl" >"$PARITY_TMP/transfer-off.norm"
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' test/fixtures/batch_mixed_expected.jsonl >"$PARITY_TMP/transfer-golden.norm"
if ! diff -u "$PARITY_TMP/transfer-golden.norm" "$PARITY_TMP/transfer-off.norm"; then
  echo "transfer-off parity: responses drifted from the pre-transfer golden fixture" >&2
  exit 1
fi
echo "transfer-off parity: ok ($(wc -l <"$PARITY_TMP/transfer-off.norm" | tr -d ' ') responses identical)"

echo "== bench transfer (warm >= 25% fewer evaluations, EDP equal-or-better per layer)"
# Cold vs steady-state warm over the ResNet-18 and Inception-v3 catalogs.
# The bench itself enforces the two acceptance gates (>= 25% fewer
# mappings evaluated on ResNet-18, per-layer warm EDP never worse than
# cold) and exits non-zero on either violation.
dune exec bench/main.exe -- transfer
if ! [ -s BENCH_transfer.json ]; then
  echo "bench transfer: BENCH_transfer.json missing or empty" >&2
  exit 1
fi

echo "== srclint SA063 scope (lib/cost in, lib/arch out)"
# The hashtbl-order rule covers lib/serve and lib/cost. The same fixture
# must trip the scoped scanner under a lib/cost path and pass under
# lib/arch, proving the scope extension neither over- nor under-reaches.
mkdir -p "$PARITY_TMP/scope/lib/cost" "$PARITY_TMP/scope2/lib/arch"
cp test/fixtures/srclint/sa063_cost.ml "$PARITY_TMP/scope/lib/cost/"
cp test/fixtures/srclint/sa063_cost.ml "$PARITY_TMP/scope2/lib/arch/"
if dune exec bin/lint_src.exe -- "$PARITY_TMP/scope/lib" >/dev/null 2>&1; then
  echo "srclint scope: SA063 fixture under lib/cost was NOT flagged" >&2
  exit 1
fi
if ! dune exec bin/lint_src.exe -- "$PARITY_TMP/scope2/lib" >/dev/null 2>&1; then
  echo "srclint scope: SA063 fixture under lib/arch was flagged (overreach)" >&2
  exit 1
fi
echo "srclint scope: ok (SA063 fires in lib/cost, silent in lib/arch)"

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== ok"
