#!/bin/sh
# One-command tier-1 verification: build, tests, and (when the formatter is
# installed) formatting. CI and pre-commit hooks should run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== lint (fork-safety + partial functions in lib/)"
dune exec bin/lint_src.exe

echo "== sunstone check (static analysis over the registry)"
dune exec bin/sunstone_cli.exe -- check --admissibility

echo "== sunstone audit (differential pruning oracles + unit lint)"
dune exec bin/sunstone_cli.exe -- audit --kernels 3

echo "== audit injection (a broken pruning rule must fail the audit)"
# The auditor itself is gated: deliberately breaking a pruning rule through
# the test hook must turn the exit code non-zero, or the oracle is vacuous.
for rule in order frontier; do
  if dune exec bin/sunstone_cli.exe -- audit --kernels 1 --inject "$rule" >/dev/null 2>&1; then
    echo "audit injection: --inject $rule did not fail the audit" >&2
    exit 1
  fi
done
echo "audit injection: ok (both injected faults detected)"

echo "== batch --jobs parity (sequential vs 4 workers, mixed fixture)"
# The parallel pipeline must produce byte-identical, order-preserving
# responses: same bytes as --jobs 1 on the mixed valid/illegal/malformed
# fixture, modulo the inherently nondeterministic wall_s timings.
PARITY_TMP=$(mktemp -d)
trap 'rm -rf "$PARITY_TMP"' EXIT
set +e
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/seq.jsonl" --cache-dir "$PARITY_TMP/cache-seq" --jobs 1 2>/dev/null
seq_rc=$?
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o "$PARITY_TMP/par.jsonl" --cache-dir "$PARITY_TMP/cache-par" --jobs 4 2>/dev/null
par_rc=$?
set -e
if [ "$seq_rc" -ne "$par_rc" ]; then
  echo "batch parity: exit codes differ (--jobs 1: $seq_rc, --jobs 4: $par_rc)" >&2
  exit 1
fi
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/seq.jsonl" >"$PARITY_TMP/seq.norm"
sed -E 's/"wall_s":[-+0-9.eE]+/"wall_s":0/g' "$PARITY_TMP/par.jsonl" >"$PARITY_TMP/par.norm"
if ! diff -u "$PARITY_TMP/seq.norm" "$PARITY_TMP/par.norm"; then
  echo "batch parity: --jobs 4 output differs from --jobs 1" >&2
  exit 1
fi
echo "batch parity: ok ($(wc -l <"$PARITY_TMP/seq.norm" | tr -d ' ') responses identical)"

echo "== telemetry counter parity (--metrics at --jobs 1 vs --jobs 4)"
# Workers ship their telemetry back as snapshots merged by the parent, so
# the optimizer/model/serve counter totals must not depend on the worker
# count. parpool.* (parent-only, no pool at --jobs 1) and histograms
# (deferred requests re-classify in parallel mode) are excluded by the grep.
set +e
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o /dev/null --cache-dir "$PARITY_TMP/cache-tel-seq" --jobs 1 \
  --metrics "$PARITY_TMP/seq-metrics.json" 2>/dev/null
dune exec bin/sunstone_cli.exe -- batch -i test/fixtures/batch_mixed.jsonl \
  -o /dev/null --cache-dir "$PARITY_TMP/cache-tel-par" --jobs 4 \
  --metrics "$PARITY_TMP/par-metrics.json" 2>/dev/null
set -e
# counter lines are `"name": N`; histogram lines carry a `{` payload
grep -E '"(optimizer|model|serve)\.' "$PARITY_TMP/seq-metrics.json" | grep -v '{' >"$PARITY_TMP/seq-counters"
grep -E '"(optimizer|model|serve)\.' "$PARITY_TMP/par-metrics.json" | grep -v '{' >"$PARITY_TMP/par-counters"
if ! diff -u "$PARITY_TMP/seq-counters" "$PARITY_TMP/par-counters"; then
  echo "telemetry parity: --jobs 4 counter totals differ from --jobs 1" >&2
  exit 1
fi
echo "telemetry parity: ok ($(wc -l <"$PARITY_TMP/seq-counters" | tr -d ' ') counters identical)"

echo "== bench telemetry (overhead budget)"
dune exec bench/main.exe -- telemetry

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== ok"
