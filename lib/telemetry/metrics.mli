(** Zero-dependency structured metrics: named monotonic counters, latency
    histograms, and span timers over one process-global registry.

    The registry is thread-unsafe by design — a deliberate single-writer
    model. The only concurrency in this codebase is [Sun_serve.Parpool]'s
    forked workers, and fork gives every worker a private copy of the
    registry for free. The protocol (DESIGN.md §3.4) is:

    - the parent enables telemetry {e before} the pool forks, so workers
      inherit the enabled flag and the registered handles;
    - a worker calls {!reset} at the start of each job and ships
      [{!snapshot} ()] back inside its reply frame;
    - the parent calls {!merge} on each received snapshot, adding the
      worker's per-job deltas into its own registry.

    A crashed worker's partial counts die with its process and the job is
    retried from zero on a fresh worker, so counter totals are identical
    whether a batch runs on 1 or N workers.

    Everything is disabled by default: {!add}, {!observe} and {!span} are a
    single flag load when {!enabled} is false, so instrumented hot paths
    stay within a <2% overhead budget (enforced by [bench telemetry]). *)

type counter
(** Handle to a named monotonic counter. Handles stay valid across
    {!reset}, which zeroes values without dropping registrations. *)

type histogram
(** Handle to a named latency histogram: count / sum / min / max plus
    power-of-two duration buckets (~1µs to ~32s). *)

val set_enabled : bool -> unit
(** Turn the registry on or off. Off (the default) makes every recording
    operation a near-free no-op. *)

val enabled : unit -> bool

val counter : string -> counter
(** Find-or-register the counter with this name. *)

val add : counter -> int -> unit
(** Add to a counter; no-op while disabled. *)

val incr : counter -> unit

val count : string -> int -> unit
(** One-shot [add (counter name) n]; prefer a pre-registered handle on hot
    paths. No-op (and no registration) while disabled. *)

val histogram : string -> histogram
(** Find-or-register the histogram with this name. *)

val observe : histogram -> float -> unit
(** Record one duration (seconds); no-op while disabled. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] into [histogram name]. While disabled it is
    exactly [f ()] — no clock reads. The duration is recorded even when
    [f] raises. *)

(** {1 Snapshots: plain data for export and cross-process merge} *)

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0.0 when [h_count = 0] *)
  h_max : float;  (** 0.0 when [h_count = 0] *)
  h_buckets : int array;
}

type snapshot = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_hists : (string * hist) list;  (** sorted by name *)
}
(** Immutable, marshal-safe copy of the registry (plain strings, ints,
    floats and arrays — safe to ship through [Parpool]'s reply frames). *)

val reset : unit -> unit
(** Zero every registered counter and histogram in place. Existing handles
    remain valid and keep pointing at the (now zeroed) registrations. *)

val snapshot : unit -> snapshot

val merge : snapshot -> unit
(** Add a snapshot's counts into the current registry: counters add,
    histogram counts/sums/buckets add, min/max combine. Works regardless of
    the enabled flag — the parent merges worker frames even though its own
    recording guard already passed. *)

(** {1 Export} *)

val to_json : snapshot -> string
(** Pretty-printed JSON document ([{"v":1,"kind":"telemetry","counters":
    {...},"histograms":{...}}]). Hand-rolled so this library stays
    dependency-free; the output parses with [Sun_serve.Json]. *)

val to_table : snapshot -> string
(** Human-readable aligned tables (counters, then histograms), ready to
    print. *)

val save : string -> snapshot -> (unit, string) result
(** [save path s] writes [to_json s] (newline-terminated) to [path],
    truncating any previous contents — shared by the CLI's [--metrics]
    final write and the serving daemon's SIGHUP re-open. [Error msg] when
    the file cannot be opened; never raises. *)

val num_buckets : int
(** Number of histogram buckets; [h_buckets] arrays have this length. *)

val bucket_label : int -> string
(** Upper bound of bucket [i], e.g. ["<1ms"]; the last bucket is open. *)
