(* Process-global single-writer metrics registry. Toplevel mutable state is
   normally a fork-safety hazard (Forksafe SA043) and is forbidden in lib/;
   this module is the sanctioned exception the scanner exempts by path: the
   registry is never shared between processes, it is *copied* by fork, and
   worker copies flow back to the parent as explicit snapshot values merged
   on frame receipt (see DESIGN.md §3.4). *)

type counter = { mutable c_value : int }

type histogram = {
  mutable hg_count : int;
  mutable hg_sum : float;
  mutable hg_min : float;
  mutable hg_max : float;
  hg_buckets : int array;
}

(* Buckets are powers of two over the durations this codebase produces:
   bucket [i] holds durations whose binary exponent is [i + min_exponent],
   i.e. [2^(i-1+min_exponent), 2^(i+min_exponent)); the first and last
   buckets absorb everything below / above. *)
let num_buckets = 26

let min_exponent = -20 (* bucket 0: <= ~1us *)

(* The registry bindings and the registration functions below are cold for
   the hot-path lint (SA070): they evaluate once at module initialization —
   hot code holds pre-registered handles and only touches counter fields.
   Registering inside a hot loop would be a real bug, which is exactly what
   these annotations assert never happens. *)

(* sunstone-cold *)
let enabled_flag = ref false

(* sunstone-cold *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

(* sunstone-cold *)
let hists : (string, histogram) Hashtbl.t = Hashtbl.create 32

let set_enabled v = enabled_flag := v

let enabled () = !enabled_flag

(* sunstone-cold *)
let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace counters name c;
    c

let add c n = if !enabled_flag then c.c_value <- c.c_value + n

let incr c = add c 1

let count name n =
  if !enabled_flag then begin
    let c = counter name in
    c.c_value <- c.c_value + n
  end

(* sunstone-cold *)
let histogram name =
  match Hashtbl.find_opt hists name with
  | Some h -> h
  | None ->
    let h =
      {
        hg_count = 0;
        hg_sum = 0.0;
        hg_min = 0.0;
        hg_max = 0.0;
        hg_buckets = Array.make num_buckets 0;
      }
    in
    Hashtbl.replace hists name h;
    h

let bucket_index d =
  if d <= 0.0 then 0
  else begin
    let _, e = Float.frexp d in
    let i = e - min_exponent in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i
  end

let observe h d =
  if !enabled_flag then begin
    if h.hg_count = 0 then begin
      h.hg_min <- d;
      h.hg_max <- d
    end
    else begin
      if d < h.hg_min then h.hg_min <- d;
      if d > h.hg_max then h.hg_max <- d
    end;
    h.hg_count <- h.hg_count + 1;
    h.hg_sum <- h.hg_sum +. d;
    let i = bucket_index d in
    h.hg_buckets.(i) <- h.hg_buckets.(i) + 1
  end

let span name f =
  if not !enabled_flag then f ()
  else begin
    let h = histogram name in
    let started = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. started)) f
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist = { h_count : int; h_sum : float; h_min : float; h_max : float; h_buckets : int array }

type snapshot = { s_counters : (string * int) list; s_hists : (string * hist) list }

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      h.hg_count <- 0;
      h.hg_sum <- 0.0;
      h.hg_min <- 0.0;
      h.hg_max <- 0.0;
      Array.fill h.hg_buckets 0 num_buckets 0)
    hists

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let cs = Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters [] in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        ( name,
          {
            h_count = h.hg_count;
            h_sum = h.hg_sum;
            h_min = h.hg_min;
            h_max = h.hg_max;
            h_buckets = Array.copy h.hg_buckets;
          } )
        :: acc)
      hists []
  in
  { s_counters = List.sort by_name cs; s_hists = List.sort by_name hs }

let merge s =
  List.iter
    (fun (name, v) ->
      let c = counter name in
      c.c_value <- c.c_value + v)
    s.s_counters;
  List.iter
    (fun (name, h) ->
      if h.h_count > 0 then begin
        let hg = histogram name in
        if hg.hg_count = 0 then begin
          hg.hg_min <- h.h_min;
          hg.hg_max <- h.h_max
        end
        else begin
          if h.h_min < hg.hg_min then hg.hg_min <- h.h_min;
          if h.h_max > hg.hg_max then hg.hg_max <- h.h_max
        end;
        hg.hg_count <- hg.hg_count + h.h_count;
        hg.hg_sum <- hg.hg_sum +. h.h_sum;
        Array.iteri
          (fun i n -> if i < num_buckets then hg.hg_buckets.(i) <- hg.hg_buckets.(i) + n)
          h.h_buckets
      end)
    s.s_hists

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Shortest decimal spelling that reads back to the same float; snapshot
   floats are durations, always finite. *)
let float_str f =
  let short = Printf.sprintf "%.12g" f in
  let s = if float_of_string short = f then short else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let escape_key buf name =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"'

(* One counter (or histogram) per line, keys 4-space indented: stable,
   grep-friendly output that [Sun_serve.Json.of_string] parses back. *)
let to_json s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"v\": 1,\n  \"kind\": \"telemetry\",\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      escape_key buf name;
      Buffer.add_string buf (Printf.sprintf ": %d" v))
    s.s_counters;
  Buffer.add_string buf (if s.s_counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      escape_key buf name;
      Buffer.add_string buf
        (Printf.sprintf ": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": [%s]}"
           h.h_count (float_str h.h_sum) (float_str h.h_min) (float_str h.h_max)
           (String.concat ", " (Array.to_list (Array.map string_of_int h.h_buckets)))))
    s.s_hists;
  Buffer.add_string buf (if s.s_hists = [] then "}\n" else "\n  }\n");
  Buffer.add_string buf "}";
  Buffer.contents buf

let save path s =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (to_json s);
        output_char oc '\n');
    Ok ()

let duration_str v =
  if v < 1e-3 then Printf.sprintf "%.1fus" (v *. 1e6)
  else if v < 1.0 then Printf.sprintf "%.2fms" (v *. 1e3)
  else Printf.sprintf "%.3fs" v

let bucket_label i =
  let bound e = duration_str (Float.ldexp 1.0 e) in
  if i >= num_buckets - 1 then ">=" ^ bound (num_buckets - 2 + min_exponent)
  else "<" ^ bound (i + min_exponent)

let render_table ~header ~rows =
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell ->
         if i < Array.length widths && String.length cell > widths.(i) then
           widths.(i) <- String.length cell))
    rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    Buffer.add_string buf cell;
    if i < Array.length widths - 1 then
      Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' ')
  in
  let line cells = List.iteri pad cells; Buffer.add_char buf '\n' in
  line header;
  line (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter line rows;
  Buffer.contents buf

let to_table s =
  let buf = Buffer.create 1024 in
  (if s.s_counters <> [] then begin
     let rows = List.map (fun (name, v) -> [ name; string_of_int v ]) s.s_counters in
     Buffer.add_string buf (render_table ~header:[ "counter"; "value" ] ~rows)
   end);
  (if s.s_hists <> [] then begin
     if s.s_counters <> [] then Buffer.add_char buf '\n';
     let rows =
       List.map
         (fun (name, h) ->
           let mean = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count in
           [
             name;
             string_of_int h.h_count;
             duration_str mean;
             duration_str h.h_min;
             duration_str h.h_max;
             duration_str h.h_sum;
           ])
         s.s_hists
     in
     Buffer.add_string buf
       (render_table ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "total" ] ~rows)
   end);
  if Buffer.length buf = 0 then "no metrics recorded\n" else Buffer.contents buf
