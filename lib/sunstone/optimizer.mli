(** The Sunstone scheduler: level-by-level dataflow optimization.

    Bottom-up (the paper's default, Section V-A): starting at the innermost
    memory boundary and moving outward, each pass chooses the loop ordering
    of the level above the boundary (from the pruned ordering trie), the
    tile of the level below it (from the tiling-tree frontier over the
    reused operand's indexing dimensions), and the spatial unrolling of the
    fanout between them (maximal unrollings of the same reuse dimensions).
    Partial schedules are scored by completing them naively at DRAM and
    keeping the best [beam_width]; alpha-beta pruning discards prefixes
    whose committed-level energy already exceeds the best complete schedule
    found.

    Top-down (the Table VI ablation) runs the same per-level machinery from
    DRAM inward; because on-chip capacities are large, its per-pass frontier
    is far bigger and the partial-energy bound is weaker, which is exactly
    the effect Table VI reports. *)

type direction = Bottom_up | Top_down

type intra_order = Ordering_first | Tiling_first | Unrolling_first
(** Order in which the three per-level sub-optimizations are enumerated;
    the candidate set is the same but the examined-node count differs
    (Table VI, rows 1-3). *)

type config = {
  direction : direction;
  intra : intra_order;
  beam_width : int;  (** prefixes kept between passes *)
  alpha_beta : bool;
  min_spatial_utilization : float;  (** "high throughput" floor, 0..1 *)
  refine : bool;
      (** hill-climb the incumbent afterwards (single-factor moves between
          levels and adjacent order swaps) to recover mappings just outside
          the per-level reuse-dimension restriction *)
  binding : Sun_cost.Model.binding;
}

val default_config : config
(** Bottom-up, unrolling-first (Table VI row 1), beam 12, alpha-beta on,
    utilization floor 0.5, refinement on, identity binding. *)

type stats = {
  examined : int;  (** candidate nodes generated across all passes *)
  evaluated : int;  (** complete mappings scored with the cost model *)
  pruned_alpha_beta : int;
  build_errors : int;
      (** candidates [Mapping.make] rejected — 0 on a healthy mapspace; a
          nonzero count means a search pass emitted structurally broken
          levels, which used to be silently indistinguishable from pruning *)
  eval_errors : int;
      (** candidates [Model.evaluate_ctx] rejected after building *)
  wall_seconds : float;
}

type result = { mapping : Sun_mapping.Mapping.t; cost : Sun_cost.Model.cost; stats : stats }

type injection = No_injection | Corrupt_first_build
(** Test hook for the error accounting: [Corrupt_first_build] breaks the
    first scored candidate's dim coverage so [Mapping.make] fails exactly
    once ([stats.build_errors >= 1]) while the search still succeeds. *)

val optimize :
  ?config:config ->
  ?inject:injection ->
  ?seed:Sun_mapping.Mapping.level_mapping list ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  (result, string) Stdlib.result
(** Returns the best mapping found, its cost, and search statistics. Errors
    only when no valid mapping exists (e.g. a single tile element does not
    fit the innermost buffer). Build/evaluation rejections during the
    search are counted in [stats] and, when [Sun_telemetry.Metrics] is
    enabled, flushed once per call under the [optimizer.*] counter
    namespace (plus an [optimizer.search_s] latency histogram).

    [?seed] warm-starts the search: the given levels are built and scored
    before enumeration and, if legal, installed as the initial incumbent,
    so alpha-beta pruning has a finite alpha from the first pass. Seeding
    can only tighten pruning — the final mapping's EDP is never worse than
    the unseeded search's. An illegal or unscorable seed is dropped
    silently (the search runs exactly as unseeded); seed rejections are
    {e not} counted in [stats.build_errors]/[stats.eval_errors], which
    remain reserved for candidates the search itself generated. Telemetry:
    [transfer.seeded], [transfer.seed_rejected] counters and a
    [transfer.alpha_ratio] histogram (seed EDP / final EDP, >= 1). *)
