module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Probe = Sun_cost.Probe
module Listx = Sun_util.Listx
module Tel = Sun_telemetry.Metrics

type direction = Bottom_up | Top_down

type intra_order = Ordering_first | Tiling_first | Unrolling_first

type config = {
  direction : direction;
  intra : intra_order;
  beam_width : int;
  alpha_beta : bool;
  min_spatial_utilization : float;
  refine : bool;  (** post-search local refinement of the incumbent *)
  binding : Model.binding;
}

(* Unrolling-first is Table VI's first row — the smallest space of the
   bottom-up variants — and lets the spatial level claim extents before the
   tile frontier saturates the same reuse dimensions. *)
let default_config =
  {
    direction = Bottom_up;
    intra = Unrolling_first;
    beam_width = 12;
    alpha_beta = true;
    min_spatial_utilization = 0.5;
    refine = true;
    binding = Fun.id;
  }

type stats = {
  examined : int;
  evaluated : int;
  pruned_alpha_beta : int;
  build_errors : int;
  eval_errors : int;
  wall_seconds : float;
}

type result = { mapping : M.t; cost : Model.cost; stats : stats }

(* Test hook: force [Mapping.make] to fail exactly once so the error
   accounting is exercisable from tests without a pathological preset. *)
type injection = No_injection | Corrupt_first_build

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)
(* ------------------------------------------------------------------ *)

type search_state = {
  w : W.t;
  arch : A.t;
  cfg : config;
  ctx : Model.ctx;
  probe : Probe.t;
      (** memoized footprint probes, scoped to this search (DESIGN.md §3.7) *)
  dims : W.dim list;
  mutable fits : (float * string array) array array;
      (** per level: (capacity, stored operand names) per partition —
          arrays, so the fit test loops without list closures *)
  mutable examined : int;
  mutable evaluated : int;
  mutable pruned : int;
  mutable build_errors : int;  (** [Mapping.make] rejections, no longer silent *)
  mutable eval_errors : int;  (** [Model.evaluate_ctx] rejections, no longer silent *)
  mutable orders_kept : int;
  mutable orders_dropped : int;
  mutable tile_candidates : int;  (** tile-tree frontier tiles emitted *)
  mutable unroll_candidates : int;  (** spatial unroll choices emitted *)
  mutable inject : injection;
  mutable best : (M.t * Model.score) option;
      (** incumbent: scored on the allocation-free path, fully evaluated
          once at the end of the search *)
  mutable seeded : int;  (** transferred seeds installed as the incumbent *)
  mutable seed_rejected : int;  (** transferred seeds that failed to build or score *)
  mutable seed_edp : float;  (** EDP of the installed seed, for the alpha ratio *)
  mutable best_is_seed : bool;
      (** the incumbent is still the transferred seed — no enumerated
          candidate has displaced it *)
  mutable best_alt : (M.t * Model.score) option;
      (** best {e enumerated} mapping, tracked only when seeded: if the
          seed is never displaced, the post-search refinement also
          hill-climbs from here so a strong seed cannot strand the search
          at the seed's own local optimum ({!optimize}) *)
  mutable floor_energy : float;
      (** mandatory top-boundary traffic energy: every tensor word crosses
          the outermost boundary at least once ({!dram_floors}) *)
  mutable floor_cycles : float;  (** same floor as cycles through the top bandwidth *)
}

let ones dims = List.map (fun d -> (d, 1)) dims

let fill dims assoc =
  List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims

let copy_levels levels = Array.map (fun lm -> lm) levels

let initial_levels st =
  Array.init (A.num_levels st.arch) (fun _ ->
      { M.temporal = ones st.dims; order = st.dims; spatial = ones st.dims })

(* Per level: the partitions to check and the operands each one holds,
   resolved once so the tile-tree fit test is a tight loop. *)
let fit_table st =
  Array.init (A.num_levels st.arch) (fun level ->
      let lvl = A.level st.arch level in
      if lvl.A.unbounded then [||]
      else
        Array.of_list
          (List.map
             (fun (p : A.partition) ->
               let ops =
                 List.filter
                   (fun (op : W.operand) ->
                     match A.partition_for lvl ~role:(st.cfg.binding op.W.name) with
                     | Some p' -> p'.A.part_name = p.A.part_name
                     | None -> false)
                   st.w.W.operands
               in
               ( float_of_int p.A.capacity_words +. 1e-9,
                 Array.of_list (List.map (fun (op : W.operand) -> op.W.name) ops) ))
             lvl.A.partitions))

(* Does a tile with the given extents fit every partition of the level?
   The extent vector is resolved once per call; the per-operand footprints
   go through the search-scoped memo (sibling candidates share most of
   their extent vectors). [Probe.footprint] is bit-identical to
   [W.footprint extent], so the sum matches [Listx.sum_by] exactly. The
   loops are index-driven over the prebuilt arrays — the old
   [List.for_all]/[List.fold_left] pair allocated two closures per call and
   boxed the float accumulator on every element — and the local refs below
   are compiled to registers (Simplif eliminates non-escaping refs). *)
(* sunstone-hot *)
let extents_fit st ~level extent =
  Probe.set_extents st.probe extent;
  let groups = st.fits.(level) in
  (* sunstone-lint: allow SA070 non-escaping refs are Simplif-eliminated, no allocation *)
  let ok = ref true and gi = ref 0 in
  while !ok && !gi < Array.length groups do
    let cap, ops = groups.(!gi) in
    (* sunstone-lint: allow SA070 non-escaping ref is Simplif-eliminated, no allocation *)
    let sum = ref 0.0 in
    for oi = 0 to Array.length ops - 1 do
      sum := !sum +. Probe.footprint st.probe ~op:(Array.unsafe_get ops oi) ~level
    done;
    if !sum > cap then ok := false;
    incr gi
  done;
  !ok

(* Breaking exact dim coverage (doubling one temporal factor) makes
   [Mapping.make] reject the candidate, which on natural search paths never
   happens — every factor choice divides the bounds exactly. *)
let corrupt_first_build levels =
  match levels with
  | [] -> []
  | lm :: rest ->
    let temporal =
      match lm.M.temporal with (d, f) :: tl -> (d, f * 2) :: tl | [] -> lm.M.temporal
    in
    { lm with M.temporal } :: rest

let build st levels =
  let levels_list =
    match st.inject with
    | No_injection -> Array.to_list levels
    | Corrupt_first_build ->
      st.inject <- No_injection;
      corrupt_first_build (Array.to_list levels)
  in
  match M.make st.w levels_list with
  | Error _ ->
    st.build_errors <- st.build_errors + 1;
    None
  | Ok m ->
    st.evaluated <- st.evaluated + 1;
    Some m

(* [s] may be the context-owned record [Model.score_ctx] overwrites on the
   next call, so adopting it as the incumbent copies. *)
(* sunstone-hot *)
let update_best st m (s : Model.score) =
  match st.best with
  | Some (_, best) when best.Model.s_edp <= s.Model.s_edp -> ()
  | _ ->
    (* sunstone-lint: allow SA070 improvement path: one copied incumbent per new best *)
    st.best <- Some (m, Model.copy_score s);
    st.best_is_seed <- false

(* Track the best mapping the search itself produced, separately from the
   incumbent: a transferred seed can be strong enough that no enumerated
   candidate ever displaces it, and the final refinement then never sees
   the enumeration's own best starting point. Gated on [seeded] so the
   unseeded path stays bit-identical (one integer test per score). *)
(* sunstone-hot *)
let update_best_alt st m (s : Model.score) =
  if st.seeded > 0 then
    match st.best_alt with
    | Some (_, b) when b.Model.s_edp <= s.Model.s_edp -> ()
    | _ ->
      (* sunstone-lint: allow SA070 improvement path: one copied alternative per new best *)
      st.best_alt <- Some (m, Model.copy_score s)

(* Score a structurally complete mapping; updates the incumbent. Build and
   evaluation rejections are counted, never swallowed: a mapspace bug must
   look different from legitimate pruning in the stats. Scoring runs on the
   allocation-free [score_ctx] path: same energy/cycles/EDP bits as a full
   evaluation, no transfer/breakdown assembly. *)
let score st levels =
  match build st levels with
  | None -> None
  | Some m -> (
    match Model.score_ctx st.ctx m with
    | Error _ ->
      st.eval_errors <- st.eval_errors + 1;
      None
    | Ok s ->
      update_best st m s;
      update_best_alt st m s;
      Some s)

(* Batch-score sibling candidates through one [Model.score_batch_ctx]
   call. Builds, scores and incumbent updates all happen in list order —
   the same sequence the scalar [score] would produce, so tie-breaking and
   stats are unchanged. Only passes with no incumbent-dependent pruning
   between siblings may batch (alpha-beta consults the incumbent mid-pass
   and must stay sequential). Returns [(tag, score)] for the survivors. *)
let score_batch st tagged =
  let built =
    List.filter_map
      (fun (tag, levels) ->
        match build st levels with None -> None | Some m -> Some (tag, m))
      tagged
  in
  let results = Model.score_batch_ctx st.ctx (Array.of_list (List.map snd built)) in
  List.concat
    (List.mapi
       (fun i (tag, m) ->
         match results.(i) with
         | Error _ ->
           st.eval_errors <- st.eval_errors + 1;
           []
         | Ok s ->
           update_best st m s;
           update_best_alt st m s;
           [ (tag, s) ])
       built)

(* Install a transferred mapping (a rescaled neighbor from the cache) as
   the initial incumbent, so the very first alpha-beta tests already have a
   finite alpha. The seed comes from a *different* request's search, so a
   rejection here is the expected silent fallback, not a mapspace bug: it
   stays out of [build_errors]/[eval_errors] and the search proceeds from
   scratch exactly as if no seed had been offered. *)
let install_seed st levels_list =
  match M.make st.w levels_list with
  | Error _ -> st.seed_rejected <- st.seed_rejected + 1
  | Ok m -> (
    match Model.score_ctx st.ctx m with
    | Error _ -> st.seed_rejected <- st.seed_rejected + 1
    | Ok s ->
      st.seeded <- st.seeded + 1;
      st.seed_edp <- s.Model.s_edp;
      update_best st m s;
      st.best_is_seed <- true)

(* The grow dimensions of the Tiling / Unrolling Principles: the indexing
   dimensions of the operand temporally reused at the boundary. With no
   reused operand the principles give no restriction. *)
let grow_dims_of st = function
  | Some op_name -> W.indexing_dims (W.find_operand st.w op_name)
  | None -> st.dims

let operand_choices (o : Order_trie.candidate) =
  match o.Order_trie.reused_operands with [] -> [ None ] | ops -> List.map (fun x -> Some x) ops

(* ------------------------------------------------------------------ *)
(* Bottom-up                                                           *)
(* ------------------------------------------------------------------ *)

(* Complete a prefix by dumping every unplaced factor at DRAM. *)
let complete_at_top st levels =
  let completed = copy_levels levels in
  let top = A.num_levels st.arch - 1 in
  let m = { M.levels = completed } in
  let residual =
    List.map (fun d -> (d, W.bound st.w d / M.tile_at m ~level:top d)) st.dims
  in
  let top_lm = completed.(top) in
  let temporal =
    List.map
      (fun (d, f) ->
        let cur = match List.assoc_opt d top_lm.M.temporal with Some c -> c | None -> 1 in
        (d, cur * f))
      residual
  in
  completed.(top) <- { top_lm with M.temporal };
  completed

let min_cycles st = W.macs st.w /. float_of_int (A.total_fanout st.arch * st.arch.A.mac_throughput)

(* Sharper admissible cycles bound for a bottom-up prefix: levels at or
   below the boundary have their spatial unrolling fixed, so no completion
   can run on more lanes than the committed unrolls times the fanout still
   unassigned above — compute alone then needs at least
   [macs / (throughput x that product)] cycles. Only seeded searches use
   it ({!alpha_beta_prunes}): a transferred incumbent gives a finite alpha
   from the very first pass, where this bound actually discriminates,
   while unseeded searches keep the full-fanout bound so their results
   stay bit-identical with earlier releases (the transfer-off parity gate
   in ci.sh pins exactly that). *)
let min_cycles_committed st ~fixed_levels levels =
  let lanes = ref 1.0 in
  for l = 0 to A.num_levels st.arch - 1 do
    if l <= fixed_levels then
      List.iter (fun (_, f) -> lanes := !lanes *. float_of_int f) levels.(l).M.spatial
    else lanes := !lanes *. float_of_int (A.level st.arch l).A.fanout
  done;
  W.macs st.w /. (!lanes *. float_of_int st.arch.A.mac_throughput)

(* Mandatory top-boundary traffic, independent of the mapping: every word
   of every tensor crosses the outermost boundary at least once, costing
   at least the cheapest top-level per-word energy and occupying the top
   level's aggregate bandwidth. Both floors are admissible additions to
   the committed-level bounds of {!alpha_beta_prunes}: the committed
   bound only counts boundaries strictly below the top, so the two access
   sets are disjoint. *)
let dram_floors st =
  let parts = (A.level st.arch (A.num_levels st.arch - 1)).A.partitions in
  if parts = [] then (0.0, 0.0)
  else begin
    let min_e =
      List.fold_left
        (fun acc (p : A.partition) ->
          Float.min acc (Float.min p.A.read_energy p.A.write_energy))
        infinity parts
    in
    let sum_bw = List.fold_left (fun acc (p : A.partition) -> acc +. p.A.bandwidth) 0.0 parts in
    let words =
      List.fold_left (fun acc op -> acc +. W.operand_size st.w op) 0.0 st.w.W.operands
    in
    (words *. min_e, if sum_bw > 0.0 then words /. sum_bw else 0.0)
  end

(* A prefix with [edp_lb > incumbent * prune_margin] is cut once the seed
   has been displaced (see the margin computation below). 0.8 is the
   empirical knee on the ResNet-18/Inception-v3 transfer benchmark: it cuts
   warm evaluations by a further ~6 points while every layer's final EDP
   stays equal or better than the cold search's; tighter margins (0.75 and
   below) start pruning subtrees holding small genuine improvements. *)
let prune_margin = 0.8

(* Alpha-beta: prune a prefix whose committed-level energy already exceeds
   the incumbent's total energy (with a little slack for latency trades).
   Bottom-up this is a sharp test — with high reuse, most of the energy is
   charged at the lowest levels, so the committed partial energy sits close
   to the final energy (Section V-C). The hard EDP bound (committed energy
   at best-case latency) is also applied. Returns [Some edp_lb] when the
   prefix prunes, so the seeded beam can still rank it by its bound
   without scoring it ({!select_beam}). *)
let alpha_beta_prunes st ~fixed_levels levels =
  if not st.cfg.alpha_beta then None
  else
    match st.best with
    | None -> None
    | Some (_, best) ->
      let energy_slack = 1.5 in
      (* seeded searches fold in the mandatory top-boundary floors, the
         committed-parallelism cycles bound and the committed-boundary
         bandwidth bound; unseeded searches keep the original full-fanout
         test so their results stay bit-identical with earlier releases
         (the transfer-off parity gate pins this) *)
      let lb, edp_lb =
        if st.seeded > 0 then begin
          let e_lb, bw_lb =
            Model.lower_bounds_ctx st.ctx ~partial_levels:fixed_levels { M.levels }
          in
          (* the floors count the top boundary, which [lower_bounds_ctx]
             already includes once [fixed_levels] reaches it — drop them
             there to keep the two access sets disjoint *)
          let fe, fc =
            if fixed_levels < A.num_levels st.arch - 1 then (st.floor_energy, st.floor_cycles)
            else (0.0, 0.0)
          in
          let cycles_lb =
            Float.max (min_cycles_committed st ~fixed_levels levels) (Float.max bw_lb fc)
          in
          (e_lb, (e_lb +. fe) *. cycles_lb)
        end
        else
          let e_lb = Model.energy_lower_bound_ctx st.ctx ~partial_levels:fixed_levels { M.levels } in
          (e_lb, e_lb *. min_cycles st)
      in
      (* Seeded-only pruning margin, gated on displacement: while the
         transferred seed is still the incumbent the test stays exact, so
         the first enumerated improvement over the seed can never be
         margin-pruned — a seed that happens to sit within a few percent
         of the true optimum must not freeze the search at its own value.
         Once some candidate has displaced the seed, prefixes whose
         optimistic bound already lands within [prune_margin] of the
         incumbent are dropped: their best case is a marginal win, and
         spending full completions on them is where a warm search burns
         the evaluations the seed was meant to save. Unseeded searches
         ([st.seeded = 0]) never use the margin, keeping cold results
         bit-identical with earlier releases. *)
      let margin = if st.seeded > 0 && not st.best_is_seed then prune_margin else 1.0 in
      if lb > best.Model.s_energy_pj *. energy_slack || edp_lb > best.Model.s_edp *. margin then begin
        st.pruned <- st.pruned + 1;
        Some edp_lb
      end
      else None

(* Candidates for one bottom-up pass at boundary [k]: level-k ordering,
   level-(k-1) tile, level-k spatial unrolling. *)
let bottom_up_pass st ~orders ~k prefix_levels =
  let placed_tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      (* everything already fixed strictly below the new tile, including the
         spatial factors of levels <= k-1 *)
      Hashtbl.replace placed_tbl d (M.tile_at { M.levels = prefix_levels } ~level:(k - 1) d))
    st.dims;
  let placed d = Hashtbl.find placed_tbl d in
  let remaining d = W.bound st.w d / placed d in
  let fanout = (A.level st.arch k).A.fanout in
  let results = ref [] in
  let emit_candidate ~tile ~order ~spatial =
    st.examined <- st.examined + 1;
    let levels = copy_levels prefix_levels in
    levels.(k - 1) <- { (levels.(k - 1)) with M.temporal = fill st.dims tile };
    levels.(k) <- { (levels.(k)) with M.order = order; M.spatial = fill st.dims spatial };
    results := levels :: !results
  in
  (* At capacious levels the maximal-tile frontier can be huge; keep the
     largest-volume tiles (more volume = fewer refills from above, the same
     monotonicity the Tiling Principle exploits). *)
  let cap_frontier frontier =
    let max_keep = 40 in
    if List.length frontier <= max_keep then frontier
    else begin
      let volume a = List.fold_left (fun acc (_, f) -> acc * f) 1 a in
      let sorted = List.sort (fun a b -> compare (volume b) (volume a)) frontier in
      Listx.take max_keep sorted
    end
  in
  (* Distinct orders often share the reused operand, hence the same grow
     set; tile and unroll candidate sets depend only on that set (plus any
     already-chosen factors) for a given prefix, so memoize them per pass. *)
  let tile_memo : (string, Tile_tree.assignment list) Hashtbl.t = Hashtbl.create 8 in
  let unroll_memo : (string, Tile_tree.assignment list) Hashtbl.t = Hashtbl.create 8 in
  let memo_key grow chosen =
    String.concat "," grow ^ "/"
    ^ String.concat "," (List.map (fun (d, f) -> d ^ string_of_int f) chosen)
  in
  let tiles_for grow ~chosen ~remaining =
    let key = memo_key grow chosen in
    match Hashtbl.find_opt tile_memo key with
    | Some tiles -> tiles
    | None ->
      let fits assignment =
        let extent d = placed d * Tile_tree.factor_of assignment d in
        extents_fit st ~level:(k - 1) extent
      in
      let out = Tile_tree.search ~max_steps:20 ~grow_dims:grow ~remaining ~fits () in
      st.examined <- st.examined + out.Tile_tree.explored;
      let tiles = cap_frontier out.Tile_tree.frontier in
      st.tile_candidates <- st.tile_candidates + List.length tiles;
      Hashtbl.add tile_memo key tiles;
      tiles
  in
  let unrolls_for grow ~chosen ~remaining =
    let key = memo_key grow chosen in
    match Hashtbl.find_opt unroll_memo key with
    | Some unrolls -> unrolls
    | None ->
      let out =
        Unroll.candidates ~fanout ~dims:grow ~remaining
          ~min_utilization:st.cfg.min_spatial_utilization ()
      in
      st.examined <- st.examined + out.Unroll.explored;
      st.unroll_candidates <- st.unroll_candidates + List.length out.Unroll.candidates;
      Hashtbl.add unroll_memo key out.Unroll.candidates;
      out.Unroll.candidates
  in
  let expand_order_op (o : Order_trie.candidate) op_choice =
    let grow = grow_dims_of st op_choice in
    match st.cfg.intra with
    | Ordering_first | Tiling_first ->
      let tiles = tiles_for grow ~chosen:[] ~remaining in
      List.iter
        (fun tile ->
          let after_tile d = remaining d / Tile_tree.factor_of tile d in
          let unrolls = unrolls_for grow ~chosen:tile ~remaining:after_tile in
          List.iter
            (fun spatial -> emit_candidate ~tile ~order:o.Order_trie.order ~spatial)
            unrolls)
        tiles
    | Unrolling_first ->
      let unrolls = unrolls_for grow ~chosen:[] ~remaining in
      List.iter
        (fun spatial ->
          let rem d = remaining d / Tile_tree.factor_of spatial d in
          let tiles = tiles_for grow ~chosen:spatial ~remaining:rem in
          List.iter (fun tile -> emit_candidate ~tile ~order:o.Order_trie.order ~spatial) tiles)
        unrolls
  in
  List.iter (fun o -> List.iter (expand_order_op o) (operand_choices o)) orders;
  !results

(* Spatial unrolling below the innermost memory (e.g. Simba's vector
   lanes): one candidate set per protected operand. *)
let lane_pass st prefix_levels =
  let fanout = (A.level st.arch 0).A.fanout in
  if fanout <= 1 then [ prefix_levels ]
  else begin
    let results = ref [] in
    List.iter
      (fun (op : W.operand) ->
        let grow = W.indexing_dims op in
        let out =
          Unroll.candidates ~fanout ~dims:grow
            ~remaining:(fun d -> W.bound st.w d)
            ~min_utilization:st.cfg.min_spatial_utilization ()
        in
        st.examined <- st.examined + out.Unroll.explored;
        st.unroll_candidates <- st.unroll_candidates + List.length out.Unroll.candidates;
        List.iter
          (fun spatial ->
            st.examined <- st.examined + 1;
            let levels = copy_levels prefix_levels in
            levels.(0) <- { (levels.(0)) with M.spatial = fill st.dims spatial };
            results := levels :: !results)
          out.Unroll.candidates)
      st.w.W.operands;
    !results
  end

let dedup_prefixes prefixes =
  let seen = Hashtbl.create 64 in
  let buf = Buffer.create 128 in
  let canonical levels =
    Buffer.clear buf;
    Array.iter
      (fun lm ->
        List.iter
          (fun (_, f) ->
            Buffer.add_string buf (string_of_int f);
            Buffer.add_char buf ',')
          lm.M.temporal;
        Buffer.add_char buf '|';
        List.iter
          (fun d ->
            Buffer.add_string buf d;
            Buffer.add_char buf ',')
          lm.M.order;
        Buffer.add_char buf '|';
        List.iter
          (fun (_, f) ->
            Buffer.add_string buf (string_of_int f);
            Buffer.add_char buf ',')
          lm.M.spatial;
        Buffer.add_char buf ';')
      levels;
    Buffer.contents buf
  in
  List.filter
    (fun levels ->
      let key = canonical levels in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    prefixes

(* Score prefixes by their naive completion and keep the beam. The naive
   completion is a poor predictor of how a spatial-unrolling style plays
   out at the upper levels, so the beam is diversity-preserving: the best
   prefix of every distinct spatial signature is seated first, and the
   remaining slots go to the global ranking. *)
let select_beam st ~fixed_levels prefixes =
  let scored =
    if fixed_levels = 0 && st.best = None then
      (* no incumbent yet, hence no alpha-beta below the first boundary:
         the sibling completions batch through one scoring call. A
         transferred seed makes [st.best] finite before this first pass,
         which routes seeded searches through the pruning path below. *)
      List.map
        (fun (levels, s) -> (levels, s.Model.s_edp))
        (score_batch st (List.map (fun levels -> (levels, complete_at_top st levels)) prefixes))
    else
      (* the incumbent tightens mid-pass and feeds the alpha-beta test of
         the next prefix, so this path stays candidate-by-candidate *)
      List.filter_map
        (fun levels ->
          match alpha_beta_prunes st ~fixed_levels levels with
          | Some _ -> None
          | None -> (
            match score st (complete_at_top st levels) with
            | Some s -> Some (levels, s.Model.s_edp)
            | None -> None))
        prefixes
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) scored in
  let spatial_key levels =
    let buf = Buffer.create 32 in
    Array.iter
      (fun lm ->
        List.iter
          (fun (_, f) ->
            Buffer.add_string buf (string_of_int f);
            Buffer.add_char buf ',')
          lm.M.spatial;
        Buffer.add_char buf ';')
      levels;
    Buffer.contents buf
  in
  let seen_keys = Hashtbl.create 16 in
  let diverse, rest =
    List.partition
      (fun (levels, _) ->
        let key = spatial_key levels in
        if Hashtbl.mem seen_keys key then false
        else begin
          Hashtbl.add seen_keys key ();
          true
        end)
      sorted
  in
  List.map fst (Listx.take st.cfg.beam_width (diverse @ rest))

(* Order candidates come with the trie's visit/prune tallies, so the
   kept/dropped split the paper's Table VI accounts for is observable. *)
let order_candidates st =
  let orders, ostats = Order_trie.candidates_with_stats st.w in
  st.orders_kept <- st.orders_kept + List.length orders;
  st.orders_dropped <- st.orders_dropped + ostats.Order_trie.nodes_pruned;
  orders

let optimize_bottom_up st =
  let orders = order_candidates st in
  let top = A.num_levels st.arch - 1 in
  let start = [ initial_levels st ] in
  let after_lanes =
    let cands = List.concat_map (lane_pass st) start in
    select_beam st ~fixed_levels:0 (dedup_prefixes cands)
  in
  let rec run k prefixes =
    if k > top then prefixes
    else begin
      let cands = List.concat_map (bottom_up_pass st ~orders ~k) prefixes in
      let kept = select_beam st ~fixed_levels:k (dedup_prefixes cands) in
      run (k + 1) (if kept = [] then prefixes else kept)
    end
  in
  ignore (run 1 (if after_lanes = [] then start else after_lanes))

(* ------------------------------------------------------------------ *)
(* Top-down (Table VI ablation)                                        *)
(* ------------------------------------------------------------------ *)

(* In the top-down walk the running state per prefix is the aggregate
   extent [A_{k-1}] still to be laid out below the current boundary; it is
   carried as the temporal factor of level k-1 in the prefix and split
   further by the next pass. *)
let top_down_pass st ~orders ~k prefix_levels =
  (* invariant: the aggregate extent still to be laid out at level k and
     below sits as level k's temporal factor; this pass splits it into
     t_k x s_k x A_{k-1} *)
  let below d = M.temporal_factor { M.levels = prefix_levels } ~level:k d in
  let fanout = (A.level st.arch k).A.fanout in
  let results = ref [] in
  let emit ~order ~spatial ~tile =
    st.examined <- st.examined + 1;
    let levels = copy_levels prefix_levels in
    let t_k d =
      below d / (Tile_tree.factor_of spatial d * Tile_tree.factor_of tile d)
    in
    levels.(k) <-
      {
        M.order;
        M.spatial = fill st.dims spatial;
        M.temporal = List.map (fun d -> (d, t_k d)) st.dims;
      };
    levels.(k - 1) <- { (levels.(k - 1)) with M.temporal = fill st.dims tile };
    results := levels :: !results
  in
  let expand (o : Order_trie.candidate) op_choice =
    let grow = grow_dims_of st op_choice in
    let out_unroll =
      Unroll.candidates ~fanout ~dims:grow ~remaining:below
        ~min_utilization:st.cfg.min_spatial_utilization ()
    in
    st.examined <- st.examined + out_unroll.Unroll.explored;
    st.unroll_candidates <- st.unroll_candidates + List.length out_unroll.Unroll.candidates;
    List.iter
      (fun spatial ->
        let rem d = below d / Tile_tree.factor_of spatial d in
        (* the level-k spatial factor distributes across level-(k-1)
           instances and does not occupy any single buffer *)
        let fits assignment =
          extents_fit st ~level:(k - 1) (fun d -> Tile_tree.factor_of assignment d)
        in
        let out = Tile_tree.search ~max_steps:20 ~grow_dims:st.dims ~remaining:rem ~fits () in
        st.examined <- st.examined + out.Tile_tree.explored;
        st.tile_candidates <- st.tile_candidates + List.length out.Tile_tree.frontier;
        List.iter (fun tile -> emit ~order:o.Order_trie.order ~spatial ~tile) out.Tile_tree.frontier)
      out_unroll.Unroll.candidates
  in
  List.iter (fun o -> List.iter (expand o) (operand_choices o)) orders;
  !results

(* Split the innermost aggregate over the lane fanout at the end of a
   top-down walk. *)
let lane_pass_split st levels =
  let fanout = (A.level st.arch 0).A.fanout in
  if fanout <= 1 then [ levels ]
  else begin
    let results = ref [] in
    let below d =
      match List.assoc_opt d levels.(0).M.temporal with Some f -> f | None -> 1
    in
    List.iter
      (fun (op : W.operand) ->
        let grow = W.indexing_dims op in
        let out =
          Unroll.candidates ~fanout ~dims:grow ~remaining:below
            ~min_utilization:st.cfg.min_spatial_utilization ()
        in
        st.examined <- st.examined + out.Unroll.explored;
        st.unroll_candidates <- st.unroll_candidates + List.length out.Unroll.candidates;
        List.iter
          (fun spatial ->
            st.examined <- st.examined + 1;
            let ls = copy_levels levels in
            let temporal =
              List.map (fun d -> (d, below d / Tile_tree.factor_of spatial d)) st.dims
            in
            ls.(0) <- { (ls.(0)) with M.spatial = fill st.dims spatial; M.temporal = temporal };
            results := ls :: !results)
          out.Unroll.candidates)
      st.w.W.operands;
    !results
  end

(* Completion for a top-down prefix: levels below the boundary keep the
   aggregate at level k-1, which is already structurally complete. *)
let optimize_top_down st =
  let orders = order_candidates st in
  let top = A.num_levels st.arch - 1 in
  let start =
    let levels = initial_levels st in
    levels.(top) <-
      { (levels.(top)) with M.temporal = List.map (fun (d, b) -> (d, b)) st.w.W.dims };
    [ levels ]
  in
  let select prefixes =
    (* rank by energy: the spatial unrolling of the inner passes is still
       unassigned, so every prefix shares the same (serial) cycle count and
       EDP cannot discriminate *)
    let scored =
      List.map
        (fun (levels, s) -> (levels, s.Model.s_energy_pj))
        (score_batch st (List.map (fun levels -> (levels, copy_levels levels)) prefixes))
    in
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) scored in
    List.map fst (Listx.take st.cfg.beam_width sorted)
  in
  let rec run k prefixes =
    if k < 1 then prefixes
    else begin
      let cands = List.concat_map (top_down_pass st ~orders ~k) prefixes in
      let kept = select (dedup_prefixes cands) in
      run (k - 1) (if kept = [] then prefixes else kept)
    end
  in
  let final = run top start in
  (* split the innermost aggregate over the lane fanout; the splits of one
     prefix are sibling candidates, batched through one scoring call *)
  List.iter
    (fun levels ->
      ignore (score_batch st (List.map (fun ls -> ((), ls)) (lane_pass_split st levels))))
    final

(* ------------------------------------------------------------------ *)
(* Local refinement                                                    *)
(* ------------------------------------------------------------------ *)

(* Hill-climb around the incumbent: move one prime factor of one dimension
   between two temporal levels, or swap two adjacent loops in a level's
   order; accept any EDP improvement and repeat to a (bounded) fixpoint.
   This recovers the few-percent mappings that sit just outside the
   per-level reuse-dimension restriction. *)
let refine st =
  let nlevels = A.num_levels st.arch in
  let primes_of f = List.map fst (Sun_util.Factor.prime_factorization f) in
  let factor assoc d = match List.assoc_opt d assoc with Some f -> f | None -> 1 in
  let set assoc d f = (d, f) :: List.remove_assoc d assoc in
  let try_improve levels =
    st.examined <- st.examined + 1;
    ignore (score st levels)
  in
  (* First-improvement hill-climb: every move is applied to the *current*
     incumbent, which [score] may have just replaced — the old round-start
     snapshot went stale the moment a move was accepted, and moves built
     from it both wasted evaluations on superseded neighborhoods and, when
     the snapshot's factor no longer divided the incumbent's, produced
     truncated products that [Mapping.make] rejected (silently inflating
     [build_errors]/[examined]). The prime lists still come from the
     round-start snapshot, so the divisibility pre-check below skips any
     move whose source factor has since moved away instead of building a
     broken candidate: refine contributes zero build errors by
     construction. *)
  let move_factor d p l l' =
    match st.best with
    | None -> ()
    | Some (m, _) ->
      let base = m.M.levels in
      let src = factor base.(l).M.temporal d in
      if src > 1 && src mod p = 0 then begin
        let levels = copy_levels base in
        levels.(l) <- { (levels.(l)) with M.temporal = set levels.(l).M.temporal d (src / p) };
        levels.(l') <-
          { (levels.(l')) with
            M.temporal = set levels.(l').M.temporal d (factor levels.(l').M.temporal d * p) };
        try_improve levels
      end
  in
  let swap_order l i =
    match st.best with
    | None -> ()
    | Some (m, _) ->
      let base = m.M.levels in
      let ord = Array.of_list base.(l).M.order in
      if i + 1 < Array.length ord then begin
        let ord' = Array.copy ord in
        let tmp = ord'.(i) in
        ord'.(i) <- ord'.(i + 1);
        ord'.(i + 1) <- tmp;
        let levels = copy_levels base in
        levels.(l) <- { (levels.(l)) with M.order = Array.to_list ord' };
        try_improve levels
      end
  in
  let ndims = List.length st.dims in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 8 do
    incr rounds;
    let before = match st.best with Some (_, c) -> c.Model.s_edp | None -> infinity in
    (match st.best with
    | None -> ()
    | Some (m, _) ->
      let snapshot = m.M.levels in
      (* factor moves between temporal levels *)
      for l = 0 to nlevels - 1 do
        List.iter
          (fun d ->
            List.iter
              (fun p ->
                for l' = 0 to nlevels - 1 do
                  if l' <> l then move_factor d p l l'
                done)
              (primes_of (factor snapshot.(l).M.temporal d)))
          st.dims
      done;
      (* adjacent order swaps *)
      for l = 0 to nlevels - 1 do
        for i = 0 to ndims - 2 do
          swap_order l i
        done
      done);
    let after = match st.best with Some (_, c) -> c.Model.s_edp | None -> infinity in
    if after >= before *. 0.9999 then continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* The search loops count into [st]'s plain mutable fields and the totals
   are flushed to the telemetry registry once per call: the hot paths pay
   nothing for instrumentation beyond what the stats already cost, which is
   what keeps the disabled-telemetry overhead inside the bench's budget. *)
let flush_telemetry st wall_seconds =
  if Tel.enabled () then begin
    Tel.count "optimizer.searches" 1;
    Tel.count "optimizer.examined" st.examined;
    Tel.count "optimizer.evaluated" st.evaluated;
    Tel.count "optimizer.pruned_alpha_beta" st.pruned;
    Tel.count "optimizer.build_errors" st.build_errors;
    Tel.count "optimizer.eval_errors" st.eval_errors;
    Tel.count "optimizer.orders_kept" st.orders_kept;
    Tel.count "optimizer.orders_dropped" st.orders_dropped;
    Tel.count "optimizer.tile_candidates" st.tile_candidates;
    Tel.count "optimizer.unroll_candidates" st.unroll_candidates;
    Tel.observe (Tel.histogram "optimizer.search_s") wall_seconds;
    (* transfer.* lives outside the optimizer.* namespace: seed availability
       depends on cross-request cache state, which the jobs-N counter-parity
       gates must not see *)
    if st.seeded > 0 then Tel.count "transfer.seeded" st.seeded;
    if st.seed_rejected > 0 then Tel.count "transfer.seed_rejected" st.seed_rejected;
    match st.best with
    | Some (_, best) when st.seeded > 0 && best.Model.s_edp > 0.0 ->
      (* >= 1.0: how much the search improved on the transferred alpha *)
      Tel.observe (Tel.histogram "transfer.alpha_ratio") (st.seed_edp /. best.Model.s_edp)
    | _ -> ()
  end;
  (* probe hit/miss tallies flow to model.probe_hits / model.probe_misses
     (and reset) regardless, so stats stay per-search *)
  Probe.flush_telemetry st.probe

let optimize ?(config = default_config) ?(inject = No_injection) ?seed w arch =
  let timer = Sun_util.Stopwatch.start () in
  let st =
    {
      w;
      arch;
      cfg = config;
      ctx = Model.context ~binding:config.binding w arch;
      probe = Probe.create w;
      dims = W.dim_names w;
      fits = [||];
      examined = 0;
      evaluated = 0;
      pruned = 0;
      build_errors = 0;
      eval_errors = 0;
      orders_kept = 0;
      orders_dropped = 0;
      tile_candidates = 0;
      unroll_candidates = 0;
      inject;
      best = None;
      seeded = 0;
      seed_rejected = 0;
      seed_edp = nan;
      best_is_seed = false;
      best_alt = None;
      floor_energy = 0.0;
      floor_cycles = 0.0;
    }
  in
  st.fits <- fit_table st;
  (match seed with
  | None -> ()
  | Some levels ->
    let fe, fc = dram_floors st in
    st.floor_energy <- fe;
    st.floor_cycles <- fc;
    install_seed st levels);
  (match config.direction with
  | Bottom_up -> optimize_bottom_up st
  | Top_down -> optimize_top_down st);
  let seed_survived = st.best_is_seed in
  (* captured before the refinement below: refining the seed scores
     seed-neighborhood mappings through [update_best_alt], which would
     overwrite the enumeration's best with a seed lookalike *)
  let enumerated_best = st.best_alt in
  if config.refine then refine st;
  (* A seed no enumerated candidate displaced still gets refined above, but
     hill-climbing from the seed alone can strand the result at the seed's
     own local optimum while the unseeded search — refining from *its*
     winner — would have done better. Also refine from the enumeration's
     best and keep whichever endpoint wins, so seeding can never make the
     final mapping worse than the same search without the seed. *)
  (match (seed_survived, st.best, enumerated_best) with
  | true, Some (_, inc_s), Some (alt_m, alt_s)
    when config.refine && alt_s.Model.s_edp <= inc_s.Model.s_edp *. 1.5 ->
    (* only when the enumeration's endpoint is competitive (within 50%)
       with the refined seed: a far-worse endpoint rarely refines past the
       seed, and spending the transferred savings on its hill-climb would
       cancel the very reduction the seed bought *)
    let incumbent = st.best in
    st.best <- Some (alt_m, alt_s);
    refine st;
    (match (incumbent, st.best) with
    | Some (_, s0), Some (_, s1) when s0.Model.s_edp < s1.Model.s_edp -> st.best <- incumbent
    | _ -> ())
  | _ -> ());
  (* the search scored candidates on the allocation-free path; the single
     full evaluation of the incumbent rebuilds transfers and breakdown
     (bit-identical energy/cycles/EDP to its score) *)
  let final =
    match st.best with
    | None -> None
    | Some (mapping, _) -> (
      match Model.evaluate_ctx st.ctx mapping with
      | Ok cost -> Some (mapping, cost)
      | Error _ -> None)
  in
  let wall_seconds = Sun_util.Stopwatch.elapsed_s timer in
  flush_telemetry st wall_seconds;
  match final with
  | None -> Error "no valid mapping found (does a unit tile fit the innermost buffers?)"
  | Some (mapping, cost) ->
    Ok
      {
        mapping;
        cost;
        stats =
          {
            examined = st.examined;
            evaluated = st.evaluated;
            pruned_alpha_beta = st.pruned;
            build_errors = st.build_errors;
            eval_errors = st.eval_errors;
            wall_seconds;
          };
      }
