(** Analytical cost model for a mapping on an architecture.

    This plays the role Timeloop's hardware-validated model plays in the
    paper (Section V-A): per-component access counts multiplied by
    per-access energies, with double buffering assumed to overlap transfers
    and compute so that latency is the maximum of the compute-bound and the
    per-buffer bandwidth-bound cycle counts. All mappers in this repository
    — Sunstone and every baseline — are scored with this one model, which is
    what makes their comparison meaningful.

    Access counting follows the reuse algebra of Sections II-D and III:
    refills of a buffer are the product of the temporal loop bounds above
    it, except that trailing (innermost-first) loops over non-indexing
    dimensions of an operand are absorbed (full temporal reuse), one
    trailing loop over a sliding-window dimension is absorbed by enlarging
    the fetched extent (partial reuse), spatially unrolled non-indexing
    dimensions are broadcast over a multicasting NoC, and spatially unrolled
    indexing dimensions enlarge the served footprint. Operands bypass levels
    whose partitions do not accept their role (e.g. weights bypass Simba's
    L2). *)

type binding = string -> string
(** Maps an operand name to an architecture role (e.g. ["a" -> "ifmap"]).
    The default binding is the identity. *)

type transfer = {
  operand : string;
  from_level : int;  (** producer memory level *)
  to_level : int;  (** consumer memory level; [-1] denotes the MACs *)
  reads : float;  (** words read out of [from_level] *)
  fills : float;  (** words delivered into [to_level] instances (total) *)
  noc_deliveries : float;  (** word-deliveries charged to the NoC *)
}

type cost = {
  energy_pj : float;
  cycles : float;
  edp : float;  (** [energy_pj *. cycles] *)
  macs : float;
  transfers : transfer list;
  breakdown : (string * float) list;
      (** energy per component: one entry per partition plus ["MAC"] and
          ["NoC"]; entries sum to [energy_pj] *)
  spatial_utilization : float;  (** used lanes / peak lanes, in (0, 1] *)
}

type score = {
  mutable s_energy_pj : float;
  mutable s_cycles : float;
  mutable s_edp : float;  (** [s_energy_pj *. s_cycles] *)
}
(** The search's scoring triple. [score_ctx] computes exactly the same
    energy/cycles/EDP floats as [evaluate_ctx] (bit-identical — the same
    arithmetic runs in the same order) but skips assembling the transfer
    list and energy breakdown, which is most of the allocation of a full
    evaluation. The fields are mutable because [score_ctx] returns a
    context-owned record it overwrites on the next call — see its doc. *)

val copy_score : score -> score
(** A fresh, caller-owned copy. Callers that retain a score past the next
    [score_ctx] call on the same context (e.g. an incumbent-best slot)
    must copy it. *)

type ctx
(** Precomputed evaluation context for one (workload, architecture,
    binding) triple: integer-indexed dimensions, operand axes, storage
    chains, partition lookups — and the evaluator's preallocated scratch
    (layout matrices, per-partition accumulators), so scoring a candidate
    allocates no per-call state. A context is single-in-flight: one
    evaluation uses its scratch at a time. Searches that score many
    mappings of the same problem should create one context and reuse it. *)

val context :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> ctx

val partitions : ctx -> (string * int) array
(** The global partition table by gid: (partition name, level index), in
    gid order — level-major, declaration order within a level. Pinned by a
    unit test; serialized caches depend on this order being stable. *)

val validate_ctx : ctx -> Sun_mapping.Mapping.t -> (unit, string) result
val evaluate_ctx : ctx -> Sun_mapping.Mapping.t -> (cost, string) result

val score_ctx : ctx -> Sun_mapping.Mapping.t -> (score, string) result
(** Validate and score without building transfers/breakdown — the search
    hot path. Same error strings as [evaluate_ctx]. An accepted call
    allocates nothing: [Ok s] is a preallocated result holding the
    context-owned score record, overwritten by the next [score_ctx] /
    [score_batch_ctx] call on this context. Read the fields immediately,
    or {!copy_score} to retain. The zero-allocation contract is pinned by
    the [Gc.minor_words] harness in [test/test_model_hot.ml] and by the
    SA070 hot-path lint. *)

val evaluate_batch_ctx : ctx -> Sun_mapping.Mapping.t array -> (cost, string) result array

val score_batch_ctx : ctx -> Sun_mapping.Mapping.t array -> (score, string) result array
(** Batch forms: evaluate sibling candidates through one context and one
    telemetry flush, in array order. Equivalent to mapping the scalar
    functions; the batch amortizes the per-call bookkeeping. Unlike
    [score_ctx], every [Ok] member holds a caller-owned copy — batches are
    read after the fact. *)

val energy_lower_bound_ctx : ctx -> partial_levels:int -> Sun_mapping.Mapping.t -> float

val lower_bounds_ctx :
  ctx -> partial_levels:int -> Sun_mapping.Mapping.t -> float * float
(** [(energy, bandwidth_cycles)] lower bounds for a partial mapping whose
    levels at or below [partial_levels] are committed. The energy member is
    exactly [energy_lower_bound_ctx]. The cycles member divides each
    committed boundary's traffic by its partition's bandwidth times an
    {e upper} bound on that partition's instance count (committed spatial
    unrolls at or below [partial_levels], full fanout above), so no
    completion of the prefix can run in fewer bandwidth cycles. Used by the
    seeded alpha-beta test ({!Sun_core.Optimizer.optimize}'s [?seed]). *)

val level_fill_fraction_ctx : ctx -> Sun_mapping.Mapping.t -> level:int -> float

val validate :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t ->
  (unit, string) result
(** Checks, beyond [Mapping.make]'s structural rules: the mapping has as
    many levels as the architecture; every buffer partition fits the summed
    footprints of the operands it stores; every spatial level's unrolling
    product fits its fanout. The error string names the first violation. *)

val level_fill_fraction :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t ->
  level:int -> float
(** Occupied fraction of the level's total capacity (max over partitions);
    used by the utilization-threshold baselines (dMazeRunner). *)

val evaluate :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t ->
  (cost, string) result
(** Validates, then computes the full cost. *)

val evaluate_exn :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t -> cost

val energy_lower_bound :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> partial_levels:int ->
  Sun_mapping.Mapping.t -> float
(** Energy charged by levels [0 .. partial_levels-1] plus the MACs, for a
    mapping whose upper levels are placeholders. Monotone in the sense that
    completing the mapping can only add energy — the alpha-beta bound used
    by Sunstone's bottom-up search. *)

val pp_cost : Format.formatter -> cost -> unit
