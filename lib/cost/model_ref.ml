(* Frozen copy of the cost model evaluator as it stood before the
   allocation-free rewrite of [Model]. It is kept verbatim (telemetry and
   pretty-printing removed) as the reference implementation: the golden
   bit-identity suite proves [Model.evaluate_ctx] returns byte-identical
   cost records against this module on every registry workload, and
   [bench evaluate] measures the rewrite's speedup against it. Do not
   optimize this file. *)

module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module U = Units

type binding = string -> string

type transfer = Model.transfer = {
  operand : string;
  from_level : int;
  to_level : int;
  reads : float;
  fills : float;
  noc_deliveries : float;
}

type cost = Model.cost = {
  energy_pj : float;
  cycles : float;
  edp : float;
  macs : float;
  transfers : transfer list;
  breakdown : (string * float) list;
  spatial_utilization : float;
}

type part_ref = {
  gid : int;
  part : A.partition;
}

type op_info = {
  op : W.operand;
  is_output : bool;
  axes : (int * int) array array;
  indexing : bool array;
  sliding : bool array;
  part_at : part_ref option array;
  storing : int array;
}

type ctx = {
  w : W.t;
  arch : A.t;
  binding : binding;
  ndims : int;
  dim_of : (string, int) Hashtbl.t;
  bounds : int array;
  nlevels : int;
  levels : A.level array;
  macs : float;
  operands : op_info array;
  part_names : string array;
  part_level : int array;
  parts : A.partition array;
  nparts : int;
}

let context ?(binding = Fun.id) w arch =
  let dims = W.dim_names w in
  let ndims = List.length dims in
  let dim_of = Hashtbl.create 8 in
  List.iteri (fun i d -> Hashtbl.replace dim_of d i) dims;
  let bounds = Array.of_list (List.map (fun d -> W.bound w d) dims) in
  let levels = Array.of_list arch.A.levels in
  let nlevels = Array.length levels in
  let parts = ref [] and part_names = ref [] and part_level = ref [] in
  let gid_of = Hashtbl.create 8 in
  Array.iteri
    (fun li (lvl : A.level) ->
      List.iter
        (fun (p : A.partition) ->
          let gid = List.length !parts in
          Hashtbl.replace gid_of (li, p.A.part_name) gid;
          parts := !parts @ [ p ];
          part_names := !part_names @ [ p.A.part_name ];
          part_level := !part_level @ [ li ])
        lvl.A.partitions)
    levels;
  let nparts = List.length !parts in
  let op_info (op : W.operand) =
    let axes =
      Array.of_list
        (List.map
           (fun idx ->
             match idx with
             | W.Dim d -> [| (Hashtbl.find dim_of d, 1) |]
             | W.Affine terms ->
               Array.of_list (List.map (fun (d, c) -> (Hashtbl.find dim_of d, c)) terms))
           op.W.indices)
    in
    let indexing = Array.make ndims false in
    Array.iter (fun terms -> Array.iter (fun (d, _) -> indexing.(d) <- true) terms) axes;
    let sliding = Array.make ndims false in
    Array.iter
      (fun terms -> if Array.length terms > 1 then Array.iter (fun (d, _) -> sliding.(d) <- true) terms)
      axes;
    let role = binding op.W.name in
    let part_at =
      Array.map
        (fun (lvl : A.level) ->
          match A.partition_for lvl ~role with
          | Some p ->
            let li = ref (-1) in
            Array.iteri (fun i l -> if l == lvl then li := i) levels;
            Some { gid = Hashtbl.find gid_of (!li, p.A.part_name); part = p }
          | None -> None)
        levels
    in
    let storing =
      Array.of_list
        (List.concat
           (List.init nlevels (fun i -> if part_at.(i) <> None then [ i ] else [])))
    in
    { op; is_output = op.W.kind = `Output; axes; indexing; sliding; part_at; storing }
  in
  {
    w;
    arch;
    binding;
    ndims;
    dim_of;
    bounds;
    nlevels;
    levels;
    macs = W.macs w;
    operands = Array.of_list (List.map op_info w.W.operands);
    part_names = Array.of_list !part_names;
    part_level = Array.of_list !part_level;
    parts = Array.of_list !parts;
    nparts;
  }

type mlay = {
  t : int array array;
  s : int array array;
  order : int array array;
  cum : int array array;
}

let convert ctx (m : M.t) =
  let n = ctx.nlevels in
  let t = Array.make_matrix n ctx.ndims 1 in
  let s = Array.make_matrix n ctx.ndims 1 in
  let order = Array.make n [||] in
  for l = 0 to n - 1 do
    let lm = m.M.levels.(l) in
    List.iter (fun (d, f) -> t.(l).(Hashtbl.find ctx.dim_of d) <- f) lm.M.temporal;
    List.iter (fun (d, f) -> s.(l).(Hashtbl.find ctx.dim_of d) <- f) lm.M.spatial;
    order.(l) <- Array.of_list (List.map (Hashtbl.find ctx.dim_of) lm.M.order)
  done;
  let cum = Array.make_matrix n ctx.ndims 1 in
  for l = 0 to n - 1 do
    for d = 0 to ctx.ndims - 1 do
      cum.(l).(d) <- (if l = 0 then 1 else cum.(l - 1).(d)) * t.(l).(d) * s.(l).(d)
    done
  done;
  { t; s; order; cum }

let axis_extent extents terms =
  let acc = ref 1 in
  Array.iter (fun (d, c) -> acc := !acc + (c * (extents.(d) - 1))) terms;
  !acc

let footprint (info : op_info) extents =
  let acc = ref 1.0 in
  Array.iter (fun terms -> acc := !acc *. float_of_int (axis_extent extents terms)) info.axes;
  !acc

let spatial_product lay l =
  Array.fold_left (fun acc f -> acc * f) 1 lay.s.(l)

let part_ref_at (info : op_info) l =
  match info.part_at.(l) with
  | Some r -> r
  | None ->
    invalid_arg (Printf.sprintf "Model_ref: operand %s has no partition at level %d" info.op.W.name l)

let validate_lay ctx lay =
  let violation = ref None in
  let set msg = if !violation = None then violation := Some msg in
  Array.iter
    (fun info ->
      if Array.length info.storing = 0 then
        set
          (Printf.sprintf "operand %s is stored at no level (no partition accepts its role)"
             info.op.W.name))
    ctx.operands;
  for l = 0 to ctx.nlevels - 1 do
    let lvl = ctx.levels.(l) in
    let sp = spatial_product lay l in
    if sp > lvl.A.fanout then
      set
        (Printf.sprintf "level %s: spatial unrolling %d exceeds fanout %d" lvl.A.level_name sp
           lvl.A.fanout)
  done;
  if !violation = None then begin
    let used : U.word U.count U.t array = Array.make ctx.nparts U.zero in
    Array.iter
      (fun info ->
        for l = 0 to ctx.nlevels - 1 do
          match info.part_at.(l) with
          | Some { gid; _ } -> used.(gid) <- U.(used.(gid) +: count (footprint info lay.cum.(l)))
          | None -> ()
        done)
      ctx.operands;
    for gid = 0 to ctx.nparts - 1 do
      let l = ctx.part_level.(gid) in
      if not ctx.levels.(l).A.unbounded then begin
        let p = ctx.parts.(gid) in
        if U.gt used.(gid) (U.count (float_of_int p.A.capacity_words +. 1e-9)) then
          set
            (Printf.sprintf "partition %s at %s: footprint %.0f exceeds capacity %d"
               ctx.part_names.(gid) ctx.levels.(l).A.level_name
               (U.to_float used.(gid)) p.A.capacity_words)
      end
    done
  end;
  match !violation with None -> Ok () | Some msg -> Error msg

let chain_pair ctx lay (info : op_info) ~lc ~lp =
  let top = ctx.nlevels - 1 in
  let cum = Array.copy lay.cum.(lc) in
  let reads_mult = ref 1.0 and fills_mult = ref 1.0 in
  for j = lc + 1 to top do
    let multicast = ctx.levels.(j).A.multicast in
    let srow = lay.s.(j) in
    for d = 0 to ctx.ndims - 1 do
      let f = srow.(d) in
      if f > 1 then
        if info.indexing.(d) then cum.(d) <- cum.(d) * f
        else if j <= lp then begin
          fills_mult := !fills_mult *. float_of_int f;
          if not multicast then reads_mult := !reads_mult *. float_of_int f
        end
        else begin
          reads_mult := !reads_mult *. float_of_int f;
          fills_mult := !fills_mult *. float_of_int f
        end
    done
  done;
  let stopped = ref false and outer = ref 1.0 in
  for j = lc + 1 to top do
    let ord = lay.order.(j) and trow = lay.t.(j) in
    for i = Array.length ord - 1 downto 0 do
      let d = ord.(i) in
      let b = trow.(d) in
      if b > 1 then
        if !stopped then outer := !outer *. float_of_int b
        else if not info.indexing.(d) then ()
        else if info.sliding.(d) then begin
          cum.(d) <- cum.(d) * b;
          stopped := true
        end
        else begin
          stopped := true;
          outer := !outer *. float_of_int b
        end
    done
  done;
  let fp = footprint info cum in
  let reads = !outer *. fp *. !reads_mult in
  let fills = !outer *. fp *. !fills_mult in
  (reads, fills)

let mac_streaming ctx lay (info : op_info) ~l0 =
  let denom = ref 1.0 in
  for j = 0 to l0 do
    if ctx.levels.(j).A.multicast then begin
      let srow = lay.s.(j) in
      for d = 0 to ctx.ndims - 1 do
        if srow.(d) > 1 && not info.indexing.(d) then
          denom := !denom *. float_of_int srow.(d)
      done
    end
  done;
  ctx.macs /. !denom

let evaluate_lay ctx lay =
  let energy : U.energy U.t array = Array.make ctx.nparts U.zero in
  let words : U.access U.count U.t array = Array.make ctx.nparts U.zero in
  let noc_energy = ref (U.zero : U.energy U.t) in
  let transfers = ref [] in
  Array.iter
    (fun info ->
      let storing = info.storing in
      let nst = Array.length storing in
      if nst = 0 then invalid_arg (Printf.sprintf "operand %s stored nowhere" info.op.W.name);
      let l0 = storing.(0) in
      let { gid; part } = part_ref_at info l0 in
      let reads = mac_streaming ctx lay info ~l0 in
      let per_word : U.access U.rate U.t =
        if info.is_output then U.(rate part.A.read_energy +: rate part.A.write_energy)
        else U.rate part.A.read_energy
      in
      energy.(gid) <- U.(energy.(gid) +: charge (count reads) per_word);
      words.(gid) <-
        U.(words.(gid) +: count (reads *. if info.is_output then 2.0 else 1.0));
      transfers :=
        {
          operand = info.op.W.name;
          from_level = l0;
          to_level = -1;
          reads;
          fills = 0.0;
          noc_deliveries = 0.0;
        }
        :: !transfers;
      for i = 0 to nst - 2 do
        let lc = storing.(i) and lp = storing.(i + 1) in
        let reads, fills = chain_pair ctx lay info ~lc ~lp in
        let rp = part_ref_at info lp in
        let rc = part_ref_at info lc in
        let dir = if info.is_output then 2.0 else 1.0 in
        let prod_per_word : U.access U.rate U.t =
          if info.is_output then U.(halve (rate rp.part.A.read_energy +: rate rp.part.A.write_energy))
          else U.rate rp.part.A.read_energy
        in
        let cons_per_word : U.access U.rate U.t =
          if info.is_output then U.(halve (rate rc.part.A.read_energy +: rate rc.part.A.write_energy))
          else U.rate rc.part.A.write_energy
        in
        energy.(rp.gid) <- U.(energy.(rp.gid) +: charge (count (dir *. reads)) prod_per_word);
        energy.(rc.gid) <- U.(energy.(rc.gid) +: charge (count (dir *. fills)) cons_per_word);
        words.(rp.gid) <- U.(words.(rp.gid) +: count (dir *. reads));
        words.(rc.gid) <- U.(words.(rc.gid) +: count (dir *. fills));
        for j = lc + 1 to lp do
          noc_energy :=
            U.(!noc_energy +: charge (count (dir *. fills)) (rate ctx.levels.(j).A.noc_hop_energy))
        done;
        transfers :=
          {
            operand = info.op.W.name;
            from_level = lp;
            to_level = lc;
            reads;
            fills;
            noc_deliveries = fills;
          }
          :: !transfers
      done)
    ctx.operands;
  let mac_energy =
    U.charge (U.count ctx.macs) (U.rate ctx.arch.A.mac_energy : U.op U.rate U.t)
  in
  let total_energy = U.to_float U.(sum energy +: !noc_energy +: mac_energy) in
  let total_spatial =
    let p = ref 1.0 in
    for l = 0 to ctx.nlevels - 1 do
      p := !p *. float_of_int (spatial_product lay l)
    done;
    !p
  in
  let compute_cycles = ctx.macs /. (total_spatial *. float_of_int ctx.arch.A.mac_throughput) in
  let inst_used = Array.make ctx.nlevels 1.0 in
  for l = ctx.nlevels - 2 downto 0 do
    inst_used.(l) <- inst_used.(l + 1) *. float_of_int (spatial_product lay (l + 1))
  done;
  let bw_cycles = ref 0.0 in
  for gid = 0 to ctx.nparts - 1 do
    let p = ctx.parts.(gid) in
    let l = ctx.part_level.(gid) in
    bw_cycles := Float.max !bw_cycles (U.to_float words.(gid) /. (p.A.bandwidth *. inst_used.(l)))
  done;
  let cycles = Float.max compute_cycles !bw_cycles in
  let breakdown = ref [] in
  let add name v =
    let rec go = function
      | [] -> [ (name, v) ]
      | (n, x) :: rest when n = name -> (n, x +. v) :: rest
      | kv :: rest -> kv :: go rest
    in
    breakdown := go !breakdown
  in
  for gid = 0 to ctx.nparts - 1 do
    if U.to_float energy.(gid) <> 0.0 then add ctx.part_names.(gid) (U.to_float energy.(gid))
  done;
  add "NoC" (U.to_float !noc_energy);
  add "MAC" (U.to_float mac_energy);
  {
    energy_pj = total_energy;
    cycles;
    edp = total_energy *. cycles;
    macs = ctx.macs;
    transfers = List.rev !transfers;
    breakdown = !breakdown;
    spatial_utilization = total_spatial /. float_of_int (A.total_fanout ctx.arch);
  }

let evaluate_ctx ctx m =
  if M.num_levels m <> ctx.nlevels then
    Error
      (Printf.sprintf "mapping has %d levels, architecture has %d" (M.num_levels m) ctx.nlevels)
  else begin
    let lay = convert ctx m in
    match validate_lay ctx lay with
    | Error _ as e -> e
    | Ok () -> Ok (evaluate_lay ctx lay)
  end

let evaluate ?binding w arch m = evaluate_ctx (context ?binding w arch) m
