(** Phantom-typed dimensional analysis for the cost model.

    Every quantity the energy model manipulates is a [float] at runtime, but
    carries a compile-time unit tag: energies in picojoules, counts of
    accesses / MAC operations / resident words, and per-count energy rates.
    Mixing units — adding an energy to an access count, charging a per-MAC
    rate against an access count — is a type error, not a silent bug. All
    operations are identity-cost wrappers over float arithmetic; the
    generated code is the same as untyped floats, and the operation order is
    preserved exactly so results are bit-identical to the pre-typed model.

    The tags: ['c count t] is a number of ['c] (e.g. [access count t]),
    ['c rate t] is picojoules per ['c], and [energy t] is picojoules.
    [charge] is the only cross-unit multiplication:
    [charge : 'c count t -> 'c rate t -> energy t]. *)

type energy
(** Unit tag: picojoules. *)

type access
(** Counting unit: word-granular buffer accesses. *)

type op
(** Counting unit: MAC operations. *)

type word
(** Counting unit: words resident in a buffer partition. *)

type 'c count
(** Unit tag: a number of ['c] (accesses, ops, words). *)

type 'c rate
(** Unit tag: picojoules per ['c]. *)

type 'u t
(** A float carrying unit ['u]. Zero-cost: the representation is [float]. *)

(** The tag-only wrappers and the arithmetic are declared as compiler
    primitives (matching [external] declarations in the implementation): even
    without flambda, a cross-module call compiles to the raw float
    instruction, so the evaluator's hot path pays nothing for the types. *)

external pj : float -> energy t = "%identity"
external count : float -> 'c count t = "%identity"
external rate : float -> 'c rate t = "%identity"

external to_float : 'u t -> float = "%identity"
(** Strip the unit tag. Used only at the model's public boundary. *)

val zero : 'u t

external ( +: ) : 'u t -> 'u t -> 'u t = "%addfloat"
external ( -: ) : 'u t -> 'u t -> 'u t = "%subfloat"

external scale : float -> 'u t -> 'u t = "%mulfloat"
(** Dimensionless scaling (loop trip counts, directional doubling). *)

val halve : 'u t -> 'u t
(** Exact division by two (implemented as [/. 2.0], not [*. 0.5]). *)

external charge : 'c count t -> 'c rate t -> energy t = "%mulfloat"
(** [charge n r] is the energy of [n] events at [r] pJ each. The phantom
    ['c] forces the count and the rate to agree on what is being counted. *)

val sum : 'u t array -> 'u t
(** Left fold with [+:] from [zero], matching [Array.fold_left ( +. ) 0.0]. *)

val max : 'u t -> 'u t -> 'u t
val gt : 'u t -> 'u t -> bool
val is_finite : 'u t -> bool
val is_nonneg : 'u t -> bool

(** Unit-tagged flat float arrays ([floatarray]-backed) for the evaluator's
    preallocated scratch: unboxed get/set — again via primitives — with the
    same phantom tags as scalar values. [Arr.sum] folds left from zero,
    matching [Array.fold_left ( +. ) 0.0] bit for bit. *)
module Arr : sig
  type 'u arr

  val make : int -> 'u arr
  (** Zero-filled. *)

  external get : 'u arr -> int -> 'u t = "%floatarray_safe_get"
  external set : 'u arr -> int -> 'u t -> unit = "%floatarray_safe_set"

  val fill : 'u arr -> unit
  (** Reset every element to zero. *)

  val length : 'u arr -> int
  val sum : 'u arr -> 'u t
end
