(** Phantom-typed dimensional analysis for the cost model.

    Every quantity the energy model manipulates is a [float] at runtime, but
    carries a compile-time unit tag: energies in picojoules, counts of
    accesses / MAC operations / resident words, and per-count energy rates.
    Mixing units — adding an energy to an access count, charging a per-MAC
    rate against an access count — is a type error, not a silent bug. All
    operations are identity-cost wrappers over float arithmetic; the
    generated code is the same as untyped floats, and the operation order is
    preserved exactly so results are bit-identical to the pre-typed model.

    The tags: ['c count t] is a number of ['c] (e.g. [access count t]),
    ['c rate t] is picojoules per ['c], and [energy t] is picojoules.
    [charge] is the only cross-unit multiplication:
    [charge : 'c count t -> 'c rate t -> energy t]. *)

type energy
(** Unit tag: picojoules. *)

type access
(** Counting unit: word-granular buffer accesses. *)

type op
(** Counting unit: MAC operations. *)

type word
(** Counting unit: words resident in a buffer partition. *)

type 'c count
(** Unit tag: a number of ['c] (accesses, ops, words). *)

type 'c rate
(** Unit tag: picojoules per ['c]. *)

type 'u t
(** A float carrying unit ['u]. Zero-cost: the representation is [float]. *)

val pj : float -> energy t
val count : float -> 'c count t
val rate : float -> 'c rate t

val to_float : 'u t -> float
(** Strip the unit tag. Used only at the model's public boundary. *)

val zero : 'u t

val ( +: ) : 'u t -> 'u t -> 'u t
val ( -: ) : 'u t -> 'u t -> 'u t

val scale : float -> 'u t -> 'u t
(** Dimensionless scaling (loop trip counts, directional doubling). *)

val halve : 'u t -> 'u t
(** Exact division by two (implemented as [/. 2.0], not [*. 0.5]). *)

val charge : 'c count t -> 'c rate t -> energy t
(** [charge n r] is the energy of [n] events at [r] pJ each. The phantom
    ['c] forces the count and the rate to agree on what is being counted. *)

val sum : 'u t array -> 'u t
(** Left fold with [+:] from [zero], matching [Array.fold_left ( +. ) 0.0]. *)

val max : 'u t -> 'u t -> 'u t
val gt : 'u t -> 'u t -> bool
val is_finite : 'u t -> bool
val is_nonneg : 'u t -> bool
