module W = Sun_tensor.Workload
module Tel = Sun_telemetry.Metrics

(* Pre-registered counter handles: one flag load each when telemetry is
   disabled. Module-global handles are fork-safe by the snapshot-merge
   protocol (DESIGN.md §3.4). *)
let tel_hits = Tel.counter "model.probe_hits"
let tel_misses = Tel.counter "model.probe_misses"

(* Per tensor axis: (dim id, coefficient) terms, exactly [Model]'s op_info
   axes. A [W.Dim d] axis is [(d, 1)]: its extent 1 + 1*(v-1) = v is the
   same exact integer [W.axis_extent] computes, so the product below is
   bit-identical to [W.footprint]. *)
type op_axes = (int * int) array array

(* One entry per operand. The memo is split per (operand, level) so a
   lookup hashes only the int vector — the operand string is resolved once
   per call through [ops], never rehashed as part of the key. [tbls] is
   indexed by [level + 1] (level -1 holds the level-independent
   [changes_footprint] probes) and grown on demand. *)
type op_entry = {
  axes : op_axes;
  mutable tbls : (int array, float) Hashtbl.t array;
}

type t = {
  dims : string array;
  ndims : int;
  dim_of : (string, int) Hashtbl.t;
  ops : (string, op_entry) Hashtbl.t;
  memo : bool;
  vec : int array;  (** scratch filled by [set_extents] *)
  ones : int array;
  bump : int array;  (** scratch for [changes_footprint] *)
  mutable hits : int;
  mutable misses : int;
}

let memo_env_off () =
  match Sys.getenv_opt "SUNSTONE_PROBE_MEMO" with
  | Some ("off" | "0" | "false") -> true
  | _ -> false

let create ?memo (w : W.t) =
  let memo = match memo with Some b -> b | None -> not (memo_env_off ()) in
  let dims = Array.of_list (W.dim_names w) in
  let ndims = Array.length dims in
  let dim_of = Hashtbl.create 8 in
  Array.iteri (fun i d -> Hashtbl.replace dim_of d i) dims;
  let ops = Hashtbl.create 8 in
  List.iter
    (fun (op : W.operand) ->
      let axes =
        Array.of_list
          (List.map
             (fun idx ->
               match idx with
               | W.Dim d -> [| (Hashtbl.find dim_of d, 1) |]
               | W.Affine terms ->
                 Array.of_list
                   (List.map (fun (d, c) -> (Hashtbl.find dim_of d, c)) terms))
             op.W.indices)
      in
      Hashtbl.replace ops op.W.name { axes; tbls = [||] })
    w.W.operands;
  {
    dims;
    ndims;
    dim_of;
    ops;
    memo;
    vec = Array.make ndims 1;
    ones = Array.make ndims 1;
    bump = Array.make ndims 1;
    hits = 0;
    misses = 0;
  }

let memo_enabled t = t.memo

(* [Hashtbl.find] + the [Not_found] arm, not [find_opt]: the hit path of
   the memo must not build a [Some] per probe, and raising/catching the
   constant [Not_found] allocates nothing. *)
let entry_of t op =
  match Hashtbl.find t.ops op with
  | e -> e
  | exception Not_found ->
    (* sunstone-lint: allow SA070 unknown-operand failure is a caller bug, not a hot path *)
    invalid_arg (Printf.sprintf "Probe: unknown operand %s" op)

(* Bit-identical to [W.footprint (fun d -> vec.(dim_of d)) op]: the axis
   extents are exact small integers, and the float product folds left in
   axis order like [W.footprint] does. *)
let compute axes (vec : int array) =
  let naxes = Array.length axes in
  let rec go i acc =
    if i >= naxes then acc
    else begin
      let terms = Array.unsafe_get axes i in
      let m = Array.length terms in
      let rec ext j e =
        if j >= m then e
        else
          let d, c = Array.unsafe_get terms j in
          ext (j + 1) (e + (c * (Array.unsafe_get vec d - 1)))
      in
      go (i + 1) (acc *. float_of_int (ext 0 1))
    end
  in
  go 0 1.0

let table_at entry level =
  let ti = level + 1 in
  let n = Array.length entry.tbls in
  if ti >= n then begin
    (* sunstone-lint: allow SA070 per-level table growth, once per level ever probed *)
    let grown = Array.init (ti + 1) (fun i -> if i < n then entry.tbls.(i) else Hashtbl.create 64) in
    entry.tbls <- grown
  end;
  entry.tbls.(ti)

(* The memo's hit path returns the float already boxed inside the table —
   no per-probe allocation at all. Misses pay [compute] plus the stored
   key copy, amortized away by the sibling candidates sharing extents. *)
(* sunstone-hot *)
let lookup t ~op ~level (vec : int array) =
  let entry = entry_of t op in
  if not t.memo then compute entry.axes vec
  else begin
    let tbl = table_at entry level in
    match Hashtbl.find tbl vec with
    | fp ->
      t.hits <- t.hits + 1;
      fp
    | exception Not_found ->
      t.misses <- t.misses + 1;
      let fp = compute entry.axes vec in
      (* the caller reuses [vec] as scratch; the stored key must not alias it *)
      (* sunstone-lint: allow SA070 miss path: the memo key must not alias caller scratch *)
      Hashtbl.replace tbl (Array.copy vec) fp;
      fp
  end

let set_extents t extent =
  for i = 0 to t.ndims - 1 do
    t.vec.(i) <- extent t.dims.(i)
  done

let footprint t ~op ~level = lookup t ~op ~level t.vec

let footprint_of t ~op ~level extent =
  set_extents t extent;
  lookup t ~op ~level t.vec

let changes_footprint t ~op ~dim =
  match Hashtbl.find_opt t.dim_of dim with
  | None -> false
  | Some di ->
    let base = lookup t ~op ~level:(-1) t.ones in
    t.bump.(di) <- 2;
    let bumped = lookup t ~op ~level:(-1) t.bump in
    t.bump.(di) <- 1;
    bumped <> base

let hits t = t.hits
let misses t = t.misses

let flush_telemetry t =
  if Tel.enabled () then begin
    Tel.add tel_hits t.hits;
    Tel.add tel_misses t.misses
  end;
  t.hits <- 0;
  t.misses <- 0
