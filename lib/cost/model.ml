module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module U = Units

type binding = string -> string

type transfer = {
  operand : string;
  from_level : int;
  to_level : int;
  reads : float;
  fills : float;
  noc_deliveries : float;
}

type cost = {
  energy_pj : float;
  cycles : float;
  edp : float;
  macs : float;
  transfers : transfer list;
  breakdown : (string * float) list;
  spatial_utilization : float;
}

type score = {
  mutable s_energy_pj : float;
  mutable s_cycles : float;
  mutable s_edp : float;
}

(* A fresh, caller-owned copy of a (possibly context-owned) score. *)
(* sunstone-lint: allow SA070 copying is this function's whole point; batch members must outlive the context scratch *)
let copy_score s = { s_energy_pj = s.s_energy_pj; s_cycles = s.s_cycles; s_edp = s.s_edp }

(* ------------------------------------------------------------------ *)
(* Context: everything derivable from (workload, arch, binding) alone   *)
(* ------------------------------------------------------------------ *)

type part_ref = {
  gid : int;  (** global partition id *)
  part : A.partition;
}

type op_info = {
  op : W.operand;
  is_output : bool;
  axes_d : int array array;  (** per tensor axis: dim ids of its terms *)
  axes_c : int array array;  (** per tensor axis: matching coefficients *)
  indexing : bool array;  (** per dim id *)
  sliding : bool array;  (** per dim id: inside a compound axis *)
  part_at : part_ref option array;  (** per level *)
  storing : int array;  (** storing level indices, ascending *)
}

(* Converted-mapping scratch: the matrices are allocated once per context
   and overwritten by [convert_into] for every candidate, so scoring a
   mapping allocates no layout state. [order] rows are resized only in the
   (never hit by [Mapping.make]-validated mappings) case of an order longer
   than the dim count; [olen] carries each row's live length. *)
type mlay = {
  t : int array array;  (** temporal factor [level].(dim) *)
  s : int array array;
  mutable order : int array array;  (** dim ids, outermost first *)
  olen : int array;  (** live length of [order.(level)] *)
  cum : int array array;  (** tile extent at/below level: [level].(dim) *)
  sprod : int array;  (** per level: product of spatial factors *)
}

(* Scalar accumulators of the evaluator. All fields are [float], so the
   record is flat and every store is an unboxed float write — the reason
   these live here instead of in local [ref]s, which box on each store. *)
type fscratch = {
  mutable f_rm : float;  (** chain reads multiplier *)
  mutable f_fm : float;  (** chain fills multiplier *)
  mutable f_outer : float;  (** chain outer trip count *)
  mutable f_reads : float;  (** chain result: words read from producer *)
  mutable f_fills : float;  (** chain result: words filled into consumer *)
  mutable f_denom : float;  (** MAC-streaming multicast denominator *)
  mutable f_noc : float;  (** NoC energy accumulator (pJ) *)
  mutable f_bw : float;  (** bandwidth-bound cycles *)
  mutable f_spatial : float;  (** total spatial unrolling product *)
  mutable f_energy : float;  (** eval_core result: total energy (pJ) *)
  mutable f_cycles : float;  (** eval_core result: cycles *)
  mutable f_mac : float;  (** eval_core result: MAC energy (pJ) *)
  mutable f_fp : float;  (** [footprint_into] result *)
  mutable f_esum : float;  (** eval_core's per-gid energy sum (pJ) *)
}

type ctx = {
  w : W.t;
  arch : A.t;
  binding : binding;
  ndims : int;
  dim_names : string array;  (** by dim id — positional fast path *)
  dim_of : (string, int) Hashtbl.t;
  bounds : int array;
  nlevels : int;
  levels : A.level array;
  macs : float;
  operands : op_info array;
  unstored : string option;  (** first operand stored at no level, if any *)
  part_names : string array;  (** by gid *)
  part_level : int array;  (** by gid *)
  parts : A.partition array;  (** by gid *)
  nparts : int;
  (* per-context scratch; a context is single-in-flight: one evaluation
     uses it at a time (create one context per concurrent evaluator) *)
  lay : mlay;
  chain : int array;  (** chain_pair's served-extent row *)
  inst : float array;  (** instances per level for bandwidth scaling *)
  fs : fscratch;
  sc_used : U.word U.count U.Arr.arr;  (** per gid, validation *)
  sc_energy : U.energy U.Arr.arr;  (** per gid *)
  sc_words : U.access U.count U.Arr.arr;  (** per gid *)
  sc_score : score;  (** the context-owned score [score_ctx] returns *)
  sc_score_ok : (score, string) result;  (** preallocated [Ok sc_score] *)
  mutable sc_violation : string option;  (** first validation violation *)
  mutable sc_stopped : bool;  (** chain_pair's reuse-scan state *)
}

let context ?(binding = Fun.id) w arch =
  let dims = W.dim_names w in
  let ndims = List.length dims in
  let dim_names = Array.of_list dims in
  let dim_of = Hashtbl.create 8 in
  List.iteri (fun i d -> Hashtbl.replace dim_of d i) dims;
  let bounds = Array.of_list (List.map (fun d -> W.bound w d) dims) in
  let levels = Array.of_list arch.A.levels in
  let nlevels = Array.length levels in
  (* global partition table: gids run level-major in declaration order;
     accumulate reversed with a running counter and reverse once *)
  let parts_rev = ref [] and names_rev = ref [] and levels_rev = ref [] in
  let next_gid = ref 0 in
  let gid_of = Hashtbl.create 8 in
  Array.iteri
    (fun li (lvl : A.level) ->
      List.iter
        (fun (p : A.partition) ->
          Hashtbl.replace gid_of (li, p.A.part_name) !next_gid;
          incr next_gid;
          parts_rev := p :: !parts_rev;
          names_rev := p.A.part_name :: !names_rev;
          levels_rev := li :: !levels_rev)
        lvl.A.partitions)
    levels;
  let nparts = !next_gid in
  let op_info (op : W.operand) =
    let axes =
      Array.of_list
        (List.map
           (fun idx ->
             match idx with
             | W.Dim d -> [| (Hashtbl.find dim_of d, 1) |]
             | W.Affine terms ->
               Array.of_list (List.map (fun (d, c) -> (Hashtbl.find dim_of d, c)) terms))
           op.W.indices)
    in
    let indexing = Array.make ndims false in
    Array.iter (fun terms -> Array.iter (fun (d, _) -> indexing.(d) <- true) terms) axes;
    let sliding = Array.make ndims false in
    Array.iter
      (fun terms -> if Array.length terms > 1 then Array.iter (fun (d, _) -> sliding.(d) <- true) terms)
      axes;
    (* the evaluator reads the axes as two parallel int arrays — no tuple
       dereference per term on the footprint path *)
    let axes_d = Array.map (Array.map fst) axes in
    let axes_c = Array.map (Array.map snd) axes in
    let role = binding op.W.name in
    (* the level index is the iteration index — no identity scan *)
    let part_at =
      Array.mapi
        (fun li (lvl : A.level) ->
          match A.partition_for lvl ~role with
          | Some p -> Some { gid = Hashtbl.find gid_of (li, p.A.part_name); part = p }
          | None -> None)
        levels
    in
    let storing =
      Array.of_list
        (List.concat
           (List.init nlevels (fun i -> if part_at.(i) <> None then [ i ] else [])))
    in
    { op; is_output = op.W.kind = `Output; axes_d; axes_c; indexing; sliding; part_at; storing }
  in
  let operands = Array.of_list (List.map op_info w.W.operands) in
  (* whether some operand is stored nowhere is a property of the context,
     not of any particular mapping — resolve it once *)
  let unstored =
    Array.fold_left
      (fun acc info ->
        if acc = None && Array.length info.storing = 0 then
          Some
            (Printf.sprintf "operand %s is stored at no level (no partition accepts its role)"
               info.op.W.name)
        else acc)
      None operands
  in
  let sc_score = { s_energy_pj = 0.0; s_cycles = 0.0; s_edp = 0.0 } in
  {
    w;
    arch;
    binding;
    ndims;
    dim_names;
    dim_of;
    bounds;
    nlevels;
    levels;
    macs = W.macs w;
    operands;
    unstored;
    part_names = Array.of_list (List.rev !names_rev);
    part_level = Array.of_list (List.rev !levels_rev);
    parts = Array.of_list (List.rev !parts_rev);
    nparts;
    lay =
      {
        t = Array.make_matrix nlevels ndims 1;
        s = Array.make_matrix nlevels ndims 1;
        order = Array.make_matrix nlevels ndims 0;
        olen = Array.make nlevels 0;
        cum = Array.make_matrix nlevels ndims 1;
        sprod = Array.make nlevels 1;
      };
    chain = Array.make ndims 1;
    inst = Array.make nlevels 1.0;
    fs =
      {
        f_rm = 1.0;
        f_fm = 1.0;
        f_outer = 1.0;
        f_reads = 0.0;
        f_fills = 0.0;
        f_denom = 1.0;
        f_noc = 0.0;
        f_bw = 0.0;
        f_spatial = 1.0;
        f_energy = 0.0;
        f_cycles = 0.0;
        f_mac = 0.0;
        f_fp = 1.0;
        f_esum = 0.0;
      };
    sc_used = U.Arr.make nparts;
    sc_energy = U.Arr.make nparts;
    sc_words = U.Arr.make nparts;
    sc_score;
    sc_score_ok = Ok sc_score;
    sc_violation = None;
    sc_stopped = false;
  }

let partitions ctx =
  Array.init ctx.nparts (fun gid -> (ctx.part_names.(gid), ctx.part_level.(gid)))

(* ------------------------------------------------------------------ *)
(* Mapping conversion                                                   *)
(* ------------------------------------------------------------------ *)

(* Mappings built by the search carry their dim lists in workload order, so
   position [i] almost always names dim [i]. The positional probe tries
   physical equality first (search-built mappings share the workload's dim
   strings), then a structural compare, then the hash table — a pure fast
   path, never the only mechanism, unlike the pre-PR level scan. *)
let[@inline] dim_index ctx i d =
  if
    i < ctx.ndims
    &&
    let n = Array.unsafe_get ctx.dim_names i in
    d == n || String.equal d n
  then i
  else Hashtbl.find ctx.dim_of d

(* Closure-free list walks for [convert_into]: [List.iteri] would allocate
   a closure per level per list on this path. *)
let rec fill_factors ctx row i = function
  | [] -> ()
  | (d, f) :: rest ->
    row.(dim_index ctx i d) <- f;
    fill_factors ctx row (i + 1) rest

let rec fill_order ctx row i = function
  | [] -> i
  | d :: rest ->
    Array.unsafe_set row i (dim_index ctx i d);
    fill_order ctx row (i + 1) rest

(* Toplevel, not a local [let rec]: a local recursive loop closing over the
   row would allocate its closure on every call (classic ocamlopt does no
   lambda-lifting); a toplevel function with the row as a parameter costs
   nothing, and its int accumulator stays in a register across the
   self-tail-call. *)
let rec sprod_loop srow d n acc =
  if d >= n then acc else sprod_loop srow (d + 1) n (acc * Array.unsafe_get srow d)

(* Overwrite the context's layout scratch with mapping [m]. *)
let convert_into ctx (m : M.t) =
  let lay = ctx.lay in
  let n = ctx.nlevels in
  for l = 0 to n - 1 do
    let lm = m.M.levels.(l) in
    let trow = lay.t.(l) and srow = lay.s.(l) in
    (* manual reset: [Array.fill] is a C call, twice per level per candidate *)
    for d = 0 to ctx.ndims - 1 do
      Array.unsafe_set trow d 1;
      Array.unsafe_set srow d 1
    done;
    fill_factors ctx trow 0 lm.M.temporal;
    fill_factors ctx srow 0 lm.M.spatial;
    let olen = List.length lm.M.order in
    (* sunstone-lint: allow SA070 order row grows to the largest olen seen, then steady state *)
    if olen > Array.length lay.order.(l) then lay.order.(l) <- Array.make olen 0;
    lay.olen.(l) <- olen;
    ignore (fill_order ctx lay.order.(l) 0 lm.M.order);
    lay.sprod.(l) <- sprod_loop srow 0 ctx.ndims 1
  done;
  for l = 0 to n - 1 do
    let crow = lay.cum.(l) and trow = lay.t.(l) and srow = lay.s.(l) in
    if l = 0 then
      for d = 0 to ctx.ndims - 1 do
        Array.unsafe_set crow d (Array.unsafe_get trow d * Array.unsafe_get srow d)
      done
    else begin
      let prev = lay.cum.(l - 1) in
      for d = 0 to ctx.ndims - 1 do
        Array.unsafe_set crow d
          (Array.unsafe_get prev d * Array.unsafe_get trow d * Array.unsafe_get srow d)
      done
    end
  done;
  lay

(* Toplevel tail recursion with an int accumulator: the self-call compiles
   to a jump with [acc] in a register. (A float accumulator would NOT be
   free here — classic ocamlopt boxes float parameters at every recursive
   call — which is why [footprint_into] below accumulates its float product
   in a mutable scratch field instead.) *)
let rec axis_extent_loop extents dims coeffs i n acc =
  if i >= n then acc
  else
    axis_extent_loop extents dims coeffs (i + 1) n
      (acc + Array.unsafe_get coeffs i * (Array.unsafe_get extents (Array.unsafe_get dims i) - 1))

let axis_extent extents dims coeffs = axis_extent_loop extents dims coeffs 0 (Array.length dims) 1

(* Hot-path footprint: the float product accumulates in [fs.f_fp], an
   unboxed store into the flat scratch record, so the whole walk allocates
   nothing — no local closure, no boxed float return. Multiplication order
   is axis order, exactly the old left fold. *)
let footprint_into ctx (info : op_info) extents =
  let fs = ctx.fs in
  let ad = info.axes_d and ac = info.axes_c in
  fs.f_fp <- 1.0;
  for i = 0 to Array.length ad - 1 do
    fs.f_fp <-
      fs.f_fp
      *. float_of_int (axis_extent extents (Array.unsafe_get ad i) (Array.unsafe_get ac i))
  done

(* Cold-path form returning the product; [level_fill_fraction] and friends
   use it where a boxed float return does not matter. *)
let footprint (info : op_info) extents =
  let ad = info.axes_d and ac = info.axes_c in
  let n = Array.length ad in
  let rec go i acc =
    if i >= n then acc
    else
      go (i + 1)
        (acc *. float_of_int (axis_extent extents (Array.unsafe_get ad i) (Array.unsafe_get ac i)))
  in
  go 0 1.0

let[@inline] spatial_product lay l = lay.sprod.(l)

(* [part_at.(l)] is [Some _] exactly at the levels listed in [storing];
   callers only index with members of [storing], so [None] here means the
   context tables are inconsistent — fail with enough context to find it. *)
let part_ref_at (info : op_info) l =
  match info.part_at.(l) with
  | Some r -> r
  | None ->
    (* sunstone-lint: allow SA070 defensive failure, unreachable for validated mappings *)
    invalid_arg (Printf.sprintf "Model: operand %s has no partition at level %d" info.op.W.name l)

(* ------------------------------------------------------------------ *)
(* Validation                                                           *)
(* ------------------------------------------------------------------ *)

let validate_lay ctx lay =
  ctx.sc_violation <- ctx.unstored;
  for l = 0 to ctx.nlevels - 1 do
    let lvl = ctx.levels.(l) in
    let sp = spatial_product lay l in
    if sp > lvl.A.fanout && ctx.sc_violation = None then
      ctx.sc_violation <-
        Some
          (* sunstone-lint: allow SA070 rejected-candidate path only *)
          (Printf.sprintf "level %s: spatial unrolling %d exceeds fanout %d" lvl.A.level_name sp
             lvl.A.fanout)
  done;
  if ctx.sc_violation = None then begin
    let used = ctx.sc_used in
    U.Arr.fill used;
    for oi = 0 to Array.length ctx.operands - 1 do
      let info = ctx.operands.(oi) in
      for l = 0 to ctx.nlevels - 1 do
        match info.part_at.(l) with
        | Some { gid; _ } ->
          footprint_into ctx info lay.cum.(l);
          U.Arr.set used gid U.(Arr.get used gid +: count ctx.fs.f_fp)
        | None -> ()
      done
    done;
    for gid = 0 to ctx.nparts - 1 do
      let l = ctx.part_level.(gid) in
      if not ctx.levels.(l).A.unbounded then begin
        let p = ctx.parts.(gid) in
        if
          (* [U.gt] spelled out: the cross-module call boxes both float
             arguments (the [@inline] hint is not honored without flambda) *)
          U.to_float (U.Arr.get used gid) > float_of_int p.A.capacity_words +. 1e-9
          && ctx.sc_violation = None
        then
          ctx.sc_violation <-
            Some
              (* sunstone-lint: allow SA070 rejected-candidate path only *)
              (Printf.sprintf "partition %s at %s: footprint %.0f exceeds capacity %d"
                 ctx.part_names.(gid) ctx.levels.(l).A.level_name
                 (U.to_float (U.Arr.get used gid))
                 p.A.capacity_words)
      end
    done
  end;
  match ctx.sc_violation with None -> Ok () | Some msg -> Error msg

let validate_ctx ctx m =
  if M.num_levels m <> ctx.nlevels then
    Error
      (Printf.sprintf "mapping has %d levels, architecture has %d" (M.num_levels m) ctx.nlevels)
  else validate_lay ctx (convert_into ctx m)

let level_fill_fraction_ctx ctx m ~level =
  let lay = convert_into ctx m in
  let lvl = ctx.levels.(level) in
  let worst = ref 0.0 in
  List.iter
    (fun (p : A.partition) ->
      if p.A.capacity_words > 0 then begin
        let used = ref 0.0 in
        Array.iter
          (fun info ->
            match info.part_at.(level) with
            | Some { part; _ } when part.A.part_name = p.A.part_name ->
              used := !used +. footprint info lay.cum.(level)
            | _ -> ())
          ctx.operands;
        worst := Float.max !worst (!used /. float_of_int p.A.capacity_words)
      end)
    lvl.A.partitions;
  !worst

(* ------------------------------------------------------------------ *)
(* Access counting                                                      *)
(* ------------------------------------------------------------------ *)

(* Traffic of [info] between producer storing level [lp] and consumer
   storing level [lc]: refills are the temporal loops strictly above [lc]
   scanned innermost-first with full/partial reuse absorption; spatial
   factors above [lc] either enlarge the served footprint (indexing dims)
   or broadcast/replicate (non-indexing). Results land in [fs.f_reads] and
   [fs.f_fills]. *)
let chain_pair ctx lay (info : op_info) ~lc ~lp =
  let fs = ctx.fs in
  let top = ctx.nlevels - 1 in
  let cum = ctx.chain in
  let src = lay.cum.(lc) in
  for d = 0 to ctx.ndims - 1 do
    Array.unsafe_set cum d (Array.unsafe_get src d)
  done;
  fs.f_rm <- 1.0;
  fs.f_fm <- 1.0;
  for j = lc + 1 to top do
    let multicast = ctx.levels.(j).A.multicast in
    let srow = lay.s.(j) in
    for d = 0 to ctx.ndims - 1 do
      let f = Array.unsafe_get srow d in
      if f > 1 then
        if Array.unsafe_get info.indexing d then
          Array.unsafe_set cum d (Array.unsafe_get cum d * f)
        else if j <= lp then begin
          fs.f_fm <- fs.f_fm *. float_of_int f;
          if not multicast then fs.f_rm <- fs.f_rm *. float_of_int f
        end
        else begin
          fs.f_rm <- fs.f_rm *. float_of_int f;
          fs.f_fm <- fs.f_fm *. float_of_int f
        end
    done
  done;
  (* temporal reuse scan, innermost loop first *)
  ctx.sc_stopped <- false;
  fs.f_outer <- 1.0;
  for j = lc + 1 to top do
    let ord = lay.order.(j) and trow = lay.t.(j) in
    for i = lay.olen.(j) - 1 downto 0 do
      let d = Array.unsafe_get ord i in
      let b = trow.(d) in
      if b > 1 then
        if ctx.sc_stopped then fs.f_outer <- fs.f_outer *. float_of_int b
        else if not (Array.unsafe_get info.indexing d) then
          () (* fully reused across this loop *)
        else if Array.unsafe_get info.sliding d then begin
          (* sliding-window partial reuse: fetch the union of the windows *)
          cum.(d) <- cum.(d) * b;
          ctx.sc_stopped <- true
        end
        else begin
          ctx.sc_stopped <- true;
          fs.f_outer <- fs.f_outer *. float_of_int b
        end
    done
  done;
  footprint_into ctx info cum;
  fs.f_reads <- fs.f_outer *. fs.f_fp *. fs.f_rm;
  fs.f_fills <- fs.f_outer *. fs.f_fp *. fs.f_fm

(* Per-MAC streaming denominator from the nearest storing level [l0]:
   unrolled non-indexing dims below [l0] share one read across lanes when
   the interconnect multicasts. Lands in [fs.f_denom]. *)
let mac_streaming ctx lay (info : op_info) ~l0 =
  let fs = ctx.fs in
  fs.f_denom <- 1.0;
  for j = 0 to l0 do
    if ctx.levels.(j).A.multicast then begin
      let srow = lay.s.(j) in
      for d = 0 to ctx.ndims - 1 do
        if srow.(d) > 1 && not info.indexing.(d) then
          fs.f_denom <- fs.f_denom *. float_of_int srow.(d)
      done
    end
  done

(* ------------------------------------------------------------------ *)
(* Energy and latency assembly                                          *)
(* ------------------------------------------------------------------ *)

(* The evaluator core. Float operations run in exactly the order of the
   pre-rewrite evaluator ([Model_ref], pinned by the golden bit-identity
   suite), so energies, cycles and EDP are bit-identical. No transfer
   records are built here — [transfers_of] replays the chain walk off the
   hot path — so the core allocates nothing: per-gid energies/words and
   every scalar accumulator live in the context's scratch. *)
let eval_core ctx lay =
  let fs = ctx.fs in
  let energy = ctx.sc_energy in
  let words = ctx.sc_words in
  U.Arr.fill energy;
  U.Arr.fill words;
  fs.f_noc <- 0.0;
  for oi = 0 to Array.length ctx.operands - 1 do
    let info = ctx.operands.(oi) in
    let storing = info.storing in
    let nst = Array.length storing in
    if nst = 0 then
      (* sunstone-lint: allow SA070 defensive failure, [ctx.unstored] rejects this first *)
      invalid_arg (Printf.sprintf "operand %s stored nowhere" info.op.W.name);
    (* MAC streaming from the innermost storing level *)
    let l0 = storing.(0) in
    let { gid; part } = part_ref_at info l0 in
    mac_streaming ctx lay info ~l0;
    let reads = ctx.macs /. fs.f_denom in
    (* the per-word rate is selected by branching the whole statement: a
       let-bound [if] join of two computed floats is boxed, the branched
       statements are not *)
    if info.is_output then
      U.Arr.set energy gid
        U.(Arr.get energy gid +: charge (count reads) (rate part.A.read_energy +: rate part.A.write_energy))
    else
      U.Arr.set energy gid U.(Arr.get energy gid +: charge (count reads) (rate part.A.read_energy));
    U.Arr.set words gid
      U.(Arr.get words gid +: count (reads *. if info.is_output then 2.0 else 1.0));
    (* chain transfers between consecutive storing levels *)
    for i = 0 to nst - 2 do
      let lc = storing.(i) and lp = storing.(i + 1) in
      chain_pair ctx lay info ~lc ~lp;
      let reads = fs.f_reads and fills = fs.f_fills in
      let rp = part_ref_at info lp in
      let rc = part_ref_at info lc in
      let dir = if info.is_output then 2.0 else 1.0 in
      (* [U.halve] spelled out as [/. 2.0]: the cross-module call would box
         its argument and result; [rate] is an identity primitive, so
         [rate a +: rate b] = [rate (a +. b)] and the halving is the exact
         same power-of-two division, bit for bit. As in the streaming charge
         above, the output/input rate choice branches the whole statement
         rather than let-binding a boxed [if] join. *)
      if info.is_output then
        U.Arr.set energy rp.gid
          U.(Arr.get energy rp.gid
             +: charge (count (dir *. reads))
                  (rate ((rp.part.A.read_energy +. rp.part.A.write_energy) /. 2.0)))
      else
        U.Arr.set energy rp.gid
          U.(Arr.get energy rp.gid +: charge (count (dir *. reads)) (rate rp.part.A.read_energy));
      if info.is_output then
        U.Arr.set energy rc.gid
          U.(Arr.get energy rc.gid
             +: charge (count (dir *. fills))
                  (rate ((rc.part.A.read_energy +. rc.part.A.write_energy) /. 2.0)))
      else
        U.Arr.set energy rc.gid
          U.(Arr.get energy rc.gid +: charge (count (dir *. fills)) (rate rc.part.A.write_energy));
      U.Arr.set words rp.gid U.(Arr.get words rp.gid +: count (dir *. reads));
      U.Arr.set words rc.gid U.(Arr.get words rc.gid +: count (dir *. fills));
      for j = lc + 1 to lp do
        fs.f_noc <-
          U.to_float
            U.(pj fs.f_noc +: charge (count (dir *. fills)) (rate ctx.levels.(j).A.noc_hop_energy))
      done
    done
  done;
  let mac_energy =
    U.charge (U.count ctx.macs) (U.rate ctx.arch.A.mac_energy : U.op U.rate U.t)
  in
  (* [U.Arr.sum] is a cross-module loop returning a boxed float; fold the
     per-gid energies here instead, in the same left-to-right order, into an
     unboxed scratch field *)
  fs.f_esum <- 0.0;
  for gid = 0 to U.Arr.length energy - 1 do
    fs.f_esum <- fs.f_esum +. U.to_float (U.Arr.get energy gid)
  done;
  let total_energy = U.to_float U.(pj fs.f_esum +: pj fs.f_noc +: mac_energy) in
  (* latency *)
  fs.f_spatial <- 1.0;
  for l = 0 to ctx.nlevels - 1 do
    fs.f_spatial <- fs.f_spatial *. float_of_int (spatial_product lay l)
  done;
  let compute_cycles = ctx.macs /. (fs.f_spatial *. float_of_int ctx.arch.A.mac_throughput) in
  let inst_used = ctx.inst in
  for l = 0 to ctx.nlevels - 1 do
    Array.unsafe_set inst_used l 1.0
  done;
  for l = ctx.nlevels - 2 downto 0 do
    inst_used.(l) <- inst_used.(l + 1) *. float_of_int (spatial_product lay (l + 1))
  done;
  fs.f_bw <- 0.0;
  for gid = 0 to ctx.nparts - 1 do
    let p = ctx.parts.(gid) in
    let l = ctx.part_level.(gid) in
    (* [Float.max] spelled out: the call boxes both arguments; both values
       are non-NaN and non-negative here, so the compare is the same max *)
    let bw = U.to_float (U.Arr.get words gid) /. (p.A.bandwidth *. inst_used.(l)) in
    if bw > fs.f_bw then fs.f_bw <- bw
  done;
  fs.f_energy <- total_energy;
  fs.f_cycles <- (if compute_cycles >= fs.f_bw then compute_cycles else fs.f_bw);
  fs.f_mac <- U.to_float mac_energy

(* Write the score triple into the context-owned record: three unboxed
   float stores, no allocation. *)
let score_into ctx lay =
  eval_core ctx lay;
  let fs = ctx.fs in
  let s = ctx.sc_score in
  s.s_energy_pj <- fs.f_energy;
  s.s_cycles <- fs.f_cycles;
  s.s_edp <- fs.f_energy *. fs.f_cycles

(* Replay the chain walk of [eval_core] to build the transfer records the
   core no longer assembles. Reads/fills recompute bit-identically —
   [mac_streaming]/[chain_pair] are deterministic in [lay] — and the list
   is consed in the core's old order then reversed, so [evaluate]'s
   transfer order is unchanged. Clobbers only the chain scratch
   ([f_denom]/[f_reads]/[f_fills] and friends), never the [f_energy]
   family, so it may run after [eval_core] for the same layout. *)
(* sunstone-cold *)
let transfers_of ctx lay =
  let fs = ctx.fs in
  let acc = ref [] in
  for oi = 0 to Array.length ctx.operands - 1 do
    let info = ctx.operands.(oi) in
    let storing = info.storing in
    let nst = Array.length storing in
    let l0 = storing.(0) in
    mac_streaming ctx lay info ~l0;
    acc :=
      {
        operand = info.op.W.name;
        from_level = l0;
        to_level = -1;
        reads = ctx.macs /. fs.f_denom;
        fills = 0.0;
        noc_deliveries = 0.0;
      }
      :: !acc;
    for i = 0 to nst - 2 do
      let lc = storing.(i) and lp = storing.(i + 1) in
      chain_pair ctx lay info ~lc ~lp;
      acc :=
        {
          operand = info.op.W.name;
          from_level = lp;
          to_level = lc;
          reads = fs.f_reads;
          fills = fs.f_fills;
          noc_deliveries = fs.f_fills;
        }
        :: !acc
    done
  done;
  List.rev !acc

(* sunstone-cold *)
let evaluate_lay ctx lay =
  eval_core ctx lay;
  let fs = ctx.fs in
  (* breakdown by partition name *)
  let breakdown = ref [] in
  let add name v =
    let rec go = function
      | [] -> [ (name, v) ]
      | (n, x) :: rest when n = name -> (n, x +. v) :: rest
      | kv :: rest -> kv :: go rest
    in
    breakdown := go !breakdown
  in
  for gid = 0 to ctx.nparts - 1 do
    let e = U.to_float (U.Arr.get ctx.sc_energy gid) in
    if e <> 0.0 then add ctx.part_names.(gid) e
  done;
  add "NoC" fs.f_noc;
  add "MAC" fs.f_mac;
  let energy_pj = fs.f_energy in
  let cycles = fs.f_cycles in
  let spatial_utilization = fs.f_spatial /. float_of_int (A.total_fanout ctx.arch) in
  {
    energy_pj;
    cycles;
    edp = energy_pj *. cycles;
    macs = ctx.macs;
    transfers = transfers_of ctx lay;
    breakdown = !breakdown;
    spatial_utilization;
  }

(* Pre-registered telemetry handles: an [incr] is one flag load when
   telemetry is disabled, so the per-candidate evaluation path stays inside
   the bench's overhead budget. Module-global handles are fork-safe here by
   protocol — each forked worker owns a private registry copy that the
   parent merges on frame receipt (DESIGN.md §3.4). *)
let tel_evaluations = Sun_telemetry.Metrics.counter "model.evaluations"

let tel_rejected = Sun_telemetry.Metrics.counter "model.evaluate_rejected"

(* Shared evaluate/score front end without telemetry, so the batch entry
   points can count once per batch. Returns [true] when the converted
   layout (in [ctx.lay]) validated; on [false] the violation is readable
   through [violation_message]. A boolean instead of [(mlay, string) result]
   because the [Ok lay] wrapper was the last per-call allocation of the
   accepted score path. *)
let prepare ctx m =
  if M.num_levels m <> ctx.nlevels then begin
    ctx.sc_violation <-
      Some
        (* sunstone-lint: allow SA070 rejected-candidate path only *)
        (Printf.sprintf "mapping has %d levels, architecture has %d" (M.num_levels m) ctx.nlevels);
    false
  end
  else
    match validate_lay ctx (convert_into ctx m) with Ok () -> true | Error _ -> false

let violation_message ctx =
  match ctx.sc_violation with Some msg -> msg | None -> "mapping is valid"

(* sunstone-hot *)
let evaluate_ctx ctx m =
  if prepare ctx m then begin
    Sun_telemetry.Metrics.incr tel_evaluations;
    Ok (evaluate_lay ctx ctx.lay)
  end
  else begin
    Sun_telemetry.Metrics.incr tel_rejected;
    Error (violation_message ctx)
  end

(* sunstone-hot *)
let score_ctx ctx m =
  if prepare ctx m then begin
    Sun_telemetry.Metrics.incr tel_evaluations;
    score_into ctx ctx.lay;
    ctx.sc_score_ok
  end
  else begin
    Sun_telemetry.Metrics.incr tel_rejected;
    Error (violation_message ctx)
  end

(* Caller-owned copy of the context score, for batch results. *)
let score_copy ctx lay =
  score_into ctx lay;
  copy_score ctx.sc_score

(* Batch entry points: one telemetry flush for the whole sibling set. The
   context's scratch is reused across the batch, which is the point — the
   per-candidate cost is the arithmetic, not setup. Each member's result is
   a caller-owned copy, never the context's scratch record: the beam search
   reads whole batches after the fact. *)
let batch_over ctx ms ~f =
  (* sunstone-lint: allow SA070 per-batch counters, amortized over the members *)
  let ok = ref 0 and rejected = ref 0 in
  let out =
    (* sunstone-lint: allow SA070 one result array per batch, amortized over the members *)
    Array.map
      (* sunstone-lint: allow SA070 one closure per batch, amortized over the members *)
      (fun m ->
        if prepare ctx m then begin
          incr ok;
          Ok (f ctx ctx.lay)
        end
        else begin
          incr rejected;
          Error (violation_message ctx)
        end)
      ms
  in
  Sun_telemetry.Metrics.add tel_evaluations !ok;
  Sun_telemetry.Metrics.add tel_rejected !rejected;
  out

(* sunstone-hot *)
let score_batch_ctx ctx ms = batch_over ctx ms ~f:score_copy

let evaluate_batch_ctx ctx ms = batch_over ctx ms ~f:evaluate_lay

let energy_lower_bound_ctx ctx ~partial_levels m =
  let lay = convert_into ctx m in
  let fs = ctx.fs in
  let energy =
    ref (U.charge (U.count ctx.macs) (U.rate ctx.arch.A.mac_energy : U.op U.rate U.t))
  in
  Array.iter
    (fun info ->
      let storing = info.storing in
      let nst = Array.length storing in
      if nst > 0 && storing.(0) < partial_levels then begin
        let l0 = storing.(0) in
        let { part; _ } = part_ref_at info l0 in
        mac_streaming ctx lay info ~l0;
        let reads = ctx.macs /. fs.f_denom in
        let per_word : U.access U.rate U.t =
          if info.is_output then U.(rate part.A.read_energy +: rate part.A.write_energy)
          else U.rate part.A.read_energy
        in
        energy := U.(!energy +: charge (count reads) per_word)
      end;
      for i = 0 to nst - 2 do
        let lc = storing.(i) and lp = storing.(i + 1) in
        if lp < partial_levels then begin
          chain_pair ctx lay info ~lc ~lp;
          let reads = fs.f_reads and fills = fs.f_fills in
          let rp = part_ref_at info lp in
          let rc = part_ref_at info lc in
          let dir = if info.is_output then 2.0 else 1.0 in
          energy :=
            U.(
              !energy
              +: charge (count (dir *. reads)) (rate rp.part.A.read_energy)
              +: charge (count (dir *. fills)) (rate rc.part.A.write_energy))
        end
      done)
    ctx.operands;
  U.to_float !energy

(* The seeded alpha-beta bound: like [energy_lower_bound_ctx] but (a) also
   derives a bandwidth-cycles bound from the same boundary traffic and (b)
   includes the boundary {e at} [partial_levels], not just those strictly
   below it. Traffic at that boundary is computed with the uncommitted
   upper temporal loops still at 1, and adding an outer iteration can only
   re-stream a tile again (more traffic) or be absorbed by reuse (equal
   traffic), never remove a fill — so the partial value lower-bounds every
   completion's. The committed streaming reads are exact: the MAC count and
   the committed unrolls fix them. Kept separate from the legacy bound so
   unseeded searches stay bit-identical with earlier releases. *)
let lower_bounds_ctx ctx ~partial_levels m =
  let lay = convert_into ctx m in
  let fs = ctx.fs in
  let energy =
    ref (U.charge (U.count ctx.macs) (U.rate ctx.arch.A.mac_energy : U.op U.rate U.t))
  in
  (* Instance-count upper bounds for the bandwidth side: spatial factors
     at or below [partial_levels] are committed, every level above can
     unroll at most its fanout. A partition's boundary traffic is shared
     by at most this many copies, so [words / (bw x inst)] lower-bounds
     the completed mapping's bandwidth cycles. Reuses the context's
     [inst] scratch ([eval_core] reinitializes it each call). *)
  let inst = ctx.inst in
  inst.(ctx.nlevels - 1) <- 1.0;
  for l = ctx.nlevels - 2 downto 0 do
    let above =
      if l + 1 <= partial_levels then float_of_int (spatial_product lay (l + 1))
      else float_of_int ctx.levels.(l + 1).A.fanout
    in
    inst.(l) <- inst.(l + 1) *. above
  done;
  let bw_cycles = ref 0.0 in
  let bump words (part : A.partition) l =
    if part.A.bandwidth > 0.0 then begin
      let c = words /. (part.A.bandwidth *. inst.(l)) in
      if c > !bw_cycles then bw_cycles := c
    end
  in
  Array.iter
    (fun info ->
      let storing = info.storing in
      let nst = Array.length storing in
      if nst > 0 && storing.(0) <= partial_levels then begin
        let l0 = storing.(0) in
        let { part; _ } = part_ref_at info l0 in
        mac_streaming ctx lay info ~l0;
        let reads = ctx.macs /. fs.f_denom in
        let per_word : U.access U.rate U.t =
          if info.is_output then U.(rate part.A.read_energy +: rate part.A.write_energy)
          else U.rate part.A.read_energy
        in
        energy := U.(!energy +: charge (count reads) per_word);
        bump reads part l0
      end;
      for i = 0 to nst - 2 do
        let lc = storing.(i) and lp = storing.(i + 1) in
        if lp <= partial_levels then begin
          chain_pair ctx lay info ~lc ~lp;
          let reads = fs.f_reads and fills = fs.f_fills in
          let rp = part_ref_at info lp in
          let rc = part_ref_at info lc in
          let dir = if info.is_output then 2.0 else 1.0 in
          energy :=
            U.(
              !energy
              +: charge (count (dir *. reads)) (rate rp.part.A.read_energy)
              +: charge (count (dir *. fills)) (rate rc.part.A.write_energy));
          bump (dir *. reads) rp.part lp;
          bump (dir *. fills) rc.part lc
        end
      done)
    ctx.operands;
  (U.to_float !energy, !bw_cycles)

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                                 *)
(* ------------------------------------------------------------------ *)

let validate ?binding w arch m = validate_ctx (context ?binding w arch) m

let level_fill_fraction ?binding w arch m ~level =
  level_fill_fraction_ctx (context ?binding w arch) m ~level

let evaluate ?binding w arch m = evaluate_ctx (context ?binding w arch) m

let evaluate_exn ?binding w arch m =
  match evaluate ?binding w arch m with
  | Ok c -> c
  | Error msg -> invalid_arg ("Model.evaluate_exn: " ^ msg)

let energy_lower_bound ?binding w arch ~partial_levels m =
  energy_lower_bound_ctx (context ?binding w arch) ~partial_levels m

let pp_cost ppf c =
  let pp_item ppf (name, pj) = Format.fprintf ppf "%s: %.3e pJ" name pj in
  Format.fprintf ppf
    "@[<v>energy %.4e pJ, cycles %.4e, EDP %.4e, util %.2f%%@,%a@]" c.energy_pj c.cycles c.edp
    (c.spatial_utilization *. 100.0)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_item)
    c.breakdown
