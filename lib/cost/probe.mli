(** Memoized footprint probes, shared by one search or analysis scope.

    The optimizer's tile-fit tests and the pruning/audit passes all reduce
    to the same primitive — the tile footprint of one operand at one extent
    vector — and call it millions of times per search with heavy repetition
    (sibling candidates share most of their extents). A [Probe.t] memoizes
    those calls keyed on (operand, level, tile vector).

    Scope rule: a probe is created per search / per analysis check and
    dropped with it — there is no invalidation. The memo key does not name
    the workload, so a probe must never outlive the workload it was created
    for (DESIGN.md §3.7).

    Memoized results are bit-identical to direct recomputation via
    {!Sun_tensor.Workload.footprint} (the QCheck suite pins this): the axis
    extents are exact small integers and the float product folds in the
    same order. Setting [SUNSTONE_PROBE_MEMO=off] (or [0]/[false]) in the
    environment disables memoization for A/B parity runs — CI diffs the
    two modes on the mixed batch fixture.

    Hit/miss tallies are kept as plain fields and flushed to the
    [model.probe_hits] / [model.probe_misses] telemetry counters once per
    scope, so the cache is observable via [sunstone stats] without putting
    an atomic bump on the hot path. *)

type t

val create : ?memo:bool -> Sun_tensor.Workload.t -> t
(** One probe per (workload, search scope). [memo] defaults to [true]
    unless [SUNSTONE_PROBE_MEMO] is set to [off]/[0]/[false]. *)

val memo_enabled : t -> bool

val set_extents : t -> (string -> int) -> unit
(** Fill the probe's scratch extent vector, one call per candidate; the
    per-operand {!footprint} lookups that follow reuse it without
    re-resolving dimension names. *)

val footprint : t -> op:string -> level:int -> float
(** Footprint of [op] at the extents loaded by {!set_extents}, memoized
    under (op, level, vector). Raises [Invalid_argument] on an operand the
    workload does not name. *)

val footprint_of : t -> op:string -> level:int -> (string -> int) -> float
(** [set_extents] + [footprint] in one call, for single-operand probes. *)

val changes_footprint : t -> op:string -> dim:string -> bool
(** Does growing [dim] (1 → 2, all other extents 1) change [op]'s
    footprint? The semantic reuse probe of the pruning/audit passes;
    memoized like any other vector. [false] for unknown dims. *)

val hits : t -> int
val misses : t -> int

val flush_telemetry : t -> unit
(** Add the tallies to [model.probe_hits]/[model.probe_misses] (when
    telemetry is enabled) and zero them. Call once per scope. *)
