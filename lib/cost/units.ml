type energy
type access
type op
type word
type 'c count
type 'c rate
type 'u t = float

(* The wrappers are compiler primitives, not functions: across module
   boundaries (where [@inline] does nothing without flambda) an application
   still compiles to the raw float instruction, so the cost model's hot path
   pays nothing for the unit discipline. The .mli repeats the [external]
   declarations — both sides must agree for the primitive to survive. *)
external pj : float -> energy t = "%identity"
external count : float -> 'c count t = "%identity"
external rate : float -> 'c rate t = "%identity"
external to_float : 'u t -> float = "%identity"

let zero = 0.0

external ( +: ) : 'u t -> 'u t -> 'u t = "%addfloat"
external ( -: ) : 'u t -> 'u t -> 'u t = "%subfloat"
external scale : float -> 'u t -> 'u t = "%mulfloat"

let[@inline] halve x = x /. 2.0

external charge : 'c count t -> 'c rate t -> energy t = "%mulfloat"

let sum a = Array.fold_left ( +. ) 0.0 a
let[@inline] max a b = Float.max a b
let[@inline] gt a b = a > b
let[@inline] is_finite x = Float.is_finite x
let[@inline] is_nonneg x = x >= 0.0

module Arr = struct
  type 'u arr = floatarray

  let make n = Float.Array.make n 0.0

  external get : 'u arr -> int -> 'u t = "%floatarray_safe_get"
  external set : 'u arr -> int -> 'u t -> unit = "%floatarray_safe_set"

  external unsafe_set : 'u arr -> int -> 'u t -> unit = "%floatarray_unsafe_set"

  (* a manual store loop: [Float.Array.fill] is a C call, and the scratch
     arrays this zeroes sit on the per-candidate path *)
  let fill a =
    for i = 0 to Float.Array.length a - 1 do
      unsafe_set a i 0.0
    done

  let length = Float.Array.length

  let sum a =
    let n = Float.Array.length a in
    let rec go i acc =
      if i >= n then acc else go (i + 1) (acc +. Float.Array.unsafe_get a i)
    in
    go 0 0.0
end
