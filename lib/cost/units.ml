type energy
type access
type op
type word
type 'c count
type 'c rate
type 'u t = float

let[@inline] pj x = x
let[@inline] count x = x
let[@inline] rate x = x
let[@inline] to_float x = x
let zero = 0.0
let[@inline] ( +: ) a b = a +. b
let[@inline] ( -: ) a b = a -. b
let[@inline] scale k x = k *. x
let[@inline] halve x = x /. 2.0
let[@inline] charge n r = n *. r
let sum a = Array.fold_left ( +. ) 0.0 a
let[@inline] max a b = Float.max a b
let[@inline] gt a b = a > b
let[@inline] is_finite x = Float.is_finite x
let[@inline] is_nonneg x = x >= 0.0
