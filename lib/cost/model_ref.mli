(** Frozen pre-rewrite reference evaluator.

    A verbatim copy (minus telemetry) of the cost model evaluator as it
    stood before the allocation-free rewrite of {!Model}. It exists to be
    measured and tested against:

    - the golden bit-identity suite asserts [Model.evaluate_ctx] returns
      byte-identical cost records vs [Model_ref.evaluate_ctx] on every
      registry workload × preset;
    - [bench evaluate] reports the rewrite's evaluations/sec against this
      baseline and gates the ≥2× target in CI.

    The cost and transfer types are re-exported equalities with {!Model}'s,
    so results compare directly. Do not optimize this module. *)

type binding = string -> string

type transfer = Model.transfer = {
  operand : string;
  from_level : int;
  to_level : int;
  reads : float;
  fills : float;
  noc_deliveries : float;
}

type cost = Model.cost = {
  energy_pj : float;
  cycles : float;
  edp : float;
  macs : float;
  transfers : transfer list;
  breakdown : (string * float) list;
  spatial_utilization : float;
}

type ctx

val context :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> ctx

val evaluate_ctx : ctx -> Sun_mapping.Mapping.t -> (cost, string) result

val evaluate :
  ?binding:binding -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t ->
  (cost, string) result
