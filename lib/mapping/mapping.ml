module W = Sun_tensor.Workload

type dim = W.dim

type level_mapping = { temporal : (dim * int) list; order : dim list; spatial : (dim * int) list }

type t = { levels : level_mapping array }

let num_levels t = Array.length t.levels

let factor assoc d = match List.assoc_opt d assoc with Some f -> f | None -> 1

let temporal_factor t ~level d = factor t.levels.(level).temporal d
let spatial_factor t ~level d = factor t.levels.(level).spatial d

let tile_at t ~level d =
  let acc = ref 1 in
  for j = 0 to level do
    acc := !acc * temporal_factor t ~level:j d * spatial_factor t ~level:j d
  done;
  !acc

let tile_at_top t d =
  let acc = ref 1 in
  for j = 0 to num_levels t - 1 do
    acc := !acc * temporal_factor t ~level:j d * spatial_factor t ~level:j d
  done;
  !acc

let spatial_product t ~level =
  List.fold_left (fun acc (_, f) -> acc * f) 1 t.levels.(level).spatial

let total_spatial t =
  let acc = ref 1 in
  for j = 0 to num_levels t - 1 do
    acc := !acc * spatial_product t ~level:j
  done;
  !acc

let footprint_at (_ : W.t) t ~level op = W.footprint (fun d -> tile_at t ~level d) op

(* Result-chained so no exception escapes library code: the first violated
   rule becomes the Error payload. *)
let ( let* ) = Result.bind

let validate w levels =
  let dims = W.dim_names w in
  let sorted_dims = List.sort String.compare dims in
  let first_error f xs =
    List.fold_left (fun acc x -> match acc with Error _ -> acc | Ok () -> f x) (Ok ()) xs
  in
  let check_level (i, (lm : level_mapping)) =
    let known_factors assoc kind =
      first_error
        (fun (d, f) ->
          if not (List.mem d dims) then
            Error (Printf.sprintf "level %d: unknown dim %s in %s factors" i d kind)
          else if f < 1 then
            Error (Printf.sprintf "level %d: %s factor of %s is %d" i kind d f)
          else Ok ())
        assoc
    in
    (* the mli contract: factor lists cover exactly the workload dims, once
       each — a silently missing dim would default to factor 1 downstream *)
    let covers assoc kind =
      if List.sort String.compare (List.map fst assoc) <> sorted_dims then
        Error
          (Printf.sprintf "level %d: %s factors must cover each workload dim exactly once" i kind)
      else Ok ()
    in
    let* () = known_factors lm.temporal "temporal" in
    let* () = known_factors lm.spatial "spatial" in
    let* () = covers lm.temporal "temporal" in
    let* () = covers lm.spatial "spatial" in
    if List.sort String.compare lm.order <> sorted_dims then
      Error (Printf.sprintf "level %d: order is not a permutation of the workload dims" i)
    else Ok ()
  in
  let* () = first_error check_level (List.mapi (fun i lm -> (i, lm)) levels) in
  let t = { levels = Array.of_list levels } in
  let* () =
    first_error
      (fun d ->
        let placed = tile_at_top t d in
        let bound = W.bound w d in
        if placed <> bound then
          Error (Printf.sprintf "dim %s: factors multiply to %d, bound is %d" d placed bound)
        else Ok ())
      dims
  in
  Ok t

let make w levels = validate w levels

let make_exn w levels =
  match make w levels with Ok t -> t | Error msg -> invalid_arg ("Mapping.make_exn: " ^ msg)

let single_level w ~num_levels =
  let dims = W.dim_names w in
  let ones = List.map (fun d -> (d, 1)) dims in
  let inner = { temporal = ones; order = dims; spatial = ones } in
  let top = { temporal = List.map (fun (d, b) -> (d, b)) w.W.dims; order = dims; spatial = ones } in
  make_exn w (List.init num_levels (fun i -> if i = num_levels - 1 then top else inner))

let loops_outermost_first t =
  let acc = ref [] in
  for level = num_levels t - 1 downto 0 do
    let lm = t.levels.(level) in
    List.iter
      (fun d ->
        let b = factor lm.temporal d in
        if b > 1 then acc := (level, d, b) :: !acc)
      lm.order
  done;
  List.rev !acc

let pp ppf t =
  let pp_level ppf (i, lm) =
    let temporal_loops =
      List.filter_map
        (fun d ->
          let b = factor lm.temporal d in
          if b > 1 then Some (Printf.sprintf "for %s in %d" d b) else None)
        lm.order
    in
    let spatial_loops =
      List.filter_map (fun (d, f) -> if f > 1 then Some (Printf.sprintf "%s:%d" d f) else None) lm.spatial
    in
    let t_str = if temporal_loops = [] then "-" else String.concat ", " temporal_loops in
    let s_str = if spatial_loops = [] then "" else " | spatial " ^ String.concat " * " spatial_loops in
    Format.fprintf ppf "L%d: %s%s" i t_str s_str
  in
  let indexed = List.rev (Array.to_list (Array.mapi (fun i lm -> (i, lm)) t.levels)) in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_level) indexed

let to_string t = Format.asprintf "%a" pp t
