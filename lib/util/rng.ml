type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling: the draw below keeps 62 bits, uniform over
     [0, 2^62), and [r mod bound] alone is biased toward small values
     whenever [bound] does not divide 2^62, so draws past the largest
     multiple of [bound] are redrawn.  2^62 itself overflows the 63-bit
     native int (max_int = 2^62 - 1), so the residue is derived from
     max_int: 2^62 mod bound = ((max_int mod bound) + 1) mod bound.
     Rejecting r > max_int - rem discards exactly the top [rem] values;
     a first draw in range (the overwhelmingly common case for the small
     bounds used here) yields exactly the value the pre-rejection
     implementation did, keeping existing seeded sequences stable. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if r > max_int - rem then go () else r mod bound
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
