type t = float

let start () = Unix.gettimeofday ()

(* Wall clocks can step backwards (NTP adjustments, manual resets); a
   negative duration would poison per-request timings downstream, so clamp. *)
let elapsed_at ~now t = Float.max 0.0 (now -. t)

let elapsed_s t = elapsed_at ~now:(Unix.gettimeofday ()) t

let time f =
  let t = start () in
  let v = f () in
  (v, elapsed_s t)
