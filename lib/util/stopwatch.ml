external monotonic_now : unit -> float = "sunstone_monotonic_now"

type t = float

(* Timers run on the monotonic clock: a wall-clock step (NTP adjustment,
   manual reset) must never stretch, shrink or reorder reported durations.
   The epoch is arbitrary, so a [t] is only meaningful to this process. *)
let start () = monotonic_now ()

(* The clamp survives the move to the monotonic clock: [elapsed_at] accepts
   an arbitrary caller-supplied "now" (tests inject wall-clock-like values),
   and a negative duration must never leak downstream. *)
let elapsed_at ~now t = Float.max 0.0 (now -. t)

let elapsed_s t = elapsed_at ~now:(monotonic_now ()) t

let time f =
  let t = start () in
  let v = f () in
  (v, elapsed_s t)
