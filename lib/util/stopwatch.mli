(** Timing used to report time-to-solution for the mappers, and the
    monotonic clock behind the serving daemon's deadlines.

    All timers run on {!monotonic_now}, never the wall clock: wall time can
    step backwards or forwards under NTP adjustment or manual resets, and a
    step must never stretch a reported duration, expire a request deadline
    early, or reorder a deadline queue. Durations are additionally clamped
    at 0.0 so a negative elapsed time can never leak into reported timings
    (e.g. the batch pipeline's per-request [wall_s]). *)

val monotonic_now : unit -> float
(** Seconds on the system monotonic clock ([clock_gettime(CLOCK_MONOTONIC)]
    via a C stub; falls back to wall time only on platforms without a
    monotonic clock). The epoch is arbitrary — typically boot time — so
    only differences between two reads are meaningful, and readings never
    step when the wall clock is adjusted. This is the clock the serving
    daemon uses for request deadlines and queue ordering. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]; never negative. *)

val elapsed_at : now:float -> t -> float
(** [elapsed_s] against an explicit "current time" (a {!monotonic_now}
    reading), clamped at 0.0. Exposed so the clamp is unit-testable without
    stepping the real clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns the result with its duration in
    seconds. *)
