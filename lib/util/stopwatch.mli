(** Wall-clock timing used to report time-to-solution for the mappers.

    Durations are clamped at 0.0: the underlying clock is wall time, which
    can step backwards under NTP adjustment, and a negative elapsed time
    must never leak into reported timings (e.g. the batch pipeline's
    per-request [wall_s]). *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]; never negative. *)

val elapsed_at : now:float -> t -> float
(** [elapsed_s] against an explicit "current time" (seconds since the
    epoch), clamped at 0.0. Exposed so the clamp is unit-testable without
    stepping the real clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns the result with its wall-clock
    duration in seconds. *)
