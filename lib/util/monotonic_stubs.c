/* Monotonic clock for deadline and duration math.
 *
 * CLOCK_MONOTONIC never steps when the wall clock is adjusted (NTP slew,
 * manual resets), which is exactly the property the serving daemon's
 * deadlines and queue ordering depend on. The epoch is arbitrary (boot
 * time on Linux): only differences between two reads are meaningful.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value sunstone_monotonic_now(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  /* Fallback for platforms without CLOCK_MONOTONIC: wall time is the best
   * available approximation; callers already clamp negative durations. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
