(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the repository (notably the Timeloop-like
    random-search baseline) draws from this generator so that experiments are
    reproducible bit-for-bit across runs. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly, not merely
    approximately: draws are rejection-sampled so no modulo bias favors
    small values for bounds that do not divide the 62-bit draw range.
    [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
