(** Canonical fingerprints for scheduling requests.

    A fingerprint is a stable hex digest of a [(workload, architecture,
    optimizer config)] triple, used as the key of the mapping cache. Two
    requests collide exactly when the scheduler would do identical work for
    them, so the workload component is *canonicalized* before hashing:

    - the workload [name] is ignored (repeated, structurally identical
      layers — e.g. the four ResNet-18 conv blocks of a stage — share one
      fingerprint on purpose);
    - dimension names are ignored: each dimension is renamed to a canonical
      [d<i>] chosen from its structural signature (bound plus the exact set
      of operand-axis positions and affine coefficients where it appears),
      so [matmul(M,N,K)] and the same workload spelled with dims [(A,B,C)]
      collide;
    - list orders are ignored: the [dims] list is sorted by signature and
      affine terms are sorted canonically, so permuting the declaration
      order changes nothing.

    Two dimensions with identical signatures are genuinely interchangeable
    (swapping them is an automorphism of the workload), so ties are safe.

    Operand names and kinds are preserved — they feed the cost-model role
    binding. The architecture and config are hashed structurally with no
    invariances. The config's [binding] function cannot be inspected and is
    excluded from the digest; cache users that rely on non-identity bindings
    should use distinct cache directories. *)

val canonical_workload : Sun_tensor.Workload.t -> string
(** The canonical textual form described above (exposed for tests and
    debugging; the digest is computed over this string). *)

val workload : Sun_tensor.Workload.t -> string
(** Hex digest of the canonical workload alone. *)

val arch : Sun_arch.Arch.t -> string
(** Hex digest of the architecture description. *)

val config : Sun_core.Optimizer.config -> string
(** Hex digest of the serializable optimizer-config fields. *)

val request :
  ?config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  string
(** Fingerprint of a full scheduling request; [?config] defaults to
    [Sun_core.Optimizer.default_config]. *)

(** {2 Structural keys (shape families)}

    The structural key is the canonical form {e minus the bounds}: two
    workloads share it exactly when they differ only in dimension extents
    (e.g. the conv layers of one network at different spatial sizes).
    Changing any bound changes {!request} but never {!structural}, which is
    what lets the cache index results by family and transfer a
    nearest-neighbor mapping as a search seed ({!Transfer}).

    Dims are put in a canonical {e structural order}: primarily by their
    bound-free occurrence signature, with the bound as tiebreak among
    structurally identical dims. Two family members therefore agree
    position-by-position: position [i] of one workload's
    {!structural_dims} corresponds to position [i] of the other's. *)

val structural_workload : Sun_tensor.Workload.t -> string
(** The bound-free canonical textual form (exposed for tests; the
    {!structural} digest is computed over this string). *)

val structural_dims : Sun_tensor.Workload.t -> Sun_tensor.Workload.dim list
(** The workload's own dim names in structural order. *)

val structural_bounds : Sun_tensor.Workload.t -> int array
(** The dim bounds in structural order ([structural_dims] position-wise). *)

val structural :
  ?config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  string
(** Family digest of a request: structural workload + architecture +
    config. Same family implies same rank, same operand structure, same
    arch and same search config — only the bounds may differ. *)
