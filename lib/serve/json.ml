type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal spelling that reads back to the same float. JSON has no
   spelling for NaN or the infinities, and emitting the bare words (as this
   function once did) produces output every conforming parser rejects — so
   encoding a non-finite float is an error at the source instead. *)
let float_literal f =
  if not (Float.is_finite f) then
    invalid_arg (Printf.sprintf "Json: cannot encode non-finite float %h" f)
  else
    let short = Printf.sprintf "%.12g" f in
    let s = if float_of_string short = f then short else Printf.sprintf "%.17g" f in
    (* keep a float marker so the value re-parses as Float, not Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write ~indent ~level buf v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = Buffer.add_string buf (if indent then ",\n" else ",") in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf (if indent then "[\n" else "[");
    List.iteri
      (fun i item ->
        if i > 0 then sep ();
        pad (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    if indent then (
      Buffer.add_char buf '\n';
      pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf (if indent then "{\n" else "{");
    List.iteri
      (fun i (k, item) ->
        if i > 0 then sep ();
        pad (level + 1);
        escape_string buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        write ~indent ~level:(level + 1) buf item)
      fields;
    if indent then (
      Buffer.add_char buf '\n';
      pad level);
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

(* 1-based line and column of byte [pos] in [src], for actionable errors
   when the input spans multiple lines (e.g. pretty-printed requests). *)
let line_col src pos =
  let pos = min pos (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let fail st msg =
  let line, col = line_col st.src st.pos in
  raise (Parse_error (Printf.sprintf "at offset %d (line %d, column %d): %s" st.pos line col msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then (
    st.pos <- st.pos + n;
    value)
  else fail st (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with Failure _ -> fail st "invalid \\u escape"
          in
          add_utf8 buf code
        | c -> fail st (Printf.sprintf "invalid escape \\%c" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if s = "" then fail st "expected a number";
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  (* [float_of_string] happily returns infinity for overflowing literals
     like 1e309; a value we could never re-encode must not parse. *)
  let finite_float f =
    if Float.is_finite f then Float f
    else fail st (Printf.sprintf "number %S overflows the double range" s)
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> finite_float f
    | None -> fail st (Printf.sprintf "malformed number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> finite_float f
      | None -> fail st (Printf.sprintf "malformed number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then (
      advance st;
      Obj [])
    else
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail st "expected , or } in object"
      in
      fields []
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then (
      advance st;
      List [])
    else
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
        | _ -> fail st "expected , or ] in array"
      in
      items []
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing characters after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let field key v =
  match member key v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" key)

let as_string = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, found %s" (type_name v))

let as_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected int, found %s" (type_name v))

let as_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected float, found %s" (type_name v))

let as_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, found %s" (type_name v))

let as_list = function
  | List xs -> Ok xs
  | v -> Error (Printf.sprintf "expected array, found %s" (type_name v))

let as_obj = function
  | Obj fields -> Ok fields
  | v -> Error (Printf.sprintf "expected object, found %s" (type_name v))
