(** Cross-request mapping transfer: warm-start a search from the
    nearest-neighbor cached mapping of the same shape family.

    Real catalogs (ResNet, Inception) are dominated by layers that differ
    only in their bounds. Their requests have distinct fingerprints — the
    cache rightly misses — but the mapping found for one is an excellent
    initial incumbent (alpha) for the next: the parent-side classify phase
    calls {!find_seed} on every cacheable miss and ships the rescaled
    neighbor to the worker, which passes it to
    {!Sun_core.Optimizer.optimize} as [?seed]. Seeding only tightens
    alpha-beta pruning; an illegal seed is dropped silently by the
    optimizer, so transfer can never make a result worse or a request
    fail.

    Neighbor selection: cached documents carry their
    {!Fingerprint.structural} family key, structural bound vector and dim
    names ({!family_fields}); {!Cache.nearest} picks the member with the
    closest bounds (sum of per-dim [|ln(b/b')|]). The neighbor's mapping
    is renamed through the positional structural-dim correspondence and
    rescaled to the new bounds: innermost-first, every factor keeps its
    gcd with the dim's remaining budget, so per-dim products match the
    new bounds exactly while no tile or spatial product ever exceeds the
    neighbor's known-legal ones. Residuals of dims that grew start at the
    top temporal level and are then sunk, prime by prime, to the
    innermost level that still validates — leaving them at the top would
    serialize the growth through the outermost boundary and waste the
    neighbor's locality.

    Kill switch: [SUNSTONE_TRANSFER=off] (or [0]/[false]) disables
    transfer entirely — {!find_seed} returns [None] and batch output is
    byte-identical to the pre-transfer pipeline, which ci.sh pins against
    a golden fixture. Transfer is on by default.

    Determinism: with [--jobs 1] (and in any sequential replay) seeding is
    deterministic — each request sees exactly the completed requests
    before it. With parallel workers, whether a neighbor is already cached
    when a request classifies depends on completion timing, so seeded
    parallel runs are not byte-reproducible (final EDP is still equal or
    better per request); fixtures that pin byte parity across job counts
    must not contain family mates, or must set the kill switch. *)

val enabled : unit -> bool
(** [SUNSTONE_TRANSFER] kill switch, re-read on every call; [true] unless
    the variable is [off]/[0]/[false]. *)

val family_fields :
  config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  (string * Json.t) list
(** The [("family", ...); ("bounds", ...); ("sdims", ...)] fields the
    pipeline merges into every stored document: the structural family
    digest, the bounds and the workload's own dim names, both in
    structural order. *)

val seed_of_doc :
  config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Json.t ->
  Sun_mapping.Mapping.level_mapping list option
(** Rename and rescale a cached neighbor document's mapping into a seed
    for [w]; [None] when the document lacks transfer fields, its mapping
    does not decode, or the dim correspondence does not line up.
    Rescaling is capacity-aware: the residual of a dim that grew is
    sunk, prime by prime, to the innermost level that still passes
    [Model.validate] under [config]'s binding (top temporal as the
    always-legal fallback). The result as a whole is *not* re-validated
    here — [Optimizer.optimize ?seed] builds it and falls back silently
    if it is rejected. *)

val find_seed :
  ?exclude_self:bool ->
  cache:Cache.t ->
  config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Sun_mapping.Mapping.level_mapping list option
(** The full parent-side transfer probe: kill switch, family digest,
    {!Cache.nearest}, {!seed_of_doc}. Read-only with respect to the cache
    (no stats, no LRU refresh). [exclude_self] (default [false]) skips
    cached members with exactly the query's structural bounds, so a
    warm-cache benchmark re-running a catalog measures cross-layer
    transfer rather than each layer reading back its own result. *)
