type stats = {
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;
  corrupt : int;
  stores : int;
}

type entry = { value : Json.t; mutable last_use : int }

type t = {
  capacity : int;
  cache_dir : string option;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;  (** monotone access counter driving LRU order *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable corrupt : int;
  mutable stores : int;
}

let create ?(capacity = 256) ?dir () =
  {
    capacity = max 1 capacity;
    cache_dir = dir;
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0;
    corrupt = 0;
    stores = 0;
  }

let capacity t = t.capacity

let size t = Hashtbl.length t.table

let dir t = t.cache_dir

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

(* Fingerprints are hex digests, but guard against any caller-provided key
   escaping the cache directory. *)
let safe_key key =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_') key

let entry_path dir key = Filename.concat dir (safe_key key ^ ".json")

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (* sunstone-lint: allow SA060 bounded local-disk cache read, not socket IO *)
    (fun () -> really_input_string ic (in_channel_length ic))

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    let victim = ref None in
    (* sunstone-lint: allow SA063 min-scan for the LRU victim; order-insensitive *)
    Hashtbl.iter
      (fun key entry ->
        match !victim with
        | Some (_, age) when age <= entry.last_use -> ()
        | _ -> victim := Some (key, entry.last_use))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
    | None -> ()
  end

let insert t key value =
  if not (Hashtbl.mem t.table key) then evict_if_full t;
  Hashtbl.remove t.table key;
  let entry = { value; last_use = 0 } in
  Hashtbl.replace t.table key entry;
  touch t entry

let disk_lookup t key =
  match t.cache_dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir key in
    match (try Some (read_file path) with Sys_error _ | End_of_file -> None) with
    | None -> None
    | Some contents -> (
      match Json.of_string contents with
      | Ok v -> Some v
      | Error _ ->
        t.corrupt <- t.corrupt + 1;
        None))

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    touch t entry;
    t.hits <- t.hits + 1;
    Some entry.value
  | None -> (
    match disk_lookup t key with
    | Some value ->
      insert t key value;
      t.hits <- t.hits + 1;
      t.disk_hits <- t.disk_hits + 1;
      Some value
    | None ->
      t.misses <- t.misses + 1;
      None)

let persist t key value =
  match t.cache_dir with
  | None -> ()
  | Some dir -> (
    try
      mkdir_p dir;
      let final = entry_path dir key in
      let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      (* If the write or the rename fails the temp file must not survive:
         persist failures are swallowed, so nothing would ever clean it.
         The fsync before the rename is load-bearing for the daemon: rename
         is atomic with respect to concurrent readers, but without it the
         *data* may still be in the page cache when the directory entry
         lands, so a crash (or SIGKILL of a long-lived server) could leave a
         truncated-but-renamed entry that later readers would trust. Flush,
         fsync, close, then rename — in that order. *)
      match
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Json.to_string value);
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc));
        Sys.rename tmp final
      with
      | () -> ()
      | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e
    with Sys_error _ | Unix.Unix_error (_, _, _) -> ())

let store t key value =
  insert t key value;
  persist t key value;
  t.stores <- t.stores + 1

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    disk_hits = t.disk_hits;
    corrupt = t.corrupt;
    stores = t.stores;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d hits (%d from disk), %d misses, %d evictions, %d corrupt, %d stores" s.hits
    s.disk_hits s.misses s.evictions s.corrupt s.stores
