type stats = {
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;
  corrupt : int;
  stores : int;
}

type entry = {
  value : Json.t;
  mutable last_use : int;
  family : (string * int array) option;
      (** shape-family key and structural bounds parsed from the document's
          ["family"]/["bounds"] fields, if present — feeds {!nearest} *)
}

type t = {
  capacity : int;
  cache_dir : string option;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;  (** monotone access counter driving LRU order *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable corrupt : int;
  mutable stores : int;
}

let create ?(capacity = 256) ?dir () =
  {
    capacity = max 1 capacity;
    cache_dir = dir;
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0;
    corrupt = 0;
    stores = 0;
  }

let capacity t = t.capacity

let size t = Hashtbl.length t.table

let dir t = t.cache_dir

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

(* Fingerprints are hex digests, but guard against any caller-provided key
   escaping the cache directory. *)
let safe_key key =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_') key

let entry_path dir key = Filename.concat dir (safe_key key ^ ".json")

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (* sunstone-lint: allow SA060 bounded local-disk cache read, not socket IO *)
    (fun () -> really_input_string ic (in_channel_length ic))

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    let victim = ref None in
    (* sunstone-lint: allow SA063 min-scan for the LRU victim; order-insensitive *)
    Hashtbl.iter
      (fun key entry ->
        match !victim with
        | Some (_, age) when age <= entry.last_use -> ()
        | _ -> victim := Some (key, entry.last_use))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
    | None -> ()
  end

(* Family metadata is parsed once at insert time, so {!nearest} scans plain
   entries instead of re-decoding JSON documents on every probe. Documents
   without the fields (older formats, non-pipeline values) simply never
   participate in neighbor selection. *)
let family_of_doc value =
  match (Json.member "family" value, Json.member "bounds" value) with
  | Some (Json.String fam), Some (Json.List bs) -> (
    let ints =
      List.fold_left
        (fun acc b -> match (acc, b) with Some l, Json.Int i -> Some (i :: l) | _ -> None)
        (Some []) bs
    in
    match ints with
    | Some l -> Some (fam, Array.of_list (List.rev l))
    | None -> None)
  | _ -> None

let insert t key value =
  if not (Hashtbl.mem t.table key) then evict_if_full t;
  Hashtbl.remove t.table key;
  let entry = { value; last_use = 0; family = family_of_doc value } in
  Hashtbl.replace t.table key entry;
  touch t entry

(* Disk entries are wrapped as [{"k":<exact key>,"d":<value>}]: [safe_key]
   is lossy (it maps every non-alphanumeric char to '_'), so distinct keys
   can share a file name. The exact key inside the document disambiguates —
   a mismatch means the file belongs to a colliding key and this lookup
   must miss, not return the other key's value. Mismatches and unwrapped
   documents count under [corrupt], like any other unusable entry. *)
let disk_lookup t key =
  match t.cache_dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir key in
    match (try Some (read_file path) with Sys_error _ | End_of_file -> None) with
    | None -> None
    | Some contents -> (
      match Json.of_string contents with
      | Ok (Json.Obj _ as doc) when Json.member "k" doc = Some (Json.String key) -> (
        match Json.member "d" doc with
        | Some v -> Some v
        | None ->
          t.corrupt <- t.corrupt + 1;
          None)
      | Ok _ ->
        t.corrupt <- t.corrupt + 1;
        None
      | Error _ ->
        t.corrupt <- t.corrupt + 1;
        None))

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    touch t entry;
    t.hits <- t.hits + 1;
    Some entry.value
  | None -> (
    match disk_lookup t key with
    | Some value ->
      insert t key value;
      t.hits <- t.hits + 1;
      t.disk_hits <- t.disk_hits + 1;
      Some value
    | None ->
      t.misses <- t.misses + 1;
      None)

let persist t key value =
  match t.cache_dir with
  | None -> ()
  | Some dir -> (
    try
      mkdir_p dir;
      let final = entry_path dir key in
      let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      (* If the write or the rename fails the temp file must not survive:
         persist failures are swallowed, so nothing would ever clean it.
         The fsync before the rename is load-bearing for the daemon: rename
         is atomic with respect to concurrent readers, but without it the
         *data* may still be in the page cache when the directory entry
         lands, so a crash (or SIGKILL of a long-lived server) could leave a
         truncated-but-renamed entry that later readers would trust. Flush,
         fsync, close, then rename — in that order. *)
      match
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc
              (Json.to_string (Json.Obj [ ("k", Json.String key); ("d", value) ]));
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc));
        Sys.rename tmp final
      with
      | () -> ()
      | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e
    with Sys_error _ | Unix.Unix_error (_, _, _) -> ())

let store t key value =
  insert t key value;
  persist t key value;
  t.stores <- t.stores + 1

(* Nearest family member by bound distance: sum of |ln(b/b')| over the
   structural bound vectors, i.e. symmetric relative scaling per dim. A
   read-only probe over the in-memory tier (disk entries join the index as
   they are promoted by [find]): no stats, no LRU refresh — neighbor
   probing must not perturb the hit/miss accounting the parity tests pin. *)
let nearest_many ?exclude_bounds t ~family ~bounds ~k =
  let narity = Array.length bounds in
  let distance bs =
    let acc = ref 0.0 in
    for i = 0 to narity - 1 do
      acc := !acc +. abs_float (log (float_of_int bounds.(i) /. float_of_int bs.(i)))
    done;
    !acc
  in
  let excluded bs = match exclude_bounds with Some ex -> ex = bs | None -> false in
  let matches = ref [] in
  (* sunstone-lint: allow SA063 scan sorted by a total (distance, key) order; iteration order cannot change the ranking *)
  Hashtbl.iter
    (fun key entry ->
      match entry.family with
      | Some (fam, bs) when fam = family && Array.length bs = narity && not (excluded bs) ->
        matches := (distance bs, key, entry.value) :: !matches
      | _ -> ())
    t.table;
  let sorted = List.sort (fun (d, key, _) (d', key', _) -> compare (d, key) (d', key')) !matches in
  List.filteri (fun i _ -> i < k) (List.map (fun (_, _, v) -> v) sorted)

let nearest ?exclude_bounds t ~family ~bounds =
  match nearest_many ?exclude_bounds t ~family ~bounds ~k:1 with
  | value :: _ -> Some value
  | [] -> None

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    disk_hits = t.disk_hits;
    corrupt = t.corrupt;
    stores = t.stores;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d hits (%d from disk), %d misses, %d evictions, %d corrupt, %d stores" s.hits
    s.disk_hits s.misses s.evictions s.corrupt s.stores
