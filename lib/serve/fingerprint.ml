module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module Opt = Sun_core.Optimizer

(* ------------------------------------------------------------------ *)
(* Workload canonicalization                                           *)
(* ------------------------------------------------------------------ *)

(* A dimension's structural signature: its bound plus every (operand, axis,
   coefficient) position where it appears. Coefficient 0 marks a plain [Dim]
   axis, distinguishing it from an affine term with coefficient 1. *)
let dim_signature (w : W.t) d =
  let occurrences =
    List.concat
      (List.mapi
         (fun op_idx (op : W.operand) ->
           List.concat
             (List.mapi
                (fun ax_idx idx ->
                  match idx with
                  | W.Dim d' when d' = d -> [ (op_idx, ax_idx, 0) ]
                  | W.Dim _ -> []
                  | W.Affine terms ->
                    List.filter_map
                      (fun (d', c) -> if d' = d then Some (op_idx, ax_idx, c) else None)
                      terms)
                op.W.indices))
         w.W.operands)
  in
  (W.bound w d, List.sort compare occurrences)

(* Canonical renaming: dims sorted by signature become d0, d1, ... Dims with
   equal signatures occupy the same positions everywhere, so either order of
   a tie yields the same canonical rendering. *)
let canonical_renaming (w : W.t) =
  let signed = List.map (fun d -> (dim_signature w d, d)) (W.dim_names w) in
  let sorted = List.sort compare signed in
  List.mapi (fun i (_, d) -> (d, Printf.sprintf "d%d" i)) sorted

(* Operand rendering shared by the canonical (bound-carrying) and the
   structural (bound-free) forms; [name_of] supplies the dim renaming. *)
let render_operands buf name_of (w : W.t) =
  Buffer.add_string buf "ops{";
  List.iter
    (fun (op : W.operand) ->
      Buffer.add_string buf op.W.name;
      Buffer.add_string buf (match op.W.kind with `Input -> ":in[" | `Output -> ":out[");
      List.iter
        (fun idx ->
          (match idx with
          | W.Dim d -> Buffer.add_string buf (name_of d)
          | W.Affine terms ->
            let canon =
              List.sort compare (List.map (fun (d, c) -> (name_of d, c)) terms)
            in
            Buffer.add_char buf '(';
            List.iter (fun (r, c) -> Buffer.add_string buf (Printf.sprintf "%d*%s+" c r)) canon;
            Buffer.add_char buf ')');
          Buffer.add_char buf ',')
        op.W.indices;
      Buffer.add_string buf "];")
    w.W.operands;
  Buffer.add_char buf '}'

let canonical_workload (w : W.t) =
  let rename = canonical_renaming w in
  let name_of d = List.assoc d rename in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "dims{";
  List.iter
    (fun (d, r) -> Buffer.add_string buf (Printf.sprintf "%s:%d;" r (W.bound w d)))
    (List.sort (fun (_, a) (_, b) -> compare a b) rename);
  Buffer.add_char buf '}';
  render_operands buf name_of w;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Structural form: the canonical form minus the bounds                 *)
(* ------------------------------------------------------------------ *)

(* Structural ordering of the dims: primarily by the bound-free occurrence
   signature (rename- and bound-invariant), then by bound, then by original
   name. The bound tiebreak gives two workloads of the same shape family a
   canonical position-by-position dim correspondence (smallest bound to
   smallest bound within a tied group); the name tiebreak only separates
   dims that are fully automorphic, where either order is equivalent. *)
let structural_order (w : W.t) =
  let keyed =
    List.map (fun d -> ((snd (dim_signature w d), W.bound w d, d), d)) (W.dim_names w)
  in
  List.map snd (List.sort compare keyed)

let structural_dims = structural_order

let structural_bounds (w : W.t) =
  Array.of_list (List.map (W.bound w) (structural_order w))

let structural_workload (w : W.t) =
  let rename = List.mapi (fun i d -> (d, Printf.sprintf "d%d" i)) (structural_order w) in
  let name_of d = List.assoc d rename in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "dims{";
  List.iter
    (fun (_, r) ->
      Buffer.add_string buf r;
      Buffer.add_char buf ';')
    rename;
  Buffer.add_char buf '}';
  render_operands buf name_of w;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Architecture and config rendering (no invariances needed)           *)
(* ------------------------------------------------------------------ *)

let render_arch (a : A.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "arch:%s;mac:%g;tput:%d;" a.A.arch_name a.A.mac_energy a.A.mac_throughput);
  List.iter
    (fun (l : A.level) ->
      Buffer.add_string buf
        (Printf.sprintf "level:%s;fanout:%d;mcast:%b;hop:%g;unbounded:%b;" l.A.level_name l.A.fanout
           l.A.multicast l.A.noc_hop_energy l.A.unbounded);
      List.iter
        (fun (p : A.partition) ->
          Buffer.add_string buf
            (Printf.sprintf "part:%s;cap:%d;re:%g;we:%g;bw:%g;accepts:" p.A.part_name
               p.A.capacity_words p.A.read_energy p.A.write_energy p.A.bandwidth);
          (match p.A.accepts with
          | `All -> Buffer.add_string buf "*"
          | `Roles roles -> Buffer.add_string buf (String.concat "," roles));
          Buffer.add_char buf ';')
        l.A.partitions)
    a.A.levels;
  Buffer.contents buf

let render_config (c : Opt.config) =
  Printf.sprintf "dir:%s;intra:%s;beam:%d;ab:%b;util:%g;refine:%b"
    (match c.Opt.direction with Opt.Bottom_up -> "bu" | Opt.Top_down -> "td")
    (match c.Opt.intra with
    | Opt.Ordering_first -> "ord"
    | Opt.Tiling_first -> "tile"
    | Opt.Unrolling_first -> "unroll")
    c.Opt.beam_width c.Opt.alpha_beta c.Opt.min_spatial_utilization c.Opt.refine

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

let digest s = Digest.to_hex (Digest.string s)

let workload w = digest (canonical_workload w)

let arch a = digest (render_arch a)

let config c = digest (render_config c)

let request ?(config = Opt.default_config) w a =
  digest
    (String.concat "\n" [ canonical_workload w; render_arch a; render_config config ])

let structural ?(config = Opt.default_config) w a =
  digest
    (String.concat "\n" [ structural_workload w; render_arch a; render_config config ])
