type 'a entry = { deadline : float; seq : int; payload : 'a }

type 'a t = { mutable heap : 'a entry array; mutable len : int }

(* The array holds a dummy sentinel in unused slots; it is never read. *)
let create () = { heap = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

(* Lexicographic (deadline, seq): the seq tie-break makes the heap a stable
   FIFO among equal deadlines, including the common all-[infinity] case. *)
let before a b = a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~deadline ~seq payload =
  let e = { deadline; seq; payload } in
  if t.len = Array.length t.heap then begin
    let grown = Array.make (max 8 (2 * t.len)) e in
    Array.blit t.heap 0 grown 0 t.len;
    t.heap <- grown
  end;
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some (t.heap.(0).deadline, t.heap.(0).payload)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    (* overwrite the vacated slot: it would otherwise keep a second live
       reference to the entry that was just moved to the root *)
    t.heap.(t.len) <- top;
    Some (top.deadline, top.payload)
  end
