(* Parallel-array binary min-heap: deadlines in a flat [floatarray], seqs
   and payloads in plain arrays, all indexed together. The split layout is
   what makes {!push}/{!pop} allocation-free — an entry record holding a
   float field would box the float on every push, and the old
   [(deadline, payload)] option result of [pop] cost a tuple and a [Some]
   per dispatch. The serving daemon pops once per dispatched request, so
   this pair is a hot root of the SA070 allocation lint (see
   DESIGN.md §3.8) and is pinned to zero words by the Gc harness in
   [test/test_model_hot.ml]. *)

exception Empty

type 'a t = {
  mutable deadlines : floatarray;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
}

let create () =
  { deadlines = Float.Array.create 0; seqs = [||]; payloads = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

(* Lexicographic (deadline, seq): the seq tie-break makes the heap a stable
   FIFO among equal deadlines, including the common all-[infinity] case. *)
let before t i j =
  let di = Float.Array.get t.deadlines i and dj = Float.Array.get t.deadlines j in
  di < dj || (di = dj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let d = Float.Array.get t.deadlines i in
  Float.Array.set t.deadlines i (Float.Array.get t.deadlines j);
  Float.Array.set t.deadlines j d;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.len && before t l i then l else i in
  let smallest = if r < t.len && before t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

(* Doubling growth, amortized O(1) per push; [payload] seeds the new slots
   so the payload array never holds a value of no provenance. Callers that
   need a strictly allocation-free steady state push/pop once per expected
   capacity first (the Gc harness pre-warms exactly this way). *)
let grow t payload =
  let cap = max 8 (2 * t.len) in
  let deadlines = Float.Array.make cap 0.0 in
  Float.Array.blit t.deadlines 0 deadlines 0 t.len;
  (* sunstone-lint: allow SA070 amortized capacity doubling, pre-warmed by steady-state callers *)
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  (* sunstone-lint: allow SA070 amortized capacity doubling, pre-warmed by steady-state callers *)
  let payloads = Array.make cap payload in
  Array.blit t.payloads 0 payloads 0 t.len;
  t.deadlines <- deadlines;
  t.seqs <- seqs;
  t.payloads <- payloads

(* sunstone-hot *)
let push t ~deadline ~seq payload =
  if t.len = Array.length t.payloads then grow t payload;
  Float.Array.set t.deadlines t.len deadline;
  t.seqs.(t.len) <- seq;
  t.payloads.(t.len) <- payload;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(* sunstone-hot *)
let pop t =
  if t.len = 0 then raise Empty;
  let payload = t.payloads.(0) in
  let n = t.len - 1 in
  t.len <- n;
  if n > 0 then begin
    Float.Array.set t.deadlines 0 (Float.Array.get t.deadlines n);
    t.seqs.(0) <- t.seqs.(n);
    t.payloads.(0) <- t.payloads.(n);
    sift_down t 0;
    (* overwrite the vacated slot with the (live anyway) root payload so the
       heap keeps no hidden reference to the entry just popped *)
    t.payloads.(n) <- t.payloads.(0)
  end;
  payload

let pop_opt t =
  if t.len = 0 then None
  else begin
    let deadline = Float.Array.get t.deadlines 0 in
    Some (deadline, pop t)
  end

let peek t =
  if t.len = 0 then None else Some (Float.Array.get t.deadlines 0, t.payloads.(0))
