(** The one name → workload / architecture table.

    Previously the CLI owned a private copy of this table; the batch
    pipeline, the benchmarks and the CLI now all resolve names here, so a
    workload spelled ["resnet18/conv2_x"] in a JSONL request, on the
    [sunstone schedule] command line, and in a benchmark is guaranteed to be
    the same workload. *)

val workloads : unit -> (string * Sun_tensor.Workload.t) list
(** Every built-in workload: the Table II tensor-algebra catalog instances,
    the ResNet-18 and Inception conv layers, and the non-DNN suites. *)

val architectures : (string * Sun_arch.Arch.t) list
(** The named architecture presets (paper Table IV plus toy). *)

val find_workload : string -> (Sun_tensor.Workload.t, string) result
(** Resolves a workload name; the error message lists how to discover
    names. *)

val find_arch : string -> (Sun_arch.Arch.t, string) result
