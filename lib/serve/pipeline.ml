module Opt = Sun_core.Optimizer
module D = Sun_analysis.Diagnostic

type outcome = Hit | Computed | Failed

type summary = {
  requests : int;
  hits : int;
  computed : int;
  errors : int;
  wall_s : float;
  cache_stats : Cache.stats option;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

(* A [workload] / [arch] field is a registry name or an inline document. *)
let resolve name_field decode_inline find json =
  let* v = Json.field name_field json in
  match v with
  | Json.String name ->
    let* x = find name in
    Ok (name, x)
  | Json.Obj _ ->
    let* x = decode_inline v in
    Ok ("<inline>", x)
  | _ -> Error (Printf.sprintf "%s: expected a name or an inline object" name_field)

let request_config ~base json =
  let* beam =
    match Json.member "beam" json with
    | None -> Ok base.Opt.beam_width
    | Some v -> Json.as_int v
  in
  let* direction =
    match Json.member "top_down" json with
    | None -> Ok base.Opt.direction
    | Some v ->
      let* td = Json.as_bool v in
      Ok (if td then Opt.Top_down else Opt.Bottom_up)
  in
  Ok { base with Opt.beam_width = beam; direction }

let request_id ~index json =
  match Json.member "id" json with
  | Some (Json.String s) -> s
  | Some v -> Json.to_string v
  | None -> Printf.sprintf "line%d" index

(* ------------------------------------------------------------------ *)
(* Response construction                                                *)
(* ------------------------------------------------------------------ *)

let error_response ?(diagnostics = []) ~line ~id msg =
  Json.Obj
    ([
       ("v", Json.Int Codec.version);
       ("id", Json.String id);
       ("status", Json.String "error");
       ("line", Json.Int line);
       ("error", Json.String msg);
     ]
    @
    if diagnostics = [] then []
    else [ ("diagnostics", Json.List (List.map Codec.encode_diagnostic diagnostics)) ])

let result_response ~id ~status ~fingerprint ~workload_name ~arch_name ~mapping_json ~cost_json
    ~(cost : Sun_cost.Model.cost) ~wall_s =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("id", Json.String id);
      ("status", Json.String status);
      ("workload", Json.String workload_name);
      ("arch", Json.String arch_name);
      ("fingerprint", Json.String fingerprint);
      ("mapping", mapping_json);
      ("cost", cost_json);
      ("energy_pj", Json.Float cost.Sun_cost.Model.energy_pj);
      ("cycles", Json.Float cost.Sun_cost.Model.cycles);
      ("edp", Json.Float cost.Sun_cost.Model.edp);
      ("wall_s", Json.Float wall_s);
    ]

(* ------------------------------------------------------------------ *)
(* The pipeline proper                                                  *)
(* ------------------------------------------------------------------ *)

(* A usable cached document decodes into a valid mapping and cost for this
   workload; anything else (truncated write survivors, schema drift) is a
   miss. *)
let decode_cached w doc =
  let* mapping_json = Json.field "mapping" doc in
  let* cost_json = Json.field "cost" doc in
  let* (_ : Sun_mapping.Mapping.t) = Codec.decode_mapping w mapping_json in
  let* cost = Codec.decode_cost cost_json in
  Ok (mapping_json, cost_json, cost)

(* Errors in the request chain carry the static-analysis diagnostics that
   produced them (empty for plain decode failures). *)
let plain r = Result.map_error (fun msg -> (msg, [])) r

let handle_request ?cache ~config ~index line =
  let timer = Sun_util.Stopwatch.start () in
  let line_no = index + 1 in
  let finish outcome response = (outcome, response) in
  match Json.of_string line with
  | Error msg ->
    finish Failed
      (error_response ~line:line_no ~id:(Printf.sprintf "line%d" index) ("bad request: " ^ msg))
  | Ok json -> (
    let id = request_id ~index json in
    let handled =
      let* () =
        match Json.member "v" json with
        | None -> Ok ()
        | Some (Json.Int v) when v = Codec.version -> Ok ()
        | Some v -> Error (Printf.sprintf "unsupported request version %s" (Json.to_string v), [])
      in
      let* workload_name, w =
        plain (resolve "workload" Codec.decode_workload Registry.find_workload json)
      in
      let* arch_name, a = plain (resolve "arch" Codec.decode_arch Registry.find_arch json) in
      let* config = plain (request_config ~base:config json) in
      (* static well-formedness gate: an inline arch or workload that would
         crash or nonsense-cost the optimizer is rejected with diagnostics *)
      let wf = Sun_analysis.Wellformed.check_request ~config w a in
      let* () =
        if D.has_errors wf then Error ("request rejected by static analysis", D.errors wf)
        else Ok ()
      in
      let fingerprint = Fingerprint.request ~config w a in
      match Json.member "mapping" json with
      | Some mapping_json ->
        (* evaluate a caller-supplied mapping instead of searching *)
        let* levels = plain (Codec.decode_mapping_raw mapping_json) in
        let diags = Sun_analysis.Legality.check_all w a levels in
        let* () =
          if D.has_errors diags then Error ("mapping rejected by static analysis", D.errors diags)
          else Ok ()
        in
        let* m = plain (Sun_mapping.Mapping.make w levels) in
        let* cost = plain (Sun_cost.Model.evaluate w a m) in
        Ok
          ( Computed,
            result_response ~id ~status:"evaluated" ~fingerprint ~workload_name ~arch_name
              ~mapping_json ~cost_json:(Codec.encode_cost cost) ~cost
              ~wall_s:(Sun_util.Stopwatch.elapsed_s timer) )
      | None -> (
        let cached =
          match cache with
          | None -> None
          | Some c -> (
            match Cache.find c fingerprint with
            | None -> None
            | Some doc -> (
              match decode_cached w doc with Ok hit -> Some hit | Error _ -> None))
        in
        match cached with
        | Some (mapping_json, cost_json, cost) ->
          Ok
            ( Hit,
              result_response ~id ~status:"hit" ~fingerprint ~workload_name ~arch_name ~mapping_json
                ~cost_json ~cost ~wall_s:(Sun_util.Stopwatch.elapsed_s timer) )
        | None -> (
          match Opt.optimize ~config w a with
          | Error msg -> Error (Printf.sprintf "no valid mapping: %s" msg, [])
          | Ok r ->
            let mapping_json = Codec.encode_mapping r.Opt.mapping in
            let cost_json = Codec.encode_cost r.Opt.cost in
            (match cache with
            | Some c ->
              Cache.store c fingerprint
                (Json.Obj
                   [ ("v", Json.Int Codec.version); ("mapping", mapping_json); ("cost", cost_json) ])
            | None -> ());
            Ok
              ( Computed,
                result_response ~id ~status:"computed" ~fingerprint ~workload_name ~arch_name
                  ~mapping_json ~cost_json ~cost:r.Opt.cost
                  ~wall_s:(Sun_util.Stopwatch.elapsed_s timer) )))
    in
    match handled with
    | Ok (outcome, response) -> finish outcome response
    | Error (msg, diagnostics) ->
      finish Failed (error_response ~diagnostics ~line:line_no ~id msg))

let run_channels ?cache ?(config = Opt.default_config) ic oc =
  let timer = Sun_util.Stopwatch.start () in
  let requests = ref 0 and hits = ref 0 and computed = ref 0 and errors = ref 0 in
  let index = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr index;
       if String.trim line <> "" then begin
         incr requests;
         let outcome, response = handle_request ?cache ~config ~index:(!index - 1) line in
         (match outcome with
         | Hit -> incr hits
         | Computed -> incr computed
         | Failed -> incr errors);
         output_string oc (Json.to_string response);
         output_char oc '\n'
       end
     done
   with End_of_file -> ());
  flush oc;
  {
    requests = !requests;
    hits = !hits;
    computed = !computed;
    errors = !errors;
    wall_s = Sun_util.Stopwatch.elapsed_s timer;
    cache_stats = Option.map Cache.stats cache;
  }

let run_files ?cache ?config ~input ~output () =
  let ic = if input = "-" then stdin else open_in input in
  Fun.protect
    ~finally:(fun () -> if input <> "-" then close_in_noerr ic)
    (fun () ->
      let oc = if output = "-" then stdout else open_out output in
      Fun.protect
        ~finally:(fun () -> if output <> "-" then close_out_noerr oc)
        (fun () -> run_channels ?cache ?config ic oc))

let summary_line s =
  let cache_part =
    match s.cache_stats with
    | None -> "cache disabled"
    | Some st -> Format.asprintf "cache: %a" Cache.pp_stats st
  in
  Printf.sprintf "%d requests: %d hits, %d computed, %d errors in %.2fs (%s)" s.requests s.hits
    s.computed s.errors s.wall_s cache_part
