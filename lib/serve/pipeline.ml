module Opt = Sun_core.Optimizer
module D = Sun_analysis.Diagnostic
module Tel = Sun_telemetry.Metrics

type outcome = Hit | Computed | Failed

type summary = {
  requests : int;
  hits : int;
  computed : int;
  errors : int;
  wall_s : float;
  hit_s : float;
  computed_s : float;
  error_s : float;
  jobs : int;
  cache_stats : Cache.stats option;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

(* A [workload] / [arch] field is a registry name or an inline document. *)
let resolve name_field decode_inline find json =
  let* v = Json.field name_field json in
  match v with
  | Json.String name ->
    let* x = find name in
    Ok (name, x)
  | Json.Obj _ ->
    let* x = decode_inline v in
    Ok ("<inline>", x)
  | _ -> Error (Printf.sprintf "%s: expected a name or an inline object" name_field)

let request_config ~base json =
  let* beam =
    match Json.member "beam" json with
    | None -> Ok base.Opt.beam_width
    | Some v -> Json.as_int v
  in
  let* direction =
    match Json.member "top_down" json with
    | None -> Ok base.Opt.direction
    | Some v ->
      let* td = Json.as_bool v in
      Ok (if td then Opt.Top_down else Opt.Bottom_up)
  in
  Ok { base with Opt.beam_width = beam; direction }

(* Default ids use the same 1-based line number as the [line] field of
   error responses, so "line3" always means input line 3. *)
let default_id ~index = Printf.sprintf "line%d" (index + 1)

let request_id ~index json =
  match Json.member "id" json with
  | Some (Json.String s) -> s
  | Some v -> Json.to_string v
  | None -> default_id ~index

(* ------------------------------------------------------------------ *)
(* Response construction                                                *)
(* ------------------------------------------------------------------ *)

let error_response ?(diagnostics = []) ~line ~id msg =
  Json.Obj
    ([
       ("v", Json.Int Codec.version);
       ("id", Json.String id);
       ("status", Json.String "error");
       ("line", Json.Int line);
       ("error", Json.String msg);
     ]
    @
    if diagnostics = [] then []
    else [ ("diagnostics", Json.List (List.map Codec.encode_diagnostic diagnostics)) ])

let result_response ~id ~status ~fingerprint ~workload_name ~arch_name ~mapping_json ~cost_json
    ~(cost : Sun_cost.Model.cost) ~wall_s =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("id", Json.String id);
      ("status", Json.String status);
      ("workload", Json.String workload_name);
      ("arch", Json.String arch_name);
      ("fingerprint", Json.String fingerprint);
      ("mapping", mapping_json);
      ("cost", cost_json);
      ("energy_pj", Json.Float cost.Sun_cost.Model.energy_pj);
      ("cycles", Json.Float cost.Sun_cost.Model.cycles);
      ("edp", Json.Float cost.Sun_cost.Model.edp);
      ("wall_s", Json.Float wall_s);
    ]

(* ------------------------------------------------------------------ *)
(* The two phases of a request                                          *)
(* ------------------------------------------------------------------ *)

(* A usable cached document decodes into a valid mapping and cost for this
   workload; anything else (truncated write survivors, schema drift) is a
   miss. *)
let decode_cached w doc =
  let* mapping_json = Json.field "mapping" doc in
  let* cost_json = Json.field "cost" doc in
  let* (_ : Sun_mapping.Mapping.t) = Codec.decode_mapping w mapping_json in
  let* cost = Codec.decode_cost cost_json in
  Ok (mapping_json, cost_json, cost)

(* Errors in the request chain carry the static-analysis diagnostics that
   produced them (empty for plain decode failures). *)
let plain r = Result.map_error (fun msg -> (msg, [])) r

(* Everything about a request that can be decided without searching. *)
type parsed = {
  id : string;
  workload_name : string;
  w : Sun_tensor.Workload.t;
  arch_name : string;
  a : Sun_arch.Arch.t;
  config : Opt.config;
  fingerprint : string;
  eval_mapping : Json.t option;
}

let parse_request ~config:base ~index line =
  Tel.span "serve.parse_s" @@ fun () ->
  match Json.of_string line with
  | Error msg -> Error (default_id ~index, "bad request: " ^ msg, [])
  | Ok json ->
    let id = request_id ~index json in
    Result.map_error
      (fun (msg, diagnostics) -> (id, msg, diagnostics))
      (let* () =
         match Json.member "v" json with
         | None -> Ok ()
         | Some (Json.Int v) when v = Codec.version -> Ok ()
         | Some v -> Error (Printf.sprintf "unsupported request version %s" (Json.to_string v), [])
       in
       let* workload_name, w =
         plain (resolve "workload" Codec.decode_workload Registry.find_workload json)
       in
       let* arch_name, a = plain (resolve "arch" Codec.decode_arch Registry.find_arch json) in
       let* config = plain (request_config ~base json) in
       (* static well-formedness gate: an inline arch or workload that would
          crash or nonsense-cost the optimizer is rejected with diagnostics *)
       let wf =
         Tel.span "serve.gate_s" (fun () -> Sun_analysis.Wellformed.check_request ~config w a)
       in
       let* () =
         if D.has_errors wf then Error ("request rejected by static analysis", D.errors wf)
         else Ok ()
       in
       Ok
         {
           id;
           workload_name;
           w;
           arch_name;
           a;
           config;
           fingerprint = Fingerprint.request ~config w a;
           eval_mapping = Json.member "mapping" json;
         })

(* Phase 1 (always run in the parent, which is the only cache user): decide
   whether a request is already answerable — malformed, statically rejected,
   or a cache hit — or needs compute. [in_flight] lets the parallel driver
   defer a search whose fingerprint is already being computed *before* the
   cache is consulted, so cache counters match the sequential run exactly. *)
type classified =
  | Final of outcome * Json.t * float  (** response ready; per-request wall seconds *)
  | Deferred of string  (** same fingerprint already dispatched; retry after it lands *)
  | Dispatch of {
      fp : string option;  (** [Some fp] = cacheable search *)
      seed : Sun_mapping.Mapping.level_mapping list option;
          (** transferred nearest-neighbor mapping for the optimizer *)
    }

let classify ?cache ?(in_flight = fun _ -> false) ~config ~index line =
  let timer = Sun_util.Stopwatch.start () in
  let line_no = index + 1 in
  match parse_request ~config ~index line with
  | Error (id, msg, diagnostics) ->
    Final
      ( Failed,
        error_response ~diagnostics ~line:line_no ~id msg,
        Sun_util.Stopwatch.elapsed_s timer )
  | Ok p -> (
    match p.eval_mapping with
    | Some _ ->
      Dispatch { fp = None; seed = None } (* evaluations never touch the cache *)
    | None -> (
      match cache with
      | None ->
        Dispatch { fp = None; seed = None } (* caching disabled: every search computes *)
      | Some c ->
        if in_flight p.fingerprint then Deferred p.fingerprint
        else (
          let cached =
            match Tel.span "serve.cache_s" (fun () -> Cache.find c p.fingerprint) with
            | None -> None
            | Some doc -> (
              match decode_cached p.w doc with Ok hit -> Some hit | Error _ -> None)
          in
          match cached with
          | Some (mapping_json, cost_json, cost) ->
            Final
              ( Hit,
                result_response ~id:p.id ~status:"hit" ~fingerprint:p.fingerprint
                  ~workload_name:p.workload_name ~arch_name:p.arch_name ~mapping_json ~cost_json
                  ~cost ~wall_s:(Sun_util.Stopwatch.elapsed_s timer),
                Sun_util.Stopwatch.elapsed_s timer )
          | None ->
            (* miss: try to warm-start from the nearest cached family
               member (parent-side — workers never see the cache) *)
            Dispatch
              {
                fp = Some p.fingerprint;
                seed = Transfer.find_seed ~cache:c ~config:p.config p.w p.a;
              })))

(* Phase 2 (worker side, or inline when [jobs <= 1]): the actual search or
   evaluation. Never consults the cache; instead returns the document the
   parent should store, keeping the parent the single cache writer. *)
let compute ?seed ~config ~index line =
  let timer = Sun_util.Stopwatch.start () in
  let line_no = index + 1 in
  match parse_request ~config ~index line with
  | Error (id, msg, diagnostics) ->
    (Failed, error_response ~diagnostics ~line:line_no ~id msg, None,
     Sun_util.Stopwatch.elapsed_s timer)
  | Ok p -> (
    let finish = function
      | Ok (outcome, response, store) -> (outcome, response, store, Sun_util.Stopwatch.elapsed_s timer)
      | Error (msg, diagnostics) ->
        (Failed, error_response ~diagnostics ~line:line_no ~id:p.id msg, None,
         Sun_util.Stopwatch.elapsed_s timer)
    in
    match p.eval_mapping with
    | Some mapping_json ->
      (* evaluate a caller-supplied mapping instead of searching *)
      finish
        (let* levels = plain (Codec.decode_mapping_raw mapping_json) in
         let diags = Sun_analysis.Legality.check_all p.w p.a levels in
         let* () =
           if D.has_errors diags then Error ("mapping rejected by static analysis", D.errors diags)
           else Ok ()
         in
         let* m = plain (Sun_mapping.Mapping.make p.w levels) in
         let* cost =
           plain (Tel.span "serve.compute_s" (fun () -> Sun_cost.Model.evaluate p.w p.a m))
         in
         Ok
           ( Computed,
             result_response ~id:p.id ~status:"evaluated" ~fingerprint:p.fingerprint
               ~workload_name:p.workload_name ~arch_name:p.arch_name ~mapping_json
               ~cost_json:(Codec.encode_cost cost) ~cost
               ~wall_s:(Sun_util.Stopwatch.elapsed_s timer),
             None ))
    | None ->
      finish
        (match
           Tel.span "serve.compute_s" (fun () -> Opt.optimize ~config:p.config ?seed p.w p.a)
         with
        | Error msg -> Error (Printf.sprintf "no valid mapping: %s" msg, [])
        | Ok r ->
          (* Response gate: re-check legality, re-derive the cost (SA037 on
             drift) and re-verify order subsumption before the mapping is
             returned or cached. The test hook ["x-sunstone-test-corrupt-cost":
             true] doubles the claimed numbers so tests can prove the gate
             fires. *)
          let claimed_energy, claimed_edp =
            let corrupt =
              match Json.of_string line with
              | Ok json -> Json.member "x-sunstone-test-corrupt-cost" json <> None
              | Error _ -> false
            in
            if corrupt then
              (r.Opt.cost.Sun_cost.Model.energy_pj *. 2.0, r.Opt.cost.Sun_cost.Model.edp *. 2.0)
            else (r.Opt.cost.Sun_cost.Model.energy_pj, r.Opt.cost.Sun_cost.Model.edp)
          in
          let audit =
            Tel.span "serve.recheck_s" (fun () ->
                Sun_analysis.Audit.recheck ~binding:p.config.Opt.binding p.w p.a r.Opt.mapping
                  ~claimed_energy ~claimed_edp)
          in
          if D.has_errors audit then
            Error ("mapping rejected by audit recheck", D.errors audit)
          else
          let mapping_json = Codec.encode_mapping r.Opt.mapping in
          let cost_json = Codec.encode_cost r.Opt.cost in
          let doc =
            (* family/bounds/sdims make the stored document self-describing
               for the cache's shape-family index ({!Transfer}) *)
            Json.Obj
              ([ ("v", Json.Int Codec.version); ("mapping", mapping_json); ("cost", cost_json) ]
              @ Transfer.family_fields ~config:p.config p.w p.a)
          in
          Ok
            ( Computed,
              result_response ~id:p.id ~status:"computed" ~fingerprint:p.fingerprint
                ~workload_name:p.workload_name ~arch_name:p.arch_name ~mapping_json ~cost_json
                ~cost:r.Opt.cost ~wall_s:(Sun_util.Stopwatch.elapsed_s timer),
              Some (p.fingerprint, doc) )))

(* ------------------------------------------------------------------ *)
(* Shared bookkeeping                                                   *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_requests : int;
  mutable c_hits : int;
  mutable c_computed : int;
  mutable c_errors : int;
  mutable c_hit_s : float;
  mutable c_computed_s : float;
  mutable c_error_s : float;
}

let fresh_counters () =
  { c_requests = 0; c_hits = 0; c_computed = 0; c_errors = 0; c_hit_s = 0.; c_computed_s = 0.;
    c_error_s = 0. }

(* Outcome counters are tallied here, in the parent, for sequential and
   parallel runs alike — one of the invariants behind the jobs-1-vs-jobs-N
   counter parity the tests and ci.sh enforce. *)
let count cnt outcome wall =
  (match outcome with
  | Hit -> Tel.count "serve.hits" 1
  | Computed -> Tel.count "serve.computed" 1
  | Failed -> Tel.count "serve.errors" 1);
  match outcome with
  | Hit ->
    cnt.c_hits <- cnt.c_hits + 1;
    cnt.c_hit_s <- cnt.c_hit_s +. wall
  | Computed ->
    cnt.c_computed <- cnt.c_computed + 1;
    cnt.c_computed_s <- cnt.c_computed_s +. wall
  | Failed ->
    cnt.c_errors <- cnt.c_errors + 1;
    cnt.c_error_s <- cnt.c_error_s +. wall

let store_if ?cache = function
  | Some (key, doc) -> (
    match cache with
    | Some c ->
      Tel.count "serve.cache_stores" 1;
      Cache.store c key doc
    | None -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Sequential driver (jobs <= 1)                                        *)
(* ------------------------------------------------------------------ *)

let run_sequential ?cache ~config cnt ic oc =
  let index = ref 0 in
  try
    while true do
      let line = input_line ic in
      incr index;
      if String.trim line <> "" then begin
        cnt.c_requests <- cnt.c_requests + 1;
        Tel.count "serve.requests" 1;
        let idx = !index - 1 in
        let outcome, response, wall =
          match classify ?cache ~config ~index:idx line with
          | Final (outcome, response, wall) -> (outcome, response, wall)
          | Deferred _ ->
            (* unreachable sequentially (no in_flight), but compute is the
               right fallback either way *)
            let outcome, response, store, wall = compute ~config ~index:idx line in
            store_if ?cache store;
            (outcome, response, wall)
          | Dispatch { seed; _ } ->
            let outcome, response, store, wall = compute ?seed ~config ~index:idx line in
            store_if ?cache store;
            (outcome, response, wall)
        in
        count cnt outcome wall;
        output_string oc (Json.to_string response);
        output_char oc '\n'
      end
    done
  with End_of_file -> ()

(* ------------------------------------------------------------------ *)
(* Parallel driver (jobs >= 2)                                          *)
(* ------------------------------------------------------------------ *)

(* Test-only crash hooks, honored exclusively on the worker side so the
   sequential path has zero extra moving parts: a request carrying
   ["x-sunstone-test-crash": true] kills its worker mid-job (both the first
   attempt and the pool's retry, so the request surfaces as an error);
   ["x-sunstone-test-crash-once": PATH] kills the worker only while PATH
   exists and removes it first, so the retry succeeds. *)
let worker_crash_hooks line =
  match Json.of_string line with
  | Error _ -> ()
  | Ok json -> (
    (match Json.member "x-sunstone-test-crash-once" json with
    | Some (Json.String path) when Sys.file_exists path ->
      (try Sys.remove path with Sys_error _ -> ());
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    match Json.member "x-sunstone-test-crash" json with
    | Some (Json.Bool true) -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ())

(* The id of a crashed request has to be recovered in the parent: the
   worker that knew it is gone. *)
let crash_error_response ~index ~line msg =
  let id =
    match Json.of_string line with
    | Ok json -> request_id ~index json
    | Error _ -> default_id ~index
  in
  error_response ~line:(index + 1) ~id msg

(* The worker-side job function, shared by the batch driver below and the
   serving daemon ({!Server}). Each worker resets its (copy-on-write
   inherited) telemetry registry before the job and ships a snapshot back
   with the result; the parent merges it on receipt. A crashed attempt's
   counts die with the process, so a retried job is counted exactly once —
   keeping jobs-N totals equal to jobs-1. *)
let worker ~config (index, line, seed) =
  worker_crash_hooks line;
  if Tel.enabled () then Tel.reset ();
  let outcome, response, store, wall = compute ?seed ~config ~index line in
  let tel = if Tel.enabled () then Some (Tel.snapshot ()) else None in
  (outcome, Json.to_string response, store, wall, tel)

let run_parallel ?cache ~config ~jobs cnt ic oc =
  let pool = Parpool.create ~jobs ~f:(worker ~config) () in
  Fun.protect ~finally:(fun () -> Parpool.shutdown pool) @@ fun () ->
  let index = ref 0 in
  let next_seq = ref 0 in
  let emit_next = ref 0 in
  let out_buf : (int, string) Hashtbl.t = Hashtbl.create 64 in
  (* fingerprints with a search in flight, and the requests waiting on them *)
  let in_flight_fp : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let deferred : (string, (int * int * string) Queue.t) Hashtbl.t = Hashtbl.create 16 in
  (* seq -> (index, line, fingerprint) for crash reporting and release *)
  let dispatched : (int, int * string * string option) Hashtbl.t = Hashtbl.create 16 in
  let todo : (int * int * string) Queue.t = Queue.create () in
  let eof = ref false in
  (* Responses leave strictly in input order, whatever order workers finish. *)
  let flush_ready () =
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt out_buf !emit_next with
      | Some s ->
        output_string oc s;
        output_char oc '\n';
        Hashtbl.remove out_buf !emit_next;
        incr emit_next
      | None -> continue := false
    done
  in
  let finish seq outcome response wall =
    count cnt outcome wall;
    Hashtbl.replace out_buf seq response;
    flush_ready ()
  in
  let read_next () =
    if !eof then None
    else
      let rec go () =
        match input_line ic with
        | exception End_of_file ->
          eof := true;
          None
        | line ->
          incr index;
          if String.trim line = "" then go ()
          else begin
            cnt.c_requests <- cnt.c_requests + 1;
            Tel.count "serve.requests" 1;
            let seq = !next_seq in
            incr next_seq;
            Some (seq, !index - 1, line)
          end
      in
      go ()
  in
  let process (seq, idx, line) =
    match classify ?cache ~in_flight:(Hashtbl.mem in_flight_fp) ~config ~index:idx line with
    | Final (outcome, response, wall) -> finish seq outcome (Json.to_string response) wall
    | Deferred fp ->
      let q =
        match Hashtbl.find_opt deferred fp with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace deferred fp q;
          q
      in
      Queue.add (seq, idx, line) q
    | Dispatch { fp; seed } ->
      (match fp with Some fp -> Hashtbl.replace in_flight_fp fp () | None -> ());
      Hashtbl.replace dispatched seq (idx, line, fp);
      Parpool.submit pool ~key:seq (idx, line, seed)
  in
  (* When a search lands, everything deferred on its fingerprint gets
     re-classified: normally a cache hit now, or a fresh dispatch if the
     owner failed to produce a storable mapping. *)
  let release fp =
    Hashtbl.remove in_flight_fp fp;
    match Hashtbl.find_opt deferred fp with
    | None -> ()
    | Some q ->
      Hashtbl.remove deferred fp;
      Queue.iter (fun item -> Queue.add item todo) q
  in
  let on_completion (seq, reply) =
    match Hashtbl.find_opt dispatched seq with
    | None -> () (* unreachable: every submitted key is in [dispatched] *)
    | Some (idx, line, fp) ->
      Hashtbl.remove dispatched seq;
      (match reply with
      | Parpool.Done (outcome, response, store, wall, tel) ->
        (match tel with Some s -> Tel.merge s | None -> ());
        store_if ?cache store;
        finish seq outcome response wall
      | Parpool.Failed msg ->
        finish seq Failed
          (Json.to_string (crash_error_response ~index:idx ~line ("worker error: " ^ msg)))
          0.
      | Parpool.Crashed ->
        finish seq Failed
          (Json.to_string (crash_error_response ~index:idx ~line "worker crashed"))
          0.);
      match fp with Some fp -> release fp | None -> ()
  in
  let rec drive () =
    let want_more = ref true in
    while !want_more && Parpool.idle pool > 0 do
      match Queue.take_opt todo with
      | Some item -> process item
      | None -> (
        match read_next () with
        | Some item -> process item
        | None -> want_more := false)
    done;
    if Parpool.pending pool > 0 then begin
      on_completion (Parpool.next pool);
      drive ()
    end
    (* pending = 0 implies the fill loop drained [todo] and the input, and
       released every deferred request, so the batch is complete *)
  in
  drive ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let run_channels ?cache ?(config = Opt.default_config) ?(jobs = 1) ic oc =
  let timer = Sun_util.Stopwatch.start () in
  let jobs = max 1 jobs in
  let cnt = fresh_counters () in
  if jobs <= 1 then run_sequential ?cache ~config cnt ic oc
  else run_parallel ?cache ~config ~jobs cnt ic oc;
  flush oc;
  {
    requests = cnt.c_requests;
    hits = cnt.c_hits;
    computed = cnt.c_computed;
    errors = cnt.c_errors;
    wall_s = Sun_util.Stopwatch.elapsed_s timer;
    hit_s = cnt.c_hit_s;
    computed_s = cnt.c_computed_s;
    error_s = cnt.c_error_s;
    jobs;
    cache_stats = Option.map Cache.stats cache;
  }

let run_files ?cache ?config ?jobs ~input ~output () =
  let ic = if input = "-" then stdin else open_in input in
  Fun.protect
    ~finally:(fun () -> if input <> "-" then close_in_noerr ic)
    (fun () ->
      let oc = if output = "-" then stdout else open_out output in
      Fun.protect
        ~finally:(fun () -> if output <> "-" then close_out_noerr oc)
        (fun () -> run_channels ?cache ?config ?jobs ic oc))

let summary_line s =
  let cache_part =
    match s.cache_stats with
    | None -> "cache disabled"
    | Some st -> Format.asprintf "cache: %a" Cache.pp_stats st
  in
  Printf.sprintf
    "%d requests: %d hits, %d computed, %d errors in %.2fs (jobs %d; request time: %.2fs hit, \
     %.2fs computed, %.2fs error; %s)"
    s.requests s.hits s.computed s.errors s.wall_s s.jobs s.hit_s s.computed_s s.error_s cache_part
