(** Fork-based worker pool for embarrassingly parallel request batches.

    Sunstone's per-request searches are independent (the paper's
    scalability argument, Table VIII, schedules every layer separately),
    so the serving layer can fan them out across processes without any
    shared state. This module is the generic substrate: a fixed-size pool
    of [Unix.fork]ed workers, each running the same job function in a loop
    over a pair of pipes.

    Wire protocol: every job and every reply is one length-prefixed frame
    — an 8-byte big-endian payload length followed by the [Marshal]ed
    value. Workers are forked from the calling process, so marshalling of
    plain data (no closures, no custom blocks) is safe in both directions.
    Frames with an absurd announced length (negative or over 1 GiB) are
    treated as a protocol breach, i.e. a worker crash.

    Crash containment: a worker that dies mid-job (killed, segfault,
    unmarshalable reply) is reaped, a fresh worker is forked in its place,
    and the in-flight job is retried once. If the retry also dies the job
    is reported as {!Crashed} — the pool itself keeps serving; one bad
    request can never abort the batch. A job function that merely
    {e raises} is reported as {!Failed} without retry (a deterministic
    exception would fail again) and the worker survives.

    The pool never degrades the calling process: workers exit through
    [Unix._exit], so inherited buffered channels are never double-flushed.
    {!create} sets [SIGPIPE] to ignore for the whole process (writes to a
    dead worker must surface as [EPIPE], not kill the parent) — acceptable
    for the CLI/bench/server processes this library serves.

    Jobs are identified by an integer [key] chosen by the caller;
    completions arrive in whatever order workers finish, so callers that
    need input order must re-sequence by key (see {!Pipeline}). *)

type ('a, 'b) t
(** A pool mapping ['a] jobs to ['b] results. *)

type 'b reply =
  | Done of 'b  (** the job function returned normally *)
  | Failed of string  (** the job function raised; payload is [Printexc.to_string] *)
  | Crashed  (** the worker process died twice running this job *)

val create : ?on_child_fork:(unit -> unit) -> jobs:int -> f:('a -> 'b) -> unit -> ('a, 'b) t
(** [create ~jobs ~f ()] forks [jobs] workers each looping [f] over framed
    jobs. [jobs] must be at least 1 ([Invalid_argument] otherwise); for
    in-process execution use {!map} with [jobs <= 1] instead.

    [?on_child_fork] runs inside {e every} freshly forked worker — the
    initial [jobs] and every respawn after a crash — before the job loop
    starts. Callers that hold fds workers must not inherit (a server's
    listening socket and client connections: a worker keeping a duplicate
    alive means a peer never sees EOF after the caller closes its end)
    close them here; the hook should only close fds and never raise
    (exceptions are swallowed). It is called at fork time, so a server's
    hook sees exactly the connections open at that moment. *)

val jobs : ('a, 'b) t -> int
(** The configured worker count (constant: crashed workers are replaced). *)

val idle : ('a, 'b) t -> int
(** Workers currently without an in-flight job. *)

val pending : ('a, 'b) t -> int
(** Completions {!next} still has to deliver: in-flight jobs plus results
    already collected internally (e.g. a give-up after a crashed retry). *)

val submit : ('a, 'b) t -> key:int -> 'a -> unit
(** Hands a job to an idle worker. [Invalid_argument] if {!idle} is [0] or
    the pool was {!shutdown}; callers drive admission with {!idle}. *)

val next : ('a, 'b) t -> int * 'b reply
(** Blocks until some in-flight job completes and returns [(key, reply)].
    [Invalid_argument] if {!pending} is [0]. *)

val try_next : ('a, 'b) t -> (int * 'b reply) option
(** Non-blocking {!next}: returns an already-available completion, or
    [None] when no in-flight job has finished yet (or nothing is pending).
    For event-loop callers that multiplex the pool with other fds. *)

val busy_fds : ('a, 'b) t -> Unix.file_descr list
(** Reply-pipe fds of workers with an in-flight job, for inclusion in an
    external [Unix.select]: readability means {!try_next} will make
    progress. Idle workers' fds are deliberately excluded — a worker that
    dies while idle leaves its pipe permanently readable (EOF), which
    would spin the caller's select; idle deaths are instead detected
    lazily by {!submit}'s write failure, which respawns and retries. *)

val shutdown : ('a, 'b) t -> unit
(** Terminates and reaps every worker (idempotent). In-flight jobs are
    abandoned. *)

val map : jobs:int -> f:('a -> 'b) -> 'a list -> 'b reply list
(** [map ~jobs ~f xs] applies [f] to every element, preserving order.
    With [jobs <= 1] this degrades gracefully to the in-process path — no
    fork, no pipes, exceptions still reported as {!Failed} — so callers
    can expose a [--jobs] knob whose [1] setting has zero new moving
    parts. With [jobs >= 2] a temporary pool is created and shut down. *)
