(** Earliest-deadline-first ready queue for the serving daemon.

    A binary min-heap keyed by [(deadline, seq)]: {!pop} always yields the
    entry with the smallest deadline, breaking ties by the caller-supplied
    admission sequence number — so entries without a deadline (spelled
    [infinity]) drain in plain FIFO order, and two entries sharing a
    deadline never reorder. The EDF discipline follows the laser runtime
    notes (SNIPPETS §2): under latency constraints, serving the request
    whose deadline expires soonest minimizes the number of missed
    deadlines, and a stable tie-break keeps the no-deadline case
    byte-identical to the batch pipeline's input-order contract.

    Deadlines are opaque floats — the queue never reads a clock. Callers
    pass absolute readings of {!Sun_util.Stopwatch.monotonic_now} (never
    wall time: a wall-clock step must not expire or reorder requests),
    which also makes the ordering directly testable with an injected
    clock. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> deadline:float -> seq:int -> 'a -> unit
(** O(log n). [seq] is the tie-break: entries with equal deadlines pop in
    increasing [seq] order. Callers use a monotonically increasing
    admission counter, and re-insert a parked entry with its {e original}
    sequence number so it keeps its place among its peers. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the [(deadline, payload)] with the smallest
    [(deadline, seq)] key; [None] when empty. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop} without removing. O(1). *)
