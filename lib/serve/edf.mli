(** Earliest-deadline-first ready queue for the serving daemon.

    A binary min-heap keyed by [(deadline, seq)]: {!pop} always yields the
    entry with the smallest deadline, breaking ties by the caller-supplied
    admission sequence number — so entries without a deadline (spelled
    [infinity]) drain in plain FIFO order, and two entries sharing a
    deadline never reorder. The EDF discipline follows the laser runtime
    notes (SNIPPETS §2): under latency constraints, serving the request
    whose deadline expires soonest minimizes the number of missed
    deadlines, and a stable tie-break keeps the no-deadline case
    byte-identical to the batch pipeline's input-order contract.

    Deadlines are opaque floats — the queue never reads a clock. Callers
    pass absolute readings of {!Sun_util.Stopwatch.monotonic_now} (never
    wall time: a wall-clock step must not expire or reorder requests),
    which also makes the ordering directly testable with an injected
    clock.

    The heap stores deadlines, sequence numbers and payloads in three
    parallel arrays, so {!push} and {!pop} allocate nothing once capacity
    is reached — they are hot roots of the SA070 allocation lint and are
    held to zero minor words by the Gc harness in
    [test/test_model_hot.ml]. *)

type 'a t

exception Empty
(** Raised by {!pop} on an empty queue. A constant exception: raising it
    allocates nothing. *)

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> deadline:float -> seq:int -> 'a -> unit
(** O(log n), allocation-free except when the backing arrays double. [seq]
    is the tie-break: entries with equal deadlines pop in increasing [seq]
    order. Callers use a monotonically increasing admission counter, and
    re-insert a parked entry with its {e original} sequence number so it
    keeps its place among its peers. *)

val pop : 'a t -> 'a
(** Removes and returns the payload with the smallest [(deadline, seq)]
    key; raises {!Empty} when empty. O(log n), allocation-free. Callers
    that need the deadline read it from the payload or use {!pop_opt}. *)

val pop_opt : 'a t -> (float * 'a) option
(** Option-returning form of {!pop}: [(deadline, payload)], [None] when
    empty. Allocates the pair — convenient off the hot path and in tests. *)

val peek : 'a t -> (float * 'a) option
(** Like {!pop_opt} without removing. O(1). *)
