(** Versioned JSON codecs for the scheduler's core types.

    Every encoder wraps its payload in an envelope [{"v":1,"kind":K,...}];
    every decoder rejects missing or wrong [v]/[kind] fields with a
    descriptive error instead of guessing, so persisted cache entries from a
    future incompatible format degrade to cache misses rather than
    mis-parses. Decoders re-validate through the type's own smart
    constructor ([Workload.make], [Arch.make], [Mapping.make]), so a decoded
    value satisfies the same invariants as a freshly built one and
    [decode (encode x) = Ok x] holds for every valid [x].

    [Optimizer.config] is the one partial codec: its [binding] field is a
    function and cannot be serialized, so [encode_config] drops it and
    [decode_config] restores the identity binding from [default_config]. *)

val version : int
(** Current envelope version (1). *)

val encode_workload : Sun_tensor.Workload.t -> Json.t
val decode_workload : Json.t -> (Sun_tensor.Workload.t, string) result

val encode_arch : Sun_arch.Arch.t -> Json.t
val decode_arch : Json.t -> (Sun_arch.Arch.t, string) result

val encode_config : Sun_core.Optimizer.config -> Json.t
val decode_config : Json.t -> (Sun_core.Optimizer.config, string) result

val encode_mapping : Sun_mapping.Mapping.t -> Json.t

val decode_mapping :
  Sun_tensor.Workload.t -> Json.t -> (Sun_mapping.Mapping.t, string) result
(** Validates the decoded levels against the workload via [Mapping.make]
    (factor products must equal bounds, orders must be permutations). *)

val decode_mapping_raw :
  Json.t -> (Sun_mapping.Mapping.level_mapping list, string) result
(** Decodes the envelope and level shapes only, skipping [Mapping.make], so
    a structurally illegal mapping survives decoding and can be handed to
    [Sun_analysis.Legality.check_levels] for a full diagnostic list instead
    of a single first-failure string. *)

val encode_diagnostic : Sun_analysis.Diagnostic.t -> Json.t
(** [{"code":"SA001","name":"capacity-overflow","severity":"error",...}];
    location fields ([level], [dim], [operand], [partition]) appear only
    when present, [message] is always last. *)

val decode_diagnostic : Json.t -> (Sun_analysis.Diagnostic.t, string) result
(** Inverse of {!encode_diagnostic}: [decode (encode d) = Ok d] for every
    diagnostic, so [sunstone check --json] / batch [diagnostics] fields can
    be re-ingested. The redundant ["name"] field is ignored on decode. *)

val encode_cost : Sun_cost.Model.cost -> Json.t
val decode_cost : Json.t -> (Sun_cost.Model.cost, string) result
(** Round-trips the full cost record including the per-component energy
    breakdown and the transfer list, bit-exact on every float. *)
