(** Long-lived scheduling daemon: the batch pipeline behind a socket.

    [sunstone serve --listen ADDR] keeps one process resident so repeated
    scheduling queries amortize cache warm-up instead of paying a cold
    start per batch (the workflow the paper's Table VIII scalability
    argument assumes: many independent per-layer requests arriving over
    time). The daemon speaks the exact wire protocol of {!Pipeline}: one
    JSON request per line in, one JSON response per line out, re-sequenced
    to input order {e per connection}.

    {2 Ownership}

    The accept loop, the cache and the in-flight fingerprint table all
    live in the parent process — the same single-cache-user architecture
    as the parallel batch driver:

    {v
              clients ──┐
    ┌─────────────────────────────────────────────┐
    │ parent: select loop                         │
    │   accept / read / write connections         │
    │   classify  (sole Cache reader+writer)      │
    │   in-flight fingerprint dedup (global)      │
    │   EDF ready queue + admission control       │
    └──────────────┬──────────────────────────────┘
                   │ framed jobs / replies
          ┌────────┴────────┐
          │ Parpool workers │  compute only, cache-blind
          └─────────────────┘
    v}

    Workers never see the cache or each other; duplicate fingerprints
    from {e different} connections dedup to a single compute exactly like
    duplicates inside one batch. A single cold connection replaying a
    batch input therefore receives byte-identical responses (modulo
    [wall_s]) to [sunstone batch --jobs 1] — [bin/ci.sh] enforces this.

    {2 Deadlines and shedding}

    A request may carry ["deadline_ms": N] (non-negative integer):
    relative milliseconds from arrival, tracked on the {e monotonic}
    clock ({!Sun_util.Stopwatch.monotonic_now} — a wall-clock step never
    expires or reorders anything). Queued compute work is dispatched
    earliest-deadline-first ({!Edf}); requests without a deadline sort
    last and drain FIFO among themselves, preserving batch order. A
    request still queued when its deadline passes is answered with a
    ["deadline exceeded"] error instead of being computed; deadlines
    govern queueing only — work already on a worker is never preempted,
    and a duplicate parked on another request's fingerprint is checked
    when that fingerprint lands. Cache hits and malformed requests are
    answered immediately and never expire.

    With [~max_queue:n], a request arriving while [n] admitted requests
    are still unanswered is shed with a ["status":"overloaded"] response
    (carrying the echoed id plus [queue] / [max_queue]) rather than
    queued — bounded latency instead of unbounded backlog.

    {2 Control requests and drain}

    [{"control":"stats"}] (optionally with an ["id"]) bypasses admission
    and answers with ["status":"stats"]: the live telemetry registry as
    JSON plus a [server] object of daemon counters. Unknown controls get
    an error response.

    Drain ([~drain_flag] set, typically from SIGTERM): stop accepting
    connections and reading further input, answer everything already
    admitted, flush and close every connection, then return — zero
    admitted requests are lost. A client that never reads its pending
    responses cannot hold the drain open forever: [~drain_grace] seconds
    after the drain began, connections still unflushed are force-closed.
    [~force_flag] (typically a {e second} SIGTERM) escalates to immediate
    shutdown — every connection is dropped and in-flight compute
    abandoned. [~hup_flag] (SIGHUP) rewrites the metrics snapshot to
    [~metrics_path] whenever set, re-creating the file if it was rotated
    away. *)

(** A listening address: ["unix:PATH"], ["tcp:HOST:PORT"] or plain
    ["HOST:PORT"]. *)
type listen = Unix_socket of string | Tcp of string * int

val parse_listen : string -> (listen, string) result

val listener : listen -> (Unix.file_descr, string) result
(** Bind + listen. A pre-existing Unix socket path is unlinked first
    (stale sockets from a killed daemon must not block restart); TCP
    sockets get [SO_REUSEADDR]. *)

val close_listener : listen -> Unix.file_descr -> unit
(** Close the listening fd and unlink a Unix socket path. Never raises. *)

(** {2 Client helpers} *)

val connect : listen -> (Unix.file_descr, string) result

val replay : Unix.file_descr -> string list -> string list
(** [replay fd lines] writes every line, shuts down the write side, reads
    until EOF and returns the response lines; closes [fd]. Suited to
    request sets that fit in socket buffers (the daemon buffers its output
    in memory, so only the {e requests} need to fit in flight). If the
    daemon closes the connection mid-replay the remaining writes are
    abandoned and whatever responses it already sent are still returned —
    callers must ignore [SIGPIPE] for the write failure to surface as
    [EPIPE] rather than kill the process (the CLI client does). *)

(** {2 The daemon} *)

type summary = {
  connections : int;  (** connections accepted *)
  requests : int;  (** non-blank, non-control request lines admitted or shed *)
  hits : int;
  computed : int;
  errors : int;  (** error responses, including expiries *)
  overloaded : int;  (** requests shed by admission control (not in [errors]) *)
  expired : int;  (** subset of [errors] answered ["deadline exceeded"] *)
  wall_s : float;
  cache_stats : Cache.stats option;
}

val serve :
  ?cache:Cache.t ->
  ?config:Sun_core.Optimizer.config ->
  ?jobs:int ->
  ?max_queue:int ->
  ?max_conns:int ->
  ?now:(unit -> float) ->
  ?drain_flag:bool ref ->
  ?force_flag:bool ref ->
  ?drain_grace:float ->
  ?hup_flag:bool ref ->
  ?metrics_path:string ->
  ?exit_after_conns:int ->
  listen_fd:Unix.file_descr ->
  unit ->
  summary
(** Runs the accept loop until drained. [?jobs] (default 1, clamped up to
    1) sizes the always-present {!Parpool} — even [jobs = 1] computes in a
    worker so the accept loop never blocks on a search; workers close the
    daemon's listening and connection fds at fork time so no client fd
    outlives the parent's close. The listen fd and every accepted fd are
    switched to non-blocking ([select] readiness is a hint, not a
    guarantee). [?max_queue] (default unbounded) is the admission bound;
    [?max_conns] (default 900) bounds concurrently open connections so fd
    numbers stay below [select]'s FD_SETSIZE — at the cap new accepts wait
    in the kernel backlog until a connection closes. [?now] (default
    {!Sun_util.Stopwatch.monotonic_now}) is the deadline clock, injectable
    for tests; [?drain_flag] / [?force_flag] / [?hup_flag] are polled
    every loop iteration (set them from signal handlers); [?drain_grace]
    (default 30 s) bounds how long a drain waits for clients to read
    their responses; [?metrics_path] is where a [hup_flag] tick rewrites
    the telemetry snapshot.

    [?exit_after_conns:n] makes the loop drain on its own once [n]
    connections have been accepted, every connection has closed and no
    work is outstanding — the in-process harness used by the tests, which
    cannot deliver signals to themselves mid-[serve]. *)
