(** JSONL batch scheduling: the request pipeline
    fingerprint → cache lookup → search → serialize → persist.

    Input is one JSON request per line:

    {v
    {"v":1, "id":"r0", "workload":"resnet18/conv2_x", "arch":"simba",
     "beam":12, "top_down":false}
    v}

    - [workload] and [arch] are either registry names ({!Registry}) or
      inline {!Codec} documents, so callers can schedule workloads that
      have no built-in name;
    - [id] is optional and echoed back (defaults to the 1-based line
      number rendered as ["line<N>"], matching the ["line"] field of
      error responses);
    - [beam] and [top_down] optionally override the pipeline's base
      optimizer config *for that request* (and are folded into its
      fingerprint);
    - an optional [mapping] field (a {!Codec} mapping document) switches
      the request from search to evaluation: the mapping is
      legality-checked ({!Sun_analysis.Legality}) and costed as-is,
      answering with [status:"evaluated"];
    - blank lines are skipped.

    Every decoded request passes the {!Sun_analysis.Wellformed} gate
    before any search or evaluation: an inline architecture or workload
    that would crash or nonsense-cost the optimizer (interior unbounded
    level, operand no partition accepts, zero capacity, ...) is rejected
    up front.

    Output is one JSON response per line, in input order:

    {v
    {"v":1, "id":"r0", "status":"hit"|"computed"|"evaluated"|"error",
     "fingerprint":"...", "mapping":{...}, "cost":{...},
     "energy_pj":..., "cycles":..., "edp":..., "wall_s":...}
    v}

    [status:"error"] responses carry the 1-based input ["line"] number and
    an ["error"] message instead of a mapping; rejections produced by the
    static analyses additionally carry a ["diagnostics"] array of
    {!Codec.encode_diagnostic} objects with stable [SAxxx] codes. A
    malformed line yields an error response, never a crash, and JSON parse
    errors locate the fault by offset, line and column. Responses for
    cache hits are byte-identical in mapping and cost to the run that
    populated the cache (floats round-trip exactly through the codec).

    {2 Parallel serving}

    With [jobs >= 2] the pipeline fans requests out over a {!Parpool} of
    forked workers while preserving the sequential contract:

    - the parent alone parses lines, consults the cache (hits never reach
      a worker) and writes cache entries, so LRU order and {!Cache.stats}
      stay exact — workers never see the cache at all;
    - a search whose fingerprint is already being computed is parked
      until the first one lands, then served as a cache hit, exactly as
      it would have been sequentially;
    - responses are re-sequenced so output order always equals input
      order regardless of completion order;
    - a worker that dies mid-request is replaced and the request retried
      once; a second death yields an [status:"error"] response for that
      request only — the batch always completes.

    Consequently [jobs = N] and [jobs = 1] produce identical responses
    (up to [wall_s] timings) whenever the batch's distinct fingerprints
    fit in the cache's in-memory capacity; past that, LRU eviction order
    — and therefore the hit/computed split — may differ, because the
    parallel parent performs lookups ahead of completions.

    One further caveat: cross-request mapping transfer ({!Transfer})
    seeds a miss's search from the nearest already-cached family member,
    and which members are cached when a request classifies depends on
    completion timing once [jobs >= 2]. On batches containing family
    mates (same structure, arch and config, different bounds) the chosen
    {e mapping} may therefore differ across job counts — always with
    equal-or-better EDP, and always identically when
    [SUNSTONE_TRANSFER=off]. Batches without family mates are entirely
    unaffected. *)

type outcome = Hit | Computed | Failed

type summary = {
  requests : int;
  hits : int;
  computed : int;
  errors : int;
  wall_s : float;  (** whole-batch wall time *)
  hit_s : float;  (** cumulative per-request wall time of cache hits *)
  computed_s : float;  (** ... of searches and evaluations (sums worker time) *)
  error_s : float;  (** ... of failed requests *)
  jobs : int;  (** worker processes used (1 = in-process, sequential) *)
  cache_stats : Cache.stats option;  (** [None] when caching is disabled *)
}

val run_channels :
  ?cache:Cache.t -> ?config:Sun_core.Optimizer.config -> ?jobs:int -> in_channel -> out_channel ->
  summary
(** Streams requests to responses. [?cache] absent disables caching (every
    request is a fresh search); [?config] is the base optimizer config
    (default {!Sun_core.Optimizer.default_config}); [?jobs] (default [1],
    values [< 1] clamped to [1]) spreads non-hit requests over that many
    forked workers. *)

val run_files :
  ?cache:Cache.t -> ?config:Sun_core.Optimizer.config -> ?jobs:int -> input:string ->
  output:string -> unit -> summary
(** File front end; ["-"] means stdin / stdout. *)

val summary_line : summary -> string
(** One human-readable line, e.g.
    ["36 requests: 24 hits, 12 computed, 0 errors in 1.8s (jobs 4; ...)"]. *)

(** {2 Single-request entry points}

    The building blocks of the batch drivers, exported so other front ends
    — notably the serving daemon ({!Server}) — can run the exact same
    request pipeline one line at a time and stay byte-identical to
    [run_channels] (modulo [wall_s]). The split mirrors the batch
    architecture: {!classify} runs in the parent (sole cache user),
    {!worker} / {!compute} run wherever the search should happen, and the
    parent stores the returned document with {!store_if}. *)

type classified =
  | Final of outcome * Json.t * float
      (** response ready without compute (malformed, statically rejected,
          or cache hit); carries the per-request wall seconds *)
  | Deferred of string
      (** same fingerprint already dispatched; park and re-{!classify}
          after it lands *)
  | Dispatch of {
      fp : string option;
          (** [Some fp] marks a cacheable search whose document should be
              stored (and whose fingerprint is now in flight) *)
      seed : Sun_mapping.Mapping.level_mapping list option;
          (** nearest-neighbor transfer seed ({!Transfer.find_seed}),
              resolved in the parent so workers stay cache-blind; ship it
              to {!compute}/{!worker} in the work frame *)
    }

val classify :
  ?cache:Cache.t -> ?in_flight:(string -> bool) -> config:Sun_core.Optimizer.config ->
  index:int -> string -> classified
(** Parent-side phase 1: parse, well-formedness gate, fingerprint,
    [in_flight] dedup check (default [fun _ -> false]), cache lookup.
    [index] is the 0-based request ordinal used for default ids and the
    [line] field of error responses. Never raises. *)

val compute :
  ?seed:Sun_mapping.Mapping.level_mapping list ->
  config:Sun_core.Optimizer.config -> index:int -> string ->
  outcome * Json.t * (string * Json.t) option * float
(** Phase 2: the actual search or evaluation, cache-blind. [?seed] is the
    transfer seed from {!classify}'s [Dispatch], forwarded to
    {!Sun_core.Optimizer.optimize} (ignored by evaluations). Returns
    [(outcome, response, store, wall_s)] where [store = Some (fp, doc)]
    is the document the parent should cache. Never raises. *)

val worker :
  config:Sun_core.Optimizer.config ->
  int * string * Sun_mapping.Mapping.level_mapping list option ->
  outcome * string * (string * Json.t) option * float * Sun_telemetry.Metrics.snapshot option
(** The {!Parpool} job function wrapping {!compute}: honors the test-only
    worker crash hooks, resets the forked telemetry registry and ships a
    snapshot back for the parent to {!Sun_telemetry.Metrics.merge}. The
    response comes back pre-serialized (a string) so marshalling never
    sees a [Json.t]. *)

val store_if : ?cache:Cache.t -> (string * Json.t) option -> unit
(** Parent-side store of a {!compute} result's document; a no-op without
    a cache or a document. *)

val error_response : ?diagnostics:Sun_analysis.Diagnostic.t list -> line:int -> id:string ->
  string -> Json.t
(** A [status:"error"] response; [line] is 1-based. *)

val crash_error_response : index:int -> line:string -> string -> Json.t
(** Error response for a request whose worker died: re-derives the id
    from the raw input [line] in the parent ([index] is 0-based). *)

val request_id : index:int -> Json.t -> string
(** The echoed id of a parsed request: its ["id"] field, or
    ["line<index+1>"] when absent. *)
