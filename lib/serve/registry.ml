let workloads () =
  let open Sun_tensor.Catalog in
  let resnet =
    List.map
      (fun (l : Sun_workloads.Resnet18.layer) ->
        ("resnet18/" ^ l.Sun_workloads.Resnet18.layer_name, l.Sun_workloads.Resnet18.workload))
      (Sun_workloads.Resnet18.layers ())
  in
  let inception =
    List.map
      (fun (l : Sun_workloads.Inception.layer) ->
        ("inception/" ^ l.Sun_workloads.Inception.layer_name, l.Sun_workloads.Inception.workload))
      (Sun_workloads.Inception.conv_layers ())
  in
  let non_dnn =
    List.map
      (fun (i : Sun_workloads.Non_dnn.instance) ->
        (i.Sun_workloads.Non_dnn.instance_name, i.Sun_workloads.Non_dnn.workload))
      Sun_workloads.Non_dnn.all
  in
  [
    ("conv1d", conv1d ~k:4 ~c:4 ~p:14 ~r:3 ());
    ("conv2d", conv2d ~n:1 ~k:64 ~c:64 ~p:14 ~q:14 ~r:3 ~s:3 ());
    ("matmul", matmul ~m:512 ~n:512 ~k:512 ());
    ("mttkrp", mttkrp ~i:1024 ~j:32 ~k:512 ~l:512 ());
    ("sddmm", sddmm ~i:1024 ~j:1024 ~k:512 ());
    ("ttmc", ttmc ~i:512 ~j:256 ~k:256 ~l:8 ~m:8 ());
    ("mmc", mmc ~i:512 ~j:512 ~k:512 ~l:512 ());
    ("tcl", tcl ~i:64 ~j:64 ~k:64 ~l:32 ~m:32 ~n:32 ());
  ]
  @ resnet @ inception @ non_dnn

let architectures = Sun_arch.Presets.all

let find_workload name =
  match List.assoc_opt name (workloads ()) with
  | Some w -> Ok w
  | None -> Error (Printf.sprintf "unknown workload %S (try `sunstone list`)" name)

let find_arch name =
  match List.assoc_opt name architectures with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "unknown architecture %S (try `sunstone list`)" name)
