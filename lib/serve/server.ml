module Opt = Sun_core.Optimizer
module Tel = Sun_telemetry.Metrics

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

type listen = Unix_socket of string | Tcp of string * int

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let after_prefix p s = String.sub s (String.length p) (String.length s - String.length p)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%s: expected unix:PATH or HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "%s: invalid port %S" s port))

let parse_listen s =
  if has_prefix "unix:" s then
    let path = after_prefix "unix:" s in
    if path = "" then Error "unix: empty socket path" else Ok (Unix_socket path)
  else if has_prefix "tcp:" s then parse_host_port (after_prefix "tcp:" s)
  else parse_host_port s

let resolve_host host =
  if host = "" || host = "localhost" then Ok Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | addr -> Ok addr
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "%s: unknown host" host)
      | h -> Ok h.Unix.h_addr_list.(0))

let sockaddr = function
  | Unix_socket path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    Result.map (fun addr -> (Unix.PF_INET, Unix.ADDR_INET (addr, port))) (resolve_host host)

let unix_error_string e fn = Printf.sprintf "%s: %s" fn (Unix.error_message e)

let listener l =
  match sockaddr l with
  | Error e -> Error e
  | Ok (domain, addr) -> (
    (* a stale socket left by a killed daemon must not block restart *)
    (match l with
    | Unix_socket path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | _ -> ());
    match Unix.socket domain Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, fn, _) -> Error (unix_error_string e fn)
    | fd -> (
      match
        (match l with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | Unix_socket _ -> ());
        Unix.bind fd addr;
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, fn, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Error (unix_error_string e fn)))

let close_listener l fd =
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  match l with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Client helpers                                                      *)
(* ------------------------------------------------------------------ *)

let connect l =
  match sockaddr l with
  | Error e -> Error e
  | Ok (domain, addr) -> (
    match Unix.socket domain Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, fn, _) -> Error (unix_error_string e fn)
    | fd -> (
      match Unix.connect fd addr with
      | () -> Ok fd
      | exception Unix.Unix_error (e, fn, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Error (unix_error_string e fn)))

let rec write_all fd s ofs len =
  if len > 0 then begin
    let n =
      match Unix.write_substring fd s ofs len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (ofs + n) (len - n)
  end

let replay fd lines =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      (* A daemon may close the connection before the whole request stream
         is written (kill_conn on a protocol error, escalated shutdown);
         whatever responses it sent first are still buffered in the
         socket, so a failed write falls through to the read loop instead
         of raising away from them. Callers must have SIGPIPE ignored for
         the failure to surface as EPIPE here. *)
      (try
         List.iter
           (fun line ->
             write_all fd line 0 (String.length line);
             write_all fd "\n" 0 1)
           lines;
         Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error (_, _, _) -> ());
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec read_loop () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          read_loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
      in
      read_loop ();
      List.filter (fun s -> s <> "") (String.split_on_char '\n' (Buffer.contents buf)))

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

(* One client connection. Replies are re-sequenced per connection: every
   admitted line gets a reply slot [ord] at read time, finished responses
   land in [replies] and are flushed to [outq] strictly in slot order, so
   output order always equals input order no matter how the EDF queue or
   the worker pool reorder the compute. *)
type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;  (** bytes of a not-yet-terminated input line *)
  mutable lines_read : int;  (** input lines seen, blank ones included *)
  mutable admitted : int;  (** reply slots assigned *)
  mutable next_emit : int;  (** next reply slot to flush to [outq] *)
  replies : (int, string) Hashtbl.t;  (** finished slots awaiting flush *)
  outq : string Queue.t;  (** wire bytes pending write *)
  mutable out_ofs : int;  (** progress into [Queue.peek outq] *)
  mutable eof : bool;  (** peer shut its write side down *)
}

(* An admitted request that needs compute. [i_seq] is the global admission
   ordinal: the EDF tie-break (so equal deadlines drain FIFO) and the pool
   key (unique because a request is dispatched at most once). A parked
   duplicate re-enters the ready queue with its original [i_seq]. *)
type item = {
  i_cid : int;
  i_ord : int;
  i_idx : int;  (** 0-based line index within its connection *)
  i_line : string;
  i_deadline : float;  (** absolute monotonic seconds; [infinity] = none *)
  i_seq : int;
  mutable i_fp : string option;  (** fingerprint this item holds in flight *)
  mutable i_seed : Sun_mapping.Mapping.level_mapping list option;
      (** transfer seed resolved at classify time, shipped in the work frame *)
}

type state = {
  conns : (int, conn) Hashtbl.t;
  ready : item Edf.t;  (** classified [Dispatch], awaiting an idle worker *)
  in_flight_fp : (string, unit) Hashtbl.t;
  deferred : (string, item Queue.t) Hashtbl.t;  (** parked duplicates *)
  dispatched : (int, item) Hashtbl.t;  (** pool key -> item *)
  mutable next_cid : int;
  mutable next_seq : int;
  mutable waiting : int;  (** admitted requests not yet answered *)
  mutable draining : bool;
  mutable s_connections : int;
  mutable s_requests : int;
  mutable s_hits : int;
  mutable s_computed : int;
  mutable s_errors : int;
  mutable s_overloaded : int;
  mutable s_expired : int;
}

let make_state () =
  {
    conns = Hashtbl.create 16;
    ready = Edf.create ();
    in_flight_fp = Hashtbl.create 16;
    deferred = Hashtbl.create 16;
    dispatched = Hashtbl.create 16;
    next_cid = 0;
    next_seq = 0;
    waiting = 0;
    draining = false;
    s_connections = 0;
    s_requests = 0;
    s_hits = 0;
    s_computed = 0;
    s_errors = 0;
    s_overloaded = 0;
    s_expired = 0;
  }

let tally st outcome =
  match outcome with
  | Pipeline.Hit ->
    Tel.count "serve.hits" 1;
    st.s_hits <- st.s_hits + 1
  | Pipeline.Computed ->
    Tel.count "serve.computed" 1;
    st.s_computed <- st.s_computed + 1
  | Pipeline.Failed ->
    Tel.count "serve.errors" 1;
    st.s_errors <- st.s_errors + 1

(* ------------------------------------------------------------------ *)
(* Connection output                                                   *)
(* ------------------------------------------------------------------ *)

let kill_conn st conn =
  (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
  Hashtbl.remove st.conns conn.cid

(* A connection closes once its input side is done (peer EOF, or the
   daemon is draining and will not read more) and every admitted line has
   been answered and written out. *)
let maybe_close st conn =
  if
    (conn.eof || st.draining)
    && conn.next_emit = conn.admitted
    && Queue.is_empty conn.outq
  then kill_conn st conn

let flush_conn conn =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.replies conn.next_emit with
    | Some s ->
      Hashtbl.remove conn.replies conn.next_emit;
      conn.next_emit <- conn.next_emit + 1;
      Queue.add (s ^ "\n") conn.outq
    | None -> continue := false
  done

let answer conn ord text =
  Hashtbl.replace conn.replies ord text;
  flush_conn conn

(* Settle an admitted request with its final response. The outcome is
   tallied even when the requesting connection is already gone — the work
   happened; only the bytes have nowhere to go. *)
let settle st outcome item response =
  st.waiting <- st.waiting - 1;
  tally st outcome;
  match Hashtbl.find_opt st.conns item.i_cid with
  | Some conn -> answer conn item.i_ord response
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Responses specific to the daemon                                    *)
(* ------------------------------------------------------------------ *)

let fallback_id idx = Printf.sprintf "line%d" (idx + 1)

let overloaded_response ~id ~line ~queue ~max_queue =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("id", Json.String id);
      ("status", Json.String "overloaded");
      ("line", Json.Int line);
      ("error", Json.String "overloaded: admission queue full");
      ("queue", Json.Int queue);
      ("max_queue", Json.Int max_queue);
    ]

let stats_response st ~id =
  let telemetry =
    match Json.of_string (Tel.to_json (Tel.snapshot ())) with
    | Ok j -> j
    | Error _ -> Json.Obj []
  in
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("id", Json.String id);
      ("status", Json.String "stats");
      ( "server",
        Json.Obj
          [
            ("connections", Json.Int st.s_connections);
            ("open_connections", Json.Int (Hashtbl.length st.conns));
            ("requests", Json.Int st.s_requests);
            ("hits", Json.Int st.s_hits);
            ("computed", Json.Int st.s_computed);
            ("errors", Json.Int st.s_errors);
            ("overloaded", Json.Int st.s_overloaded);
            ("expired", Json.Int st.s_expired);
            ("queued", Json.Int (Edf.length st.ready));
            ("waiting", Json.Int st.waiting);
          ] );
      ("telemetry", telemetry);
    ]

let parse_deadline ~now json =
  match Json.member "deadline_ms" json with
  | None -> Ok infinity
  | Some (Json.Int ms) when ms >= 0 -> Ok (now +. (float_of_int ms /. 1000.))
  | Some _ -> Error "bad request: deadline_ms must be a non-negative integer"

(* ------------------------------------------------------------------ *)
(* Request routing                                                     *)
(* ------------------------------------------------------------------ *)

let park st fp item =
  match Hashtbl.find_opt st.deferred fp with
  | Some q -> Queue.add item q
  | None ->
    let q = Queue.create () in
    Queue.add item q;
    Hashtbl.replace st.deferred fp q

(* Classify (parent-side, sole cache user) and route: answer immediately,
   park behind an in-flight fingerprint, or queue for dispatch. Also the
   re-entry point for parked duplicates once their fingerprint lands. *)
let route st ~cache ~config item =
  match
    Pipeline.classify ?cache
      ~in_flight:(Hashtbl.mem st.in_flight_fp)
      ~config ~index:item.i_idx item.i_line
  with
  | Pipeline.Final (outcome, response, _wall) -> settle st outcome item (Json.to_string response)
  | Pipeline.Deferred fp -> park st fp item
  | Pipeline.Dispatch { fp; seed } ->
    (match fp with
    | Some fp ->
      Hashtbl.replace st.in_flight_fp fp ();
      item.i_fp <- Some fp
    | None -> item.i_fp <- None);
    item.i_seed <- seed;
    Edf.push st.ready ~deadline:item.i_deadline ~seq:item.i_seq item

(* A fingerprint landed (stored, failed, expired or dropped): everything
   parked on it gets re-routed — normally a cache hit now, or a fresh
   dispatch when the owner produced nothing storable. *)
let release st ~cache ~config fp =
  Hashtbl.remove st.in_flight_fp fp;
  match Hashtbl.find_opt st.deferred fp with
  | None -> ()
  | Some q ->
    Hashtbl.remove st.deferred fp;
    Queue.iter
      (fun item ->
        if Hashtbl.mem st.conns item.i_cid then route st ~cache ~config item
        else st.waiting <- st.waiting - 1)
      q

let release_fp st ~cache ~config item =
  match item.i_fp with
  | Some fp ->
    item.i_fp <- None;
    release st ~cache ~config fp
  | None -> ()

let expire st item =
  Tel.count "serve.expired" 1;
  st.s_expired <- st.s_expired + 1;
  settle st Pipeline.Failed item
    (Json.to_string (Pipeline.crash_error_response ~index:item.i_idx ~line:item.i_line "deadline exceeded"))

(* Pop the ready queue in (deadline, admission) order while workers are
   idle. Requests whose deadline already passed, and requests whose
   connection died, are settled or dropped here rather than computed;
   either way their fingerprint is released so parked duplicates rerun. *)
let rec dispatch_ready st pool ~cache ~config ~now =
  if Parpool.idle pool > 0 && not (Edf.is_empty st.ready) then begin
    let item = Edf.pop st.ready in
    (if not (Hashtbl.mem st.conns item.i_cid) then begin
       st.waiting <- st.waiting - 1;
       release_fp st ~cache ~config item
     end
     else if item.i_deadline < now () then begin
       expire st item;
       release_fp st ~cache ~config item
     end
     else begin
       Hashtbl.replace st.dispatched item.i_seq item;
       Parpool.submit pool ~key:item.i_seq (item.i_idx, item.i_line, item.i_seed)
     end);
    dispatch_ready st pool ~cache ~config ~now
  end

let on_completion st ~cache ~config (key, reply) =
  match Hashtbl.find_opt st.dispatched key with
  | None -> ()
  | Some item ->
    Hashtbl.remove st.dispatched key;
    (match reply with
    | Parpool.Done (outcome, response, store, _wall, tel) ->
      (match tel with Some s -> Tel.merge s | None -> ());
      Pipeline.store_if ?cache store;
      settle st outcome item response
    | Parpool.Failed msg ->
      settle st Pipeline.Failed item
        (Json.to_string
           (Pipeline.crash_error_response ~index:item.i_idx ~line:item.i_line
              ("worker error: " ^ msg)))
    | Parpool.Crashed ->
      settle st Pipeline.Failed item
        (Json.to_string
           (Pipeline.crash_error_response ~index:item.i_idx ~line:item.i_line "worker crashed")));
    release_fp st ~cache ~config item

(* ------------------------------------------------------------------ *)
(* Input                                                               *)
(* ------------------------------------------------------------------ *)

let process_line st ~cache ~config ~max_queue ~now conn line =
  conn.lines_read <- conn.lines_read + 1;
  let idx = conn.lines_read - 1 in
  if String.trim line <> "" then begin
    let json = Json.of_string line in
    let id =
      match json with Ok j -> Pipeline.request_id ~index:idx j | Error _ -> fallback_id idx
    in
    let ord = conn.admitted in
    conn.admitted <- ord + 1;
    let control = match json with Ok j -> Json.member "control" j | Error _ -> None in
    match control with
    | Some (Json.String "stats") -> answer conn ord (Json.to_string (stats_response st ~id))
    | Some v ->
      answer conn ord
        (Json.to_string
           (Pipeline.error_response ~line:(idx + 1) ~id
              (Printf.sprintf "unknown control request %s" (Json.to_string v))))
    | None -> (
      st.s_requests <- st.s_requests + 1;
      Tel.count "serve.requests" 1;
      if st.waiting >= max_queue then begin
        Tel.count "serve.overloaded" 1;
        st.s_overloaded <- st.s_overloaded + 1;
        answer conn ord
          (Json.to_string
             (overloaded_response ~id ~line:(idx + 1) ~queue:st.waiting ~max_queue))
      end
      else
        let deadline =
          (* an unparsable line carries no deadline; classification below
             turns it into the same parse-error response batch would give *)
          match json with Error _ -> Ok infinity | Ok j -> parse_deadline ~now:(now ()) j
        in
        match deadline with
        | Error msg ->
          Tel.count "serve.errors" 1;
          st.s_errors <- st.s_errors + 1;
          answer conn ord (Json.to_string (Pipeline.error_response ~line:(idx + 1) ~id msg))
        | Ok deadline ->
          let seq = st.next_seq in
          st.next_seq <- seq + 1;
          st.waiting <- st.waiting + 1;
          route st ~cache ~config
            {
              i_cid = conn.cid;
              i_ord = ord;
              i_idx = idx;
              i_line = line;
              i_deadline = deadline;
              i_seq = seq;
              i_fp = None;
              i_seed = None;
            })
  end

let read_conn st ~cache ~config ~max_queue ~now conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> kill_conn st conn
  | 0 ->
    conn.eof <- true;
    (* a final line without a terminating newline still counts, matching
       [input_line] semantics in the batch drivers *)
    if Buffer.length conn.inbuf > 0 then begin
      let line = Buffer.contents conn.inbuf in
      Buffer.clear conn.inbuf;
      process_line st ~cache ~config ~max_queue ~now conn line
    end;
    maybe_close st conn
  | n ->
    Buffer.add_subbytes conn.inbuf chunk 0 n;
    let data = Buffer.contents conn.inbuf in
    Buffer.clear conn.inbuf;
    let pos = ref 0 in
    let continue = ref true in
    while !continue do
      match String.index_from_opt data !pos '\n' with
      | Some nl ->
        let line = String.sub data !pos (nl - !pos) in
        pos := nl + 1;
        process_line st ~cache ~config ~max_queue ~now conn line
      | None ->
        Buffer.add_substring conn.inbuf data !pos (String.length data - !pos);
        continue := false
    done

let write_conn st conn =
  match Queue.peek_opt conn.outq with
  | None -> maybe_close st conn
  | Some s -> (
    match Unix.write_substring conn.fd s conn.out_ofs (String.length s - conn.out_ofs) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> kill_conn st conn
    | n ->
      conn.out_ofs <- conn.out_ofs + n;
      if conn.out_ofs >= String.length s then begin
        ignore (Queue.pop conn.outq);
        conn.out_ofs <- 0
      end;
      maybe_close st conn)

let accept_conn st listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
    (* select-writability only promises *some* send-buffer space, so every
       conn fd runs non-blocking: a stalled peer costs an EAGAIN retry on
       the next round, never a blocked accept loop *)
    (try Unix.set_nonblock fd with Unix.Unix_error (_, _, _) -> ());
    let cid = st.next_cid in
    st.next_cid <- cid + 1;
    st.s_connections <- st.s_connections + 1;
    Tel.count "serve.connections" 1;
    let conn =
      {
        fd;
        cid;
        inbuf = Buffer.create 256;
        lines_read = 0;
        admitted = 0;
        next_emit = 0;
        replies = Hashtbl.create 8;
        outq = Queue.create ();
        out_ofs = 0;
        eof = false;
      }
    in
    Hashtbl.replace st.conns cid conn

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

type summary = {
  connections : int;
  requests : int;
  hits : int;
  computed : int;
  errors : int;
  overloaded : int;
  expired : int;
  wall_s : float;
  cache_stats : Cache.stats option;
}

let serve ?cache ?(config = Opt.default_config) ?(jobs = 1) ?(max_queue = max_int)
    ?(max_conns = 900) ?now ?drain_flag ?force_flag ?(drain_grace = 30.) ?hup_flag
    ?metrics_path ?exit_after_conns ~listen_fd () =
  let now = match now with Some f -> f | None -> Sun_util.Stopwatch.monotonic_now in
  let timer = Sun_util.Stopwatch.start () in
  let jobs = max 1 jobs in
  let st = make_state () in
  (* Forked workers must not inherit the daemon's sockets: a child holding
     a duplicate of a conn fd keeps the peer from ever seeing EOF once the
     parent closes its end, so a client reading to EOF would hang for the
     respawned worker's whole lifetime. *)
  let close_sockets_in_child () =
    (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
    (* sunstone-lint: allow SA063 fd close-all in the forked child; order is irrelevant *)
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
      st.conns
  in
  (* Compute always happens in a worker, even with one job: the accept
     loop must keep multiplexing connections while a search runs. *)
  let pool =
    Parpool.create ~on_child_fork:close_sockets_in_child ~jobs ~f:(Pipeline.worker ~config) ()
  in
  Fun.protect ~finally:(fun () -> Parpool.shutdown pool) @@ fun () ->
  (try Unix.set_nonblock listen_fd with Unix.Unix_error (_, _, _) -> ());
  let drain_started = ref None in
  let running = ref true in
  while !running do
    (match drain_flag with Some r when !r -> st.draining <- true | _ -> ());
    (match hup_flag with
    | Some r when !r ->
      r := false;
      (match metrics_path with
      | Some path -> (
        match Tel.save path (Tel.snapshot ()) with Ok () | Error _ -> ())
      | None -> ())
    | _ -> ());
    if st.draining && !drain_started = None then drain_started := Some (now ());
    let kill_all_conns () =
      (* sunstone-lint: allow SA063 kill order never reaches the wire; every conn dies alike *)
      List.iter (kill_conn st) (Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [])
    in
    (match force_flag with
    | Some r when !r ->
      (* escalated shutdown (second SIGTERM): drop every connection and
         abandon in-flight compute rather than wait on anything *)
      kill_all_conns ();
      running := false
    | _ -> (
      match !drain_started with
      | Some t0 when now () -. t0 > drain_grace ->
        (* a client that never reads its pending responses must not hold
           the drain open forever *)
        kill_all_conns ()
      | _ -> ()));
    if not !running then ()
    else begin
    if st.draining then begin
      (* no more reads: answer what is admitted, close what is finished *)
      (* sunstone-lint: allow SA063 close scan; each conn's output order is its own queue's *)
      let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) st.conns [] in
      List.iter
        (fun cid ->
          match Hashtbl.find_opt st.conns cid with
          | Some conn -> maybe_close st conn
          | None -> ())
        cids
    end;
    dispatch_ready st pool ~cache ~config ~now;
    let quiescent =
      Hashtbl.length st.conns = 0 && st.waiting = 0 && Parpool.pending pool = 0
    in
    let idle_exit =
      match exit_after_conns with Some n -> st.s_connections >= n && quiescent | None -> false
    in
    if (st.draining && quiescent) || idle_exit then running := false
    else begin
      (* sunstone-lint: allow SA063 feeds select's fd sets: membership only, never ordered output *)
      let conn_list = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
      (* [max_conns] keeps every fd number below FD_SETSIZE, which
         [Unix.select] cannot represent: at the cap the listen fd simply
         leaves the read set, deferring accepts to the kernel backlog
         until some connection closes *)
      let accepting = (not st.draining) && Hashtbl.length st.conns < max_conns in
      let rfds =
        (if accepting then [ listen_fd ] else [])
        @ (if st.draining then []
           else List.filter_map (fun c -> if c.eof then None else Some c.fd) conn_list)
        @ Parpool.busy_fds pool
      in
      let wfds =
        List.filter_map (fun c -> if Queue.is_empty c.outq then None else Some c.fd) conn_list
      in
      (* the timeout bounds how stale a signal flag can go unnoticed *)
      match Unix.select rfds wfds [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | readable, writable, _ ->
        if accepting && List.mem listen_fd readable then accept_conn st listen_fd;
        let rec drain_pool () =
          match Parpool.try_next pool with
          | Some completion ->
            on_completion st ~cache ~config completion;
            drain_pool ()
          | None -> ()
        in
        drain_pool ();
        List.iter
          (fun c ->
            if List.mem c.fd readable && (not c.eof) && Hashtbl.mem st.conns c.cid then
              read_conn st ~cache ~config ~max_queue ~now c)
          conn_list;
        List.iter
          (fun c ->
            if List.mem c.fd writable && Hashtbl.mem st.conns c.cid then write_conn st c)
          conn_list
    end
    end
  done;
  {
    connections = st.s_connections;
    requests = st.s_requests;
    hits = st.s_hits;
    computed = st.s_computed;
    errors = st.s_errors;
    overloaded = st.s_overloaded;
    expired = st.s_expired;
    wall_s = Sun_util.Stopwatch.elapsed_s timer;
    cache_stats = Option.map Cache.stats cache;
  }
