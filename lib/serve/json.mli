(** Minimal JSON values, parser and printer.

    The serving layer needs machine-readable requests and responses but the
    repository deliberately takes no third-party JSON dependency, so this is
    a small hand-rolled implementation. It supports the full JSON grammar
    (objects, arrays, strings with escapes, numbers, booleans, null) — and
    nothing beyond it: non-finite floats have no JSON spelling, so encoding
    [NaN] or an infinity raises [Invalid_argument], and inputs carrying
    [NaN], [Infinity] or an overflowing literal like [1e309] are parse
    errors rather than values no conforming peer could read back. Printing
    is canonical enough for byte-level comparison of re-encoded values:
    object fields keep their construction order and floats are rendered
    with round-trip precision. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats print exactly ([%.17g]-style,
    trimmed), so [of_string (to_string v)] re-reads every value bit-for-bit.
    Raises [Invalid_argument] on a non-finite [Float]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering for human-facing files. *)

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing garbage (other than whitespace) is an
    error. Numbers without [.], [e] or [E] parse as [Int] when they fit;
    float literals that overflow to infinity (e.g. [1e309]) are errors. *)

(** {2 Accessors} — each returns [Error] naming the expected shape. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on absent field or non-object. *)

val field : string -> t -> (t, string) result
(** Like {!member} but an error mentioning the field name on miss. *)

val as_string : t -> (string, string) result
val as_int : t -> (int, string) result
val as_float : t -> (float, string) result
(** [as_float] also accepts [Int] values. *)

val as_bool : t -> (bool, string) result
val as_list : t -> (t list, string) result
val as_obj : t -> ((string * t) list, string) result
