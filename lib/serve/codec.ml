module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer

let version = 1

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Envelope                                                            *)
(* ------------------------------------------------------------------ *)

let envelope kind fields =
  Json.Obj ([ ("v", Json.Int version); ("kind", Json.String kind) ] @ fields)

let check_envelope kind json =
  let* v = Result.map_error (fun e -> "envelope: " ^ e) (Json.field "v" json) in
  let* v = Json.as_int v in
  if v <> version then Error (Printf.sprintf "unsupported envelope version %d (want %d)" v version)
  else
    let* k = Result.map_error (fun e -> "envelope: " ^ e) (Json.field "kind" json) in
    let* k = Json.as_string k in
    if k <> kind then Error (Printf.sprintf "expected kind %S, found %S" kind k)
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Shared shapes                                                       *)
(* ------------------------------------------------------------------ *)

let encode_assoc_int xs = Json.List (List.map (fun (d, n) -> Json.List [ Json.String d; Json.Int n ]) xs)

let decode_assoc_int what json =
  let* items = Json.as_list json in
  map_result
    (fun item ->
      match item with
      | Json.List [ Json.String d; Json.Int n ] -> Ok (d, n)
      | _ -> Error (Printf.sprintf "%s: expected [\"name\", int] pair" what))
    items

let decode_field name decoder json =
  let* x = Json.field name json in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" name e) (decoder x)

let decode_string_list what json =
  let* items = Json.as_list json in
  map_result (fun i -> Result.map_error (fun e -> what ^ ": " ^ e) (Json.as_string i)) items

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let encode_index = function
  | W.Dim d -> Json.Obj [ ("dim", Json.String d) ]
  | W.Affine terms -> Json.Obj [ ("affine", encode_assoc_int terms) ]

let decode_index json =
  match (Json.member "dim" json, Json.member "affine" json) with
  | Some d, None ->
    let* d = Json.as_string d in
    Ok (W.Dim d)
  | None, Some terms ->
    let* terms = decode_assoc_int "affine" terms in
    Ok (W.Affine terms)
  | _ -> Error "index: expected exactly one of {\"dim\"} or {\"affine\"}"

let encode_operand (op : W.operand) =
  Json.Obj
    [
      ("name", Json.String op.W.name);
      ("kind", Json.String (match op.W.kind with `Input -> "input" | `Output -> "output"));
      ("indices", Json.List (List.map encode_index op.W.indices));
    ]

let decode_operand json =
  let* name = decode_field "name" Json.as_string json in
  let* kind = decode_field "kind" Json.as_string json in
  let* kind =
    match kind with
    | "input" -> Ok `Input
    | "output" -> Ok `Output
    | k -> Error (Printf.sprintf "kind: expected \"input\" or \"output\", found %S" k)
  in
  let* indices = decode_field "indices" Json.as_list json in
  let* indices = map_result decode_index indices in
  Ok { W.name; kind; indices }

let encode_workload (w : W.t) =
  envelope "workload"
    [
      ("name", Json.String w.W.name);
      ("dims", encode_assoc_int w.W.dims);
      ("operands", Json.List (List.map encode_operand w.W.operands));
    ]

let decode_workload json =
  let* () = check_envelope "workload" json in
  let* name = decode_field "name" Json.as_string json in
  let* dims = decode_field "dims" (decode_assoc_int "dims") json in
  let* operands = decode_field "operands" Json.as_list json in
  let* operands = map_result decode_operand operands in
  match W.make ~name ~dims ~operands with
  | w -> Ok w
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Architecture                                                        *)
(* ------------------------------------------------------------------ *)

let encode_partition (p : A.partition) =
  Json.Obj
    [
      ("name", Json.String p.A.part_name);
      ("capacity_words", Json.Int p.A.capacity_words);
      ( "accepts",
        match p.A.accepts with
        | `All -> Json.String "all"
        | `Roles roles -> Json.List (List.map (fun r -> Json.String r) roles) );
      ("read_energy", Json.Float p.A.read_energy);
      ("write_energy", Json.Float p.A.write_energy);
      ("bandwidth", Json.Float p.A.bandwidth);
    ]

let decode_partition json =
  let* part_name = decode_field "name" Json.as_string json in
  let* capacity_words = decode_field "capacity_words" Json.as_int json in
  let* accepts_json = Json.field "accepts" json in
  let* accepts =
    match accepts_json with
    | Json.String "all" -> Ok `All
    | Json.List _ ->
      let* roles = decode_string_list "accepts" accepts_json in
      Ok (`Roles roles)
    | _ -> Error "accepts: expected \"all\" or an array of roles"
  in
  let* read_energy = decode_field "read_energy" Json.as_float json in
  let* write_energy = decode_field "write_energy" Json.as_float json in
  let* bandwidth = decode_field "bandwidth" Json.as_float json in
  Ok { A.part_name; capacity_words; accepts; read_energy; write_energy; bandwidth }

let encode_level (l : A.level) =
  Json.Obj
    [
      ("name", Json.String l.A.level_name);
      ("partitions", Json.List (List.map encode_partition l.A.partitions));
      ("fanout", Json.Int l.A.fanout);
      ("multicast", Json.Bool l.A.multicast);
      ("noc_hop_energy", Json.Float l.A.noc_hop_energy);
      ("unbounded", Json.Bool l.A.unbounded);
    ]

let decode_level json =
  let* level_name = decode_field "name" Json.as_string json in
  let* partitions = decode_field "partitions" Json.as_list json in
  let* partitions = map_result decode_partition partitions in
  let* fanout = decode_field "fanout" Json.as_int json in
  let* multicast = decode_field "multicast" Json.as_bool json in
  let* noc_hop_energy = decode_field "noc_hop_energy" Json.as_float json in
  let* unbounded = decode_field "unbounded" Json.as_bool json in
  Ok { A.level_name; partitions; fanout; multicast; noc_hop_energy; unbounded }

let encode_arch (a : A.t) =
  envelope "arch"
    [
      ("name", Json.String a.A.arch_name);
      ("levels", Json.List (List.map encode_level a.A.levels));
      ("mac_energy", Json.Float a.A.mac_energy);
      ("mac_throughput", Json.Int a.A.mac_throughput);
    ]

let decode_arch json =
  let* () = check_envelope "arch" json in
  let* name = decode_field "name" Json.as_string json in
  let* levels = decode_field "levels" Json.as_list json in
  let* levels = map_result decode_level levels in
  let* mac_energy = decode_field "mac_energy" Json.as_float json in
  let* mac_throughput = decode_field "mac_throughput" Json.as_int json in
  match A.make ~name ~levels ~mac_energy ~mac_throughput () with
  | a -> Ok a
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Optimizer config                                                    *)
(* ------------------------------------------------------------------ *)

let encode_config (c : Opt.config) =
  envelope "config"
    [
      ( "direction",
        Json.String (match c.Opt.direction with Opt.Bottom_up -> "bottom_up" | Opt.Top_down -> "top_down") );
      ( "intra",
        Json.String
          (match c.Opt.intra with
          | Opt.Ordering_first -> "ordering_first"
          | Opt.Tiling_first -> "tiling_first"
          | Opt.Unrolling_first -> "unrolling_first") );
      ("beam_width", Json.Int c.Opt.beam_width);
      ("alpha_beta", Json.Bool c.Opt.alpha_beta);
      ("min_spatial_utilization", Json.Float c.Opt.min_spatial_utilization);
      ("refine", Json.Bool c.Opt.refine);
    ]

let decode_config json =
  let* () = check_envelope "config" json in
  let* direction = decode_field "direction" Json.as_string json in
  let* direction =
    match direction with
    | "bottom_up" -> Ok Opt.Bottom_up
    | "top_down" -> Ok Opt.Top_down
    | d -> Error (Printf.sprintf "direction: unknown %S" d)
  in
  let* intra = decode_field "intra" Json.as_string json in
  let* intra =
    match intra with
    | "ordering_first" -> Ok Opt.Ordering_first
    | "tiling_first" -> Ok Opt.Tiling_first
    | "unrolling_first" -> Ok Opt.Unrolling_first
    | i -> Error (Printf.sprintf "intra: unknown %S" i)
  in
  let* beam_width = decode_field "beam_width" Json.as_int json in
  let* alpha_beta = decode_field "alpha_beta" Json.as_bool json in
  let* min_spatial_utilization = decode_field "min_spatial_utilization" Json.as_float json in
  let* refine = decode_field "refine" Json.as_bool json in
  Ok
    {
      Opt.direction;
      intra;
      beam_width;
      alpha_beta;
      min_spatial_utilization;
      refine;
      binding = Opt.default_config.Opt.binding;
    }

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let encode_level_mapping (lm : M.level_mapping) =
  Json.Obj
    [
      ("temporal", encode_assoc_int lm.M.temporal);
      ("order", Json.List (List.map (fun d -> Json.String d) lm.M.order));
      ("spatial", encode_assoc_int lm.M.spatial);
    ]

let decode_level_mapping json =
  let* temporal = decode_field "temporal" (decode_assoc_int "temporal") json in
  let* order = decode_field "order" (decode_string_list "order") json in
  let* spatial = decode_field "spatial" (decode_assoc_int "spatial") json in
  Ok { M.temporal; order; spatial }

let encode_mapping (m : M.t) =
  envelope "mapping"
    [ ("levels", Json.List (Array.to_list (Array.map encode_level_mapping m.M.levels))) ]

let decode_mapping_raw json =
  let* () = check_envelope "mapping" json in
  let* levels = decode_field "levels" Json.as_list json in
  map_result decode_level_mapping levels

let decode_mapping w json =
  let* levels = decode_mapping_raw json in
  M.make w levels

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let encode_diagnostic (d : Sun_analysis.Diagnostic.t) =
  let module D = Sun_analysis.Diagnostic in
  let opt name enc = function None -> [] | Some v -> [ (name, enc v) ] in
  Json.Obj
    ([
       ("code", Json.String (D.code_id d.D.code));
       ("name", Json.String (D.code_name d.D.code));
       ("severity", Json.String (D.severity_name d.D.severity));
     ]
    @ opt "level" (fun i -> Json.Int i) d.D.where.D.level
    @ opt "dim" (fun s -> Json.String s) d.D.where.D.dim
    @ opt "operand" (fun s -> Json.String s) d.D.where.D.operand
    @ opt "partition" (fun s -> Json.String s) d.D.where.D.partition
    @ [ ("message", Json.String d.D.message) ])

let decode_diagnostic json =
  let module D = Sun_analysis.Diagnostic in
  let* id = decode_field "code" Json.as_string json in
  let* code =
    match D.code_of_id id with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "diagnostic: unknown code %S" id)
  in
  let* sev_name = decode_field "severity" Json.as_string json in
  let* severity =
    match D.severity_of_name sev_name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "diagnostic: unknown severity %S" sev_name)
  in
  let* message = decode_field "message" Json.as_string json in
  let opt_field name as_ty =
    match Json.member name json with
    | None -> Ok None
    | Some v ->
      let* x = as_ty v in
      Ok (Some x)
  in
  let* level = opt_field "level" Json.as_int in
  let* dim = opt_field "dim" Json.as_string in
  let* operand = opt_field "operand" Json.as_string in
  let* partition = opt_field "partition" Json.as_string in
  Ok { D.code; severity; where = { D.level; dim; operand; partition }; message }

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let encode_transfer (t : Model.transfer) =
  Json.Obj
    [
      ("operand", Json.String t.Model.operand);
      ("from_level", Json.Int t.Model.from_level);
      ("to_level", Json.Int t.Model.to_level);
      ("reads", Json.Float t.Model.reads);
      ("fills", Json.Float t.Model.fills);
      ("noc_deliveries", Json.Float t.Model.noc_deliveries);
    ]

let decode_transfer json =
  let* operand = decode_field "operand" Json.as_string json in
  let* from_level = decode_field "from_level" Json.as_int json in
  let* to_level = decode_field "to_level" Json.as_int json in
  let* reads = decode_field "reads" Json.as_float json in
  let* fills = decode_field "fills" Json.as_float json in
  let* noc_deliveries = decode_field "noc_deliveries" Json.as_float json in
  Ok { Model.operand; from_level; to_level; reads; fills; noc_deliveries }

let encode_cost (c : Model.cost) =
  envelope "cost"
    [
      ("energy_pj", Json.Float c.Model.energy_pj);
      ("cycles", Json.Float c.Model.cycles);
      ("edp", Json.Float c.Model.edp);
      ("macs", Json.Float c.Model.macs);
      ("transfers", Json.List (List.map encode_transfer c.Model.transfers));
      ( "breakdown",
        Json.List
          (List.map (fun (k, v) -> Json.List [ Json.String k; Json.Float v ]) c.Model.breakdown) );
      ("spatial_utilization", Json.Float c.Model.spatial_utilization);
    ]

let decode_cost json =
  let* () = check_envelope "cost" json in
  let* energy_pj = decode_field "energy_pj" Json.as_float json in
  let* cycles = decode_field "cycles" Json.as_float json in
  let* edp = decode_field "edp" Json.as_float json in
  let* macs = decode_field "macs" Json.as_float json in
  let* transfers = decode_field "transfers" Json.as_list json in
  let* transfers = map_result decode_transfer transfers in
  let* breakdown = decode_field "breakdown" Json.as_list json in
  let* breakdown =
    map_result
      (fun item ->
        match item with
        | Json.List [ Json.String k; v ] ->
          let* v = Json.as_float v in
          Ok (k, v)
        | _ -> Error "breakdown: expected [\"component\", float] pair")
      breakdown
  in
  let* spatial_utilization = decode_field "spatial_utilization" Json.as_float json in
  Ok { Model.energy_pj; cycles; edp; macs; transfers; breakdown; spatial_utilization }
