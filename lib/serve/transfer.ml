module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer

(* Kill switch, read per call so tests can flip it with [Unix.putenv]:
   anything but off/0/false (including unset) leaves transfer on. *)
let enabled () =
  match Sys.getenv_opt "SUNSTONE_TRANSFER" with
  | Some ("off" | "0" | "false") -> false
  | _ -> true

(* The fields the pipeline adds to every stored document so the cache can
   index it by shape family and {!seed_of_doc} can line its dims up with a
   future family member's. *)
let family_fields ~config w a =
  [
    ("family", Json.String (Fingerprint.structural ~config w a));
    ( "bounds",
      Json.List
        (List.map (fun b -> Json.Int b) (Array.to_list (Fingerprint.structural_bounds w))) );
    ("sdims", Json.List (List.map (fun d -> Json.String d) (Fingerprint.structural_dims w)));
  ]

let string_list = function
  | Json.List l ->
    List.fold_left
      (fun acc v -> match (acc, v) with Some xs, Json.String s -> Some (s :: xs) | _ -> None)
      (Some []) l
    |> Option.map List.rev
  | _ -> None

(* Rename a neighbor's levels into [w]'s dim names via the positional
   structural correspondence; [None] if any dim falls outside it. *)
let rename_levels rn levels =
  let exception Unknown_dim in
  let rn_exn d = match rn d with Some d' -> d' | None -> raise Unknown_dim in
  match
    List.map
      (fun (lm : M.level_mapping) ->
        {
          M.temporal = List.map (fun (d, f) -> (rn_exn d, f)) lm.M.temporal;
          M.order = List.map rn_exn lm.M.order;
          M.spatial = List.map (fun (d, f) -> (rn_exn d, f)) lm.M.spatial;
        })
      levels
  with
  | renamed -> Some renamed
  | exception Unknown_dim -> None

(* Rescale the renamed levels to [w]'s bounds in two phases.

   Phase 1 (clip): walking innermost to outermost, each factor keeps its
   gcd with the dim's remaining budget (spatial before temporal — the
   unrolling is the structurally load-bearing choice), and whatever is
   left lands in the top temporal level. Per-dim products then equal the
   new bounds exactly, and every kept factor divides the neighbor's, so
   tile footprints and spatial products never exceed the neighbor's
   known-legal ones: the phase-1 mapping is capacity- and fanout-legal
   whenever the neighbor was.

   Phase 2 (sink): a dim that grew leaves its whole residual at the top
   level, which serializes the growth through the outermost boundary and
   can make the seed orders of magnitude worse than the neighbor deserved.
   Each residual prime is therefore moved to the temporal level where the
   model scores the mapping cheapest ([Model.evaluate] also re-checks
   capacity and fanout per placement, so phase 2 preserves legality move
   by move; a prime that improves nowhere stays at the top). This is a
   handful of model evaluations per seed — noise next to the thousands the
   seeded search is about to spend, and what turns a grown neighbor from a
   worst-case alpha into a competitive one. *)
let rescale ~binding (w : W.t) (a : A.t) levels =
  let arr = Array.of_list levels in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let get assoc d = match List.assoc_opt d assoc with Some f -> f | None -> 1 in
    let set assoc d f = (d, f) :: List.remove_assoc d assoc in
    let residuals = ref [] in
    List.iter
      (fun d ->
        let remaining = ref (W.bound w d) in
        let take f =
          let g = gcd f !remaining in
          remaining := !remaining / g;
          g
        in
        for l = 0 to n - 1 do
          let lm = arr.(l) in
          let s = take (get lm.M.spatial d) in
          let t = take (get lm.M.temporal d) in
          arr.(l) <-
            { lm with M.spatial = set lm.M.spatial d s; M.temporal = set lm.M.temporal d t }
        done;
        if !remaining <> 1 then begin
          let top = arr.(n - 1) in
          arr.(n - 1) <-
            { top with M.temporal = set top.M.temporal d (get top.M.temporal d * !remaining) };
          residuals := (d, !remaining) :: !residuals
        end)
      (W.dim_names w);
    let edp () =
      match M.make w (Array.to_list arr) with
      | Error _ -> None
      | Ok m -> (
        match Model.evaluate ~binding w a m with Ok c -> Some c.Model.edp | Error _ -> None)
    in
    let move_temporal ~src ~dst d p =
      arr.(src) <-
        { (arr.(src)) with M.temporal = set arr.(src).M.temporal d (get arr.(src).M.temporal d / p) };
      arr.(dst) <-
        { (arr.(dst)) with M.temporal = set arr.(dst).M.temporal d (get arr.(dst).M.temporal d * p) }
    in
    List.iter
      (fun (d, r) ->
        List.iter
          (fun p ->
            let baseline = edp () in
            let best = ref None in
            for l = 0 to n - 2 do
              move_temporal ~src:(n - 1) ~dst:l d p;
              (match edp () with
              | Some e
                when (match baseline with Some b -> e < b | None -> true)
                     && match !best with Some (e', _) -> e < e' | None -> true ->
                best := Some (e, l)
              | _ -> ());
              move_temporal ~src:l ~dst:(n - 1) d p
            done;
            match !best with
            | Some (_, l) -> move_temporal ~src:(n - 1) ~dst:l d p
            | None -> ())
          (List.concat_map
             (fun (p, k) -> List.init k (fun _ -> p))
             (Sun_util.Factor.prime_factorization r)))
      (List.rev !residuals);
    Array.to_list arr
  end

let seed_of_doc ~config (w : W.t) (a : A.t) doc =
  match (Json.member "sdims" doc, Json.member "mapping" doc) with
  | Some sdims_json, Some mapping_json -> (
    match (string_list sdims_json, Codec.decode_mapping_raw mapping_json) with
    | Some sdims, Ok levels when List.length sdims = List.length (W.dim_names w) -> (
      let new_sdims = Fingerprint.structural_dims w in
      let rename = Hashtbl.create 8 in
      List.iter2 (fun old_d new_d -> Hashtbl.replace rename old_d new_d) sdims new_sdims;
      match rename_levels (Hashtbl.find_opt rename) levels with
      | Some renamed -> Some (rescale ~binding:config.Opt.binding w a renamed)
      | None -> None)
    | _ -> None)
  | _ -> None

(* How many nearest family members to rescale and score. Bounds distance
   is a proxy: a slightly farther neighbor whose factors survive rescaling
   can yield a far cheaper seed, so the probe scores a few and keeps the
   best. Each candidate costs one model evaluation on top of the rescale's
   own — noise next to the search it warm-starts. *)
let neighbor_candidates = 3

let find_seed ?(exclude_self = false) ~cache ~config w a =
  if not (enabled ()) then None
  else
    let family = Fingerprint.structural ~config w a in
    let bounds = Fingerprint.structural_bounds w in
    let exclude_bounds = if exclude_self then Some bounds else None in
    let docs = Cache.nearest_many ?exclude_bounds cache ~family ~bounds ~k:neighbor_candidates in
    let scored =
      List.filter_map
        (fun doc ->
          match seed_of_doc ~config w a doc with
          | None -> None
          | Some levels -> (
            match M.make w levels with
            | Error _ -> None
            | Ok m -> (
              match Model.evaluate ~binding:config.Opt.binding w a m with
              | Ok c -> Some (c.Model.edp, levels)
              | Error _ -> None)))
        docs
    in
    match List.sort (fun (e, _) (e', _) -> compare e e') scored with
    | (_, levels) :: _ -> Some levels
    | [] -> None
