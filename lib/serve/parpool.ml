module Tel = Sun_telemetry.Metrics

type 'b reply = Done of 'b | Failed of string | Crashed

type 'a job = {
  key : int;
  payload : 'a;
  attempt : int;
  started : float;  (** dispatch timestamp; 0. when telemetry is off *)
}

type 'a worker = {
  pid : int;
  ord : int;  (** spawn ordinal, keys the per-worker utilization counters *)
  to_worker : Unix.file_descr;  (** parent writes job frames *)
  from_worker : Unix.file_descr;  (** parent reads reply frames *)
  mutable current : 'a job option;
}

type ('a, 'b) t = {
  job_count : int;
  f : 'a -> 'b;
  on_child_fork : unit -> unit;
      (** runs in every freshly forked worker, releasing caller-owned fds *)
  mutable workers : 'a worker list;
  mutable spawned : int;  (** workers ever spawned, including respawns *)
  completed : (int * 'b reply) Queue.t;
      (** results produced outside [next]'s read path (crashed retries) *)
  mutable closed : bool;
}

(* ------------------------------------------------------------------ *)
(* Length-prefixed framing over raw fds                                *)
(* ------------------------------------------------------------------ *)

(* Upper bound on an announced frame length: anything bigger than this is
   not a frame we ever send, so the peer must be corrupt. *)
let frame_limit = 1 lsl 30

let rec write_all fd buf ofs len =
  if len > 0 then begin
    let n =
      match Unix.write fd buf ofs len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (ofs + n) (len - n)
  end

let write_frame fd s =
  let n = String.length s in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int n);
  write_all fd hdr 0 8;
  write_all fd (Bytes.of_string s) 0 n

let rec read_all fd buf ofs len =
  if len = 0 then true
  else
    match Unix.read fd buf ofs len with
    | 0 -> false
    | n -> read_all fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf ofs len

(* [None] on EOF, short read, unreadable fd or absurd length: every one of
   those means the peer is gone or corrupt, which callers treat alike. *)
let read_frame fd =
  match
    let hdr = Bytes.create 8 in
    if not (read_all fd hdr 0 8) then None
    else
      let n = Int64.to_int (Bytes.get_int64_be hdr 0) in
      if n < 0 || n > frame_limit then None
      else
        let buf = Bytes.create n in
        if read_all fd buf 0 n then Some (Bytes.to_string buf) else None
  with
  | r -> r
  | exception Unix.Unix_error (_, _, _) -> None

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

(* Children exit through [Unix._exit]: running [at_exit] in a fork would
   re-flush whatever buffered channels the parent had open. *)
let worker_loop f rd wr =
  let rec loop () =
    match read_frame rd with
    | None -> Unix._exit 0 (* parent closed the job pipe: normal shutdown *)
    | Some frame ->
      let reply =
        match f (Marshal.from_string frame 0) with
        | b -> Ok b
        | exception e -> Error (Printexc.to_string e)
      in
      (match write_frame wr (Marshal.to_string (reply : (_, string) result) []) with
      | () -> loop ()
      | exception _ -> Unix._exit 1)
  in
  loop ()

let spawn t =
  let ord = t.spawned in
  t.spawned <- t.spawned + 1;
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    (* Close every parent-side fd of the *other* workers: a sibling holding
       a duplicate of a dead worker's pipe would hide its EOF forever. *)
    List.iter
      (fun w ->
        (try Unix.close w.to_worker with Unix.Unix_error (_, _, _) -> ());
        try Unix.close w.from_worker with Unix.Unix_error (_, _, _) -> ())
      t.workers;
    Unix.close job_w;
    Unix.close res_r;
    (* Same reasoning for fds the *caller* owns (listening sockets, client
       connections): a worker respawned mid-serve would otherwise hold
       them for its whole lifetime, so a peer the caller closes never sees
       EOF. The hook runs in every child, initial and respawned alike. *)
    (* sunstone-lint: allow SA064 a child escape would rerun the parent's control flow *)
    (try t.on_child_fork () with _ -> ());
    (* sunstone-lint: allow SA064 ditto: the fork must reach _exit no matter what *)
    (try worker_loop t.f job_r res_w with _ -> ());
    Unix._exit 1
  | pid ->
    Unix.close job_r;
    Unix.close res_w;
    { pid; ord; to_worker = job_w; from_worker = res_r; current = None }

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(on_child_fork = fun () -> ()) ~jobs ~f () =
  if jobs < 1 then invalid_arg "Parpool.create: jobs must be >= 1";
  (* Writes to a worker that died must raise EPIPE, not kill the parent. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    {
      job_count = jobs;
      f;
      on_child_fork;
      workers = [];
      spawned = 0;
      completed = Queue.create ();
      closed = false;
    }
  in
  for _ = 1 to jobs do
    t.workers <- t.workers @ [ spawn t ]
  done;
  t

let jobs t = t.job_count

let idle t = List.length (List.filter (fun w -> Option.is_none w.current) t.workers)

let pending t =
  List.length (List.filter (fun w -> Option.is_some w.current) t.workers)
  + Queue.length t.completed

let reap t w =
  (try Unix.close w.to_worker with Unix.Unix_error (_, _, _) -> ());
  (try Unix.close w.from_worker with Unix.Unix_error (_, _, _) -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error (_, _, _) -> ());
  t.workers <- List.filter (fun w' -> w'.pid <> w.pid) t.workers

(* Parent-side pool accounting ([parpool.*] namespace). Deliberately not
   part of the jobs-1-vs-jobs-N counter-parity surface: a sequential run
   has no pool at all, so these counters only exist in parallel runs. *)
let tally_dispatch w =
  if Tel.enabled () then begin
    Tel.count "parpool.dispatched" 1;
    Tel.count (Printf.sprintf "parpool.worker%d.jobs" w.ord) 1
  end

let tally_respawn ~retrying =
  if Tel.enabled () then begin
    Tel.count "parpool.respawned" 1;
    Tel.count (if retrying then "parpool.retried" else "parpool.gave_up") 1
  end

(* Hand [job] to [w]; on a write failure the worker died while idle, so it
   is replaced and the job retried (once) on the replacement. *)
let rec send t w job =
  match write_frame w.to_worker (Marshal.to_string job.payload []) with
  | () ->
    w.current <- Some job;
    tally_dispatch w
  | exception Unix.Unix_error (_, _, _) ->
    reap t w;
    let w' = spawn t in
    t.workers <- t.workers @ [ w' ];
    tally_respawn ~retrying:(job.attempt = 0);
    if job.attempt = 0 then send t w' { job with attempt = 1 }
    else Queue.add (job.key, Crashed) t.completed

let submit t ~key payload =
  if t.closed then invalid_arg "Parpool.submit: pool is shut down";
  match List.find_opt (fun w -> Option.is_none w.current) t.workers with
  | None -> invalid_arg "Parpool.submit: no idle worker (check Parpool.idle first)"
  | Some w ->
    (* sunstone-lint: allow SA063 telemetry-only timing; never reaches scheduling or the wire *)
    let started = if Tel.enabled () then Unix.gettimeofday () else 0.0 in
    send t w { key; payload; attempt = 0; started }

(* The worker died mid-job: replace it and either retry the job on the
   replacement or, if this already was the retry, give up on the job. *)
let crash t w job =
  reap t w;
  let w' = spawn t in
  t.workers <- t.workers @ [ w' ];
  if Tel.enabled () then Tel.count "parpool.crashed" 1;
  tally_respawn ~retrying:(job.attempt = 0);
  if job.attempt = 0 then send t w' { job with attempt = 1 }
  else Queue.add (job.key, Crashed) t.completed

let busy_fds t =
  List.filter_map
    (fun w -> if Option.is_some w.current then Some w.from_worker else None)
    t.workers

(* Shared read path of [next] / [try_next]. [block = false] polls (zero
   select timeout) and returns [None] when no completion is ready;
   [block = true] waits indefinitely, returning [None] only when nothing is
   pending at all. A crash mid-read respawns the worker and loops: the
   retried job is in flight again, so the poll path re-checks for other
   ready completions rather than reporting anything. *)
let rec collect t ~block =
  match Queue.take_opt t.completed with
  | Some r -> Some r
  | None -> (
    let busy = List.filter (fun w -> Option.is_some w.current) t.workers in
    if busy = [] then None
    else
      let timeout = if block then -1.0 else 0.0 in
      let ready, _, _ =
        match Unix.select (List.map (fun w -> w.from_worker) busy) [] [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      match List.find_opt (fun w -> List.mem w.from_worker ready) busy with
      | None -> if block then collect t ~block else None
      | Some w -> (
        match w.current with
        | None -> collect t ~block
        | Some job -> (
          match read_frame w.from_worker with
          | Some frame -> (
            w.current <- None;
            if Tel.enabled () then begin
              Tel.count "parpool.completed" 1;
              if job.started > 0.0 then
                (* sunstone-lint: allow SA063 telemetry-only histogram sample *)
                Tel.observe (Tel.histogram "parpool.job_s") (Unix.gettimeofday () -. job.started)
            end;
            match (Marshal.from_string frame 0 : (_, string) result) with
            | Ok b -> Some (job.key, Done b)
            | Error msg ->
              if Tel.enabled () then Tel.count "parpool.failed" 1;
              Some (job.key, Failed msg)
            | exception _ ->
              (* unmarshalable reply: treat like a dead worker *)
              crash t w job;
              collect t ~block)
          | None ->
            crash t w job;
            collect t ~block)))

let next t =
  match collect t ~block:true with
  | Some r -> r
  | None -> invalid_arg "Parpool.next: nothing pending"

let try_next t = collect t ~block:false

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    (* Closing the job pipes makes idle workers exit on their own; busy or
       wedged ones are terminated so shutdown can never hang. *)
    List.iter
      (fun w -> try Unix.close w.to_worker with Unix.Unix_error (_, _, _) -> ())
      t.workers;
    List.iter
      (fun w ->
        (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
        (try Unix.close w.from_worker with Unix.Unix_error (_, _, _) -> ());
        try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error (_, _, _) -> ())
      t.workers;
    t.workers <- []
  end

(* ------------------------------------------------------------------ *)
(* map                                                                 *)
(* ------------------------------------------------------------------ *)

let map ~jobs ~f xs =
  if jobs <= 1 then
    (* graceful degradation: same reply surface, no processes involved *)
    List.map
      (fun x ->
        match f x with b -> Done b | exception e -> Failed (Printexc.to_string e))
      xs
  else begin
    let t = create ~jobs ~f () in
    let n = List.length xs in
    let results = Array.make n None in
    Fun.protect
      ~finally:(fun () -> shutdown t)
      (fun () ->
        let remaining = ref xs in
        let key = ref 0 in
        let collected = ref 0 in
        while !collected < n do
          match !remaining with
          | x :: rest when idle t > 0 ->
            submit t ~key:!key x;
            incr key;
            remaining := rest
          | _ ->
            let k, r = next t in
            results.(k) <- Some r;
            incr collected
        done);
    Array.to_list (Array.map (function Some r -> r | None -> Crashed) results)
  end
