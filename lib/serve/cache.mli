(** Mapping cache: bounded in-memory LRU over an optional persistent store.

    Keys are request fingerprints ({!Fingerprint.request}); values are
    arbitrary JSON documents (in practice the pipeline's
    [{"v":1,"mapping":...,"cost":...}] records). Lookups hit the in-memory
    tier first, then — when a cache directory is configured — the disk tier
    (one [<fingerprint>.json] file per entry), promoting disk hits into
    memory.

    Disk entries are wrapped as [{"k":<exact key>,"d":<value>}]. The file
    name goes through a lossy sanitizer (every non-alphanumeric char maps
    to ['_']), so distinct keys — e.g. ["a/b"] and ["a_b"] — can share one
    file; the exact key stored inside the document disambiguates, and a
    lookup whose key does not match the document's ["k"] field is a miss
    counted under [stats.corrupt], never a wrong-value hit.

    Durability and robustness:
    - disk writes go through a temp file in the same directory that is
      flushed and [fsync]ed {e before} the atomic [rename], so a crashed or
      SIGKILLed writer — including a long-lived serving daemon killed
      mid-store — can never leave a half-written or truncated entry under
      its final name; temp names carry the writer pid, so multiple
      processes (e.g. parallel pipelines) sharing one cache directory never
      clobber each other's in-progress writes;
    - a failed write or rename removes its temp file before the failure is
      swallowed — an unwritable directory cannot accrete [*.tmp.<pid>]
      litter;
    - unreadable or unparsable entries (truncated files, wrong permissions,
      future formats) are treated as misses and counted in
      [stats.corrupt] — the cache never raises on a bad entry;
    - the cache directory is created on demand ([mkdir -p] semantics). *)

(** Counter invariants, which {!pp_stats} consumers and the accounting
    tests rely on:
    - every {!find} increments exactly one of [hits] or [misses], so
      [hits + misses] equals the total number of lookups;
    - [disk_hits <= hits]: a disk hit is still a hit;
    - [corrupt <= misses]: a corrupt disk entry yields nothing usable, so
      the lookup that tripped over it is {e also} counted as a miss —
      [corrupt] subdivides the misses, it is not a third outcome. *)
type stats = {
  hits : int;  (** lookups served from memory or disk *)
  misses : int;  (** lookups that found nothing usable *)
  evictions : int;  (** in-memory LRU evictions (disk entries persist) *)
  disk_hits : int;  (** subset of [hits] that were read from disk *)
  corrupt : int;  (** disk entries that existed but failed to parse; each
                      such lookup is counted in [misses] as well *)
  stores : int;  (** successful [store] calls *)
}

type t

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] bounds the in-memory tier (default 256 entries, minimum 1).
    [dir] enables the persistent tier; omitted means memory-only. *)

val capacity : t -> int

val size : t -> int
(** Entries currently in the in-memory tier; always [<= capacity t]. *)

val dir : t -> string option

val find : t -> string -> Json.t option
(** [find t fingerprint] returns the cached document, refreshing its LRU
    position, or [None] on miss. Never raises. *)

val store : t -> string -> Json.t -> unit
(** Inserts (or refreshes) the entry in memory, evicting the least recently
    used entry if full, and persists it to disk when a directory is
    configured. Disk write failures (e.g. read-only media) are swallowed:
    the cache is an optimization, not a source of truth. *)

val nearest_many :
  ?exclude_bounds:int array -> t -> family:string -> bounds:int array -> k:int -> Json.t list
(** Up to [k] in-memory documents of the shape family, closest structural
    bounds first (same metric, exclusion and determinism rules as
    {!nearest}). {!Transfer} scores each candidate's rescaled seed with
    the cost model and keeps the cheapest: bounds distance is only a proxy
    for how well a neighbor's mapping survives rescaling. *)

val nearest : ?exclude_bounds:int array -> t -> family:string -> bounds:int array -> Json.t option
(** [nearest t ~family ~bounds] returns the in-memory document of the same
    shape family ({!Fingerprint.structural}) whose stored structural
    ["bounds"] vector is closest to [bounds] (sum of per-dim
    [|ln(b/b')|]), or [None] when the family has no cached member.
    [exclude_bounds] drops members whose bounds vector equals it exactly —
    benchmarks measuring cross-layer transfer use it to keep a layer from
    seeding itself with its own cached result. Only
    documents carrying ["family"]/["bounds"] fields participate (the
    pipeline stores them; see {!Transfer}). This is a read-only probe: it
    touches neither the hit/miss counters nor the LRU order, and ties
    break deterministically on the entry key, so results are independent
    of hash-table iteration order. Disk-only entries are not scanned; they
    join the index when a {!find} promotes them. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
