(** The unpruned mapping space of a workload on an architecture.

    This is the space the prior-art mappers search: every way to split each
    problem dimension into per-level temporal factors and per-fanout spatial
    factors, crossed with every per-level loop order. Spatial factors are
    kept within each level's fanout by construction; buffer-capacity
    validity is a property of the cost model and is *not* enforced here —
    exactly like Timeloop's mapspace, where random picks can be invalid.

    Used three ways: exhaustively on tiny problems (ground truth for
    Sunstone's optimality tests), as the sampling space of the
    Timeloop-like random-search baseline, and analytically for the
    space-size columns of Table I. *)

type t

val create : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> t

val size : t -> float
(** |temporal splits| x |spatial choices| x |loop orders|, counted exactly
    (as a float: the number routinely exceeds 2^62). *)

val size_no_orders : t -> float
(** Tiling and unrolling choices only. *)

val sample : t -> Sun_util.Rng.t -> Sun_mapping.Mapping.t
(** A uniform-ish random mapping: random per-dimension factor chains,
    random per-level orders, spatial factors drawn within fanout. *)

val enumerate : t -> Sun_mapping.Mapping.t Seq.t
(** Every mapping of the space. Only sensible on tiny workloads; the
    sequence is produced lazily. *)

val enumerate_fixed_orders : t -> Sun_mapping.Mapping.t Seq.t
(** The tiling/unrolling space under one canonical loop order per level —
    a cheaper ground truth when order is held fixed. *)

val enumerate_active_orders : t -> Sun_mapping.Mapping.t Seq.t
(** Like {!enumerate}, but per-level orders only permute dims with workload
    bound > 1 (bound-1 dims are pinned outermost). The cost model skips
    factor-1 loops, so every skipped order is cost-identical to a visited
    one: the minimum over this space provably equals the minimum over
    {!enumerate}, at a fraction of the order combinations. The audit's
    exhaustive oracle uses this. *)

val size_active_orders : t -> float
(** |{!enumerate_active_orders}| before joint-fanout filtering. *)
