module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Factor = Sun_util.Factor
module Rng = Sun_util.Rng
module Listx = Sun_util.Listx

type t = {
  w : W.t;
  arch : A.t;
  dims : W.dim list;
  num_levels : int;
  spatial_levels : int list;  (** levels with fanout > 1, ascending *)
}

let create w arch =
  let num_levels = A.num_levels arch in
  let spatial_levels =
    List.filter (fun i -> (A.level arch i).A.fanout > 1) (Listx.range num_levels)
  in
  { w; arch; dims = W.dim_names w; num_levels; spatial_levels }

(* Each dimension is split into [num_levels] temporal factors plus one
   spatial factor per spatial level. *)
let slots t = t.num_levels + List.length t.spatial_levels

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
  go 1.0 n

let size_no_orders t =
  List.fold_left
    (fun acc (_, b) -> acc *. float_of_int (Factor.count_splits b (slots t)))
    1.0 t.w.W.dims

let size t =
  let orders_per_level = factorial (List.length t.dims) in
  let order_choices =
    (* one loop order per memory level *)
    List.fold_left (fun acc _ -> acc *. orders_per_level) 1.0 (Listx.range t.num_levels)
  in
  size_no_orders t *. order_choices

(* Assemble level mappings from per-dim temporal chains and per-spatial-level
   factors. [temporal d] is an int array of length num_levels; [spatial d]
   maps spatial levels to factors. *)
let build t ~temporal ~spatial ~orders =
  let level i =
    {
      M.temporal = List.map (fun d -> (d, (temporal d).(i))) t.dims;
      order = orders i;
      spatial =
        List.map
          (fun d -> (d, if List.mem i t.spatial_levels then spatial d i else 1))
          t.dims;
    }
  in
  M.make_exn t.w (List.init t.num_levels level)

let sample t rng =
  (* spatial factors first, each level's product bounded by its fanout *)
  let spatial_tbl = Hashtbl.create 8 in
  let remaining = Hashtbl.create 8 in
  List.iter (fun (d, b) -> Hashtbl.replace remaining d b) t.w.W.dims;
  List.iter
    (fun lvl ->
      let budget = ref (A.level t.arch lvl).A.fanout in
      List.iter
        (fun d ->
          let r = Hashtbl.find remaining d in
          let options = List.filter (fun f -> f <= !budget) (Factor.divisors r) in
          let f = Rng.pick rng options in
          budget := !budget / f;
          Hashtbl.replace remaining d (r / f);
          Hashtbl.replace spatial_tbl (d, lvl) f)
        (Rng.shuffle rng t.dims))
    t.spatial_levels;
  (* temporal chains on what is left: a uniform random ordered split,
     drawn per prime via stars-and-bars so huge dimensions stay cheap *)
  let random_split r =
    let slots = t.num_levels in
    let chain = Array.make slots 1 in
    List.iter
      (fun (p, k) ->
        (* uniform weak composition of k into [slots] parts *)
        let positions = Rng.shuffle rng (Listx.range (k + slots - 1)) in
        let bars = List.sort compare (Listx.take (slots - 1) positions) in
        let rec fill slot prev = function
          | [] ->
            for _ = 1 to k + slots - 1 - prev - (slots - 1 - slot) do
              chain.(slot) <- chain.(slot) * p
            done
          | bar :: rest ->
            for _ = 1 to bar - prev do
              chain.(slot) <- chain.(slot) * p
            done;
            fill (slot + 1) (bar + 1) rest
        in
        fill 0 0 bars)
      (Factor.prime_factorization r);
    chain
  in
  let temporal_tbl = Hashtbl.create 8 in
  List.iter
    (fun d -> Hashtbl.replace temporal_tbl d (random_split (Hashtbl.find remaining d)))
    t.dims;
  let orders_arr = Array.init t.num_levels (fun _ -> Rng.shuffle rng t.dims) in
  build t
    ~temporal:(fun d -> Hashtbl.find temporal_tbl d)
    ~spatial:(fun d lvl -> Hashtbl.find spatial_tbl (d, lvl))
    ~orders:(fun i -> orders_arr.(i))

(* Lazy cross product of lazy choice lists. *)
let rec seq_cartesian = function
  | [] -> Seq.return []
  | choices :: rest ->
    Seq.concat_map
      (fun pick -> Seq.map (fun tail -> pick :: tail) (seq_cartesian rest))
      (List.to_seq choices)

let enumerate_with t ~orders_per_level =
  (* per dim: all (spatial per spatial level, temporal chain) assignments *)
  let per_dim d =
    let b = W.bound t.w d in
    let rec spatial_assignments levels b =
      match levels with
      | [] -> [ ([], b) ]
      | lvl :: rest ->
        List.concat_map
          (fun f ->
            if f <= (A.level t.arch lvl).A.fanout then
              List.map (fun (assign, left) -> ((lvl, f) :: assign, left)) (spatial_assignments rest (b / f))
            else [])
          (Factor.divisors b)
    in
    List.concat_map
      (fun (assign, left) ->
        List.map (fun chain -> (assign, Array.of_list chain)) (Factor.splits left t.num_levels))
      (spatial_assignments t.spatial_levels b)
  in
  let dim_choices = List.map per_dim t.dims in
  let assignments = seq_cartesian dim_choices in
  Seq.concat_map
    (fun assignment ->
      let tbl = Hashtbl.create 8 in
      List.iter2 (fun d a -> Hashtbl.replace tbl d a) t.dims assignment;
      let temporal d = snd (Hashtbl.find tbl d) in
      let spatial d lvl =
        match List.assoc_opt lvl (fst (Hashtbl.find tbl d)) with Some f -> f | None -> 1
      in
      Seq.filter_map
        (fun orders ->
          (* the per-level fanout bound was enforced per dim; the joint
             product can still overflow — skip those assignments *)
          let ok =
            List.for_all
              (fun lvl ->
                let p = List.fold_left (fun acc d -> acc * spatial d lvl) 1 t.dims in
                p <= (A.level t.arch lvl).A.fanout)
              t.spatial_levels
          in
          if ok then Some (build t ~temporal ~spatial ~orders:(fun i -> List.nth orders i))
          else None)
        orders_per_level)
    assignments

let enumerate t =
  let all_orders = Listx.permutations t.dims in
  let per_level = List.init t.num_levels (fun _ -> all_orders) in
  let order_combos = List.of_seq (seq_cartesian per_level) in
  enumerate_with t ~orders_per_level:(List.to_seq order_combos)

let enumerate_fixed_orders t =
  let canonical = List.init t.num_levels (fun _ -> t.dims) in
  enumerate_with t ~orders_per_level:(Seq.return canonical)

(* Dims with workload bound 1 carry factor 1 at every level of every
   assignment, and the cost model skips factor-1 loops entirely (both the
   temporal reuse scan and the spatial multipliers test [> 1]), so their
   position in a loop order can never change a mapping's cost. Pinning them
   outermost and permuting only the active dims visits one representative
   per cost-equivalence class — the minimum over this space equals the
   minimum over [enumerate]. *)
let active_dims t = List.filter (fun d -> W.bound t.w d > 1) t.dims

let size_active_orders t =
  let orders_per_level = factorial (List.length (active_dims t)) in
  let order_choices =
    List.fold_left (fun acc _ -> acc *. orders_per_level) 1.0 (Listx.range t.num_levels)
  in
  size_no_orders t *. order_choices

let enumerate_active_orders t =
  let active = active_dims t in
  let inactive = List.filter (fun d -> W.bound t.w d <= 1) t.dims in
  let all_orders = List.map (fun p -> inactive @ p) (Listx.permutations active) in
  let per_level = List.init t.num_levels (fun _ -> all_orders) in
  enumerate_with t ~orders_per_level:(seq_cartesian per_level)
