(** Alpha-beta bound admissibility (pass 3).

    The bottom-up search prunes a prefix when its committed-level energy
    ([Model.energy_lower_bound]) already exceeds the incumbent. That is
    sound only if the bound is admissible: committing more levels can only
    add energy, so the bound computed at any boundary of the eventual best
    mapping never exceeds that mapping's true energy. Two checks:

    - {b monotonicity} ({!check_bound}): sample complete mappings from the
      unpruned mapspace and assert, for every boundary [k], that
      [energy_lower_bound ~partial_levels:k m <= energy m]. A violation
      (SA011) means some prefix of an optimal mapping could be alpha-beta
      pruned.
    - {b differential} ({!differential}): on workloads small enough to
      enumerate the *entire* mapspace (all tilings, unrollings and loop
      orders), compare the exhaustive optimum EDP against the optimizer run
      with and without alpha-beta. Alpha-beta changing the answer, or the
      search missing the exhaustive optimum, raises SA012. *)

type report = {
  workload : string;
  arch : string;
  mappings_checked : int;  (** complete mappings whose bound chain was verified *)
  exhaustive_edp : float;  (** NaN when the space was not enumerated *)
  search_edp : float;  (** optimizer EDP with alpha-beta on *)
  no_prune_edp : float;  (** optimizer EDP with alpha-beta off *)
  diagnostics : Diagnostic.t list;
}

val check_bound :
  ?samples:int -> ?seed:int ->
  Sun_tensor.Workload.t -> Sun_arch.Arch.t -> report
(** Monotonicity on [samples] (default 64) mapspace samples plus the
    optimizer's own best mapping. Deterministic for a fixed [seed]. *)

val differential : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> report
(** Exhaustive enumeration; only call on tiny workloads. Includes the
    {!check_bound} monotonicity verdict over the enumerated mappings. *)

val small_suite : unit -> (string * Sun_tensor.Workload.t * Sun_arch.Arch.t) list
(** Three tiny (workload, arch) pairs whose full mapspaces are enumerable
    in well under a second each; the default subjects of
    [sunstone check --admissibility]. *)

val check_suite : unit -> report list
(** [differential] over {!small_suite}. *)
