module D = Diagnostic

type hit = { file : string; line : int; text : string; diag : D.t }
type report = { files_scanned : int; hits : hit list; suppressed : int }

let contains_sub = Rules.contains_sub

let hit_string h = Printf.sprintf "%s:%d:%s" h.file h.line h.text

let diagnostics r = List.map (fun h -> h.diag) r.hits

let scan ~root () =
  let r = Srclint.scan ~rules:(Rules.forksafe_rules ()) ~project_rules:[] ~roots:[ root ] () in
  {
    files_scanned = r.Srclint.files_scanned;
    hits =
      List.map
        (fun (h : Srclint.hit) ->
          {
            file = h.Srclint.h_path;
            line = h.Srclint.h_line;
            text = h.Srclint.h_text;
            diag = h.Srclint.h_diag;
          })
        r.Srclint.hits;
    suppressed = r.Srclint.suppressed;
  }
