module D = Diagnostic

type hit = { file : string; line : int; text : string; diag : D.t }
type report = { files_scanned : int; hits : hit list; suppressed : int }

(* ------------------------------------------------------------------ *)
(* Rules                                                                *)
(* ------------------------------------------------------------------ *)

(* Needles are spelled as concatenations so this file does not trip its
   own rules when the scanner runs over lib/ (which includes it). *)
let cat = String.concat ""

type rule = {
  code : D.code;
  needle : string;
  why : string;
  path_exempt : string -> bool;  (** true = the rule does not apply to this file *)
  toplevel_only : bool;  (** match only on column-0 [let] lines *)
}

let no_exemption _ = false

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let in_parpool path = contains_sub path "parpool"

(* lib/telemetry is the sanctioned single-writer registry: its toplevel
   mutable state is fork-safe by protocol (each forked worker owns a private
   copy; the parent merges explicit snapshots on frame receipt — DESIGN.md
   §3.4), so the toplevel-mutable rule does not apply there. *)
let in_telemetry path = contains_sub path "telemetry"

(* Direct stdout writes are allowed only in the two formatting sinks. *)
let in_output_sink path = in_telemetry path || contains_sub path "table_fmt"

let partial_rule needle =
  {
    code = D.Partial_function;
    needle;
    why = "partial function / escape hatch in library code";
    path_exempt = no_exemption;
    toplevel_only = false;
  }

let channel_rule needle =
  {
    code = D.Shared_channel_write;
    needle;
    why = "stdout/stderr write in library code (interleaves with the worker protocol)";
    path_exempt = no_exemption;
    toplevel_only = false;
  }

let toplevel_rule needle =
  {
    code = D.Toplevel_mutable;
    needle;
    why = "mutable toplevel state diverges silently between forked workers";
    path_exempt = in_telemetry;
    toplevel_only = true;
  }

(* [Printf.fprintf stdout] / [output_string stdout] sidestep the channel
   rules above while interleaving with worker-protocol output just the
   same; only the telemetry/table formatting sinks may address stdout. *)
let stdout_rule needle =
  {
    code = D.Shared_channel_write;
    needle;
    why = "direct stdout write in library code (only telemetry/table_fmt may format to stdout)";
    path_exempt = in_output_sink;
    toplevel_only = false;
  }

let rules =
  [
    partial_rule (cat [ "List"; ".hd" ]);
    partial_rule (cat [ "List"; ".tl" ]);
    partial_rule (cat [ "Option"; ".get" ]);
    partial_rule (cat [ "fail"; "with" ]);
    partial_rule (cat [ "Obj"; ".magic" ]);
    partial_rule (cat [ "assert"; " false" ]);
    {
      code = D.Marshal_outside_pool;
      needle = cat [ "Mar"; "shal." ];
      why = "Marshal outside the fork pool's framed protocol";
      path_exempt = in_parpool;
      toplevel_only = false;
    };
    {
      code = D.Fork_outside_pool;
      needle = cat [ "Unix"; ".fork" ];
      why = "fork outside the worker pool";
      path_exempt = in_parpool;
      toplevel_only = false;
    };
    channel_rule (cat [ "print"; "_string" ]);
    channel_rule (cat [ "print"; "_endline" ]);
    channel_rule (cat [ "print"; "_newline" ]);
    channel_rule (cat [ "print"; "_char" ]);
    channel_rule (cat [ "print"; "_int" ]);
    channel_rule (cat [ "print"; "_float" ]);
    channel_rule (cat [ "prerr"; "_string" ]);
    channel_rule (cat [ "prerr"; "_endline" ]);
    channel_rule (cat [ "prerr"; "_newline" ]);
    channel_rule (cat [ "Printf"; ".printf" ]);
    channel_rule (cat [ "Printf"; ".eprintf" ]);
    channel_rule (cat [ "Format"; ".printf" ]);
    channel_rule (cat [ "Format"; ".eprintf" ]);
    stdout_rule (cat [ "fprintf"; " std"; "out" ]);
    stdout_rule (cat [ "output_"; "string std"; "out" ]);
    stdout_rule (cat [ "output_"; "char std"; "out" ]);
    toplevel_rule (cat [ "= "; "ref " ]);
    toplevel_rule (cat [ "Hashtbl"; ".create" ]);
    toplevel_rule (cat [ "Queue"; ".create" ]);
    toplevel_rule (cat [ "Buffer"; ".create" ]);
    toplevel_rule (cat [ "Stack"; ".create" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Matching                                                             *)
(* ------------------------------------------------------------------ *)

let ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

(* Occurrence with an identifier boundary before it: [pp_print_string] must
   not trip the [print_string] rule, but [Stdlib.print_string] must. *)
let matches line needle =
  let n = String.length line and m = String.length needle in
  let rec go i =
    if i + m > n then false
    else if String.sub line i m = needle && (i = 0 || not (ident_char line.[i - 1])) then true
    else go (i + 1)
  in
  go 0

(* Strip comments, tracking nesting depth across lines. String literals are
   not parsed; a ["(*"] inside a string would confuse the tracker, which the
   repo style avoids. *)
let strip_comments depth line =
  let n = String.length line in
  let buf = Buffer.create n in
  let d = ref depth and i = ref 0 in
  while !i < n do
    if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
      incr d;
      i := !i + 2
    end
    else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' && !d > 0 then begin
      decr d;
      i := !i + 2
    end
    else begin
      if !d = 0 then Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  (Buffer.contents buf, !d)

let is_toplevel_let line = String.length line >= 4 && String.sub line 0 4 = "let "

let scan_file file =
  let hits = ref [] in
  (match In_channel.with_open_text file In_channel.input_lines with
  | lines ->
    let depth = ref 0 in
    List.iteri
      (fun i raw ->
        let code, depth' = strip_comments !depth raw in
        depth := depth';
        List.iter
          (fun r ->
            if
              (not (r.path_exempt file))
              && ((not r.toplevel_only) || is_toplevel_let code)
              && matches code r.needle
            then
              hits :=
                {
                  file;
                  line = i + 1;
                  text = String.trim raw;
                  diag =
                    D.error r.code
                      (Printf.sprintf "%s:%d: %s (%s)" file (i + 1) r.needle r.why);
                }
                :: !hits)
          rules)
      lines
  | exception Sys_error _ -> ());
  List.rev !hits

(* ------------------------------------------------------------------ *)
(* Tree walk and allowlist                                              *)
(* ------------------------------------------------------------------ *)

let rec walk dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else begin
          let path = Filename.concat dir name in
          if Sys.is_directory path then acc @ walk path
          else if Filename.check_suffix name ".ml" then acc @ [ path ]
          else acc
        end)
      [] entries

let hit_string h = Printf.sprintf "%s:%d:%s" h.file h.line h.text

let diagnostics r = List.map (fun h -> h.diag) r.hits

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None else Some l)

let scan ?(allowlist = []) ~root () =
  let files = walk root in
  let all = List.concat_map scan_file files in
  let keep, dropped =
    List.partition
      (fun h -> not (List.exists (fun entry -> contains_sub (hit_string h) entry) allowlist))
      all
  in
  { files_scanned = List.length files; hits = keep; suppressed = List.length dropped }
