(** Allocation summaries and bottom-up propagation for the hot-path passes.

    The summary domain is deliberately tiny: per function a list of direct
    allocation sites (closure creation, list/array/record/tuple literals,
    [ref], [@]/[^] appends, allocation-shaped stdlib calls, [sprintf]
    family, [string_of_*], [raise] with a payload), a list of direct IO or
    broad-raise sites, and a list of non-tail self-recursion sites. The
    derived per-node facts {i allocates} / {i does IO} live in the two-point
    lattice [false < true] with join [||]; {!analyze} condenses the
    {!Srcmod.project} call graph into SCCs (Tarjan) and joins the flags over
    the condensation in reverse topological order, so mutual recursion
    converges in a single pass.

    Known approximation limits, pinned by the runtime [Gc] oracle in
    [test/test_model_hot.ml]: partial application is outside the static
    vocabulary (a curried call that builds a closure is not flagged), and
    float boxing across non-inlined calls is invisible at the token level —
    both are exactly what the dynamic zero-allocation harness exists to
    catch. *)

type site = { s_line : int; s_col : int; s_desc : string }

type summary = {
  alloc_sites : site list;
  io_sites : site list;
  nontail_sites : site list;
}

type ann_kind = Hot | Cold

type annotation = {
  an_kind : ann_kind;
  an_line : int;  (** line of the marker comment *)
  an_target : int;  (** line of the binding it marks *)
}

val annotations : Lexer.t -> annotation list
(** Every [(* sunstone-hot *)] / [(* sunstone-cold *)] marker, with the line
    it targets resolved the same way lint suppressions are. *)

val summarize : Srcmod.t -> Srcmod.binding -> summary
(** Direct (non-transitive) summary of one toplevel binding's body. *)

type node = {
  nd_file : int;
  nd_binding : Srcmod.binding;
  nd_summary : summary;
  mutable nd_scc : int;  (** SCC id in the condensation *)
  mutable nd_allocates : bool;  (** transitively allocates (no cold cutoff) *)
  mutable nd_io : bool;  (** transitively does IO / broad raise *)
}

type t = {
  a_project : Srcmod.project;
  a_nodes : node array;
  a_index : (int * string, int) Hashtbl.t;  (** (file, name) -> node index *)
}

val analyze : Srcmod.project -> t
(** Summarize every toplevel binding and propagate flags bottom-up over the
    SCC condensation. The transitive flags ignore [(* sunstone-cold *)]
    boundaries — the SA070 pass applies those while walking chains, keeping
    the summary lattice free of policy. *)

val node : t -> int -> string -> node option
(** Node for the first binding with this name in the given file, if any. *)
