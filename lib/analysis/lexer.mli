(** Position-carrying OCaml lexer for the source-analysis engine.

    This is a lint lexer, not a compiler front end: it tokenizes well enough
    to never misclassify code as comment or string (the failure mode of the
    old line-oriented substring scanner), and it is total — malformed input
    (an unterminated comment or string) produces a truncated token stream
    rather than an exception, because a linter must never crash on the tree
    it is checking.

    Handled faithfully:
    - nested comments, including string and char literals {e inside}
      comments (so a comment-closer spelled inside a doc-comment string
      does not close the comment early);
    - ["..."] string literals with backslash escapes and embedded newlines;
    - quoted-string literals (brace-pipe delimited, with an optional
      lowercase delimiter id);
    - char literals vs. type variables (['a'] is a char, ['a] in
      [type 'a t] is a quote symbol followed by an identifier). *)

type kind =
  | Lident  (** lowercase identifier or [_]-led identifier *)
  | Uident  (** capitalized identifier (module / constructor) *)
  | Keyword  (** OCaml keyword, e.g. [let], [match], [with] *)
  | Symbol  (** operator or punctuation, e.g. [->], [:=], [(] *)
  | Int_lit
  | Float_lit
  | String_lit  (** token text is the literal including delimiters *)
  | Char_lit

type token = {
  t_text : string;
  t_kind : kind;
  t_line : int;  (** 1-based *)
  t_col : int;  (** 0-based column of the token's first character *)
  t_start : int;  (** byte offset of the token's first character *)
  t_end : int;  (** byte offset one past the token's last character *)
}

type comment = {
  c_text : string;  (** interior text, without the comment delimiters *)
  c_line : int;  (** 1-based line of the comment opener *)
  c_col : int;  (** 0-based column of the comment opener *)
}

type t = { tokens : token array; comments : comment list }

val lex : string -> t
(** Tokenize a whole compilation unit. Never raises; on malformed input the
    stream simply ends at the point the lexer could no longer make progress. *)

val is_keyword : string -> bool
