(** Config / architecture / workload well-formedness (pass 4).

    These checks re-derive the invariants that the smart constructors
    ([Arch.make], [Workload.make]) enforce — plus the ones they do not
    (interior unbounded levels, zero bandwidth, operand-to-storage
    reachability) — as structured diagnostics on already-built values.
    They are cheap (no cost-model evaluation) and are run by the serve
    pipeline on every decoded request, so an inline architecture that
    would crash or nonsense-cost the optimizer is rejected up front. *)

val check_arch : Sun_arch.Arch.t -> Diagnostic.t list

val check_workload : Sun_tensor.Workload.t -> Diagnostic.t list

val check_config : Sun_core.Optimizer.config -> Diagnostic.t list

val check_pair :
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Diagnostic.t list
(** Cross-checks one (workload, architecture) pair: every operand's role
    must be accepted by some partition at some level (otherwise the cost
    model has no storage chain for it), and the unit tile of all operands
    must fit the innermost bounded buffers (otherwise no mapping exists). *)

val check_request :
  ?binding:Sun_cost.Model.binding ->
  config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Diagnostic.t list
(** [check_arch @ check_workload @ check_config @ check_pair] in one call. *)
