module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module Opt = Sun_core.Optimizer
module D = Diagnostic

let check_arch (a : A.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let top = A.num_levels a - 1 in
  if A.num_levels a < 2 then
    add (D.error D.Arch_malformed "an architecture needs at least two levels (buffer + DRAM)");
  List.iteri
    (fun li (l : A.level) ->
      if l.A.unbounded && li <> top then
        add
          (D.error ~level:li D.Arch_malformed
             (Printf.sprintf "level %s is unbounded but is not the outermost level" l.A.level_name));
      if li = top && not l.A.unbounded then
        add
          (D.error ~level:li D.Arch_malformed
             (Printf.sprintf "outermost level %s must be unbounded (DRAM)" l.A.level_name));
      if l.A.fanout < 1 then
        add
          (D.error ~level:li D.Arch_malformed
             (Printf.sprintf "level %s has fanout %d (must be >= 1)" l.A.level_name l.A.fanout));
      if l.A.partitions = [] then
        add
          (D.error ~level:li D.Arch_malformed
             (Printf.sprintf "level %s has no partitions" l.A.level_name));
      List.iter
        (fun (p : A.partition) ->
          if p.A.capacity_words < 0 then
            add
              (D.error ~level:li ~partition:p.A.part_name D.Arch_malformed
                 (Printf.sprintf "partition %s has negative capacity %d" p.A.part_name
                    p.A.capacity_words));
          if (not l.A.unbounded) && p.A.capacity_words = 0 then
            add
              (D.error ~level:li ~partition:p.A.part_name D.Arch_malformed
                 (Printf.sprintf "partition %s of bounded level %s has zero capacity"
                    p.A.part_name l.A.level_name));
          if p.A.bandwidth <= 0.0 then
            add
              (D.error ~level:li ~partition:p.A.part_name D.Arch_malformed
                 (Printf.sprintf "partition %s has non-positive bandwidth %g" p.A.part_name
                    p.A.bandwidth));
          if p.A.read_energy < 0.0 || p.A.write_energy < 0.0 then
            add
              (D.warning ~level:li ~partition:p.A.part_name D.Arch_malformed
                 (Printf.sprintf "partition %s has negative access energy" p.A.part_name)))
        l.A.partitions)
    a.A.levels;
  if a.A.mac_throughput < 1 then
    add
      (D.error D.Arch_malformed
         (Printf.sprintf "mac_throughput %d (must be >= 1)" a.A.mac_throughput));
  if a.A.mac_energy < 0.0 then
    add (D.warning D.Arch_malformed (Printf.sprintf "negative MAC energy %g" a.A.mac_energy));
  List.rev !diags

let check_workload (w : W.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dims = W.dim_names w in
  List.iter
    (fun (d, b) ->
      if b <= 0 then
        add
          (D.error ~dim:d D.Workload_malformed (Printf.sprintf "dim %s has bound %d (must be >= 1)" d b)))
    w.W.dims;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d then
        add (D.error ~dim:d D.Workload_malformed (Printf.sprintf "dim %s declared twice" d));
      Hashtbl.replace seen d ())
    dims;
  (match List.filter (fun (op : W.operand) -> op.W.kind = `Output) w.W.operands with
  | [ _ ] -> ()
  | outs ->
    add
      (D.error D.Workload_malformed
         (Printf.sprintf "expected exactly 1 output operand, found %d" (List.length outs))));
  List.iter
    (fun (op : W.operand) ->
      List.iter
        (fun idx ->
          (match idx with
          | W.Dim _ -> ()
          | W.Affine [] ->
            add (D.error ~operand:op.W.name D.Workload_malformed "empty affine index")
          | W.Affine terms ->
            List.iter
              (fun (d, c) ->
                if c <= 0 then
                  add
                    (D.error ~dim:d ~operand:op.W.name D.Workload_malformed
                       (Printf.sprintf "non-positive affine coefficient %d on %s" c d)))
              terms);
          List.iter
            (fun d ->
              if not (List.mem d dims) then
                add
                  (D.error ~dim:d ~operand:op.W.name D.Unknown_dim
                     (Printf.sprintf "operand %s indexes unknown dim %s" op.W.name d)))
            (W.index_dims idx))
        op.W.indices)
    w.W.operands;
  List.iter
    (fun d ->
      let used = List.exists (fun (op : W.operand) -> W.is_indexing op d) w.W.operands in
      if not used then
        add
          (D.error ~dim:d D.Workload_malformed (Printf.sprintf "dim %s indexes no operand" d)))
    dims;
  List.rev !diags

let check_config (c : Opt.config) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if c.Opt.beam_width < 1 then
    add
      (D.error D.Config_invalid
         (Printf.sprintf "beam_width %d (must be >= 1)" c.Opt.beam_width));
  if c.Opt.min_spatial_utilization < 0.0 || c.Opt.min_spatial_utilization > 1.0 then
    add
      (D.error D.Config_invalid
         (Printf.sprintf "min_spatial_utilization %g outside [0, 1]" c.Opt.min_spatial_utilization));
  List.rev !diags

let check_pair ?(binding = Fun.id) (w : W.t) (a : A.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* storage reachability: an operand accepted nowhere has no storage chain
     and cannot be scheduled (the cost model would reject every mapping) *)
  List.iter
    (fun (op : W.operand) ->
      let role = binding op.W.name in
      let stored = List.exists (fun l -> A.stores l ~role) a.A.levels in
      if not stored then
        add
          (D.error ~operand:op.W.name D.Operand_unstored
             (Printf.sprintf "no partition at any level accepts operand %s (role %s)" op.W.name
                role)))
    w.W.operands;
  (* unit-tile feasibility: even a 1-element tile of every stored operand
     must fit each bounded partition, or no mapping exists at all *)
  List.iteri
    (fun li (l : A.level) ->
      if not l.A.unbounded then
        List.iter
          (fun (p : A.partition) ->
            let stored_ops =
              List.filter
                (fun (op : W.operand) ->
                  match A.partition_for l ~role:(binding op.W.name) with
                  | Some p' -> p'.A.part_name = p.A.part_name
                  | None -> false)
                w.W.operands
            in
            let unit_words = List.length stored_ops in
            if unit_words > p.A.capacity_words then
              add
                (D.error ~level:li ~partition:p.A.part_name D.Capacity_overflow
                   (Printf.sprintf
                      "unit tile of %d operand(s) needs %d words, partition %s holds %d"
                      unit_words unit_words p.A.part_name p.A.capacity_words)))
          l.A.partitions)
    a.A.levels;
  List.rev !diags

let check_request ?binding ~config w a =
  check_arch a @ check_workload w @ check_config config @ check_pair ?binding w a
