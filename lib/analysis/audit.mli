(** Mapspace auditor (pass 5): differential oracles for the pruned search.

    Sunstone's speed comes from discarding almost the whole mapspace; its
    correctness claim is that nothing discarded could have been optimal.
    This pass re-checks that claim from first principles on a bundled
    family of toy kernels, against brute-force enumeration:

    - {b ordering} (SA031/SA032): every one of the |dims|! loop orders must
      be subsumed by a kept trie candidate — its probe-derived per-operand
      reuse (full-reuse dim set, partial-reuse flag) contained in the
      candidate's. A violation carries a cost certificate: the best EDP
      achievable with the lost order everywhere vs the exhaustive best.
    - {b tiling} (SA033/SA034/SA035): the tiling-tree frontier at the
      innermost level must contain exactly the maximal fitting points of
      the full divisor grid — every frontier point fits, cannot grow by one
      ladder rung in any dimension, and the set equals the brute-force
      maximal set.
    - {b optimality} (SA036): the pruned search's best EDP must equal the
      exhaustive optimum over {!Sun_search.Mapspace.enumerate_active_orders}
      to within 1e-9 relative.

    {!recheck} is the serve-side gate: before a computed mapping is cached
    or returned, its legality is re-checked, its claimed cost re-derived
    (SA037 on drift), and each level's loop order re-verified as subsumed.

    The [injection] hook deliberately breaks the oracle's view of the
    pruning (dropping a load-bearing trie candidate, shrinking a frontier)
    so tests and CI can prove the auditor actually fires. *)

type injection =
  | No_injection
  | Drop_order_candidate
      (** remove a trie candidate that is the sole dominator of some order
          (all candidates if none is); SA031 must fire *)
  | Shrink_frontier  (** drop the last point of each tiling frontier; SA035 must fire *)

type kernel_report = {
  kernel : string;
  arch : string;
  orders_total : int;  (** |dims|! — orders audited for subsumption *)
  orders_kept : int;  (** trie candidates (before injection) *)
  frontier_checked : int;  (** frontier points verified maximal-fitting *)
  mappings_enumerated : int;  (** valid mappings in the exhaustive oracle *)
  exhaustive_edp : float;
  search_edp : float;
  diagnostics : Diagnostic.t list;
}

val kernels : unit -> (string * Sun_tensor.Workload.t * Sun_arch.Arch.t) list
(** The bundled audit family on the toy hierarchy — SDDMM, MMc, TTMc,
    1-D conv, MTTKRP at exhaustively-enumerable sizes, cheapest first so a
    [--kernels N] prefix stays cheap. *)

val check_kernel :
  ?inject:injection -> string * Sun_tensor.Workload.t * Sun_arch.Arch.t -> kernel_report

val check_kernels : ?inject:injection -> ?limit:int -> unit -> kernel_report list
(** The first [limit] bundled kernels (all when omitted or non-positive). *)

val recheck :
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Sun_mapping.Mapping.t ->
  claimed_energy:float ->
  claimed_edp:float ->
  Diagnostic.t list
(** Serve-side response gate: legality (SA001-SA007), cost drift vs the
    claimed numbers (SA037), and per-level order subsumption (SA031). *)
