(** The srclint rule engine: rule records over the {!Srcmod} file model.

    Two families share the engine:

    - {b forksafe} (SA040–SA044): the fork-hygiene rules the old substring
      scanner enforced, reimplemented on the token stream. Needles are now
      plain string literals — the lexer never matches inside literals, so
      the old trick of spelling needles via [String.concat] to avoid
      self-tripping is retired.
    - {b daemon} (SA060–SA064): event-loop, fd, signal, determinism, and
      exception-swallowing passes introduced with the serve daemon.

    Each rule carries its production path scope as an exemption predicate;
    {!unscoped} strips the predicates so fixtures under [test/] exercise
    every rule. *)

type finding = {
  f_line : int;
  f_col : int;
  f_code : Diagnostic.code;
  f_message : string;  (** rule detail, without the [file:line] prefix *)
}

type rule = {
  r_code : Diagnostic.code;
  r_name : string;
  r_exempt : string -> bool;  (** [true] = the rule skips this file path *)
  r_check : Srcmod.t -> finding list;
}

val forksafe_rules : unit -> rule list
(** SA040–SA044 with the historical exemptions: [Marshal]/[Unix.fork]
    allowed in paths containing ["parpool"], toplevel mutable state in
    ["telemetry"], stdout writes in ["telemetry"]/["table_fmt"]. *)

val daemon_rules : unit -> rule list
(** SA060–SA064 with production scoping: SA060–SA062 everywhere,
    SA063's sub-rules scoped per hazard (Hashtbl order in [lib/serve],
    wall clock in [lib/] outside [stopwatch]/[telemetry], [Random]
    outside [rng]), SA064 in [lib/]. *)

val default_rules : unit -> rule list
(** [forksafe_rules] scoped to [lib/] plus [daemon_rules]: the production
    rule set behind [sunstone check --src]. *)

val unscoped : rule list -> rule list
(** Drop every path exemption; used on fixture files. *)

val contains_sub : string -> string -> bool
(** [contains_sub s sub]: iterative substring search (no per-position
    allocation, no recursion — safe on pathological megabyte lines). *)
