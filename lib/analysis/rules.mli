(** The srclint rule engine: rule records over the {!Srcmod} file model.

    Two families share the engine:

    - {b forksafe} (SA040–SA044): the fork-hygiene rules the old substring
      scanner enforced, reimplemented on the token stream. Needles are now
      plain string literals — the lexer never matches inside literals, so
      the old trick of spelling needles via [String.concat] to avoid
      self-tripping is retired.
    - {b daemon} (SA061–SA064): fd, signal, determinism, and
      exception-swallowing passes introduced with the serve daemon.

    Each rule carries its production path scope as an exemption predicate;
    {!unscoped} strips the predicates so fixtures under [test/] exercise
    every rule.

    A third family runs on the {!Srcmod.project} call graph rather than one
    file at a time: SA060 (blocking reachable from the [serve] event loop,
    now across files) and the SA070–SA074 hot-path passes driven by
    [(* sunstone-hot *)] / [(* sunstone-cold *)] annotations and the
    {!Allocsum} summaries. These {!project_rule}s always run inside
    [Srclint.scan]; there is no scoping to strip — a single-file project
    degenerates to the old intra-module behavior. *)

type finding = {
  f_line : int;
  f_col : int;
  f_code : Diagnostic.code;
  f_message : string;  (** rule detail, without the [file:line] prefix *)
}

type rule = {
  r_code : Diagnostic.code;
  r_name : string;
  r_exempt : string -> bool;  (** [true] = the rule skips this file path *)
  r_check : Srcmod.t -> finding list;
}

val forksafe_rules : unit -> rule list
(** SA040–SA044 with the historical exemptions: [Marshal]/[Unix.fork]
    allowed in paths containing ["parpool"], toplevel mutable state in
    ["telemetry"], stdout writes in ["telemetry"]/["table_fmt"]. *)

val daemon_rules : unit -> rule list
(** SA061–SA064 with production scoping: SA061–SA062 everywhere,
    SA063's sub-rules scoped per hazard (Hashtbl order in [lib/serve] and
    [lib/cost], wall clock in [lib/] outside [stopwatch]/[telemetry],
    [Random] outside [rng]), SA064 in [lib/]. SA060 lives in
    {!project_rules} now. *)

type project_finding = {
  pf_file : int;  (** index into the project's file array *)
  pf_finding : finding;
}

type project_rule = {
  pr_name : string;
  pr_check : Srcmod.project -> project_finding list;
}

val project_rules : unit -> project_rule list
(** The whole-program passes: SA060 (blocking reachable from [serve],
    cross-module, with the fork pool fenced off) and the combined
    SA070–SA074 hot-path pass (allocation / IO / non-tail recursion
    reachable from [(* sunstone-hot *)] roots, plus unresolved and stale
    annotations). Chain rendering in messages is part of the output
    contract: nodes in the root's own file print bare, others as
    [Module.name], joined by [" -> "]. *)

val default_rules : unit -> rule list
(** [forksafe_rules] scoped to [lib/] plus [daemon_rules]: the production
    rule set behind [sunstone check --src]. *)

val unscoped : rule list -> rule list
(** Drop every path exemption; used on fixture files. *)

val contains_sub : string -> string -> bool
(** [contains_sub s sub]: iterative substring search (no per-position
    allocation, no recursion — safe on pathological megabyte lines). *)
