(** Structured diagnostics shared by every static-analysis pass.

    A diagnostic names a stable error code (SAxxx), a severity, an optional
    location inside the checked artifact (memory level, problem dimension,
    operand, buffer partition), and a human-readable message. The code ids
    are part of the tool's output contract: scripts that grep [sunstone
    check --json] output match on ["SA001"], never on message text, so
    messages may be reworded freely but codes must stay stable. *)

type severity = Error | Warning | Info

type code =
  | Capacity_overflow  (** SA001: a tile footprint exceeds a partition capacity *)
  | Unroll_overflow  (** SA002: a level's spatial product exceeds its fanout *)
  | Bad_coverage  (** SA003: per-dim factors missing, duplicated, or not multiplying to the bound *)
  | Bad_order  (** SA004: a level's loop order is not a permutation of the workload dims *)
  | Level_mismatch  (** SA005: mapping level count differs from the architecture's *)
  | Unknown_dim  (** SA006: a factor or order names a dim the workload does not declare *)
  | Nonpositive_factor  (** SA007: a temporal or spatial factor below 1 *)
  | Pruning_unsound  (** SA010: a dim dropped by the search is not a non-reuse dim *)
  | Bound_overshoot  (** SA011: committed-level energy exceeds a complete mapping's energy *)
  | Optimum_pruned  (** SA012: the alpha-beta search lost the reference optimum *)
  | Arch_malformed  (** SA020: interior unbounded level, empty/zero-capacity partition, bad fanout *)
  | Config_invalid  (** SA021: optimizer config outside its documented domain *)
  | Workload_malformed  (** SA022: workload breaks its own structural invariants *)
  | Operand_unstored  (** SA030: no partition at any level accepts an operand's role *)
  | Order_not_subsumed  (** SA031: a pruned loop order has no dominating trie candidate *)
  | Trie_incomplete  (** SA032: the order trie misses a signature-distinct order class *)
  | Frontier_not_maximal  (** SA033: a tiling frontier point can still grow and fit *)
  | Frontier_overflow  (** SA034: a tiling frontier point does not actually fit *)
  | Frontier_incomplete  (** SA035: frontier differs from the brute-force maximal set *)
  | Best_mismatch  (** SA036: pruned-search best differs from the exhaustive best *)
  | Cost_drift  (** SA037: a served mapping's claimed cost differs on re-evaluation *)
  | Audit_skipped  (** SA038: an audit oracle was skipped (bounds exceeded) *)
  | Marshal_outside_pool  (** SA040: [Marshal] used outside the fork pool module *)
  | Fork_outside_pool  (** SA041: [Unix.fork] used outside the fork pool module *)
  | Shared_channel_write  (** SA042: stdout/stderr write from library (worker-reachable) code *)
  | Toplevel_mutable  (** SA043: mutable toplevel state reachable from worker code *)
  | Partial_function  (** SA044: banned partial function or escape hatch in lib/ *)
  | Unit_nonfinite  (** SA050: a cost-model quantity is NaN or infinite *)
  | Unit_negative  (** SA051: a cost-model quantity that must be nonnegative is negative *)
  | Unit_implausible  (** SA052: a cost-model quantity far outside its plausible range *)
  | Blocking_in_loop  (** SA060: blocking syscall reachable from the [serve] event loop *)
  | Fd_leak  (** SA061: fd created but never closed (or forwarded to [on_child_fork]) in its module *)
  | Signal_unsafe  (** SA062: signal handler does more than set a [ref]/[Atomic] flag *)
  | Nondeterminism  (** SA063: Hashtbl iteration order, wall clock, or [Random] outside sanctioned modules *)
  | Exception_swallowed  (** SA064: [try ... with _ ->] silently discarding the error in lib/ *)
  | Stale_suppression  (** SA065: an inline lint suppression matching no hit *)
  | Hot_allocation  (** SA070: allocation reachable from a [(* sunstone-hot *)] root *)
  | Hot_io  (** SA071: IO or a broad [raise] reachable from a hot root *)
  | Hot_nontail  (** SA072: non-tail self-recursion reachable from a hot root *)
  | Hot_unresolved  (** SA073: hot annotation on a function the call graph cannot find *)
  | Hot_stale  (** SA074: stale or duplicate hot annotation *)

type location = {
  level : int option;
  dim : string option;
  operand : string option;
  partition : string option;
}

type t = { code : code; severity : severity; where : location; message : string }

val code_id : code -> string
(** Stable identifier, e.g. ["SA001"]. *)

val code_name : code -> string
(** Stable kebab-case slug, e.g. ["capacity-overflow"]. *)

val all_codes : code list
(** Every code, in SA-id order; the round-trip tests enumerate this. *)

val code_of_id : string -> code option
(** Inverse of {!code_id}; [None] on unknown ids. *)

val code_summary : code -> string
(** One-line human summary of what the code flags; exhaustive over {!code},
    so adding a constructor without a summary is a compile error. *)

val code_scope : code -> string
(** Short description of where the pass looks (registry pass, source subtree,
    hot roots, ...). *)

val nominal_severity : code -> severity
(** The severity the code is normally reported at; individual diagnostics may
    downgrade (e.g. informational skips). *)

val rule_table : unit -> (string * string * string * string) list
(** [(id, severity, summary, scope)] for every code in {!all_codes}, in SA-id
    order — the single source of truth behind [sunstone check --list-rules]. *)

val severity_name : severity -> string

val severity_of_name : string -> severity option
(** Inverse of {!severity_name}. *)

val no_location : location

val error :
  ?level:int -> ?dim:string -> ?operand:string -> ?partition:string -> code -> string -> t

val warning :
  ?level:int -> ?dim:string -> ?operand:string -> ?partition:string -> code -> string -> t

val info :
  ?level:int -> ?dim:string -> ?operand:string -> ?partition:string -> code -> string -> t

val errors : t list -> t list
val has_errors : t list -> bool

val summary : t list -> string
(** E.g. ["3 diagnostics (2 errors, 1 warning)"] or ["no diagnostics"]. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[SA001] capacity-overflow (level 0, partition L1): ...]. *)

val pp_list : Format.formatter -> t list -> unit
