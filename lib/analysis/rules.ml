module D = Diagnostic

type finding = { f_line : int; f_col : int; f_code : D.code; f_message : string }

type rule = {
  r_code : D.code;
  r_name : string;
  r_exempt : string -> bool;
  r_check : Srcmod.t -> finding list;
}

(* Iterative substring search: no [String.sub] allocation per position and
   no recursion, so a pathological multi-megabyte line cannot blow the
   stack (the old [Forksafe.contains_sub] recursed once per position). *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 || m > n then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= n - m do
      let j = ref 0 in
      while !j < m && s.[!i + !j] = sub.[!j] do
        incr j
      done;
      if !j = m then found := true else incr i
    done;
    !found
  end

(* ------------------------------------------------------------------ *)
(* Path scoping                                                         *)
(* ------------------------------------------------------------------ *)

let no_exemption _ = false

let has_segment name path = List.mem name (String.split_on_char '/' path)

let under_lib path = has_segment "lib" path

let under_serve path = under_lib path && has_segment "serve" path

let under_cost path = under_lib path && has_segment "cost" path

let in_parpool path = contains_sub path "parpool"

let in_telemetry path = contains_sub path "telemetry"

let in_output_sink path = in_telemetry path || contains_sub path "table_fmt"

(* ------------------------------------------------------------------ *)
(* Shared token helpers                                                 *)
(* ------------------------------------------------------------------ *)

let path_str p = String.concat "." p

let last_comp p =
  match List.rev p with [] -> "" | last :: _ -> last

let occ_end (occ : Srcmod.occurrence) =
  occ.Srcmod.o_index + (2 * (List.length occ.Srcmod.o_raw - 1))

let finding code occ msg =
  { f_line = occ.Srcmod.o_line; f_col = occ.Srcmod.o_col; f_code = code; f_message = msg }

let tok (sm : Srcmod.t) i =
  let toks = sm.Srcmod.sm_lex.Lexer.tokens in
  if i >= 0 && i < Array.length toks then Some toks.(i) else None

let tok_is (sm : Srcmod.t) i kind text =
  match tok sm i with
  | Some t -> t.Lexer.t_kind = kind && t.Lexer.t_text = text
  | None -> false

let occs_in (sm : Srcmod.t) a b =
  List.filter
    (fun (o : Srcmod.occurrence) -> o.Srcmod.o_index >= a && o.Srcmod.o_index <= b)
    sm.Srcmod.sm_occurrences

(* ------------------------------------------------------------------ *)
(* Forksafe family (SA040-SA044)                                        *)
(* ------------------------------------------------------------------ *)

(* Exact resolved-path needles, e.g. [["List"; "hd"]]. *)
let path_rule code ~name ~why ~exempt needles =
  {
    r_code = code;
    r_name = name;
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun occ ->
            match List.find_opt (fun nd -> Srcmod.matches sm nd occ) needles with
            | Some nd -> Some (finding code occ (Printf.sprintf "%s (%s)" (path_str nd) why))
            | None -> None)
          sm.Srcmod.sm_occurrences);
  }

(* Match on the final path component: [print_endline] bare or behind any
   qualifier, mirroring the old preceding-boundary substring semantics. *)
let suffix_rule code ~name ~why ~exempt names =
  {
    r_code = code;
    r_name = name;
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (occ : Srcmod.occurrence) ->
            let last = last_comp occ.Srcmod.o_path in
            if List.mem last names then
              Some (finding code occ (Printf.sprintf "%s (%s)" last why))
            else None)
          sm.Srcmod.sm_occurrences);
  }

(* [f stdout] token pairs: [Printf.fprintf stdout], [output_string stdout]. *)
let stdout_pair_rule code ~name ~why ~exempt names =
  {
    r_code = code;
    r_name = name;
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (occ : Srcmod.occurrence) ->
            let last = last_comp occ.Srcmod.o_path in
            if List.mem last names && tok_is sm (occ_end occ + 1) Lexer.Lident "stdout" then
              Some (finding code occ (Printf.sprintf "%s stdout (%s)" last why))
            else None)
          sm.Srcmod.sm_occurrences);
  }

let mutable_creators =
  [
    [ "Hashtbl"; "create" ]; [ "Queue"; "create" ]; [ "Buffer"; "create" ];
    [ "Stack"; "create" ];
  ]

(* Parameterless toplevel bindings whose body *starts* with [ref] or a
   mutable-container creator: the state exists once per process image and
   silently diverges between forked workers. *)
let toplevel_mutable_rule ~exempt =
  let why = "mutable toplevel state diverges silently between forked workers" in
  {
    r_code = D.Toplevel_mutable;
    r_name = "toplevel-mutable";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (b : Srcmod.binding) ->
            if b.Srcmod.b_params then None
            else
              let creator =
                if tok_is sm b.Srcmod.b_body_start Lexer.Lident "ref" then Some "ref"
                else
                  match occs_in sm b.Srcmod.b_body_start b.Srcmod.b_body_start with
                  | occ :: _
                    when List.exists (fun nd -> Srcmod.matches sm nd occ) mutable_creators ->
                    Some (path_str occ.Srcmod.o_path)
                  | _ -> None
              in
              match creator with
              | Some what ->
                Some
                  {
                    f_line = b.Srcmod.b_line;
                    f_col = 0;
                    f_code = D.Toplevel_mutable;
                    f_message = Printf.sprintf "let %s = %s (%s)" b.Srcmod.b_name what why;
                  }
              | None -> None)
          sm.Srcmod.sm_bindings);
  }

let marshal_rule ~exempt =
  {
    r_code = D.Marshal_outside_pool;
    r_name = "marshal-outside-pool";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (occ : Srcmod.occurrence) ->
            match occ.Srcmod.o_path with
            | "Marshal" :: _ :: _ ->
              Some
                (finding D.Marshal_outside_pool occ
                   (Printf.sprintf "%s (Marshal outside the fork pool's framed protocol)"
                      (path_str occ.Srcmod.o_path)))
            | _ -> None)
          sm.Srcmod.sm_occurrences);
  }

(* [assert false] is a keyword pair, invisible to the occurrence view. *)
let assert_false_rule ~exempt =
  let why = "partial function / escape hatch in library code" in
  {
    r_code = D.Partial_function;
    r_name = "assert-false";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        let toks = sm.Srcmod.sm_lex.Lexer.tokens in
        let out = ref [] in
        Array.iteri
          (fun i t ->
            if
              t.Lexer.t_kind = Lexer.Keyword
              && t.Lexer.t_text = "assert"
              && tok_is sm (i + 1) Lexer.Keyword "false"
            then
              out :=
                {
                  f_line = t.Lexer.t_line;
                  f_col = t.Lexer.t_col;
                  f_code = D.Partial_function;
                  f_message = Printf.sprintf "assert false (%s)" why;
                }
                :: !out)
          toks;
        List.rev !out);
  }

let forksafe_rules () =
  let partial_why = "partial function / escape hatch in library code" in
  let channel_why =
    "stdout/stderr write in library code (interleaves with the worker protocol)"
  in
  let stdout_why =
    "direct stdout write in library code (only telemetry/table_fmt may format to stdout)"
  in
  [
    path_rule D.Partial_function ~name:"partial-function" ~why:partial_why
      ~exempt:no_exemption
      [ [ "List"; "hd" ]; [ "List"; "tl" ]; [ "Option"; "get" ]; [ "Obj"; "magic" ] ];
    suffix_rule D.Partial_function ~name:"failwith" ~why:partial_why ~exempt:no_exemption
      [ "failwith" ];
    assert_false_rule ~exempt:no_exemption;
    marshal_rule ~exempt:in_parpool;
    path_rule D.Fork_outside_pool ~name:"fork-outside-pool"
      ~why:"fork outside the worker pool" ~exempt:in_parpool
      [ [ "Unix"; "fork" ] ];
    suffix_rule D.Shared_channel_write ~name:"shared-channel-write" ~why:channel_why
      ~exempt:no_exemption
      [
        "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
        "print_float"; "prerr_string"; "prerr_endline"; "prerr_newline";
      ];
    path_rule D.Shared_channel_write ~name:"printf-channel" ~why:channel_why
      ~exempt:no_exemption
      [
        [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Format"; "printf" ];
        [ "Format"; "eprintf" ];
      ];
    stdout_pair_rule D.Shared_channel_write ~name:"stdout-pair" ~why:stdout_why
      ~exempt:in_output_sink
      [ "fprintf"; "output_string"; "output_char" ];
    toplevel_mutable_rule ~exempt:in_telemetry;
  ]

(* ------------------------------------------------------------------ *)
(* SA060: blocking syscalls reachable from the serve event loop          *)
(* ------------------------------------------------------------------ *)

(* Calls that can park the whole process. The sanctioned loop primitives —
   [Unix.select] and reads/writes on fds the loop has set non-blocking —
   are deliberately absent. *)
let blocking_needles =
  [
    [ "Unix"; "sleep" ]; [ "Unix"; "sleepf" ]; [ "Unix"; "system" ]; [ "Unix"; "wait" ];
    [ "Unix"; "waitpid" ]; [ "Unix"; "connect" ]; [ "Unix"; "open_connection" ];
    [ "Unix"; "gethostbyname" ]; [ "Unix"; "gethostbyaddr" ]; [ "Unix"; "getaddrinfo" ];
    [ "Unix"; "getprotobyname" ]; [ "Unix"; "open_process_in" ];
    [ "Unix"; "open_process_out" ]; [ "Unix"; "open_process_full" ];
    [ "input_line" ]; [ "read_line" ]; [ "really_input" ]; [ "really_input_string" ];
    [ "input_value" ]; [ "In_channel"; "input_line" ]; [ "In_channel"; "input_all" ];
    [ "In_channel"; "input_lines" ];
  ]

(* SA060 now runs on the whole-program call graph — see
   [blocking_project_rule] below. The per-file rule record is gone; the
   project pass subsumes it (a single-file project degenerates to exactly
   the old intra-module analysis, chains and all). *)

(* ------------------------------------------------------------------ *)
(* SA061: fd discipline                                                 *)
(* ------------------------------------------------------------------ *)

let fd_creators =
  [
    [ "Unix"; "openfile" ]; [ "Unix"; "socket" ]; [ "Unix"; "accept" ]; [ "Unix"; "pipe" ];
    [ "Unix"; "socketpair" ];
  ]

(* Names bound by [let pat = Unix.<creator> ...]: walk back over the
   pattern. A comma-separated pattern binds every identifier; multiple
   identifiers without commas are a function head (the fd escapes to the
   caller, whose module owns the close). *)
let backward_bound_names sm (occ : Srcmod.occurrence) =
  if not (tok_is sm (occ.Srcmod.o_index - 1) Lexer.Symbol "=") then None
  else begin
    let names = ref [] in
    let saw_comma = ref false in
    let stop = ref false in
    let j = ref (occ.Srcmod.o_index - 2) in
    let steps = ref 0 in
    let hit_let = ref false in
    while (not !stop) && !steps < 16 && !j >= 0 do
      (match tok sm !j with
      | Some { Lexer.t_kind = Lexer.Keyword; t_text = "let" | "and"; _ } ->
        hit_let := true;
        stop := true
      | Some { Lexer.t_kind = Lexer.Keyword; t_text = "rec"; _ } -> ()
      | Some { Lexer.t_kind = Lexer.Lident; t_text; _ } when t_text <> "_" ->
        names := t_text :: !names
      | Some { Lexer.t_kind = Lexer.Symbol; t_text = ","; _ } -> saw_comma := true
      | Some { Lexer.t_kind = Lexer.Symbol; t_text = "(" | ")"; _ } -> ()
      | _ -> stop := true);
      decr j;
      incr steps
    done;
    if not !hit_let then None
    else
      match !names with
      | [] -> None
      | [ x ] -> Some [ x ]
      | xs -> if !saw_comma then Some xs else None
  end

(* Names bound by [match Unix.<creator> ... with | pat -> ...]: the first
   non-[exception] arm's pattern identifiers. *)
let match_bound_names sm (occ : Srcmod.occurrence) =
  if not (tok_is sm (occ.Srcmod.o_index - 1) Lexer.Keyword "match") then None
  else begin
    let limit = occ.Srcmod.o_index + 200 in
    let rec find_with j =
      if j > limit then None
      else
        match tok sm j with
        | None -> None
        | Some { Lexer.t_kind = Lexer.Keyword; t_text = "with"; _ } -> Some j
        | Some _ -> find_with (j + 1)
    in
    let rec next_bar j =
      if j > limit then None
      else
        match tok sm j with
        | None -> None
        | Some { Lexer.t_kind = Lexer.Symbol; t_text = "|"; _ } -> Some j
        | Some _ -> next_bar (j + 1)
    in
    let arm_names j =
      (* pattern tokens from [j] to the arm's [->] *)
      let names = ref [] in
      let k = ref j in
      let stop = ref false in
      while (not !stop) && !k <= limit do
        (match tok sm !k with
        | Some { Lexer.t_kind = Lexer.Symbol; t_text = "->"; _ } | None -> stop := true
        | Some { Lexer.t_kind = Lexer.Lident; t_text; _ } when t_text <> "_" ->
          names := t_text :: !names
        | Some _ -> ());
        incr k
      done;
      List.rev !names
    in
    let rec first_plain_arm j =
      if j > limit then None
      else
        match tok sm j with
        | None -> None
        | Some { Lexer.t_kind = Lexer.Keyword; t_text = "exception"; _ } -> (
          match next_bar j with Some bar -> first_plain_arm (bar + 1) | None -> None)
        | Some { Lexer.t_kind = Lexer.Symbol; t_text = "|"; _ } -> first_plain_arm (j + 1)
        | Some _ -> Some (arm_names j)
    in
    match find_with (occ_end occ) with
    | None -> None
    | Some w -> (
      match first_plain_arm (w + 1) with
      | Some (_ :: _ as names) -> Some names
      | _ -> None)
  end

(* Last path component of the argument to a [Unix.close] call: [fd],
   [conn.fd] and [w.to_worker] all release their final component. *)
let closed_names sm =
  List.concat_map
    (fun (occ : Srcmod.occurrence) ->
      if occ.Srcmod.o_path <> [ "Unix"; "close" ] then []
      else begin
        let j = occ_end occ + 1 in
        let j = if tok_is sm j Lexer.Symbol "(" then j + 1 else j in
        match
          List.find_opt (fun (o : Srcmod.occurrence) -> o.Srcmod.o_index = j)
            sm.Srcmod.sm_occurrences
        with
        | Some arg -> [ last_comp arg.Srcmod.o_raw ]
        | None -> []
      end)
    sm.Srcmod.sm_occurrences

(* Record fields assigned from a created name ([{ to_worker = job_w; ... }])
   release the name when the *field* reaches a close: ownership moved into
   the record, and the record's close path is what matters. *)
let field_aliases sm =
  let toks = sm.Srcmod.sm_lex.Lexer.tokens in
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if
        t.Lexer.t_kind = Lexer.Lident
        && tok_is sm (i + 1) Lexer.Symbol "="
        && (match tok sm (i - 1) with
           | Some { Lexer.t_kind = Lexer.Symbol; t_text = "{" | ";"; _ } -> true
           | _ -> false)
      then
        match tok sm (i + 2) with
        | Some { Lexer.t_kind = Lexer.Lident; t_text; _ } ->
          out := (t.Lexer.t_text, t_text) :: !out
        | _ -> ())
    toks;
  !out

let fd_leak_rule ~exempt =
  {
    r_code = D.Fd_leak;
    r_name = "fd-leak";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        let closed = closed_names sm in
        let aliases = field_aliases sm in
        let released name =
          List.mem name closed
          || List.exists (fun (field, src) -> src = name && List.mem field closed) aliases
        in
        List.concat_map
          (fun occ ->
            match List.find_opt (fun nd -> Srcmod.matches sm nd occ) fd_creators with
            | None -> []
            | Some nd ->
              let bound =
                match backward_bound_names sm occ with
                | Some names -> names
                | None -> ( match match_bound_names sm occ with Some names -> names | None -> [])
              in
              List.filter_map
                (fun name ->
                  if released name then None
                  else
                    Some
                      (finding D.Fd_leak occ
                         (Printf.sprintf
                            "%s result '%s' never reaches Unix.close in this module"
                            (path_str nd) name)))
                bound)
          sm.Srcmod.sm_occurrences);
  }

(* ------------------------------------------------------------------ *)
(* SA062: signal-handler safety                                         *)
(* ------------------------------------------------------------------ *)

(* Within a handler body, flag the first token that is more than flag
   bookkeeping: any qualified call outside [Atomic]/[Sys], a mutable-field
   write, or a string literal (formatting/allocation). *)
let handler_violation sm a b =
  let bad_occ =
    List.find_opt
      (fun (o : Srcmod.occurrence) ->
        match o.Srcmod.o_path with
        | head :: _ :: _ -> head <> "Atomic" && head <> "Sys"
        | _ -> false)
      (occs_in sm a b)
  in
  match bad_occ with
  | Some o -> Some (Printf.sprintf "calls %s" (path_str o.Srcmod.o_path))
  | None ->
    let toks = sm.Srcmod.sm_lex.Lexer.tokens in
    let bad = ref None in
    for i = a to min b (Array.length toks - 1) do
      if !bad = None then
        match toks.(i) with
        | { Lexer.t_kind = Lexer.Symbol; t_text = "<-"; _ } ->
          bad := Some "writes a mutable field"
        | { Lexer.t_kind = Lexer.String_lit; _ } ->
          bad := Some "allocates/formats a string"
        | _ -> ()
    done;
    !bad

(* The matching close paren of an opening paren at [start]. *)
let matching_paren sm start =
  let toks = sm.Srcmod.sm_lex.Lexer.tokens in
  let n = Array.length toks in
  let depth = ref 0 in
  let result = ref None in
  let i = ref start in
  while !result = None && !i < n do
    (match toks.(!i) with
    | { Lexer.t_kind = Lexer.Symbol; t_text = "("; _ } -> incr depth
    | { Lexer.t_kind = Lexer.Symbol; t_text = ")"; _ } ->
      decr depth;
      if !depth = 0 then result := Some !i
    | _ -> ());
    incr i
  done;
  !result

(* Resolve a named handler against toplevel bindings (nested locals are
   out of reach — those handlers are trusted rather than guessed at). *)
let resolve_handler sm name =
  match Srcmod.binding_named sm name with
  | None -> None
  | Some b -> handler_violation sm b.Srcmod.b_body_start b.Srcmod.b_body_end

let signal_rule ~exempt =
  {
    r_code = D.Signal_unsafe;
    r_name = "signal-handler-unsafe";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (occ : Srcmod.occurrence) ->
            if occ.Srcmod.o_path <> [ "Sys"; "set_signal" ] then None
            else begin
              (* find a Signal_handle within the next few tokens; Signal_ignore
                 and Signal_default need no inspection *)
              let handle =
                List.find_opt
                  (fun (o : Srcmod.occurrence) ->
                    o.Srcmod.o_index > occ.Srcmod.o_index
                    && o.Srcmod.o_index <= occ.Srcmod.o_index + 12
                    && last_comp o.Srcmod.o_path = "Signal_handle")
                  sm.Srcmod.sm_occurrences
              in
              match handle with
              | None -> None
              | Some h -> (
                let start = occ_end h + 1 in
                let violation =
                  match tok sm start with
                  | Some { Lexer.t_kind = Lexer.Symbol; t_text = "("; _ } -> (
                    match matching_paren sm start with
                    | None -> None
                    | Some close -> (
                      (* (fun ... -> body) or (local_handler) *)
                      match tok sm (start + 1) with
                      | Some { Lexer.t_kind = Lexer.Keyword; t_text = "fun"; _ } ->
                        handler_violation sm (start + 1) (close - 1)
                      | Some { Lexer.t_kind = Lexer.Lident; t_text; _ } ->
                        resolve_handler sm t_text
                      | _ -> None))
                  | Some { Lexer.t_kind = Lexer.Lident; t_text; _ } ->
                    resolve_handler sm t_text
                  | _ -> None
                in
                match violation with
                | None -> None
                | Some why ->
                  Some
                    (finding D.Signal_unsafe occ
                       (Printf.sprintf
                          "signal handler does more than set a ref/Atomic flag (%s)" why)))
            end)
          sm.Srcmod.sm_occurrences);
  }

(* ------------------------------------------------------------------ *)
(* SA063: determinism hazards                                           *)
(* ------------------------------------------------------------------ *)

let hashtbl_order_rule ~exempt =
  path_rule D.Nondeterminism ~name:"hashtbl-order"
    ~why:
      "Hashtbl iteration order is seed-dependent; sort or use an ordered structure before \
       it feeds output"
    ~exempt
    [ [ "Hashtbl"; "iter" ]; [ "Hashtbl"; "fold" ] ]

let wallclock_rule ~exempt =
  path_rule D.Nondeterminism ~name:"wall-clock"
    ~why:"wall-clock time outside Stopwatch breaks replay determinism" ~exempt
    [ [ "Unix"; "gettimeofday" ]; [ "Sys"; "time" ] ]

let random_rule ~exempt =
  {
    r_code = D.Nondeterminism;
    r_name = "random-outside-rng";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        List.filter_map
          (fun (occ : Srcmod.occurrence) ->
            match occ.Srcmod.o_path with
            | "Random" :: _ :: _ ->
              Some
                (finding D.Nondeterminism occ
                   (Printf.sprintf "%s (Random outside the seeded Rng module)"
                      (path_str occ.Srcmod.o_path)))
            | _ -> None)
          sm.Srcmod.sm_occurrences);
  }

(* ------------------------------------------------------------------ *)
(* SA064: silent exception swallowing                                   *)
(* ------------------------------------------------------------------ *)

type opener = Try | Match | Group

(* A [with] pairs with the nearest unclosed [try]/[match]; [with] at the
   top of a brace/paren group is a record-update or module-constraint
   [with] and pairs with nothing. Only [try ... with _ ->] (optionally
   [with | _ ->]) is the silent-swallow idiom. *)
let swallow_rule ~exempt =
  {
    r_code = D.Exception_swallowed;
    r_name = "exception-swallowed";
    r_exempt = exempt;
    r_check =
      (fun sm ->
        let toks = sm.Srcmod.sm_lex.Lexer.tokens in
        let n = Array.length toks in
        let stack = ref [] in
        let out = ref [] in
        let wildcard_after i =
          let j = if tok_is sm i Lexer.Symbol "|" then i + 1 else i in
          tok_is sm j Lexer.Lident "_" && tok_is sm (j + 1) Lexer.Symbol "->"
        in
        for i = 0 to n - 1 do
          let t = toks.(i) in
          match (t.Lexer.t_kind, t.Lexer.t_text) with
          | Lexer.Keyword, "try" -> stack := Try :: !stack
          | Lexer.Keyword, "match" -> stack := Match :: !stack
          | Lexer.Symbol, ("(" | "{" | "[") | Lexer.Keyword, "begin" ->
            stack := Group :: !stack
          | Lexer.Symbol, (")" | "}" | "]") | Lexer.Keyword, "end" -> (
            (* pop through any try/match left unpaired inside the group *)
            let rec pop () =
              match !stack with
              | Group :: rest -> stack := rest
              | (Try | Match) :: rest ->
                stack := rest;
                pop ()
              | [] -> ()
            in
            pop ())
          | Lexer.Keyword, "with" -> (
            match !stack with
            | Try :: rest ->
              stack := rest;
              if wildcard_after (i + 1) then
                out :=
                  {
                    f_line = t.Lexer.t_line;
                    f_col = t.Lexer.t_col;
                    f_code = D.Exception_swallowed;
                    f_message =
                      "try ... with _ -> silently discards the exception; match specific \
                       exceptions or log before dropping";
                  }
                  :: !out
            | Match :: rest -> stack := rest
            | _ -> () (* record-update / constraint [with] *))
          | _ -> ()
        done;
        List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* Project rules: whole-program passes over the cross-module call graph *)
(* ------------------------------------------------------------------ *)

type project_finding = { pf_file : int; pf_finding : finding }

type project_rule = { pr_name : string; pr_check : Srcmod.project -> project_finding list }

(* Occurrences of [file] that sit inside [b]'s body. *)
let body_occs (t : Srcmod.t) (b : Srcmod.binding) =
  List.filter
    (fun (o : Srcmod.occurrence) ->
      o.Srcmod.o_index >= b.Srcmod.b_body_start && o.Srcmod.o_index <= b.Srcmod.b_body_end)
    t.Srcmod.sm_occurrences

(* SA060 on the project graph: from every [serve] root, walk the
   cross-module reachable set (fixtures with a local [serve] binding work
   unchanged) and flag blocking needles inside any reached body. The fork
   pool is fenced off: its waitpid/worker plumbing runs on the parent side
   of a fork, never inside the select loop. *)
let blocking_project_rule =
  {
    pr_name = "blocking-in-event-loop";
    pr_check =
      (fun p ->
        let files = p.Srcmod.p_files in
        let out = ref [] in
        Array.iteri
          (fun fi (t : Srcmod.t) ->
            if (not (in_parpool t.Srcmod.sm_path)) && Srcmod.binding_named t "serve" <> None
            then
              List.iter
                (fun ((fj, b, chain) : int * Srcmod.binding * string list) ->
                  let tj = files.(fj) in
                  List.iter
                    (fun occ ->
                      match
                        List.find_opt (fun nd -> Srcmod.matches tj nd occ) blocking_needles
                      with
                      | None -> ()
                      | Some nd ->
                        out :=
                          {
                            pf_file = fj;
                            pf_finding =
                              finding D.Blocking_in_loop occ
                                (Printf.sprintf
                                   "%s blocks the single-threaded event loop (reachable via \
                                    %s)"
                                   (path_str nd)
                                   (String.concat " -> " chain));
                          }
                          :: !out)
                    (body_occs tj b))
                (Srcmod.project_reachable p ~file:fi "serve"
                   ~stop:(fun fj _ -> in_parpool files.(fj).Srcmod.sm_path)))
          files;
        List.rev !out);
  }

(* SA070-SA074: the hot-path passes. One combined pass so the annotation
   table, the allocation summaries and the SCC analysis are built once. *)
let hot_project_rule =
  {
    pr_name = "hot-path";
    pr_check =
      (fun p ->
        let files = p.Srcmod.p_files in
        let nf = Array.length files in
        let az = Allocsum.analyze p in
        let anns = Array.init nf (fun fi -> Allocsum.annotations files.(fi).Srcmod.sm_lex) in
        let binding_at fi line =
          List.find_opt
            (fun (b : Srcmod.binding) -> b.Srcmod.b_line = line)
            files.(fi).Srcmod.sm_bindings
        in
        let out = ref [] in
        let emit fi f = out := { pf_file = fi; pf_finding = f } :: !out in
        (* cold boundaries: reachability stops at these bindings *)
        let cold = Hashtbl.create 8 in
        for fi = 0 to nf - 1 do
          List.iter
            (fun (a : Allocsum.annotation) ->
              if a.Allocsum.an_kind = Allocsum.Cold then
                match binding_at fi a.Allocsum.an_target with
                | Some b -> Hashtbl.replace cold (fi, b.Srcmod.b_name) ()
                | None -> ())
            anns.(fi)
        done;
        (* SA073 / SA074: resolve and vet every hot annotation first *)
        let roots = ref [] in
        let seen_root = Hashtbl.create 8 in
        for fi = 0 to nf - 1 do
          List.iter
            (fun (a : Allocsum.annotation) ->
              match binding_at fi a.Allocsum.an_target with
              | None ->
                emit fi
                  {
                    f_line = a.Allocsum.an_line;
                    f_col = 0;
                    f_code = D.Hot_unresolved;
                    f_message =
                      Printf.sprintf
                        "(* sunstone-%s *) targets line %d but no toplevel binding starts \
                         there"
                        (match a.Allocsum.an_kind with Allocsum.Hot -> "hot" | _ -> "cold")
                        a.Allocsum.an_target;
                  }
              | Some b when a.Allocsum.an_kind = Allocsum.Hot ->
                if not b.Srcmod.b_params then
                  emit fi
                    {
                      f_line = a.Allocsum.an_line;
                      f_col = 0;
                      f_code = D.Hot_stale;
                      f_message =
                        Printf.sprintf
                          "(* sunstone-hot *) on '%s', a parameterless binding — hot roots \
                           must be functions"
                          b.Srcmod.b_name;
                    }
                else if Hashtbl.mem seen_root (fi, b.Srcmod.b_name) then
                  emit fi
                    {
                      f_line = a.Allocsum.an_line;
                      f_col = 0;
                      f_code = D.Hot_stale;
                      f_message =
                        Printf.sprintf "duplicate (* sunstone-hot *) on '%s'" b.Srcmod.b_name;
                    }
                else begin
                  Hashtbl.replace seen_root (fi, b.Srcmod.b_name) ();
                  roots := (fi, b.Srcmod.b_name) :: !roots
                end
              | Some _ -> ())
            anns.(fi)
        done;
        (* SA070 / SA071 / SA072 over the reachable set of each hot root *)
        let seen_site = Hashtbl.create 64 in
        let site_once fj code (s : Allocsum.site) k =
          let key = (fj, s.Allocsum.s_line, s.Allocsum.s_col, D.code_id code) in
          if not (Hashtbl.mem seen_site key) then begin
            Hashtbl.replace seen_site key ();
            k ()
          end
        in
        List.iter
          (fun (fi, root) ->
            let display = String.concat " -> " in
            List.iter
              (fun ((fj, b, chain) : int * Srcmod.binding * string list) ->
                let summary =
                  match Allocsum.node az fj b.Srcmod.b_name with
                  | Some nd -> nd.Allocsum.nd_summary
                  | None -> Allocsum.summarize files.(fj) b
                in
                List.iter
                  (fun (s : Allocsum.site) ->
                    site_once fj D.Hot_allocation s (fun () ->
                        emit fj
                          {
                            f_line = s.Allocsum.s_line;
                            f_col = s.Allocsum.s_col;
                            f_code = D.Hot_allocation;
                            f_message =
                              Printf.sprintf "%s allocates on the hot path (root %s, via %s)"
                                s.Allocsum.s_desc root (display chain);
                          }))
                  summary.Allocsum.alloc_sites;
                List.iter
                  (fun (s : Allocsum.site) ->
                    site_once fj D.Hot_io s (fun () ->
                        emit fj
                          {
                            f_line = s.Allocsum.s_line;
                            f_col = s.Allocsum.s_col;
                            f_code = D.Hot_io;
                            f_message =
                              Printf.sprintf
                                "%s does IO or raises broadly on the hot path (root %s, via \
                                 %s)"
                                s.Allocsum.s_desc root (display chain);
                          }))
                  summary.Allocsum.io_sites;
                List.iter
                  (fun (s : Allocsum.site) ->
                    site_once fj D.Hot_nontail s (fun () ->
                        emit fj
                          {
                            f_line = s.Allocsum.s_line;
                            f_col = s.Allocsum.s_col;
                            f_code = D.Hot_nontail;
                            f_message =
                              Printf.sprintf
                                "non-tail self-recursion in '%s' on the hot path (root %s, \
                                 via %s)"
                                b.Srcmod.b_name root (display chain);
                          }))
                  summary.Allocsum.nontail_sites)
              (Srcmod.project_reachable p ~file:fi root ~stop:(fun fj name ->
                   Hashtbl.mem cold (fj, name))))
          (List.rev !roots);
        List.rev !out);
  }

let project_rules () = [ blocking_project_rule; hot_project_rule ]

(* ------------------------------------------------------------------ *)
(* Rule sets                                                            *)
(* ------------------------------------------------------------------ *)

let daemon_rules () =
  [
    fd_leak_rule ~exempt:no_exemption;
    signal_rule ~exempt:no_exemption;
    (* cost joined serve in SA063's scope when the probe memo landed: the
       memo tables must never be walked in iteration order either *)
    hashtbl_order_rule ~exempt:(fun p -> not (under_serve p || under_cost p));
    wallclock_rule ~exempt:(fun p ->
        (not (under_lib p)) || contains_sub p "stopwatch" || in_telemetry p);
    random_rule ~exempt:(fun p -> contains_sub p "rng");
    swallow_rule ~exempt:(fun p -> not (under_lib p));
  ]

let scope_to_lib r =
  { r with r_exempt = (fun p -> (not (under_lib p)) || r.r_exempt p) }

let default_rules () = List.map scope_to_lib (forksafe_rules ()) @ daemon_rules ()

let unscoped rules = List.map (fun r -> { r with r_exempt = no_exemption }) rules
