module D = Diagnostic

type suppression = {
  s_code : string;
  s_reason : string;
  s_line : int;
  s_target : int;
  mutable s_used : bool;
}

let drop_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(* "SA044 reason..." -> (code, reason); None when no reason is given. *)
let split_code_reason s =
  match String.index_opt s ' ' with
  | None -> None
  | Some sp ->
    let code = String.sub s 0 sp in
    let reason = String.trim (String.sub s sp (String.length s - sp)) in
    if code = "" || reason = "" then None else Some (code, reason)

let parse_comment (c : Lexer.comment) =
  match drop_prefix ~prefix:"sunstone-lint:" (String.trim c.Lexer.c_text) with
  | None -> None
  | Some rest -> (
    match drop_prefix ~prefix:"allow " (String.trim rest) with
    | None -> None
    | Some spec -> (
      match split_code_reason (String.trim spec) with
      | None -> None
      | Some (code, reason) -> Some (code, reason)))

(* A comment sharing its line with preceding code targets its own line;
   a comment alone on its line targets the next token-carrying line. *)
let target_line (lx : Lexer.t) (c : Lexer.comment) =
  let toks = lx.Lexer.tokens in
  let on_own_line =
    Array.exists
      (fun t -> t.Lexer.t_line = c.Lexer.c_line && t.Lexer.t_col < c.Lexer.c_col)
      toks
  in
  if on_own_line then c.Lexer.c_line
  else
    Array.fold_left
      (fun best t ->
        if t.Lexer.t_line > c.Lexer.c_line && (best = 0 || t.Lexer.t_line < best) then
          t.Lexer.t_line
        else best)
      0 toks
    |> fun next -> if next = 0 then c.Lexer.c_line else next

let collect lx =
  List.filter_map
    (fun c ->
      match parse_comment c with
      | None -> None
      | Some (code, reason) ->
        Some
          {
            s_code = code;
            s_reason = reason;
            s_line = c.Lexer.c_line;
            s_target = target_line lx c;
            s_used = false;
          })
    lx.Lexer.comments

let suppresses sups ~code ~line =
  let matching = List.filter (fun s -> s.s_code = code && s.s_target = line) sups in
  List.iter (fun s -> s.s_used <- true) matching;
  matching <> []

let stale ~path sups =
  List.filter_map
    (fun s ->
      if s.s_used then None
      else
        Some
          (D.warning D.Stale_suppression
             (Printf.sprintf "%s:%d: suppression 'allow %s' matches no diagnostic (%s)" path
                s.s_line s.s_code s.s_reason)))
    sups
