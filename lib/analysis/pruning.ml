module W = Sun_tensor.Workload
module Reuse = Sun_tensor.Reuse
module Trie = Sun_core.Order_trie
module Probe = Sun_cost.Probe
module D = Diagnostic

type report = {
  workload : string;
  orderings : int;
  dropped_dims_checked : int;
  diagnostics : Diagnostic.t list;
}

(* Semantic probe: does growing dim [d] change operand [op]'s tile
   footprint? Evaluated on the projection arithmetic itself (two footprint
   evaluations), so it cannot agree with a buggy dim-name table by
   construction. Probing at extent 2 vs 1 suffices: every axis extent is
   affine in each dim extent with non-negative coefficients, so it either
   never moves or moves already at 2. The evaluations go through the
   check-scoped [Probe] memo — bit-identical to direct [W.footprint]
   recomputation (pinned by QCheck), and a suffix scan re-probes the same
   (operand, dim) pairs for every candidate. *)
let probe_changes_footprint probe (op : W.operand) d =
  Probe.changes_footprint probe ~op:op.W.name ~dim:d

(* Independent innermost-first reuse scan of a suffix for one operand,
   driven by the probe (full reuse) and the affine structure (partial
   reuse), mirroring the cost model's refill absorption. *)
let scan_suffix probe (op : W.operand) suffix =
  let sliding = W.sliding_dims op in
  let rec go full = function
    | [] -> (List.sort String.compare full, false)
    | d :: rest ->
      if not (probe_changes_footprint probe op d) then go (d :: full) rest
      else if List.mem d sliding then (List.sort String.compare full, true)
      else (List.sort String.compare full, false)
  in
  go [] suffix

let signature_of_scans scans =
  List.concat_map
    (fun (name, (full, partial)) ->
      (if full <> [] then [ (name, Trie.Full) ] else [])
      @ if partial then [ (name, Trie.Partial) ] else [])
    scans
  |> List.sort compare

let check (w : W.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dims = W.dim_names w in
  (* one probe per check: the memo lives and dies with this scope *)
  let probe = Probe.create w in
  let reuse = Reuse.analyze w in
  (* 1. the reuse table must agree with the footprint probe and partition
     the dims for every operand *)
  List.iter
    (fun (e : Reuse.entry) ->
      let op = e.Reuse.operand in
      List.iter
        (fun d ->
          let indexing = List.mem d e.Reuse.indexed_by in
          let reused = List.mem d e.Reuse.reused_by in
          let changes = probe_changes_footprint probe op d in
          if indexing && reused then
            add
              (D.error ~dim:d ~operand:op.W.name D.Pruning_unsound
                 (Printf.sprintf "dim %s is both an indexing and a reuse dim of %s" d op.W.name));
          if (not indexing) && not reused then
            add
              (D.error ~dim:d ~operand:op.W.name D.Pruning_unsound
                 (Printf.sprintf "dim %s is in neither class for %s" d op.W.name));
          if reused && changes then
            add
              (D.error ~dim:d ~operand:op.W.name D.Pruning_unsound
                 (Printf.sprintf
                    "dim %s is classed as a reuse dim of %s but growing it changes the footprint"
                    d op.W.name));
          if indexing && not changes then
            add
              (D.warning ~dim:d ~operand:op.W.name D.Pruning_unsound
                 (Printf.sprintf
                    "dim %s is classed as an indexing dim of %s but does not change its footprint"
                    d op.W.name)))
        dims)
    reuse;
  (* 2 + 3. every trie candidate: independent signature, and the dims it
     will drop are genuinely non-reuse for the reused operand *)
  let candidates = Trie.candidates w in
  let dropped_checked = ref 0 in
  let sorted_dims = List.sort String.compare dims in
  List.iter
    (fun (c : Trie.candidate) ->
      if List.sort String.compare c.Trie.order <> sorted_dims then
        add
          (D.error D.Pruning_unsound
             (Printf.sprintf "trie order [%s] is not a permutation of the workload dims"
                (String.concat ", " c.Trie.order)));
      let scans =
        List.filter_map
          (fun (op : W.operand) ->
            let full, partial = scan_suffix probe op c.Trie.suffix in
            if full = [] && not partial then None else Some (op.W.name, (full, partial)))
          w.W.operands
      in
      let expected = signature_of_scans scans in
      if expected <> c.Trie.signature then
        add
          (D.error D.Pruning_unsound
             (Printf.sprintf "suffix [%s]: trie signature disagrees with independent reuse scan"
                (String.concat ", " c.Trie.suffix)));
      let expected_reused =
        List.sort String.compare
          (List.filter_map (fun (n, (full, _)) -> if full <> [] then Some n else None) scans)
      in
      if expected_reused <> List.sort String.compare c.Trie.reused_operands then
        add
          (D.error D.Pruning_unsound
             (Printf.sprintf "suffix [%s]: reused-operand set disagrees with independent scan"
                (String.concat ", " c.Trie.suffix)));
      (* the Tiling / Unrolling Principles drop every dim outside the grow
         set of the reused operand; each must be footprint-invariant *)
      List.iter
        (fun op_name ->
          match W.find_operand w op_name with
          | exception Not_found ->
            add
              (D.error ~operand:op_name D.Pruning_unsound
                 (Printf.sprintf "trie names unknown operand %s" op_name))
          | op ->
            let grow = W.indexing_dims op in
            List.iter
              (fun d ->
                if not (List.mem d grow) then begin
                  incr dropped_checked;
                  if probe_changes_footprint probe op d then
                    add
                      (D.error ~dim:d ~operand:op_name D.Pruning_unsound
                         (Printf.sprintf
                            "dim %s is dropped at levels reusing %s but growing it changes the \
                             reused footprint"
                            d op_name))
                end)
              dims)
        c.Trie.reused_operands)
    candidates;
  Probe.flush_telemetry probe;
  {
    workload = w.W.name;
    orderings = List.length candidates;
    dropped_dims_checked = !dropped_checked;
    diagnostics = List.rev !diags;
  }

let check_many named =
  List.map
    (fun (name, w) ->
      let r = check w in
      { r with workload = name })
    named
