(** Pruning soundness (pass 2): are the dims the search drops really
    non-reuse dims?

    Sunstone's ordering-trie and tiling-tree prune aggressively: at each
    level only the indexing dimensions of the operand temporally reused at
    that level (the "grow set") are considered for tiling and spatial
    unrolling, and loop orders are collapsed to reuse-signature
    representatives. Those prunes are sound only if the reuse bookkeeping is
    right, so this pass re-derives reuse from first principles — probing
    each operand's footprint function with per-dimension extent bumps,
    never consulting the dim-name bookkeeping under test — and checks:

    - the reuse table partitions the dims: for every operand, a dim either
      changes its footprint (indexing) or provably does not (reuse dim),
      and [Reuse.analyze] agrees with the probe;
    - for every ordering candidate the trie emits, an independent
      innermost-first reuse scan of the suffix reproduces the candidate's
      signature and reused-operand set;
    - for every candidate and every operand it claims reused, each dim
      *outside* that operand's grow set (i.e. every dim the tiling tree and
      unroller will drop at that level) is footprint-invariant for the
      operand — growing it could not change the reused tile, so dropping it
      cannot hide a better schedule (the Tiling / Unrolling Principles). *)

type report = {
  workload : string;
  orderings : int;  (** candidates the trie emitted *)
  dropped_dims_checked : int;  (** (candidate, operand, dropped-dim) triples probed *)
  diagnostics : Diagnostic.t list;
}

val check : Sun_tensor.Workload.t -> report

val check_many : (string * Sun_tensor.Workload.t) list -> report list
(** One report per named workload, e.g. over [Registry.workloads ()]. *)
