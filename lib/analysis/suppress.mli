(** Inline lint suppressions — the only suppression mechanism the engine
    supports (legacy allowlist files are gone). A comment of the form

    {[ (* sunstone-lint: allow SA044 reason why this site is fine *) ]}

    suppresses diagnostics with that code on the line it targets. A comment
    sharing its line with code targets that line; a comment alone on a line
    targets the next line that carries a token. Every suppression must
    carry a reason — bare [allow SA044] is not recognized, so the "why"
    lives next to the site instead of rotting in a central file.

    Suppressions are use-tracked: one that matched nothing is reported as
    an SA065 warning by {!stale}, so silenced rules cannot rot silently. *)

type suppression = {
  s_code : string;  (** e.g. ["SA044"] *)
  s_reason : string;
  s_line : int;  (** line of the comment itself *)
  s_target : int;  (** line whose diagnostics it suppresses *)
  mutable s_used : bool;
}

val collect : Lexer.t -> suppression list
(** Parse every suppression comment in a lexed file. *)

val target_line : Lexer.t -> Lexer.comment -> int
(** The line a marker comment applies to: its own line when it shares the
    line with preceding code, else the next token-carrying line. Shared with
    the hot/cold annotation parser in {!Allocsum}. *)

val suppresses : suppression list -> code:string -> line:int -> bool
(** True when some suppression covers [code] on [line]; marks it used. *)

val stale : path:string -> suppression list -> Diagnostic.t list
(** SA065 warnings for suppressions that matched no diagnostic. *)
