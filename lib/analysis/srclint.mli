(** The srclint scan driver: walk roots, run {!Rules} over each file's
    {!Srcmod} model, apply inline {!Suppress} comments and the legacy
    fixed-substring allowlist, and report structured {!Diagnostic}s.

    Hits are errors; stale suppressions (inline comments or allowlist
    entries that matched nothing) are SA065 warnings, so a silenced rule
    cannot rot without being seen. *)

type hit = {
  h_path : string;
  h_line : int;
  h_col : int;
  h_text : string;  (** the offending source line, trimmed *)
  h_diag : Diagnostic.t;
}

type report = {
  files_scanned : int;
  tokens_seen : int;
  hits : hit list;  (** after suppression, in file/rule order *)
  suppressed : int;  (** inline-suppressed plus allowlisted *)
  stale : Diagnostic.t list;  (** SA065 warnings *)
}

val walk : string -> string list
(** [*.ml] files under a directory root (skipping [_build] and
    dot-directories), or the root itself when it is a [.ml] file — the
    latter lets ci.sh point the scanner at a single bad fixture. *)

val hit_string : hit -> string
(** Grep-style ["path:line:text"] — the string allowlist entries match
    against, unchanged from the old Forksafe format. *)

val diagnostics : report -> Diagnostic.t list
(** Hit diagnostics followed by stale-suppression warnings. *)

val scan :
  ?allowlist:string list -> ?rules:Rules.rule list -> roots:string list -> unit -> report
(** Scan every file under [roots]. [rules] defaults to
    {!Rules.default_rules}; pass [Rules.unscoped] rules to lint fixtures.
    [allowlist] entries are legacy fixed substrings matched against
    {!hit_string}; entries that match nothing become SA065 warnings. *)

val load_allowlist : string -> string list
(** Parse an allowlist file (blank lines and [#] comments ignored); a
    missing file is an empty allowlist. *)
