(** The srclint scan driver: walk roots, model every file, run the
    per-file {!Rules} and the whole-program {!Rules.project_rules} (the
    cross-module SA060 and the SA070–SA074 hot-path passes), apply inline
    {!Suppress} comments, and report structured {!Diagnostic}s.

    Hits are errors; stale inline suppressions are SA065 warnings, so a
    silenced rule cannot rot without being seen. Inline comments are the
    only suppression mechanism — the legacy allowlist files are gone. *)

type hit = {
  h_path : string;
  h_line : int;
  h_col : int;
  h_text : string;  (** the offending source line, trimmed *)
  h_diag : Diagnostic.t;
}

type report = {
  files_scanned : int;
  tokens_seen : int;
  hits : hit list;  (** after suppression, in file/rule order *)
  suppressed : int;  (** inline-suppressed findings *)
  stale : Diagnostic.t list;  (** SA065 warnings *)
}

val walk : string -> string list
(** [*.ml] files under a directory root (skipping [_build] and
    dot-directories), or the root itself when it is a [.ml] file — the
    latter lets ci.sh point the scanner at a single bad fixture. *)

val hit_string : hit -> string
(** Grep-style ["path:line:text"]. *)

val diagnostics : report -> Diagnostic.t list
(** Hit diagnostics followed by stale-suppression warnings. *)

val scan :
  ?rules:Rules.rule list ->
  ?project_rules:Rules.project_rule list ->
  roots:string list ->
  unit ->
  report
(** Scan every file under [roots]. [rules] defaults to
    {!Rules.default_rules}; pass [Rules.unscoped] rules to lint fixtures.
    [project_rules] defaults to {!Rules.project_rules} and runs regardless
    of which per-file rules were chosen — the production clean-tree gate and
    the fixture gates exercise the same whole-program passes. *)
