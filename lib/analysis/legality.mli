(** Mapping legality (pass 1): is a mapping a lawful schedule of a workload
    on an architecture?

    Two entry points, both independent reimplementations of the invariants
    scattered across [Mapping.make] and the cost model's [validate] — the
    point of a static checker is to re-derive the rules, not to call the
    code under check:

    - {!check_levels} works on *raw* level mappings (e.g. freshly decoded
      from user JSON, before [Mapping.make] has seen them) and reports
      structural violations: unknown dims, non-positive factors, factor
      lists that miss or duplicate dims, orders that are not permutations,
      per-dim factor products that miss the workload bound, and a level
      count that disagrees with the architecture.
    - {!check} additionally runs the architecture-dependent checks on a
      structurally sound mapping: per-level tile footprints against buffer
      partition capacities (SA001) and spatial unrolling products against
      PE-array fanouts (SA002). *)

val check_levels :
  ?arch:Sun_arch.Arch.t ->
  Sun_tensor.Workload.t -> Sun_mapping.Mapping.level_mapping list -> Diagnostic.t list
(** Structural checks only; [?arch] adds the level-count check (SA005). *)

val check :
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.t -> Diagnostic.t list
(** Full legality of a structurally valid mapping: capacity and fanout. *)

val check_all :
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_mapping.Mapping.level_mapping list ->
  Diagnostic.t list
(** [check_levels] first; if structurally clean, [check] on the built
    mapping. The one-call entry used by [sunstone check] and the serve
    pipeline. *)
