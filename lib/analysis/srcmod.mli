(** Per-file source model built on the {!Lexer} token stream.

    A [t] is what the rule engine sees for one compilation unit: the raw
    lines (for rendering hits), the token stream, and three derived views:

    - {b occurrences}: every dotted identifier path, with module aliases
      resolved ([module Tel = Sun_telemetry.Metrics] makes [Tel.count]
      match a [Sun_telemetry.Metrics.count] needle) and a leading [Stdlib]
      stripped, so rules match on canonical paths;
    - {b toplevel bindings}: column-0 [let]/[and] items with their name,
      parameter-ness, and body token span — the unit of reachability;
    - {b the intra-module call graph}: binding → bare references to other
      toplevel bindings, used by the SA060 event-loop reachability pass.

    Like the lexer this is deliberately an approximation: local shadowing
    inside a body is not tracked, and patterns more exotic than tuples keep
    only their first identifier. The rules that consume it are written so
    the approximation errs toward silence on idiomatic code. *)

type occurrence = {
  o_index : int;  (** token index of the path head *)
  o_line : int;
  o_col : int;
  o_path : string list;  (** resolved components (aliases applied, [Stdlib] stripped) *)
  o_raw : string list;  (** components as written *)
  o_bare : bool;  (** a single unqualified lowercase identifier *)
}

type binding = {
  b_name : string;
  b_line : int;
  b_params : bool;  (** the binding abstracts over parameters *)
  b_start : int;  (** token index of the [let]/[and] keyword *)
  b_body_start : int;  (** first token after the binding-level [=] *)
  b_body_end : int;  (** last token of the body, inclusive *)
}

type t = {
  sm_path : string;
  sm_lines : string array;
  sm_lex : Lexer.t;
  sm_opens : string list list;  (** toplevel [open] paths, outermost first *)
  sm_aliases : (string * string list) list;  (** [module X = Path] aliases *)
  sm_bindings : binding list;
  sm_occurrences : occurrence list;
}

val of_source : path:string -> string -> t

val line_text : t -> int -> string
(** The raw source line (1-based), trimmed; [""] when out of range. *)

val enclosing_binding : t -> int -> binding option
(** The toplevel binding whose span contains the given token index. *)

val binding_named : t -> string -> binding option

val matches : t -> string list -> occurrence -> bool
(** Does this occurrence denote the [needle] path? Exact resolved-path
    equality, plus the [open M] case: a bare [x] matches [[M; x]] when [M]
    is opened and no toplevel binding shadows [x]. *)

val reachable_from : t -> string -> (string * string list) list
(** Toplevel bindings reachable from the named root through bare
    references, as [(name, call chain from the root)] pairs; the root
    itself is included with a singleton chain. Empty when the root does
    not exist. *)

(** {1 Whole-program call graph}

    A {!project} stitches the per-file models into one graph whose nodes are
    [(file index, toplevel binding)] pairs. Dotted calls resolve across
    files: [M.x] to the same-directory module file [m.ml], [Lib.M.x] through
    the directory's [dune] [(name ...)] library prefix (so
    [Sun_cost.Model.evaluate_ctx] reaches [lib/cost/model.ml]), and bare or
    short paths additionally through the file's toplevel [open]s. Deeper
    paths are submodule accesses whose targets are not toplevel bindings and
    are deliberately skipped — like everything in this engine, resolution
    errs toward silence. *)

type project = {
  p_files : t array;
  p_dirs : string array;  (** [Filename.dirname] per file *)
  p_modules : string array;  (** capitalized basename, e.g. ["Model"] *)
  p_index : (string * string, int) Hashtbl.t;  (** (dir, Module) -> file index *)
  p_lib_dirs : (string, string) Hashtbl.t;  (** dune library prefix -> dir *)
}

val file_module : string -> string
(** ["lib/cost/model.ml"] -> ["Model"]. *)

val project_of_files : t list -> project
(** Build the project graph; reads each distinct directory's [dune] file (if
    any) to learn library prefixes. Directories without a [dune] file (e.g.
    fixture trees) still resolve same-directory [M.x] calls. *)

val resolve_call : project -> int -> occurrence -> (int * binding) option
(** Resolve one occurrence seen in the given file to its target binding,
    or [None] when it does not denote a toplevel binding in the project. *)

val callees : project -> int -> binding -> (int * binding) list
(** Distinct call-graph successors of a binding, in first-occurrence order. *)

val project_reachable :
  ?stop:(int -> string -> bool) ->
  project ->
  file:int ->
  string ->
  (int * binding * string list) list
(** Bindings reachable from the named root in the given file, as
    [(file, binding, display chain)] triples; the chain starts at the root
    and renders intra-file nodes bare and cross-file nodes as [Module.name].
    Nodes for which [stop] holds are not visited (and not expanded) — the
    hook behind [(* sunstone-cold *)] boundaries and scope fences. Empty
    when the root does not exist. *)
