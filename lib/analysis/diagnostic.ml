type severity = Error | Warning | Info

type code =
  | Capacity_overflow
  | Unroll_overflow
  | Bad_coverage
  | Bad_order
  | Level_mismatch
  | Unknown_dim
  | Nonpositive_factor
  | Pruning_unsound
  | Bound_overshoot
  | Optimum_pruned
  | Arch_malformed
  | Config_invalid
  | Workload_malformed
  | Operand_unstored
  | Order_not_subsumed
  | Trie_incomplete
  | Frontier_not_maximal
  | Frontier_overflow
  | Frontier_incomplete
  | Best_mismatch
  | Cost_drift
  | Audit_skipped
  | Marshal_outside_pool
  | Fork_outside_pool
  | Shared_channel_write
  | Toplevel_mutable
  | Partial_function
  | Unit_nonfinite
  | Unit_negative
  | Unit_implausible
  | Blocking_in_loop
  | Fd_leak
  | Signal_unsafe
  | Nondeterminism
  | Exception_swallowed
  | Stale_suppression

type location = {
  level : int option;
  dim : string option;
  operand : string option;
  partition : string option;
}

type t = { code : code; severity : severity; where : location; message : string }

let code_id = function
  | Capacity_overflow -> "SA001"
  | Unroll_overflow -> "SA002"
  | Bad_coverage -> "SA003"
  | Bad_order -> "SA004"
  | Level_mismatch -> "SA005"
  | Unknown_dim -> "SA006"
  | Nonpositive_factor -> "SA007"
  | Pruning_unsound -> "SA010"
  | Bound_overshoot -> "SA011"
  | Optimum_pruned -> "SA012"
  | Arch_malformed -> "SA020"
  | Config_invalid -> "SA021"
  | Workload_malformed -> "SA022"
  | Operand_unstored -> "SA030"
  | Order_not_subsumed -> "SA031"
  | Trie_incomplete -> "SA032"
  | Frontier_not_maximal -> "SA033"
  | Frontier_overflow -> "SA034"
  | Frontier_incomplete -> "SA035"
  | Best_mismatch -> "SA036"
  | Cost_drift -> "SA037"
  | Audit_skipped -> "SA038"
  | Marshal_outside_pool -> "SA040"
  | Fork_outside_pool -> "SA041"
  | Shared_channel_write -> "SA042"
  | Toplevel_mutable -> "SA043"
  | Partial_function -> "SA044"
  | Unit_nonfinite -> "SA050"
  | Unit_negative -> "SA051"
  | Unit_implausible -> "SA052"
  | Blocking_in_loop -> "SA060"
  | Fd_leak -> "SA061"
  | Signal_unsafe -> "SA062"
  | Nondeterminism -> "SA063"
  | Exception_swallowed -> "SA064"
  | Stale_suppression -> "SA065"

let code_name = function
  | Capacity_overflow -> "capacity-overflow"
  | Unroll_overflow -> "unroll-overflow"
  | Bad_coverage -> "bad-coverage"
  | Bad_order -> "bad-order"
  | Level_mismatch -> "level-mismatch"
  | Unknown_dim -> "unknown-dim"
  | Nonpositive_factor -> "nonpositive-factor"
  | Pruning_unsound -> "pruning-unsound"
  | Bound_overshoot -> "bound-overshoot"
  | Optimum_pruned -> "optimum-pruned"
  | Arch_malformed -> "arch-malformed"
  | Config_invalid -> "config-invalid"
  | Workload_malformed -> "workload-malformed"
  | Operand_unstored -> "operand-unstored"
  | Order_not_subsumed -> "order-not-subsumed"
  | Trie_incomplete -> "trie-incomplete"
  | Frontier_not_maximal -> "frontier-not-maximal"
  | Frontier_overflow -> "frontier-overflow"
  | Frontier_incomplete -> "frontier-incomplete"
  | Best_mismatch -> "pruned-best-mismatch"
  | Cost_drift -> "cost-drift"
  | Audit_skipped -> "audit-skipped"
  | Marshal_outside_pool -> "marshal-outside-pool"
  | Fork_outside_pool -> "fork-outside-pool"
  | Shared_channel_write -> "shared-channel-write"
  | Toplevel_mutable -> "toplevel-mutable-state"
  | Partial_function -> "partial-function"
  | Unit_nonfinite -> "unit-nonfinite"
  | Unit_negative -> "unit-negative"
  | Unit_implausible -> "unit-implausible"
  | Blocking_in_loop -> "blocking-in-event-loop"
  | Fd_leak -> "fd-leak"
  | Signal_unsafe -> "signal-handler-unsafe"
  | Nondeterminism -> "determinism-hazard"
  | Exception_swallowed -> "exception-swallowed"
  | Stale_suppression -> "stale-suppression"

let all_codes =
  [
    Capacity_overflow; Unroll_overflow; Bad_coverage; Bad_order; Level_mismatch; Unknown_dim;
    Nonpositive_factor; Pruning_unsound; Bound_overshoot; Optimum_pruned; Arch_malformed;
    Config_invalid; Workload_malformed; Operand_unstored; Order_not_subsumed; Trie_incomplete;
    Frontier_not_maximal; Frontier_overflow; Frontier_incomplete; Best_mismatch; Cost_drift;
    Audit_skipped; Marshal_outside_pool; Fork_outside_pool; Shared_channel_write;
    Toplevel_mutable; Partial_function; Unit_nonfinite; Unit_negative; Unit_implausible;
    Blocking_in_loop; Fd_leak; Signal_unsafe; Nondeterminism; Exception_swallowed;
    Stale_suppression;
  ]

let code_of_id id = List.find_opt (fun c -> code_id c = id) all_codes

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let no_location = { level = None; dim = None; operand = None; partition = None }

let make severity ?level ?dim ?operand ?partition code message =
  { code; severity; where = { level; dim; operand; partition }; message }

let error ?level ?dim ?operand ?partition code message =
  make Error ?level ?dim ?operand ?partition code message

let warning ?level ?dim ?operand ?partition code message =
  make Warning ?level ?dim ?operand ?partition code message

let info ?level ?dim ?operand ?partition code message =
  make Info ?level ?dim ?operand ?partition code message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  match ds with
  | [] -> "no diagnostics"
  | _ ->
    let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
    let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
    let pieces =
      List.filter_map
        (fun (sev, what) ->
          let n = count sev in
          if n = 0 then None else Some (part n what))
        [ (Error, "error"); (Warning, "warning"); (Info, "info") ]
    in
    Printf.sprintf "%s (%s)" (part (List.length ds) "diagnostic") (String.concat ", " pieces)

let location_string where =
  let fields =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "level %d") where.level;
        Option.map (Printf.sprintf "dim %s") where.dim;
        Option.map (Printf.sprintf "operand %s") where.operand;
        Option.map (Printf.sprintf "partition %s") where.partition;
      ]
  in
  match fields with [] -> "" | fs -> " (" ^ String.concat ", " fs ^ ")"

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s%s: %s" (severity_name d.severity) (code_id d.code)
    (code_name d.code) (location_string d.where) d.message

let pp_list ppf ds =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp) ds
