type severity = Error | Warning | Info

type code =
  | Capacity_overflow
  | Unroll_overflow
  | Bad_coverage
  | Bad_order
  | Level_mismatch
  | Unknown_dim
  | Nonpositive_factor
  | Pruning_unsound
  | Bound_overshoot
  | Optimum_pruned
  | Arch_malformed
  | Config_invalid
  | Workload_malformed
  | Operand_unstored
  | Order_not_subsumed
  | Trie_incomplete
  | Frontier_not_maximal
  | Frontier_overflow
  | Frontier_incomplete
  | Best_mismatch
  | Cost_drift
  | Audit_skipped
  | Marshal_outside_pool
  | Fork_outside_pool
  | Shared_channel_write
  | Toplevel_mutable
  | Partial_function
  | Unit_nonfinite
  | Unit_negative
  | Unit_implausible
  | Blocking_in_loop
  | Fd_leak
  | Signal_unsafe
  | Nondeterminism
  | Exception_swallowed
  | Stale_suppression
  | Hot_allocation
  | Hot_io
  | Hot_nontail
  | Hot_unresolved
  | Hot_stale

type location = {
  level : int option;
  dim : string option;
  operand : string option;
  partition : string option;
}

type t = { code : code; severity : severity; where : location; message : string }

let code_id = function
  | Capacity_overflow -> "SA001"
  | Unroll_overflow -> "SA002"
  | Bad_coverage -> "SA003"
  | Bad_order -> "SA004"
  | Level_mismatch -> "SA005"
  | Unknown_dim -> "SA006"
  | Nonpositive_factor -> "SA007"
  | Pruning_unsound -> "SA010"
  | Bound_overshoot -> "SA011"
  | Optimum_pruned -> "SA012"
  | Arch_malformed -> "SA020"
  | Config_invalid -> "SA021"
  | Workload_malformed -> "SA022"
  | Operand_unstored -> "SA030"
  | Order_not_subsumed -> "SA031"
  | Trie_incomplete -> "SA032"
  | Frontier_not_maximal -> "SA033"
  | Frontier_overflow -> "SA034"
  | Frontier_incomplete -> "SA035"
  | Best_mismatch -> "SA036"
  | Cost_drift -> "SA037"
  | Audit_skipped -> "SA038"
  | Marshal_outside_pool -> "SA040"
  | Fork_outside_pool -> "SA041"
  | Shared_channel_write -> "SA042"
  | Toplevel_mutable -> "SA043"
  | Partial_function -> "SA044"
  | Unit_nonfinite -> "SA050"
  | Unit_negative -> "SA051"
  | Unit_implausible -> "SA052"
  | Blocking_in_loop -> "SA060"
  | Fd_leak -> "SA061"
  | Signal_unsafe -> "SA062"
  | Nondeterminism -> "SA063"
  | Exception_swallowed -> "SA064"
  | Stale_suppression -> "SA065"
  | Hot_allocation -> "SA070"
  | Hot_io -> "SA071"
  | Hot_nontail -> "SA072"
  | Hot_unresolved -> "SA073"
  | Hot_stale -> "SA074"

let code_name = function
  | Capacity_overflow -> "capacity-overflow"
  | Unroll_overflow -> "unroll-overflow"
  | Bad_coverage -> "bad-coverage"
  | Bad_order -> "bad-order"
  | Level_mismatch -> "level-mismatch"
  | Unknown_dim -> "unknown-dim"
  | Nonpositive_factor -> "nonpositive-factor"
  | Pruning_unsound -> "pruning-unsound"
  | Bound_overshoot -> "bound-overshoot"
  | Optimum_pruned -> "optimum-pruned"
  | Arch_malformed -> "arch-malformed"
  | Config_invalid -> "config-invalid"
  | Workload_malformed -> "workload-malformed"
  | Operand_unstored -> "operand-unstored"
  | Order_not_subsumed -> "order-not-subsumed"
  | Trie_incomplete -> "trie-incomplete"
  | Frontier_not_maximal -> "frontier-not-maximal"
  | Frontier_overflow -> "frontier-overflow"
  | Frontier_incomplete -> "frontier-incomplete"
  | Best_mismatch -> "pruned-best-mismatch"
  | Cost_drift -> "cost-drift"
  | Audit_skipped -> "audit-skipped"
  | Marshal_outside_pool -> "marshal-outside-pool"
  | Fork_outside_pool -> "fork-outside-pool"
  | Shared_channel_write -> "shared-channel-write"
  | Toplevel_mutable -> "toplevel-mutable-state"
  | Partial_function -> "partial-function"
  | Unit_nonfinite -> "unit-nonfinite"
  | Unit_negative -> "unit-negative"
  | Unit_implausible -> "unit-implausible"
  | Blocking_in_loop -> "blocking-in-event-loop"
  | Fd_leak -> "fd-leak"
  | Signal_unsafe -> "signal-handler-unsafe"
  | Nondeterminism -> "determinism-hazard"
  | Exception_swallowed -> "exception-swallowed"
  | Stale_suppression -> "stale-suppression"
  | Hot_allocation -> "hot-path-allocation"
  | Hot_io -> "hot-path-io"
  | Hot_nontail -> "hot-path-nontail-recursion"
  | Hot_unresolved -> "hot-annotation-unresolved"
  | Hot_stale -> "hot-annotation-stale"

let all_codes =
  [
    Capacity_overflow; Unroll_overflow; Bad_coverage; Bad_order; Level_mismatch; Unknown_dim;
    Nonpositive_factor; Pruning_unsound; Bound_overshoot; Optimum_pruned; Arch_malformed;
    Config_invalid; Workload_malformed; Operand_unstored; Order_not_subsumed; Trie_incomplete;
    Frontier_not_maximal; Frontier_overflow; Frontier_incomplete; Best_mismatch; Cost_drift;
    Audit_skipped; Marshal_outside_pool; Fork_outside_pool; Shared_channel_write;
    Toplevel_mutable; Partial_function; Unit_nonfinite; Unit_negative; Unit_implausible;
    Blocking_in_loop; Fd_leak; Signal_unsafe; Nondeterminism; Exception_swallowed;
    Stale_suppression; Hot_allocation; Hot_io; Hot_nontail; Hot_unresolved; Hot_stale;
  ]

let code_of_id id = List.find_opt (fun c -> code_id c = id) all_codes

let code_summary = function
  | Capacity_overflow -> "a tile footprint exceeds a partition capacity"
  | Unroll_overflow -> "a level's spatial product exceeds its fanout"
  | Bad_coverage -> "per-dim factors missing, duplicated, or not multiplying to the bound"
  | Bad_order -> "a level's loop order is not a permutation of the workload dims"
  | Level_mismatch -> "mapping level count differs from the architecture's"
  | Unknown_dim -> "a factor or order names a dim the workload does not declare"
  | Nonpositive_factor -> "a temporal or spatial factor below 1"
  | Pruning_unsound -> "a dim dropped by the search is not a non-reuse dim"
  | Bound_overshoot -> "committed-level energy exceeds a complete mapping's energy"
  | Optimum_pruned -> "the alpha-beta search lost the reference optimum"
  | Arch_malformed -> "interior unbounded level, empty/zero-capacity partition, or bad fanout"
  | Config_invalid -> "optimizer config outside its documented domain"
  | Workload_malformed -> "workload breaks its own structural invariants"
  | Operand_unstored -> "no partition at any level accepts an operand's role"
  | Order_not_subsumed -> "a pruned loop order has no dominating trie candidate"
  | Trie_incomplete -> "the order trie misses a signature-distinct order class"
  | Frontier_not_maximal -> "a tiling frontier point can still grow and fit"
  | Frontier_overflow -> "a tiling frontier point does not actually fit"
  | Frontier_incomplete -> "frontier differs from the brute-force maximal set"
  | Best_mismatch -> "pruned-search best differs from the exhaustive best"
  | Cost_drift -> "a served mapping's claimed cost differs on re-evaluation"
  | Audit_skipped -> "an audit oracle was skipped (bounds exceeded)"
  | Marshal_outside_pool -> "Marshal used outside the fork pool module"
  | Fork_outside_pool -> "Unix.fork used outside the fork pool module"
  | Shared_channel_write -> "stdout/stderr write from library (worker-reachable) code"
  | Toplevel_mutable -> "mutable toplevel state reachable from worker code"
  | Partial_function -> "banned partial function or escape hatch in lib/"
  | Unit_nonfinite -> "a cost-model quantity is NaN or infinite"
  | Unit_negative -> "a cost-model quantity that must be nonnegative is negative"
  | Unit_implausible -> "a cost-model quantity far outside its plausible range"
  | Blocking_in_loop -> "blocking syscall reachable from the serve event loop"
  | Fd_leak -> "fd created but never closed (or forwarded to on_child_fork) in its module"
  | Signal_unsafe -> "signal handler does more than set a ref/Atomic flag"
  | Nondeterminism -> "Hashtbl order, wall clock, or Random outside sanctioned modules"
  | Exception_swallowed -> "try ... with _ -> silently discarding the error in lib/"
  | Stale_suppression -> "an inline lint suppression matching no hit"
  | Hot_allocation -> "allocation reachable from a declared hot root"
  | Hot_io -> "IO or a broad raise reachable from a declared hot root"
  | Hot_nontail -> "non-tail self-recursion reachable from a declared hot root"
  | Hot_unresolved -> "a (* sunstone-hot *) annotation the call graph cannot resolve"
  | Hot_stale -> "a stale or duplicate (* sunstone-hot *) annotation"

let code_scope = function
  | Capacity_overflow | Unroll_overflow | Bad_coverage | Bad_order | Level_mismatch
  | Unknown_dim | Nonpositive_factor | Operand_unstored ->
    "mapping legality"
  | Pruning_unsound | Bound_overshoot | Optimum_pruned -> "search pruning"
  | Arch_malformed | Config_invalid | Workload_malformed -> "registry well-formedness"
  | Order_not_subsumed | Trie_incomplete | Frontier_not_maximal | Frontier_overflow
  | Frontier_incomplete | Best_mismatch | Cost_drift | Audit_skipped ->
    "mapspace audit"
  | Marshal_outside_pool | Fork_outside_pool | Shared_channel_write | Toplevel_mutable
  | Partial_function ->
    "src: lib/"
  | Unit_nonfinite | Unit_negative | Unit_implausible -> "cost-model units"
  | Blocking_in_loop -> "src: lib/serve"
  | Fd_leak | Signal_unsafe | Exception_swallowed -> "src: lib/"
  | Nondeterminism -> "src: lib/serve, lib/cost"
  | Stale_suppression -> "src: any scanned file"
  | Hot_allocation | Hot_io | Hot_nontail | Hot_unresolved | Hot_stale ->
    "src: (* sunstone-hot *) roots, whole program"

let nominal_severity = function
  | Stale_suppression | Audit_skipped -> Warning
  | _ -> Error

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let rule_table () =
  List.map
    (fun c -> (code_id c, severity_name (nominal_severity c), code_summary c, code_scope c))
    all_codes

let no_location = { level = None; dim = None; operand = None; partition = None }

let make severity ?level ?dim ?operand ?partition code message =
  { code; severity; where = { level; dim; operand; partition }; message }

let error ?level ?dim ?operand ?partition code message =
  make Error ?level ?dim ?operand ?partition code message

let warning ?level ?dim ?operand ?partition code message =
  make Warning ?level ?dim ?operand ?partition code message

let info ?level ?dim ?operand ?partition code message =
  make Info ?level ?dim ?operand ?partition code message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  match ds with
  | [] -> "no diagnostics"
  | _ ->
    let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
    let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
    let pieces =
      List.filter_map
        (fun (sev, what) ->
          let n = count sev in
          if n = 0 then None else Some (part n what))
        [ (Error, "error"); (Warning, "warning"); (Info, "info") ]
    in
    Printf.sprintf "%s (%s)" (part (List.length ds) "diagnostic") (String.concat ", " pieces)

let location_string where =
  let fields =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "level %d") where.level;
        Option.map (Printf.sprintf "dim %s") where.dim;
        Option.map (Printf.sprintf "operand %s") where.operand;
        Option.map (Printf.sprintf "partition %s") where.partition;
      ]
  in
  match fields with [] -> "" | fs -> " (" ^ String.concat ", " fs ^ ")"

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s%s: %s" (severity_name d.severity) (code_id d.code)
    (code_name d.code) (location_string d.where) d.message

let pp_list ppf ds =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp) ds
