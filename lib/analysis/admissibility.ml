module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Mapspace = Sun_search.Mapspace
module D = Diagnostic

type report = {
  workload : string;
  arch : string;
  mappings_checked : int;
  exhaustive_edp : float;
  search_edp : float;
  no_prune_edp : float;
  diagnostics : Diagnostic.t list;
}

let rel_tol = 1e-6

(* Committed-level energy at every boundary of a complete mapping must stay
   below the mapping's true energy — otherwise the alpha-beta test could
   prune a prefix of this very mapping while it is the optimum. *)
let bound_chain_diags ctx nlevels m (cost : Model.cost) =
  let diags = ref [] in
  for k = 1 to nlevels do
    let lb = Model.energy_lower_bound_ctx ctx ~partial_levels:k m in
    if lb > cost.Model.energy_pj *. (1.0 +. rel_tol) then
      diags :=
        D.error ~level:(k - 1) D.Bound_overshoot
          (Printf.sprintf
             "committed energy %.6e pJ at %d level(s) exceeds the mapping's total %.6e pJ" lb k
             cost.Model.energy_pj)
        :: !diags
  done;
  List.rev !diags

let search_configs =
  let base = { Opt.default_config with Opt.beam_width = 64 } in
  ({ base with Opt.alpha_beta = true }, { base with Opt.alpha_beta = false })

let run_search config w a =
  match Opt.optimize ~config w a with
  | Ok r -> Some r
  | Error _ -> None

let check_bound ?(samples = 64) ?(seed = 0x5057) w a =
  let ctx = Model.context w a in
  let nlevels = A.num_levels a in
  let space = Mapspace.create w a in
  let rng = Sun_util.Rng.create seed in
  let diags = ref [] in
  let checked = ref 0 in
  let consider m =
    match Model.evaluate_ctx ctx m with
    | Error _ -> ()
    | Ok cost ->
      incr checked;
      diags := !diags @ bound_chain_diags ctx nlevels m cost
  in
  for _ = 1 to samples do
    consider (Mapspace.sample space rng)
  done;
  (* the search's own incumbent is the mapping the bound must protect *)
  let search_edp =
    match run_search (fst search_configs) w a with
    | None -> nan
    | Some r ->
      consider r.Opt.mapping;
      r.Opt.cost.Model.edp
  in
  {
    workload = w.W.name;
    arch = a.A.arch_name;
    mappings_checked = !checked;
    exhaustive_edp = nan;
    search_edp;
    no_prune_edp = nan;
    diagnostics = !diags;
  }

let differential w a =
  let ctx = Model.context w a in
  let nlevels = A.num_levels a in
  let space = Mapspace.create w a in
  let diags = ref [] in
  let checked = ref 0 in
  let best = ref infinity in
  Seq.iter
    (fun m ->
      match Model.evaluate_ctx ctx m with
      | Error _ -> ()
      | Ok cost ->
        incr checked;
        (* verify the bound chain only on mappings at or below the running
           optimum: those are exactly the ones pruning could cost us *)
        if cost.Model.edp <= !best *. (1.0 +. rel_tol) then
          diags := !diags @ bound_chain_diags ctx nlevels m cost;
        if cost.Model.edp < !best then best := cost.Model.edp)
    (Mapspace.enumerate space);
  let with_ab, without_ab = search_configs in
  let search_edp =
    match run_search with_ab w a with Some r -> r.Opt.cost.Model.edp | None -> nan
  in
  let no_prune_edp =
    match run_search without_ab w a with Some r -> r.Opt.cost.Model.edp | None -> nan
  in
  if !checked = 0 then
    diags :=
      !diags
      @ [
          D.error D.Optimum_pruned
            (Printf.sprintf "no valid mapping of %s on %s exists to compare against" w.W.name
               a.A.arch_name);
        ]
  else begin
    if Float.is_nan search_edp then
      diags :=
        !diags
        @ [
            D.error D.Optimum_pruned
              "alpha-beta search found no mapping although the space contains valid ones";
          ];
    if (not (Float.is_nan search_edp)) && not (Float.is_nan no_prune_edp) then begin
      if search_edp > no_prune_edp *. (1.0 +. rel_tol) then
        diags :=
          !diags
          @ [
              D.error D.Optimum_pruned
                (Printf.sprintf
                   "alpha-beta pruning worsened the search: EDP %.6e with pruning vs %.6e \
                    without"
                   search_edp no_prune_edp);
            ];
      if search_edp > !best *. (1.0 +. rel_tol) then
        diags :=
          !diags
          @ [
              D.error D.Optimum_pruned
                (Printf.sprintf
                   "search EDP %.6e misses the exhaustive optimum %.6e (%s alpha-beta)"
                   search_edp !best
                   (if no_prune_edp > !best *. (1.0 +. rel_tol) then "independent of"
                    else "caused by"));
            ]
    end
  end;
  {
    workload = w.W.name;
    arch = a.A.arch_name;
    mappings_checked = !checked;
    exhaustive_edp = !best;
    search_edp;
    no_prune_edp;
    diagnostics = !diags;
  }

(* Three tiny kernels with distinct reuse structure (matrix-matrix,
   matrix-vector, tensor-times-vector); their full mapspaces on the toy
   hierarchy enumerate in well under a second each. *)
let small_suite () =
  let arch = Sun_arch.Presets.toy () in
  let mv =
    W.make ~name:"mv-8x4"
      ~dims:[ ("I", 8); ("J", 4) ]
      ~operands:
        [
          { W.name = "y"; kind = `Output; indices = [ W.Dim "I" ] };
          { W.name = "A"; kind = `Input; indices = [ W.Dim "I"; W.Dim "J" ] };
          { W.name = "x"; kind = `Input; indices = [ W.Dim "J" ] };
        ]
  in
  let ttv =
    W.make ~name:"ttv-4x4x2"
      ~dims:[ ("I", 4); ("J", 4); ("K", 2) ]
      ~operands:
        [
          { W.name = "y"; kind = `Output; indices = [ W.Dim "I"; W.Dim "J" ] };
          { W.name = "T"; kind = `Input; indices = [ W.Dim "I"; W.Dim "J"; W.Dim "K" ] };
          { W.name = "v"; kind = `Input; indices = [ W.Dim "K" ] };
        ]
  in
  [
    ("matmul-4x4x2", Sun_tensor.Catalog.matmul ~m:4 ~n:4 ~k:2 (), arch);
    ("mv-8x4", mv, arch);
    ("ttv-4x4x2", ttv, arch);
  ]

let check_suite () =
  List.map
    (fun (name, w, a) ->
      let r = differential w a in
      { r with workload = name })
    (small_suite ())
