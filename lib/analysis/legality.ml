module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module D = Diagnostic

let check_levels ?arch (w : W.t) (levels : M.level_mapping list) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dims = W.dim_names w in
  let sorted_dims = List.sort String.compare dims in
  (match arch with
  | Some a when List.length levels <> A.num_levels a ->
    add
      (D.error D.Level_mismatch
         (Printf.sprintf "mapping has %d levels, architecture %s has %d" (List.length levels)
            a.A.arch_name (A.num_levels a)))
  | _ -> ());
  let check_factors li kind assoc =
    List.iter
      (fun (d, f) ->
        if not (List.mem d dims) then
          add
            (D.error ~level:li ~dim:d D.Unknown_dim
               (Printf.sprintf "%s factor names unknown dim %s" kind d));
        if f < 1 then
          add
            (D.error ~level:li ~dim:d D.Nonpositive_factor
               (Printf.sprintf "%s factor of %s is %d (must be >= 1)" kind d f)))
      assoc;
    let names = List.sort String.compare (List.map fst assoc) in
    if names <> sorted_dims then begin
      let missing = List.filter (fun d -> not (List.mem_assoc d assoc)) dims in
      let dups =
        let rec go = function
          | a :: (b :: _ as rest) -> if a = b then a :: go rest else go rest
          | _ -> []
        in
        Sun_util.Listx.unique String.compare (go names)
      in
      let detail =
        String.concat "; "
          (List.filter
             (fun s -> s <> "")
             [
               (if missing = [] then "" else "missing " ^ String.concat ", " missing);
               (if dups = [] then "" else "duplicated " ^ String.concat ", " dups);
             ])
      in
      add
        (D.error ~level:li D.Bad_coverage
           (Printf.sprintf "%s factors must cover each workload dim exactly once%s" kind
              (if detail = "" then "" else ": " ^ detail)))
    end
  in
  List.iteri
    (fun li (lm : M.level_mapping) ->
      check_factors li "temporal" lm.M.temporal;
      check_factors li "spatial" lm.M.spatial;
      if List.sort String.compare lm.M.order <> sorted_dims then
        add
          (D.error ~level:li D.Bad_order
             (Printf.sprintf "order [%s] is not a permutation of the workload dims"
                (String.concat ", " lm.M.order))))
    levels;
  (* per-dim factor products against the workload bounds *)
  List.iter
    (fun d ->
      let product =
        List.fold_left
          (fun acc (lm : M.level_mapping) ->
            let f assoc = match List.assoc_opt d assoc with Some x when x >= 1 -> x | _ -> 1 in
            acc * f lm.M.temporal * f lm.M.spatial)
          1 levels
      in
      let bound = W.bound w d in
      if product <> bound then
        add
          (D.error ~dim:d D.Bad_coverage
             (Printf.sprintf "factors of %s multiply to %d, workload bound is %d" d product bound)))
    dims;
  List.rev !diags

let check ?(binding = Fun.id) (w : W.t) (a : A.t) (m : M.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let nlevels = min (M.num_levels m) (A.num_levels a) in
  if M.num_levels m <> A.num_levels a then
    add
      (D.error D.Level_mismatch
         (Printf.sprintf "mapping has %d levels, architecture %s has %d" (M.num_levels m)
            a.A.arch_name (A.num_levels a)));
  for li = 0 to nlevels - 1 do
    let lvl = A.level a li in
    (* spatial unrolling within the PE-array fanout *)
    let sp = M.spatial_product m ~level:li in
    if sp > lvl.A.fanout then
      add
        (D.error ~level:li D.Unroll_overflow
           (Printf.sprintf "level %s unrolls %d spatial instances, fanout is %d" lvl.A.level_name
              sp lvl.A.fanout));
    (* per-partition tile footprints within buffer capacities *)
    if not lvl.A.unbounded then
      List.iter
        (fun (p : A.partition) ->
          let stored =
            List.filter
              (fun (op : W.operand) ->
                match A.partition_for lvl ~role:(binding op.W.name) with
                | Some p' -> p'.A.part_name = p.A.part_name
                | None -> false)
              w.W.operands
          in
          let used = Sun_util.Listx.sum_by (M.footprint_at w m ~level:li) stored in
          if used > float_of_int p.A.capacity_words +. 1e-9 then
            add
              (D.error ~level:li ~partition:p.A.part_name D.Capacity_overflow
                 (Printf.sprintf "tile footprint %.0f words exceeds capacity %d of partition %s"
                    used p.A.capacity_words p.A.part_name)))
        lvl.A.partitions
  done;
  List.rev !diags

let check_all ?binding w a levels =
  let structural = check_levels ~arch:a w levels in
  if D.has_errors structural then structural
  else
    match M.make w levels with
    | Ok m -> structural @ check ?binding w a m
    | Error msg ->
      (* unreachable if check_levels mirrors Mapping.make faithfully; keep a
         diagnostic rather than an exception so the two can drift safely *)
      structural @ [ D.error D.Bad_coverage ("mapping rejected: " ^ msg) ]
