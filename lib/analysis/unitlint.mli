(** Cost-model unit lint (pass 6): SA050-series checks on runtime configs.

    The compile-time half of unit safety lives in {!Sun_cost.Units}: the
    energy model only combines quantities through phantom-typed operations,
    so mixing picojoules with access counts no longer type-checks. This
    pass is the runtime half — architectures arrive from JSON or presets as
    bare floats, and a NaN energy or a negative bandwidth would flow
    through the typed pipeline unharmed. Every energy rate (per-access
    read/write, per-hop NoC, per-MAC), capacity and bandwidth is checked
    for finiteness (SA050), sign (SA051), and plausible magnitude (SA052 —
    warnings, e.g. a per-access energy above 10^6 pJ or a positive one
    below 10^-6 pJ is almost certainly a unit mistake such as joules or
    femtojoules in a picojoule field). *)

type report = {
  arch : string;
  quantities_checked : int;
  diagnostics : Diagnostic.t list;
}

val check_arch : Sun_arch.Arch.t -> report

val check_presets : unit -> report list
(** One report per bundled preset ({!Sun_arch.Presets.all}); the bundled
    tables must lint clean. *)
