module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Trie = Sun_core.Order_trie
module Tile_tree = Sun_core.Tile_tree
module Mapspace = Sun_search.Mapspace
module Probe = Sun_cost.Probe
module Factor = Sun_util.Factor
module Listx = Sun_util.Listx
module D = Diagnostic

type injection = No_injection | Drop_order_candidate | Shrink_frontier

type kernel_report = {
  kernel : string;
  arch : string;
  orders_total : int;
  orders_kept : int;
  frontier_checked : int;
  mappings_enumerated : int;
  exhaustive_edp : float;
  search_edp : float;
  diagnostics : D.t list;
}

let rel_tol = 1e-9

(* ------------------------------------------------------------------ *)
(* Probe-derived reuse signatures (independent of the trie's tables)    *)
(* ------------------------------------------------------------------ *)

(* Same semantic probe as [Pruning]: growing dim [d] changes operand
   [op]'s footprint iff [d] indexes it. The memoized [Probe] serves it —
   its footprint arithmetic mirrors [W.footprint] directly (bit-identical,
   pinned by QCheck), so the oracle still derives reuse from the projection
   arithmetic and not from the trie's or the evaluator's tables. One probe
   per audit scope: the scan re-asks the same (operand, dim) questions for
   every order and every suffix. *)
let probe_changes_footprint probe (op : W.operand) d =
  Probe.changes_footprint probe ~op:op.W.name ~dim:d

(* Per-operand reuse an innermost-first dim sequence earns: the fully
   reused dims absorbed before the first footprint-changing one, plus a
   partial-reuse flag when that blocker is a sliding-window dim. *)
let scan_reuse probe (op : W.operand) innermost_first =
  let sliding = W.sliding_dims op in
  let rec go full = function
    | [] -> (List.sort String.compare full, false)
    | d :: rest ->
      if not (probe_changes_footprint probe op d) then go (d :: full) rest
      else (List.sort String.compare full, List.mem d sliding)
  in
  go [] innermost_first

type rich_sig = (string * (string list * bool)) list
(** per operand name: (sorted full-reuse dims, partial flag); only operands
    with some reuse appear, sorted by name. *)

let rich_sig_of_seq probe (w : W.t) innermost_first : rich_sig =
  List.filter_map
    (fun (op : W.operand) ->
      let full, partial = scan_reuse probe op innermost_first in
      if full = [] && not partial then None else Some (op.W.name, (full, partial)))
    w.W.operands
  |> List.sort compare

(* [a] subsumed by [b]: [b] earns at least the reuse [a] does, operand by
   operand — any tiling run under [b]'s order refills each buffer no more
   often than under [a]'s. *)
let sig_leq (a : rich_sig) (b : rich_sig) =
  List.for_all
    (fun (name, (full_a, partial_a)) ->
      match List.assoc_opt name b with
      | None -> full_a = [] && not partial_a
      | Some (full_b, partial_b) ->
        List.for_all (fun d -> List.mem d full_b) full_a && ((not partial_a) || partial_b))
    a

let string_of_order order = "[" ^ String.concat ", " order ^ "]"

let string_of_sig (s : rich_sig) =
  if s = [] then "(no reuse)"
  else
    String.concat "; "
      (List.map
         (fun (name, (full, partial)) ->
           Printf.sprintf "%s: full {%s}%s" name (String.concat ", " full)
             (if partial then " + partial" else ""))
         s)

(* ------------------------------------------------------------------ *)
(* Exhaustive oracle: best EDP over the full (active-order) mapspace     *)
(* ------------------------------------------------------------------ *)

let exhaustive_best ctx space =
  let checked = ref 0 and best = ref infinity in
  Seq.iter
    (fun m ->
      match Model.evaluate_ctx ctx m with
      | Error _ -> ()
      | Ok cost ->
        incr checked;
        if cost.Model.edp < !best then best := cost.Model.edp)
    (Mapspace.enumerate_active_orders space);
  (!best, !checked)

(* Best EDP over all tilings when order [pi] is imposed at every level —
   the empirical half of a subsumption certificate. *)
let best_with_order w ctx space pi =
  Seq.fold_left
    (fun best m ->
      let levels = Array.to_list (Array.map (fun lm -> { lm with M.order = pi }) m.M.levels) in
      match M.make w levels with
      | Error _ -> best
      | Ok m' -> (
        match Model.evaluate_ctx ctx m' with
        | Error _ -> best
        | Ok cost -> Float.min best cost.Model.edp))
    infinity
    (Mapspace.enumerate_fixed_orders space)

(* ------------------------------------------------------------------ *)
(* Ordering audit (SA031 / SA032)                                       *)
(* ------------------------------------------------------------------ *)

let audit_orders ~inject probe w ctx space ~exhaustive_edp =
  let diags = ref [] in
  let add d = diags := !diags @ [ d ] in
  let dims = W.dim_names w in
  let all_orders = Listx.permutations dims in
  let candidates = Trie.candidates w in
  let cand_sigs =
    List.map
      (fun (c : Trie.candidate) -> (c, rich_sig_of_seq probe w (List.rev c.Trie.order)))
      candidates
  in
  let order_sigs = List.map (fun pi -> (pi, rich_sig_of_seq probe w (List.rev pi))) all_orders in
  let dominators s = List.filter (fun (_, cs) -> sig_leq s cs) cand_sigs in
  (* injection: drop a candidate that is the sole dominator of some order
     (guaranteeing a subsumption hole); if redundancy covers everything,
     drop them all *)
  let cand_sigs =
    match inject with
    | Drop_order_candidate -> (
      let sole =
        List.find_map
          (fun (_, s) -> match dominators s with [ (c, _) ] -> Some c | _ -> None)
          order_sigs
      in
      match sole with
      | Some c -> List.filter (fun ((c', _) : Trie.candidate * _) -> c' != c) cand_sigs
      | None -> [])
    | _ -> cand_sigs
  in
  let dominators s = List.filter (fun (_, cs) -> sig_leq s cs) cand_sigs in
  (* SA031: every full order must be subsumed by a kept candidate *)
  List.iter
    (fun (pi, s) ->
      if dominators s = [] then begin
        let lost_best = best_with_order w ctx space pi in
        let verdict =
          if lost_best >= exhaustive_edp *. (1.0 -. rel_tol) then
            "equal-or-worse: pruning it was empirically lossless, but no candidate certifies it"
          else "STRICTLY BETTER: pruning it lost the optimum"
        in
        add
          (D.error D.Order_not_subsumed
             (Printf.sprintf
                "order %s (reuse %s) is dominated by no trie candidate; certificate: best EDP \
                 with this order at every level %.6e vs exhaustive best %.6e — %s"
                (string_of_order pi) (string_of_sig s) lost_best exhaustive_edp verdict))
      end)
    order_sigs;
  (* SA032: every maximal reuse class some order achieves must be kept *)
  let sigs = Listx.unique compare (List.map snd order_sigs) in
  let maximal = List.filter (fun s -> not (List.exists (fun t -> t <> s && sig_leq s t) sigs)) sigs in
  List.iter
    (fun s ->
      if not (List.exists (fun (_, cs) -> sig_leq s cs) cand_sigs) then
        add
          (D.error D.Trie_incomplete
             (Printf.sprintf "maximal reuse class %s has no dominating trie candidate"
                (string_of_sig s))))
    maximal;
  (List.length all_orders, List.length candidates, !diags)

(* ------------------------------------------------------------------ *)
(* Tiling-frontier audit (SA033 / SA034 / SA035)                        *)
(* ------------------------------------------------------------------ *)

let canonical_point grow asg = List.map (fun d -> (d, Tile_tree.factor_of asg d)) grow

let string_of_point pt =
  "{" ^ String.concat ", " (List.map (fun (d, f) -> Printf.sprintf "%s:%d" d f) pt) ^ "}"

let point_leq grow a b =
  List.for_all (fun d -> Tile_tree.factor_of a d <= Tile_tree.factor_of b d) grow

let audit_frontier ~inject probe w a =
  let diags = ref [] in
  let add d = diags := !diags @ [ d ] in
  let checked = ref 0 in
  let level0 = A.level a 0 in
  List.iter
    (fun (op : W.operand) ->
      match A.partition_for level0 ~role:op.W.name with
      | None -> ()
      | Some part ->
        let cap = float_of_int part.A.capacity_words in
        let grow = W.indexing_dims op in
        if grow <> [] && part.A.capacity_words > 0 then begin
          let fits asg =
            Probe.footprint_of probe ~op:op.W.name ~level:0 (fun d -> Tile_tree.factor_of asg d)
            <= cap +. 1e-9
          in
          let remaining d = W.bound w d in
          let outcome = Tile_tree.search ~grow_dims:grow ~remaining ~fits () in
          let frontier =
            match inject with
            | Shrink_frontier -> (
              match List.rev outcome.Tile_tree.frontier with
              | _ :: rest -> List.rev rest
              | [] -> [])
            | _ -> outcome.Tile_tree.frontier
          in
          (* brute force: maximal fitting points of the divisor grid *)
          let grid =
            Listx.cartesian
              (List.map (fun d -> List.map (fun f -> (d, f)) (Factor.divisors (W.bound w d))) grow)
          in
          let fitting = List.filter fits grid in
          let maximal =
            List.filter
              (fun p ->
                not (List.exists (fun q -> q <> p && point_leq grow p q) fitting))
              fitting
          in
          let canon ps = List.sort compare (List.map (canonical_point grow) ps) in
          let frontier_c = canon frontier and maximal_c = canon maximal in
          List.iter
            (fun pt ->
              incr checked;
              let asg = pt in
              if not (fits asg) then
                add
                  (D.error ~operand:op.W.name D.Frontier_overflow
                     (Printf.sprintf "frontier tile %s of %s overflows its %d-word partition"
                        (string_of_point pt) op.W.name part.A.capacity_words))
              else
                List.iter
                  (fun d ->
                    let f = Tile_tree.factor_of asg d in
                    let next =
                      List.find_opt (fun x -> x > f) (Factor.divisors (W.bound w d))
                    in
                    match next with
                    | Some f' when fits ((d, f') :: List.remove_assoc d asg) ->
                      add
                        (D.error ~operand:op.W.name ~dim:d D.Frontier_not_maximal
                           (Printf.sprintf
                              "frontier tile %s of %s still fits with %s grown %d -> %d"
                              (string_of_point pt) op.W.name d f f'))
                    | _ -> ())
                  grow)
            frontier_c;
          List.iter
            (fun pt ->
              if not (List.mem pt frontier_c) then
                add
                  (D.error ~operand:op.W.name D.Frontier_incomplete
                     (Printf.sprintf
                        "maximal fitting tile %s of %s is missing from the tiling frontier"
                        (string_of_point pt) op.W.name)))
            maximal_c;
          List.iter
            (fun pt ->
              if not (List.mem pt maximal_c) then
                add
                  (D.error ~operand:op.W.name D.Frontier_incomplete
                     (Printf.sprintf
                        "frontier tile %s of %s is not in the brute-force maximal fitting set"
                        (string_of_point pt) op.W.name)))
            frontier_c
        end)
    w.W.operands;
  (!checked, !diags)

(* ------------------------------------------------------------------ *)
(* Pruned-best vs exhaustive-best (SA036)                               *)
(* ------------------------------------------------------------------ *)

let search_config = { Opt.default_config with Opt.beam_width = 64 }

let audit_best w a ~exhaustive_edp ~enumerated =
  let diags = ref [] in
  let search_edp =
    match Opt.optimize ~config:search_config w a with
    | Ok r -> r.Opt.cost.Model.edp
    | Error _ -> nan
  in
  if enumerated = 0 then
    diags :=
      [
        D.error D.Best_mismatch
          (Printf.sprintf "no valid mapping of %s on %s exists to audit against" w.W.name
             a.A.arch_name);
      ]
  else if Float.is_nan search_edp then
    diags :=
      [
        D.error D.Best_mismatch
          "pruned search found no mapping although the space contains valid ones";
      ]
  else if search_edp > exhaustive_edp *. (1.0 +. rel_tol) then
    diags :=
      [
        D.error D.Best_mismatch
          (Printf.sprintf
             "pruned search EDP %.9e misses the exhaustive optimum %.9e over %d mappings"
             search_edp exhaustive_edp enumerated);
      ]
  else if search_edp < exhaustive_edp *. (1.0 -. rel_tol) then
    diags :=
      [
        D.error D.Best_mismatch
          (Printf.sprintf
             "pruned search EDP %.9e beats the exhaustive oracle %.9e: the oracle's enumeration \
              is incomplete"
             search_edp exhaustive_edp);
      ]
  else ();
  (search_edp, !diags)

(* ------------------------------------------------------------------ *)
(* Kernel family and drivers                                            *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let arch = Sun_arch.Presets.toy () in
  let c = Sun_tensor.Catalog.conv1d ~k:1 ~c:2 ~p:4 ~r:2 () in
  [
    ("sddmm-2x2x2", Sun_tensor.Catalog.sddmm ~i:2 ~j:2 ~k:2 (), arch);
    ("mmc-2x2x2x1", Sun_tensor.Catalog.mmc ~i:2 ~j:2 ~k:2 ~l:1 (), arch);
    ("ttmc-2x2x2x1x1", Sun_tensor.Catalog.ttmc ~i:2 ~j:2 ~k:2 ~l:1 ~m:1 (), arch);
    ("conv1d-1x2x4x2", c, arch);
    ("mttkrp-4x2x2x1", Sun_tensor.Catalog.mttkrp ~i:4 ~j:2 ~k:2 ~l:1 (), arch);
  ]

let check_kernel ?(inject = No_injection) (name, w, a) =
  let ctx = Model.context w a in
  let space = Mapspace.create w a in
  (* one probe per kernel audit: orders and frontier re-ask the same
     (operand, vector) footprints many times over *)
  let probe = Probe.create w in
  let exhaustive_edp, enumerated = exhaustive_best ctx space in
  let orders_total, orders_kept, order_diags =
    audit_orders ~inject probe w ctx space ~exhaustive_edp
  in
  let frontier_checked, frontier_diags = audit_frontier ~inject probe w a in
  Probe.flush_telemetry probe;
  let search_edp, best_diags = audit_best w a ~exhaustive_edp ~enumerated in
  {
    kernel = name;
    arch = a.A.arch_name;
    orders_total;
    orders_kept;
    frontier_checked;
    mappings_enumerated = enumerated;
    exhaustive_edp;
    search_edp;
    diagnostics = order_diags @ frontier_diags @ best_diags;
  }

let check_kernels ?(inject = No_injection) ?(limit = 0) () =
  let all = kernels () in
  let picked = if limit <= 0 then all else Listx.take limit all in
  List.map (check_kernel ~inject) picked

(* ------------------------------------------------------------------ *)
(* Serve-side response gate                                             *)
(* ------------------------------------------------------------------ *)

let recheck ?binding w a m ~claimed_energy ~claimed_edp =
  let legality = Legality.check ?binding w a m in
  if D.has_errors legality then legality
  else begin
    let cost_diags =
      match Model.evaluate ?binding w a m with
      | Error msg -> [ D.error D.Cost_drift ("mapping fails cost re-evaluation: " ^ msg) ]
      | Ok cost ->
        let drift what claimed actual =
          let scale = Float.max 1.0 (Float.abs actual) in
          if (not (Float.is_finite claimed)) || Float.abs (claimed -. actual) > rel_tol *. scale
          then
            [
              D.error D.Cost_drift
                (Printf.sprintf "claimed %s %.9e differs from re-evaluated %.9e" what claimed
                   actual);
            ]
          else []
        in
        drift "energy" claimed_energy cost.Model.energy_pj @ drift "EDP" claimed_edp cost.Model.edp
    in
    let probe = Probe.create w in
    let cand_sigs =
      List.map (fun (c : Trie.candidate) -> rich_sig_of_seq probe w (List.rev c.Trie.order))
        (Trie.candidates w)
    in
    let order_diags =
      List.concat
        (List.mapi
           (fun l (lm : M.level_mapping) ->
             let s = rich_sig_of_seq probe w (List.rev lm.M.order) in
             if List.exists (fun cs -> sig_leq s cs) cand_sigs then []
             else
               [
                 D.error ~level:l D.Order_not_subsumed
                   (Printf.sprintf
                      "level order %s (reuse %s) is dominated by no trie candidate"
                      (string_of_order lm.M.order) (string_of_sig s));
               ])
           (Array.to_list m.M.levels))
    in
    Probe.flush_telemetry probe;
    legality @ cost_diags @ order_diags
  end
