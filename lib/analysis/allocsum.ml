(* Per-function allocation/IO summaries over the lexer token stream, plus
   bottom-up propagation over SCCs of the whole-program call graph. This is
   the engine room of the SA070-SA074 hot-path passes: [summarize] finds the
   direct allocation-shaped tokens inside one toplevel binding's body,
   [annotations] reads the (* sunstone-hot *) / (* sunstone-cold *) markers,
   and [analyze] condenses the call graph and joins the {allocates, io}
   flags bottom-up so mutual recursion converges in one pass.

   Like the rest of the engine this is a token-level approximation, written
   to err toward silence on idiomatic code: brackets and commas are
   classified pattern-vs-expression by a bounded backward walk, attribute
   brackets and empty lists are skipped, and anything the walk cannot decide
   is treated as a pattern. The runtime Gc oracle in test/test_model_hot.ml
   is the ground truth the approximation is pinned to. *)

module L = Lexer
module M = Srcmod

type site = { s_line : int; s_col : int; s_desc : string }

type summary = { alloc_sites : site list; io_sites : site list; nontail_sites : site list }

type ann_kind = Hot | Cold

type annotation = { an_kind : ann_kind; an_line : int; an_target : int }

let annotations (lx : L.t) =
  List.filter_map
    (fun (c : L.comment) ->
      match String.trim c.L.c_text with
      | "sunstone-hot" ->
        Some { an_kind = Hot; an_line = c.L.c_line; an_target = Suppress.target_line lx c }
      | "sunstone-cold" ->
        Some { an_kind = Cold; an_line = c.L.c_line; an_target = Suppress.target_line lx c }
      | _ -> None)
    lx.L.comments

(* ------------------------------------------------------------------ *)
(* Token classification                                                 *)
(* ------------------------------------------------------------------ *)

let is_sym (t : L.token) s = t.L.t_kind = L.Symbol && t.L.t_text = s

let pattern_keywords = [ "with"; "fun"; "function"; "let"; "and"; "exception"; "as" ]

(* Is the token at [i] in expression position (so [\[], [{], [::], [,]
   allocate) rather than pattern position? Bounded backward walk: skip
   identifiers, literals and balanced bracket groups; a match-arm [|] or a
   binder keyword decides pattern, any operator or other keyword decides
   expression. Walking past the body start without a verdict means the
   token opens the binding's outermost expression ([let f x = (a, b)]),
   which is expression position; only a budget-exhausted walk errs toward
   pattern (silence). *)
let in_expr_position (toks : L.token array) lo i =
  let budget = ref 64 in
  let j = ref (i - 1) in
  let depth = ref 0 in
  let verdict = ref 0 in
  (* 0 undecided, 1 expression, -1 pattern *)
  while !verdict = 0 && !j >= lo && !budget > 0 do
    decr budget;
    let t = toks.(!j) in
    (match t.L.t_kind with
    | L.Symbol -> (
      match t.L.t_text with
      | ")" | "]" | "}" -> incr depth
      | "(" | "[" | "{" -> if !depth > 0 then decr depth
      | _ when !depth > 0 -> ()
      | "|" -> verdict := -1
      | "." | "," -> ()
      | _ -> verdict := 1)
    | L.Keyword when !depth = 0 ->
      if List.mem t.L.t_text pattern_keywords then verdict := -1 else verdict := 1
    | _ -> ());
    decr j
  done;
  !verdict = 1 || (!verdict = 0 && !j < lo)

(* Allocation-shaped stdlib calls, [Module.func] form. The probe and heap
   hot paths earn inline allows where they genuinely need one of these. *)
let qualified_alloc m f =
  match m with
  | "Array" ->
    List.mem f
      [
        "make"; "init"; "copy"; "append"; "sub"; "of_list"; "to_list"; "map"; "mapi";
        "concat"; "of_seq"; "to_seq"; "make_matrix"; "split"; "combine";
      ]
  | "List" ->
    List.mem f
      [
        "init"; "map"; "mapi"; "map2"; "append"; "concat"; "concat_map"; "flatten"; "rev";
        "rev_append"; "rev_map"; "filter"; "filter_map"; "partition"; "sort"; "sort_uniq";
        "stable_sort"; "fast_sort"; "merge"; "split"; "combine"; "of_seq"; "to_seq"; "cons";
      ]
  | "String" ->
    List.mem f
      [
        "make"; "init"; "sub"; "concat"; "cat"; "map"; "mapi"; "trim"; "escaped";
        "split_on_char"; "lowercase_ascii"; "uppercase_ascii"; "capitalize_ascii";
        "uncapitalize_ascii"; "of_seq";
      ]
  | "Bytes" ->
    List.mem f
      [ "make"; "create"; "init"; "sub"; "copy"; "extend"; "cat"; "of_string"; "to_string" ]
  | "Buffer" -> List.mem f [ "create"; "contents"; "to_bytes"; "sub" ]
  | "Hashtbl" -> List.mem f [ "create"; "copy"; "add"; "replace"; "find_opt"; "of_seq"; "fold" ]
  | "Queue" -> List.mem f [ "create"; "add"; "push"; "copy"; "of_seq" ]
  | "Stack" -> List.mem f [ "create"; "push"; "copy"; "of_seq" ]
  | "Printf" -> List.mem f [ "sprintf"; "ksprintf" ]
  | "Format" -> List.mem f [ "sprintf"; "asprintf"; "ksprintf" ]
  | "Option" -> List.mem f [ "map"; "bind"; "some"; "join"; "to_list" ]
  | "Float" -> List.mem f [ "to_string" ]
  | "Int" -> List.mem f [ "to_string" ]
  | "Filename" -> List.mem f [ "concat"; "basename"; "dirname"; "remove_extension"; "quote" ]
  | "Marshal" -> List.mem f [ "to_string"; "to_bytes"; "from_string"; "from_bytes" ]
  | _ -> false

let qualified_io m f =
  match m with
  | "Unix" | "Out_channel" | "In_channel" -> true
  | "Sys" -> List.mem f [ "command" ]
  | "Printf" -> List.mem f [ "printf"; "eprintf"; "fprintf" ]
  | "Format" -> List.mem f [ "printf"; "eprintf"; "fprintf"; "print_string"; "print_newline" ]
  | _ ->
    ignore f;
    false

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let bare_io f =
  has_prefix ~prefix:"print_" f || has_prefix ~prefix:"prerr_" f
  || has_prefix ~prefix:"output_" f
  || has_prefix ~prefix:"input_" f
  || List.mem f
       [
         "read_line"; "read_int"; "open_in"; "open_out"; "open_in_bin"; "open_out_bin";
         "flush"; "flush_all"; "exit"; "really_input"; "really_input_string";
       ]

(* Operators whose operand position makes a self-call non-tail. [&&]/[||]
   and sequencing keep their right operand in tail position and are
   deliberately absent. *)
let consuming_ops =
  [
    "+"; "-"; "*"; "/"; "+."; "-."; "*."; "/."; "@"; "^"; "^^"; "::"; "="; "<"; ">"; "<=";
    ">="; "<>"; "=="; "!="; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
  ]

let adjacent (a : L.token) (b : L.token) = a.L.t_end = b.L.t_start

(* ------------------------------------------------------------------ *)
(* Direct summary of one binding body                                   *)
(* ------------------------------------------------------------------ *)

let summarize (t : M.t) (b : M.binding) =
  let toks = t.M.sm_lex.L.tokens in
  let n = Array.length toks in
  let lo = b.M.b_body_start and hi = min b.M.b_body_end (n - 1) in
  let allocs = ref [] and ios = ref [] and nontails = ref [] in
  let site i desc = { s_line = toks.(i).L.t_line; s_col = toks.(i).L.t_col; s_desc = desc } in
  let alloc i desc = allocs := site i desc :: !allocs in
  let io i desc = ios := site i desc :: !ios in
  let prev_is_dot i = i > 0 && is_sym toks.(i - 1) "." in
  (* skip a balanced bracket group starting at an opener index; returns the
     index just past the matching closer (or [n] when unterminated) *)
  let skip_balanced j0 =
    let depth = ref 0 in
    let j = ref j0 in
    let continue = ref true in
    while !continue && !j < n do
      (match toks.(!j).L.t_text with
      | "(" | "[" | "{" -> incr depth
      | ")" | "]" | "}" -> decr depth
      | _ -> ());
      incr j;
      if !depth <= 0 then continue := false
    done;
    !j
  in
  (* does the self-call at [i] (name token) sit in non-tail position? *)
  let nontail_call i =
    let prev_consumes =
      i > lo
      &&
      let p = toks.(i - 1) in
      (p.L.t_kind = L.Symbol || p.L.t_kind = L.Lident)
      && List.mem p.L.t_text ("=" :: consuming_ops)
    in
    if prev_consumes then true
    else begin
      (* walk forward over the application's arguments; a consuming infix
         operator right after them means the result feeds a computation *)
      let j = ref (i + 1) in
      let stop = ref false in
      let verdict = ref false in
      while (not !stop) && !j <= hi do
        let t' = toks.(!j) in
        match t'.L.t_kind with
        | L.Lident | L.Uident | L.Int_lit | L.Float_lit | L.String_lit | L.Char_lit ->
          incr j
        | L.Symbol when t'.L.t_text = "(" || t'.L.t_text = "[" || t'.L.t_text = "{" ->
          j := skip_balanced !j
        | L.Symbol when t'.L.t_text = "." || t'.L.t_text = "!" -> incr j
        | L.Symbol when List.mem t'.L.t_text consuming_ops ->
          verdict := true;
          stop := true
        | _ -> stop := true
      done;
      !verdict
    end
  in
  let i = ref lo in
  while !i <= hi do
    let t' = toks.(!i) in
    (match t'.L.t_kind with
    | L.Keyword -> (
      match t'.L.t_text with
      | ("fun" | "function") when !i > lo -> alloc !i ("closure (" ^ t'.L.t_text ^ ")")
      | "lazy" -> alloc !i "lazy block"
      | _ -> ())
    | L.Lident when not (prev_is_dot !i) -> (
      let x = t'.L.t_text in
      if x = b.M.b_name && b.M.b_params && nontail_call !i then
        nontails := site !i "non-tail self-recursion" :: !nontails;
      match x with
      | "ref" -> alloc !i "ref cell"
      | "invalid_arg" -> alloc !i "invalid_arg payload"
      | "failwith" -> io !i "failwith (broad raise)"
      | "sprintf" -> alloc !i "sprintf"
      | "raise" ->
        if !i + 1 <= hi && is_sym toks.(!i + 1) "(" then alloc !i "raise with payload"
      | _ ->
        if has_prefix ~prefix:"string_of_" x then alloc !i x else if bare_io x then io !i x)
    | L.Uident
      when !i + 2 < n
           && is_sym toks.(!i + 1) "."
           && toks.(!i + 2).L.t_kind = L.Lident
           && not (prev_is_dot !i) ->
      let m = t'.L.t_text and f = toks.(!i + 2).L.t_text in
      if qualified_alloc m f then alloc !i (m ^ "." ^ f)
      else if qualified_io m f then io !i (m ^ "." ^ f)
    | L.Symbol -> (
      match t'.L.t_text with
      | "@" ->
        if not (!i > lo && is_sym toks.(!i - 1) "[" && adjacent toks.(!i - 1) t') then
          alloc !i "list append (@)"
      | "^" -> alloc !i "string append (^)"
      | "::" -> if in_expr_position toks lo !i then alloc !i "list cons (::)"
      | "," -> if in_expr_position toks lo !i then alloc !i "tuple"
      | "{" -> if in_expr_position toks lo !i then alloc !i "record literal"
      | "[" ->
        if !i + 1 <= hi then begin
          let nx = toks.(!i + 1) in
          if is_sym nx "]" || prev_is_dot !i then ()
          else if (is_sym nx "@" || is_sym nx "%") && adjacent t' nx then
            (* attribute or extension node: skip its whole payload *)
            i := skip_balanced !i - 1
          else if is_sym nx "|" && adjacent t' nx then begin
            if in_expr_position toks lo !i then alloc !i "array literal"
          end
          else if in_expr_position toks lo !i then alloc !i "list literal"
        end
      | _ -> ())
    | _ -> ());
    incr i
  done;
  { alloc_sites = List.rev !allocs; io_sites = List.rev !ios; nontail_sites = List.rev !nontails }

(* ------------------------------------------------------------------ *)
(* Whole-program propagation                                            *)
(* ------------------------------------------------------------------ *)

type node = {
  nd_file : int;
  nd_binding : M.binding;
  nd_summary : summary;
  mutable nd_scc : int;
  mutable nd_allocates : bool;
  mutable nd_io : bool;
}

type t = {
  a_project : M.project;
  a_nodes : node array;
  a_index : (int * string, int) Hashtbl.t;
}

let analyze (p : M.project) =
  let nodes = ref [] in
  let a_index = Hashtbl.create 256 in
  let count = ref 0 in
  Array.iteri
    (fun fi file ->
      List.iter
        (fun (b : M.binding) ->
          (* keep the first binding per name, matching [binding_named] *)
          if not (Hashtbl.mem a_index (fi, b.M.b_name)) then begin
            Hashtbl.replace a_index (fi, b.M.b_name) !count;
            incr count;
            nodes :=
              {
                nd_file = fi;
                nd_binding = b;
                nd_summary = summarize file b;
                nd_scc = -1;
                nd_allocates = false;
                nd_io = false;
              }
              :: !nodes
          end)
        file.M.sm_bindings)
    p.M.p_files;
  let a_nodes = Array.of_list (List.rev !nodes) in
  let n = Array.length a_nodes in
  let succ =
    Array.init n (fun v ->
        let nd = a_nodes.(v) in
        List.filter_map
          (fun ((fj, bj) : int * M.binding) -> Hashtbl.find_opt a_index (fj, bj.M.b_name))
          (M.callees p nd.nd_file nd.nd_binding))
  in
  (* Tarjan; SCCs are emitted callees-first, so one pass over the emission
     order joins the {allocates, io} flags bottom-up to a fixed point. *)
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let onstack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_count = ref 0 in
  let emitted = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      succ.(v);
    if low.(v) = index.(v) then begin
      let comp = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | w :: rest ->
          stack := rest;
          onstack.(w) <- false;
          a_nodes.(w).nd_scc <- !scc_count;
          comp := w :: !comp;
          if w = v then continue := false
        | [] -> continue := false
      done;
      incr scc_count;
      emitted := !comp :: !emitted
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  List.iter
    (fun comp ->
      let direct_a =
        List.exists (fun w -> a_nodes.(w).nd_summary.alloc_sites <> []) comp
      in
      let direct_io = List.exists (fun w -> a_nodes.(w).nd_summary.io_sites <> []) comp in
      let from_succs pick =
        List.exists (fun w -> List.exists (fun s -> pick a_nodes.(s)) succ.(w)) comp
      in
      let a = direct_a || from_succs (fun nd -> nd.nd_allocates) in
      let io = direct_io || from_succs (fun nd -> nd.nd_io) in
      List.iter
        (fun w ->
          a_nodes.(w).nd_allocates <- a;
          a_nodes.(w).nd_io <- io)
        comp)
    (List.rev !emitted);
  { a_project = p; a_nodes; a_index }

let node t fi name =
  match Hashtbl.find_opt t.a_index (fi, name) with
  | Some v -> Some t.a_nodes.(v)
  | None -> None
