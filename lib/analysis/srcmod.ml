type occurrence = {
  o_index : int;
  o_line : int;
  o_col : int;
  o_path : string list;
  o_raw : string list;
  o_bare : bool;
}

type binding = {
  b_name : string;
  b_line : int;
  b_params : bool;
  b_start : int;
  b_body_start : int;
  b_body_end : int;
}

type t = {
  sm_path : string;
  sm_lines : string array;
  sm_lex : Lexer.t;
  sm_opens : string list list;
  sm_aliases : (string * string list) list;
  sm_bindings : binding list;
  sm_occurrences : occurrence list;
}

let split_lines src = Array.of_list (String.split_on_char '\n' src)

(* Keywords that start a new toplevel structure item at column 0; a
   binding's body extends to the token just before the next one. *)
let item_starter text =
  match text with
  | "let" | "and" | "type" | "module" | "open" | "exception" | "include" | "external"
  | "class" ->
    true
  | _ -> false

let is_dot (tok : Lexer.token) = tok.t_kind = Lexer.Symbol && tok.t_text = "."

let is_ident (tok : Lexer.token) =
  match tok.t_kind with Lexer.Lident | Lexer.Uident -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Occurrences                                                          *)
(* ------------------------------------------------------------------ *)

let resolve_path aliases raw =
  let rec apply guard path =
    if guard = 0 then path
    else
      match path with
      | head :: rest -> (
        match List.assoc_opt head aliases with
        | Some expansion when expansion <> [ head ] -> apply (guard - 1) (expansion @ rest)
        | _ -> path)
      | [] -> path
  in
  match apply 5 raw with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | path -> path

let collect_occurrences aliases (lx : Lexer.t) =
  let toks = lx.Lexer.tokens in
  let n = Array.length toks in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let tok = toks.(!i) in
    if is_ident tok && not (!i > 0 && is_dot toks.(!i - 1)) then begin
      let comps = ref [ tok.Lexer.t_text ] in
      let k = ref !i in
      while !k + 2 < n && is_dot toks.(!k + 1) && is_ident toks.(!k + 2) do
        comps := toks.(!k + 2).Lexer.t_text :: !comps;
        k := !k + 2
      done;
      let raw = List.rev !comps in
      let bare = List.length raw = 1 && tok.Lexer.t_kind = Lexer.Lident in
      out :=
        {
          o_index = !i;
          o_line = tok.Lexer.t_line;
          o_col = tok.Lexer.t_col;
          o_path = resolve_path aliases raw;
          o_raw = raw;
          o_bare = bare;
        }
        :: !out;
      i := !k + 1
    end
    else incr i
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Toplevel structure                                                   *)
(* ------------------------------------------------------------------ *)

let uident_path toks n j =
  let comps = ref [] in
  let k = ref j in
  if !k < n && toks.(!k).Lexer.t_kind = Lexer.Uident then begin
    comps := [ toks.(!k).Lexer.t_text ];
    while !k + 2 < n && is_dot toks.(!k + 1) && toks.(!k + 2).Lexer.t_kind = Lexer.Uident do
      comps := toks.(!k + 2).Lexer.t_text :: !comps;
      k := !k + 2
    done
  end;
  List.rev !comps

let bracket_delta (tok : Lexer.token) =
  if tok.t_kind <> Lexer.Symbol then 0
  else
    match tok.t_text with
    | "(" | "[" | "{" | "[|" -> 1
    | ")" | "]" | "}" | "|]" -> -1
    | _ -> 0

let parse_structure (lx : Lexer.t) =
  let toks = lx.Lexer.tokens in
  let n = Array.length toks in
  let opens = ref [] in
  let aliases = ref [] in
  let bindings = ref [] in
  let next_item_start from =
    let j = ref from in
    let found = ref n in
    while !found = n && !j < n do
      let tok = toks.(!j) in
      if tok.Lexer.t_col = 0 && tok.Lexer.t_kind = Lexer.Keyword && item_starter tok.Lexer.t_text
      then found := !j
      else incr j
    done;
    !found
  in
  let i = ref 0 in
  while !i < n do
    let tok = toks.(!i) in
    if tok.Lexer.t_col = 0 && tok.Lexer.t_kind = Lexer.Keyword then begin
      match tok.Lexer.t_text with
      | "open" ->
        (match uident_path toks n (!i + 1) with [] -> () | path -> opens := path :: !opens);
        incr i
      | "module" ->
        (* [module X = Path] (alias form only; [= struct] defines no alias) *)
        (if
           !i + 2 < n
           && toks.(!i + 1).Lexer.t_kind = Lexer.Uident
           && toks.(!i + 2).Lexer.t_kind = Lexer.Symbol
           && toks.(!i + 2).Lexer.t_text = "="
         then
           match uident_path toks n (!i + 3) with
           | [] -> ()
           | path -> aliases := (toks.(!i + 1).Lexer.t_text, path) :: !aliases);
        incr i
      | "let" | "and" ->
        let start = !i in
        let j = ref (!i + 1) in
        if !j < n && toks.(!j).Lexer.t_kind = Lexer.Keyword && toks.(!j).Lexer.t_text = "rec"
        then incr j;
        let pat_start = !j in
        (* find the binding-level [=] at bracket depth 0 *)
        let depth = ref 0 in
        let eq = ref n in
        let limit = next_item_start (start + 1) in
        while !eq = n && !j < limit do
          let t' = toks.(!j) in
          depth := !depth + bracket_delta t';
          if !depth = 0 && t'.Lexer.t_kind = Lexer.Symbol && t'.Lexer.t_text = "=" then
            eq := !j
          else incr j
        done;
        if !eq < n then begin
          let name =
            let rec first_lident k =
              if k >= !eq then "_"
              else if toks.(k).Lexer.t_kind = Lexer.Lident then toks.(k).Lexer.t_text
              else first_lident (k + 1)
            in
            first_lident pat_start
          in
          let params =
            (* tokens between the name slot and [=] beyond a bare name mean
               parameters; a leading [:] is a type annotation, not a param *)
            !eq > pat_start + 1
            &&
            match toks.(pat_start + 1) with
            | { Lexer.t_kind = Lexer.Symbol; t_text = ":"; _ } -> false
            | _ -> true
          in
          bindings :=
            {
              b_name = name;
              b_line = tok.Lexer.t_line;
              b_params = params;
              b_start = start;
              b_body_start = !eq + 1;
              b_body_end = limit - 1;
            }
            :: !bindings
        end;
        i := limit
      | _ -> incr i
    end
    else incr i
  done;
  (List.rev !opens, List.rev !aliases, List.rev !bindings)

let of_source ~path src =
  let lx = Lexer.lex src in
  let opens, aliases, bindings = parse_structure lx in
  {
    sm_path = path;
    sm_lines = split_lines src;
    sm_lex = lx;
    sm_opens = opens;
    sm_aliases = aliases;
    sm_bindings = bindings;
    sm_occurrences = collect_occurrences aliases lx;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

let line_text t ln =
  if ln >= 1 && ln <= Array.length t.sm_lines then String.trim t.sm_lines.(ln - 1) else ""

let enclosing_binding t idx =
  List.find_opt (fun b -> b.b_start <= idx && idx <= b.b_body_end) t.sm_bindings

let binding_named t name = List.find_opt (fun b -> b.b_name = name) t.sm_bindings

let matches t needle occ =
  occ.o_path = needle
  ||
  match needle with
  | [ m; x ] ->
    occ.o_bare && occ.o_path = [ x ]
    && List.exists (function h :: _ -> h = m | [] -> false) t.sm_opens
    && binding_named t x = None
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Whole-program call graph                                             *)
(* ------------------------------------------------------------------ *)

type project = {
  p_files : t array;
  p_dirs : string array;
  p_modules : string array;
  p_index : (string * string, int) Hashtbl.t;
  p_lib_dirs : (string, string) Hashtbl.t;
}

let file_module path = String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* First [(name x)] in a dune file; capitalized it is the library prefix
   under which wrapped modules appear ([lib/cost/dune]'s [sun_cost] makes
   [Sun_cost.Model.f] resolve to [lib/cost/model.ml]'s [f]). Executable
   stanzas yield a harmless never-referenced prefix. *)
let dune_lib_prefix dir =
  let dune = Filename.concat dir "dune" in
  if not (Sys.file_exists dune) then None
  else begin
    let ic = open_in_bin dune in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    let n = String.length src in
    let needle = "(name" in
    let rec find i =
      if i + String.length needle > n then None
      else if String.sub src i (String.length needle) = needle then Some (i + String.length needle)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some j ->
      let j = ref j in
      while !j < n && (src.[!j] = ' ' || src.[!j] = '\t' || src.[!j] = '\n') do incr j done;
      let k = ref !j in
      while
        !k < n
        && (match src.[!k] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
      do
        incr k
      done;
      if !k = !j then None else Some (String.capitalize_ascii (String.sub src !j (!k - !j)))
  end

let project_of_files files =
  let p_files = Array.of_list files in
  let nf = Array.length p_files in
  let p_dirs = Array.map (fun t -> Filename.dirname t.sm_path) p_files in
  let p_modules = Array.map (fun t -> file_module t.sm_path) p_files in
  let p_index = Hashtbl.create (2 * nf) in
  for i = nf - 1 downto 0 do
    Hashtbl.replace p_index (p_dirs.(i), p_modules.(i)) i
  done;
  let p_lib_dirs = Hashtbl.create 16 in
  let seen_dirs = Hashtbl.create 16 in
  Array.iter
    (fun dir ->
      if not (Hashtbl.mem seen_dirs dir) then begin
        Hashtbl.replace seen_dirs dir ();
        match dune_lib_prefix dir with
        | Some prefix when not (Hashtbl.mem p_lib_dirs prefix) ->
          Hashtbl.replace p_lib_dirs prefix dir
        | _ -> ()
      end)
    p_dirs;
  { p_files; p_dirs; p_modules; p_index; p_lib_dirs }

(* Resolve a fully-resolved occurrence path seen in file [fi] to a toplevel
   binding somewhere in the project. [M.x] is a same-directory module (the
   only modules visible unqualified inside a wrapped library), [Lib.M.x]
   goes through the dune library-prefix map. Deeper paths are submodule
   accesses whose bindings are not toplevel items — skipped, erring toward
   silence exactly like the per-file approximation. *)
let resolve_components p fi path =
  match path with
  | [ m; x ] -> (
    match Hashtbl.find_opt p.p_index (p.p_dirs.(fi), m) with
    | Some fj -> (
      match binding_named p.p_files.(fj) x with Some b -> Some (fj, b) | None -> None)
    | None -> None)
  | [ l; m; x ] -> (
    match Hashtbl.find_opt p.p_lib_dirs l with
    | Some dir -> (
      match Hashtbl.find_opt p.p_index (dir, m) with
      | Some fj -> (
        match binding_named p.p_files.(fj) x with Some b -> Some (fj, b) | None -> None)
      | None -> None)
    | None -> None)
  | _ -> None

let resolve_call p fi occ =
  let t = p.p_files.(fi) in
  let rec via_opens = function
    | [] -> None
    | o :: rest -> (
      match resolve_components p fi (o @ occ.o_path) with
      | Some r -> Some r
      | None -> via_opens rest)
  in
  match occ.o_path with
  | [ x ] when occ.o_bare -> (
    match binding_named t x with
    | Some b -> Some (fi, b)
    | None -> via_opens t.sm_opens)
  | [ _ ] -> None
  | path -> (
    match resolve_components p fi path with Some r -> Some r | None -> via_opens t.sm_opens)

let callees p fi (b : binding) =
  let t = p.p_files.(fi) in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun occ ->
      if occ.o_index >= b.b_body_start && occ.o_index <= b.b_body_end then
        match resolve_call p fi occ with
        | Some (fj, bj) ->
          if Hashtbl.mem seen (fj, bj.b_name) then None
          else begin
            Hashtbl.replace seen (fj, bj.b_name) ();
            Some (fj, bj)
          end
        | None -> None
      else None)
    t.sm_occurrences

let display_name p ~root_file fj name =
  if fj = root_file then name else p.p_modules.(fj) ^ "." ^ name

let project_reachable ?(stop = fun _ _ -> false) p ~file root =
  match binding_named p.p_files.(file) root with
  | None -> []
  | Some b0 ->
    if stop file root then []
    else begin
      let visited = Hashtbl.create 32 in
      let order = ref [] in
      let queue = Queue.create () in
      Queue.add (file, b0, [ root ]) queue;
      Hashtbl.replace visited (file, root) ();
      while not (Queue.is_empty queue) do
        let fi, b, chain = Queue.take queue in
        order := (fi, b, List.rev chain) :: !order;
        List.iter
          (fun (fj, bj) ->
            if (not (Hashtbl.mem visited (fj, bj.b_name))) && not (stop fj bj.b_name) then begin
              Hashtbl.replace visited (fj, bj.b_name) ();
              Queue.add (fj, bj, display_name p ~root_file:file fj bj.b_name :: chain) queue
            end)
          (callees p fi b)
      done;
      List.rev !order
    end

let reachable_from t root =
  match binding_named t root with
  | None -> []
  | Some _ ->
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let queue = Queue.create () in
    Queue.add (root, [ root ]) queue;
    Hashtbl.replace visited root [ root ];
    while not (Queue.is_empty queue) do
      let name, chain = Queue.take queue in
      order := (name, chain) :: !order;
      match binding_named t name with
      | None -> ()
      | Some b ->
        List.iter
          (fun occ ->
            if
              occ.o_bare
              && occ.o_index >= b.b_body_start
              && occ.o_index <= b.b_body_end
            then
              match occ.o_path with
              | [ callee ] when binding_named t callee <> None ->
                if not (Hashtbl.mem visited callee) then begin
                  Hashtbl.replace visited callee (chain @ [ callee ]);
                  Queue.add (callee, chain @ [ callee ]) queue
                end
              | _ -> ())
          t.sm_occurrences
    done;
    List.rev !order
