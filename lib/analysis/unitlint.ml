module A = Sun_arch.Arch
module U = Sun_cost.Units
module D = Diagnostic

type report = {
  arch : string;
  quantities_checked : int;
  diagnostics : Diagnostic.t list;
}

(* Plausibility window for per-event energies, in pJ. A 16-bit DRAM access
   is a few hundred pJ and a small SRAM read a fraction of one; anything
   above a microjoule or (when nonzero) below a microfemtojoule in a pJ
   field is a unit slip, not a design point. *)
let max_plausible_pj = 1e6
let min_plausible_pj = 1e-6

let check_arch (a : A.t) =
  let diags = ref [] in
  let checked = ref 0 in
  let add d = diags := !diags @ [ d ] in
  let quantity ?level ?partition ~what ?(allow_zero = true) ?(plausible = true) v =
    incr checked;
    let r : _ U.rate U.t = U.rate v in
    if not (U.is_finite r) then
      add
        (D.error ?level ?partition D.Unit_nonfinite
           (Printf.sprintf "%s is %s" what (if Float.is_nan v then "NaN" else "infinite")))
    else if not (U.is_nonneg r) then
      add (D.error ?level ?partition D.Unit_negative (Printf.sprintf "%s is negative: %g" what v))
    else if (not allow_zero) && v = 0.0 then
      add (D.error ?level ?partition D.Unit_negative (Printf.sprintf "%s is zero" what))
    else if plausible && v > max_plausible_pj then
      add
        (D.warning ?level ?partition D.Unit_implausible
           (Printf.sprintf "%s = %g pJ is implausibly large — joules in a picojoule field?" what v))
    else if plausible && v > 0.0 && v < min_plausible_pj then
      add
        (D.warning ?level ?partition D.Unit_implausible
           (Printf.sprintf "%s = %g pJ is implausibly small — is the unit right?" what v))
  in
  List.iteri
    (fun li (l : A.level) ->
      quantity ~level:li ~what:(Printf.sprintf "level %s NoC hop energy" l.A.level_name)
        l.A.noc_hop_energy;
      List.iter
        (fun (p : A.partition) ->
          quantity ~level:li ~partition:p.A.part_name
            ~what:(Printf.sprintf "partition %s read energy" p.A.part_name)
            p.A.read_energy;
          quantity ~level:li ~partition:p.A.part_name
            ~what:(Printf.sprintf "partition %s write energy" p.A.part_name)
            p.A.write_energy;
          quantity ~level:li ~partition:p.A.part_name ~allow_zero:false ~plausible:false
            ~what:(Printf.sprintf "partition %s bandwidth (words/cycle)" p.A.part_name)
            p.A.bandwidth)
        l.A.partitions)
    a.A.levels;
  quantity ~what:"MAC energy" a.A.mac_energy;
  { arch = a.A.arch_name; quantities_checked = !checked; diagnostics = !diags }

let check_presets () =
  List.map
    (fun (name, a) ->
      let r = check_arch a in
      { r with arch = name })
    Sun_arch.Presets.all
