module D = Diagnostic

type hit = {
  h_path : string;
  h_line : int;
  h_col : int;
  h_text : string;
  h_diag : D.t;
}

type report = {
  files_scanned : int;
  tokens_seen : int;
  hits : hit list;
  suppressed : int;
  stale : D.t list;
}

let rec walk root =
  if Sys.file_exists root && not (Sys.is_directory root) then
    if Filename.check_suffix root ".ml" then [ root ] else []
  else
    match Sys.readdir root with
    | exception Sys_error _ -> []
    | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
          else begin
            let path = Filename.concat root name in
            if Sys.is_directory path then acc @ walk path
            else if Filename.check_suffix name ".ml" then acc @ [ path ]
            else acc
          end)
        [] entries

let hit_string h = Printf.sprintf "%s:%d:%s" h.h_path h.h_line h.h_text

let diagnostics r = List.map (fun h -> h.h_diag) r.hits @ r.stale

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None else Some l)

let scan ?(allowlist = []) ?rules ~roots () =
  let rules = match rules with Some r -> r | None -> Rules.default_rules () in
  let files = List.concat_map walk roots in
  let allow = List.map (fun e -> (e, ref false)) allowlist in
  let suppressed = ref 0 in
  let tokens = ref 0 in
  let stale = ref [] in
  let hits = ref [] in
  List.iter
    (fun path ->
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error _ -> ()
      | src ->
        let sm = Srcmod.of_source ~path src in
        tokens := !tokens + Array.length sm.Srcmod.sm_lex.Lexer.tokens;
        let sups = Suppress.collect sm.Srcmod.sm_lex in
        List.iter
          (fun (r : Rules.rule) ->
            if not (r.Rules.r_exempt path) then
              List.iter
                (fun (f : Rules.finding) ->
                  let code = D.code_id f.Rules.f_code in
                  if Suppress.suppresses sups ~code ~line:f.Rules.f_line then
                    incr suppressed
                  else begin
                    let h =
                      {
                        h_path = path;
                        h_line = f.Rules.f_line;
                        h_col = f.Rules.f_col;
                        h_text = Srcmod.line_text sm f.Rules.f_line;
                        h_diag =
                          D.error f.Rules.f_code
                            (Printf.sprintf "%s:%d: %s" path f.Rules.f_line
                               f.Rules.f_message);
                      }
                    in
                    match
                      List.find_opt
                        (fun (e, _) -> Rules.contains_sub (hit_string h) e)
                        allow
                    with
                    | Some (_, used) ->
                      used := true;
                      incr suppressed
                    | None -> hits := h :: !hits
                  end)
                (r.Rules.r_check sm))
          rules;
        stale := !stale @ Suppress.stale ~path sups)
    files;
  let stale_allow =
    List.filter_map
      (fun (e, used) ->
        if !used then None
        else
          Some
            (D.warning D.Stale_suppression
               (Printf.sprintf "allowlist entry '%s' matches no diagnostic" e)))
      allow
  in
  {
    files_scanned = List.length files;
    tokens_seen = !tokens;
    hits = List.rev !hits;
    suppressed = !suppressed;
    stale = !stale @ stale_allow;
  }
