module D = Diagnostic

type hit = {
  h_path : string;
  h_line : int;
  h_col : int;
  h_text : string;
  h_diag : D.t;
}

type report = {
  files_scanned : int;
  tokens_seen : int;
  hits : hit list;
  suppressed : int;
  stale : D.t list;
}

let rec walk root =
  if Sys.file_exists root && not (Sys.is_directory root) then
    if Filename.check_suffix root ".ml" then [ root ] else []
  else
    match Sys.readdir root with
    | exception Sys_error _ -> []
    | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
          else begin
            let path = Filename.concat root name in
            if Sys.is_directory path then acc @ walk path
            else if Filename.check_suffix name ".ml" then acc @ [ path ]
            else acc
          end)
        [] entries

let hit_string h = Printf.sprintf "%s:%d:%s" h.h_path h.h_line h.h_text

let diagnostics r = List.map (fun h -> h.h_diag) r.hits @ r.stale

(* Two-phase scan: load and model every file first (the project rules need
   the whole program), then run the per-file rules, then the project rules —
   routing every project finding through its owning file's inline
   suppressions so (* sunstone-lint: allow SA070 ... *) works identically
   for both rule families. Stale-suppression warnings come last, after both
   families had their chance to mark a suppression used. *)
let scan ?rules ?project_rules ~roots () =
  let rules = match rules with Some r -> r | None -> Rules.default_rules () in
  let project_rules =
    match project_rules with Some r -> r | None -> Rules.project_rules ()
  in
  let files = List.concat_map walk roots in
  let models =
    List.filter_map
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error _ -> None
        | src -> Some (Srcmod.of_source ~path src))
      files
  in
  let marr = Array.of_list models in
  let sups = Array.map (fun sm -> Suppress.collect sm.Srcmod.sm_lex) marr in
  let tokens =
    Array.fold_left (fun acc sm -> acc + Array.length sm.Srcmod.sm_lex.Lexer.tokens) 0 marr
  in
  let suppressed = ref 0 in
  let hits = ref [] in
  let record fi (f : Rules.finding) =
    let sm = marr.(fi) in
    let path = sm.Srcmod.sm_path in
    let code = D.code_id f.Rules.f_code in
    if Suppress.suppresses sups.(fi) ~code ~line:f.Rules.f_line then incr suppressed
    else
      hits :=
        {
          h_path = path;
          h_line = f.Rules.f_line;
          h_col = f.Rules.f_col;
          h_text = Srcmod.line_text sm f.Rules.f_line;
          h_diag =
            D.error f.Rules.f_code
              (Printf.sprintf "%s:%d: %s" path f.Rules.f_line f.Rules.f_message);
        }
        :: !hits
  in
  Array.iteri
    (fun fi sm ->
      let path = sm.Srcmod.sm_path in
      List.iter
        (fun (r : Rules.rule) ->
          if not (r.Rules.r_exempt path) then List.iter (record fi) (r.Rules.r_check sm))
        rules)
    marr;
  let project = Srcmod.project_of_files models in
  List.iter
    (fun (pr : Rules.project_rule) ->
      List.iter
        (fun (pf : Rules.project_finding) -> record pf.Rules.pf_file pf.Rules.pf_finding)
        (pr.Rules.pr_check project))
    project_rules;
  let stale = ref [] in
  Array.iteri
    (fun fi sm -> stale := !stale @ Suppress.stale ~path:sm.Srcmod.sm_path sups.(fi))
    marr;
  {
    files_scanned = Array.length marr;
    tokens_seen = tokens;
    hits = List.rev !hits;
    suppressed = !suppressed;
    stale = !stale;
  }
