(** Fork-safety and hygiene source checker (pass 7): SA040-SA044.

    The parallel batch pipeline forks workers that share the parent's file
    descriptors and address space snapshot, so library code reachable from
    a worker must not: marshal values outside the pool's framed protocol
    (SA040), fork on its own (SA041), write to the shared stdout/stderr
    channels (SA042 — worker output would interleave with the parent's
    JSONL stream), or mutate toplevel state whose post-fork divergence
    silently differs between parent and workers (SA043). SA044 carries over
    the partial-function / escape-hatch ban of the old [bin/lint.sh].

    This is a textual scanner over [*.ml] files, not a typed analysis: each
    rule is a substring with an identifier-boundary check on the preceding
    character (so [pp_print_string] does not trip the [print_string] rule),
    comments are stripped with a nesting-aware tracker, and intentional
    sites are suppressed through the same allowlist file format the shell
    lint used — fixed substrings matched against the ["file:line:code"]
    rendering of a hit. [Marshal] and [Unix.fork] are permitted in paths
    containing ["parpool"], the one module whose job they are. *)

type hit = {
  file : string;
  line : int;
  text : string;  (** the offending source line, trimmed *)
  diag : Diagnostic.t;
}

type report = {
  files_scanned : int;
  hits : hit list;  (** after allowlist suppression *)
  suppressed : int;
}

val hit_string : hit -> string
(** Grep-style ["file:line:code"] rendering — the string allowlist entries
    are matched against. *)

val diagnostics : report -> Diagnostic.t list

val scan : ?allowlist:string list -> root:string -> unit -> report
(** Scan every [*.ml] under [root] (skipping [_build] and dot-directories).
    [allowlist] entries are fixed substrings; a hit whose {!hit_string}
    contains any of them is suppressed. *)

val load_allowlist : string -> string list
(** Parse an allowlist file (blank lines and [#] comments ignored); a
    missing file is an empty allowlist. *)
