(** Fork-safety and hygiene source checker (pass 7): SA040-SA044.

    The parallel batch pipeline forks workers that share the parent's file
    descriptors and address space snapshot, so library code reachable from
    a worker must not: marshal values outside the pool's framed protocol
    (SA040), fork on its own (SA041), write to the shared stdout/stderr
    channels (SA042 — worker output would interleave with the parent's
    JSONL stream), or mutate toplevel state whose post-fork divergence
    silently differs between parent and workers (SA043). SA044 carries over
    the partial-function / escape-hatch ban of the old [bin/lint.sh].

    Since the srclint engine landed this is a thin compatibility wrapper:
    the rules run over the {!Lexer}/{!Srcmod} token model (see {!Rules} and
    {!Srclint}), so comments and string literals can no longer confuse a
    match, and rule needles are spelled as plain literals instead of the
    old concatenation trick. [Marshal] and [Unix.fork] are still permitted
    in paths containing ["parpool"], the one module whose job they are.
    Inline [(* sunstone-lint: allow ... *)] comments are the only
    suppression mechanism — legacy allowlist files are gone. *)

type hit = {
  file : string;
  line : int;
  text : string;  (** the offending source line, trimmed *)
  diag : Diagnostic.t;
}

type report = {
  files_scanned : int;
  hits : hit list;  (** after inline suppression *)
  suppressed : int;
}

val contains_sub : string -> string -> bool
(** Iterative substring search (see {!Rules.contains_sub}); replaces the
    old per-position [String.sub] recursion that could exhaust the stack
    on pathological lines. *)

val hit_string : hit -> string
(** Grep-style ["file:line:code"] rendering. *)

val diagnostics : report -> Diagnostic.t list

val scan : root:string -> unit -> report
(** Scan every [*.ml] under [root] (skipping [_build] and dot-directories)
    with the SA040-SA044 rules only (no project passes). *)
