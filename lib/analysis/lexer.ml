type kind =
  | Lident
  | Uident
  | Keyword
  | Symbol
  | Int_lit
  | Float_lit
  | String_lit
  | Char_lit

type token = {
  t_text : string;
  t_kind : kind;
  t_line : int;
  t_col : int;
  t_start : int;
  t_end : int;
}
type comment = { c_text : string; c_line : int; c_col : int }
type t = { tokens : token array; comments : comment list }

let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done"; "downto"; "else";
    "end"; "exception"; "external"; "false"; "for"; "fun"; "function"; "functor"; "if";
    "in"; "include"; "inherit"; "initializer"; "lazy"; "let"; "match"; "method"; "module";
    "mutable"; "new"; "nonrec"; "object"; "of"; "open"; "or"; "private"; "rec"; "sig";
    "struct"; "then"; "to"; "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let comments = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with
    | Some '\n' ->
      incr line;
      col := 0
    | Some _ -> incr col
    | None -> ());
    if !pos < n then incr pos
  in
  let add kind start l c =
    tokens :=
      {
        t_text = String.sub src start (!pos - start);
        t_kind = kind;
        t_line = l;
        t_col = c;
        t_start = start;
        t_end = !pos;
      }
      :: !tokens
  in
  (* ["..."] with backslash escapes; embedded newlines are tolerated. *)
  let skip_string () =
    advance ();
    let rec go () =
      match cur () with
      | None -> ()
      | Some '\\' ->
        advance ();
        advance ();
        go ()
      | Some '"' -> advance ()
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  (* ['] at [!pos]: a char literal if it closes, else a type-variable quote.
     Returns [true] when a whole char literal was consumed. *)
  let skip_char_literal () =
    if peek 1 = Some '\\' then begin
      advance ();
      advance ();
      advance ();
      (* escaped head consumed; up to 3 more chars for \123 / \xFF forms *)
      let guard = ref 0 in
      while !guard < 3 && cur () <> Some '\'' && cur () <> None do
        incr guard;
        advance ()
      done;
      if cur () = Some '\'' then advance ();
      true
    end
    else if peek 2 = Some '\'' && peek 1 <> None then begin
      advance ();
      advance ();
      advance ();
      true
    end
    else false
  in
  (* At an opening brace: recognize a quoted-string start (brace, optional
     lowercase id, pipe); returns the delimiter id, or None. *)
  let quoted_delim () =
    let rec id_end k =
      match peek k with
      | Some c when (c >= 'a' && c <= 'z') || c = '_' -> id_end (k + 1)
      | Some '|' -> Some k
      | _ -> None
    in
    match id_end 1 with
    | Some k -> Some (String.sub src (!pos + 1) (k - 1))
    | None -> None
  in
  let skip_quoted id =
    (* consume "{id|" *)
    for _ = 0 to String.length id + 1 do
      advance ()
    done;
    let closer = "|" ^ id ^ "}" in
    let m = String.length closer in
    let matches_closer () =
      !pos + m <= n && String.sub src !pos m = closer
    in
    while !pos < n && not (matches_closer ()) do
      advance ()
    done;
    for _ = 1 to m do
      advance ()
    done
  in
  (* Nested comments; string and char literals inside a comment are skipped
     wholesale so a ["*)"] in a doc string cannot close the comment. *)
  let skip_comment l c =
    let start = !pos in
    advance ();
    advance ();
    let depth = ref 1 in
    let interior_end = ref n in
    while !depth > 0 && !pos < n do
      match cur () with
      | Some '(' when peek 1 = Some '*' ->
        incr depth;
        advance ();
        advance ()
      | Some '*' when peek 1 = Some ')' ->
        decr depth;
        if !depth = 0 then interior_end := !pos;
        advance ();
        advance ()
      | Some '"' -> skip_string ()
      | Some '\'' -> if not (skip_char_literal ()) then advance ()
      | Some _ -> advance ()
      | None -> ()
    done;
    let iend = min !interior_end !pos in
    let text = String.sub src (start + 2) (max 0 (iend - start - 2)) in
    comments := { c_text = text; c_line = l; c_col = c } :: !comments
  in
  while !pos < n do
    let l = !line and c = !col in
    let start = !pos in
    match cur () with
    | None -> pos := n
    | Some ch ->
      if ch = ' ' || ch = '\t' || ch = '\r' || ch = '\n' then advance ()
      else if ch = '(' && peek 1 = Some '*' then skip_comment l c
      else if ch = '"' then begin
        skip_string ();
        add String_lit start l c
      end
      else if ch = '{' && quoted_delim () <> None then begin
        (match quoted_delim () with Some id -> skip_quoted id | None -> ());
        add String_lit start l c
      end
      else if is_ident_start ch then begin
        while (match cur () with Some c' -> is_ident_char c' | None -> false) do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        let kind =
          if is_keyword text then Keyword
          else if ch >= 'A' && ch <= 'Z' then Uident
          else Lident
        in
        add kind start l c
      end
      else if is_digit ch then begin
        let last = ref ' ' in
        let continue () =
          match cur () with
          | Some c' when is_ident_char c' || c' = '.' -> true
          | Some ('+' | '-') -> !last = 'e' || !last = 'E' || !last = 'p' || !last = 'P'
          | _ -> false
        in
        while continue () do
          (match cur () with Some c' -> last := c' | None -> ());
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        let kind = if String.contains text '.' then Float_lit else Int_lit in
        add kind start l c
      end
      else if ch = '\'' then begin
        if skip_char_literal () then add Char_lit start l c
        else begin
          advance ();
          add Symbol start l c
        end
      end
      else if is_op_char ch then begin
        while (match cur () with Some c' -> is_op_char c' | None -> false) do
          advance ()
        done;
        add Symbol start l c
      end
      else begin
        advance ();
        add Symbol start l c
      end
  done;
  { tokens = Array.of_list (List.rev !tokens); comments = List.rev !comments }
