let placeholder () = ()
