(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments or a subset of
   table1/table3/table6/fig6/fig7/fig8/fig9, plus the extra
   ablation/versatility/scalability studies), and exposes a Bechamel
   micro-benchmark suite ("micro") with one Test.make per experiment
   driver to time the generators themselves. *)

let run_experiment name driver =
  Printf.printf "==============================================================\n";
  Printf.printf "== %s\n" name;
  Printf.printf "==============================================================\n%!";
  let started = Unix.gettimeofday () in
  let output = driver () in
  print_string output;
  if output <> "" && output.[String.length output - 1] <> '\n' then print_newline ();
  Printf.printf "-- %s done in %.1fs\n\n%!" name (Unix.gettimeofday () -. started)

let micro_suite () =
  let open Bechamel in
  let quick_tests =
    [
      Test.make ~name:"table1:space-sizes"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table1 ())));
      Test.make ~name:"table3:reuse-inference"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table3 ())));
      Test.make ~name:"table6:one-layer-ablation"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table6 ~layers:1 ())));
      Test.make ~name:"fig6:one-mttkrp-schedule"
        (Staged.stage (fun () ->
             let w = (List.hd Sun_workloads.Non_dnn.mttkrp_suite).Sun_workloads.Non_dnn.workload in
             ignore (Sun_core.Optimizer.optimize w Sun_arch.Presets.conventional)));
      Test.make ~name:"fig7:one-weight-update-schedule"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Inception.weight_update_layers ()) in
             ignore
               (Sun_core.Optimizer.optimize l.Sun_workloads.Inception.workload
                  Sun_arch.Presets.conventional)));
      Test.make ~name:"fig8:one-resnet-simba-schedule"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Resnet18.layers ~batch:16 ()) in
             ignore
               (Sun_core.Optimizer.optimize l.Sun_workloads.Resnet18.workload
                  Sun_arch.Presets.simba_like)));
      Test.make ~name:"fig9:one-diannao-simulation"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Resnet18.layers ()) in
             let w = l.Sun_workloads.Resnet18.workload in
             match Sun_core.Optimizer.optimize w Sun_arch.Presets.diannao_like with
             | Ok r ->
               let p = Sun_diannao.Compiler.compile w r.Sun_core.Optimizer.mapping in
               ignore (Sun_diannao.Simulator.run w p)
             | Error _ -> ()));
    ]
  in
  let test = Test.make_grouped ~name:"experiments" quick_tests in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-44s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-44s (no estimate)\n" name)
    results

(* Serving-layer micro-benchmark, two parts:
   1. cache behaviour — schedule a batch twice through one persistent cache:
      run 1 pays for the searches (repeated ResNet blocks already collide
      via fingerprinting); run 2 must be cache-dominated;
   2. worker-pool scaling — a cold-cache registry sweep at increasing
      --jobs, so the fork-based pool's throughput gain is measurable
      (expect ~linear until the core count, ~flat beyond it). *)
let serve_bench () =
  let requests =
    List.concat_map
      (fun name -> [ Printf.sprintf {|{"v":1,"workload":%S,"arch":"toy"}|} name ])
      (List.filter
         (fun n ->
           String.length n > 9 && String.sub n 0 9 = "resnet18/")
         (List.map fst (Sun_serve.Registry.workloads ())))
  in
  let reqs_path = Filename.temp_file "sunstone_serve" ".jsonl" in
  let oc = open_out reqs_path in
  List.iter (fun l -> output_string oc (l ^ "\n")) requests;
  close_out oc;
  let fresh_dir () =
    let d = Filename.temp_file "sunstone_cache" "" in
    Sys.remove d;
    d
  in
  let run ?(jobs = 1) ~cache_dir label =
    let cache = Sun_serve.Cache.create ~dir:cache_dir () in
    let started = Unix.gettimeofday () in
    let summary =
      Sun_serve.Pipeline.run_files ~cache ~jobs ~input:reqs_path ~output:Filename.null ()
    in
    Printf.printf "%-18s %6.3fs  %s\n%!" label
      (Unix.gettimeofday () -. started)
      (Sun_serve.Pipeline.summary_line summary);
    summary
  in
  let cache_dir = fresh_dir () in
  Printf.printf "serve: %d requests (resnet18 layers on toy), cache at %s\n%!"
    (List.length requests) cache_dir;
  let first = run ~cache_dir "run 1 (cold)" in
  let second = run ~cache_dir "run 2 (warm)" in
  let hit_rate s =
    if s.Sun_serve.Pipeline.requests = 0 then 0.0
    else
      100.0 *. float_of_int s.Sun_serve.Pipeline.hits /. float_of_int s.Sun_serve.Pipeline.requests
  in
  Printf.printf "hit rate: %.0f%% cold, %.0f%% warm\n\n" (hit_rate first) (hit_rate second);
  (* jobs sweep: every run starts from a fresh cache directory so each one
     pays for the same searches; the only variable is the worker count. *)
  Printf.printf "serve: cold-cache --jobs sweep (%d cores available)\n%!"
    (try
       let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
       let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
       ignore (Unix.close_process_in ic);
       n
     with _ -> 1);
  let baseline = ref None in
  List.iter
    (fun jobs ->
      let started = Unix.gettimeofday () in
      let s = run ~jobs ~cache_dir:(fresh_dir ()) (Printf.sprintf "cold --jobs %d" jobs) in
      let elapsed = Unix.gettimeofday () -. started in
      let throughput = float_of_int s.Sun_serve.Pipeline.requests /. elapsed in
      (match !baseline with
      | None -> baseline := Some throughput
      | Some _ -> ());
      let speedup =
        match !baseline with Some b when b > 0.0 -> throughput /. b | _ -> 1.0
      in
      Printf.printf "  jobs %-2d %8.2f req/s  %5.2fx vs jobs 1\n%!" jobs throughput speedup)
    [ 1; 2; 4 ];
  Sys.remove reqs_path

(* Daemon latency: fork a `serve` daemon on a Unix socket, then drive it
   closed-loop (one request in flight) through three replays of the same
   resnet18-on-toy catalog. Round 1 pays for the searches; rounds 2-3 must
   be cache-dominated, so per-request latency percentiles collapse and the
   hit rate climbs. Persists per-round p50/p95/p99 and hit rates to
   BENCH_serve.json and exits non-zero if the warm rounds fail to go
   fully cache-resident. *)
let serve_daemon_bench () =
  let module Json = Sun_serve.Json in
  let module Server = Sun_serve.Server in
  let requests =
    List.map
      (fun name -> Printf.sprintf {|{"v":1,"workload":%S,"arch":"toy"}|} name)
      (List.filter
         (fun n -> String.length n > 9 && String.sub n 0 9 = "resnet18/")
         (List.map fst (Sun_serve.Registry.workloads ())))
  in
  let tmp_base = Filename.temp_file "sunstone_daemon" "" in
  Sys.remove tmp_base;
  Unix.mkdir tmp_base 0o755;
  let sock_path = Filename.concat tmp_base "sunstone.sock" in
  let addr = Server.Unix_socket sock_path in
  let listen_fd =
    match Server.listener addr with
    | Ok fd -> fd
    | Error msg ->
      Printf.eprintf "serve-daemon: cannot listen: %s\n" msg;
      exit 2
  in
  let child = Unix.fork () in
  if child = 0 then begin
    (* daemon process: fresh disk cache, two workers, drain on SIGTERM *)
    let drain = ref false in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain := true));
    let cache = Sun_serve.Cache.create ~dir:(Filename.concat tmp_base "cache") () in
    ignore (Server.serve ~cache ~jobs:2 ~drain_flag:drain ~listen_fd ());
    Unix._exit 0
  end;
  Unix.close listen_fd;
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let round _i =
    match Server.connect addr with
    | Error msg ->
      Printf.eprintf "serve-daemon: cannot connect: %s\n" msg;
      exit 2
    | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let latencies =
        List.map
          (fun req ->
            let t0 = Sun_util.Stopwatch.monotonic_now () in
            output_string oc (req ^ "\n");
            flush oc;
            let resp = input_line ic in
            let dt = Sun_util.Stopwatch.monotonic_now () -. t0 in
            let hit =
              match Json.of_string resp with
              | Ok j -> Json.member "status" j = Some (Json.String "hit")
              | Error _ -> false
            in
            (dt, hit))
          requests
      in
      close_out_noerr oc;
      (try close_in ic with Sys_error _ -> ());
      let sorted = Array.of_list (List.map fst latencies) in
      Array.sort compare sorted;
      let hits = List.length (List.filter snd latencies) in
      let n = List.length latencies in
      let hit_rate = if n = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int n in
      ( 1e3 *. percentile sorted 0.50,
        1e3 *. percentile sorted 0.95,
        1e3 *. percentile sorted 0.99,
        hit_rate )
  in
  (* wait until the daemon accepts (the listener already exists, so one
     connect attempt is normally enough) *)
  Printf.printf "serve-daemon: %d requests/round on %s, 3 rounds\n%!" (List.length requests)
    sock_path;
  let rounds = List.map round [ 1; 2; 3 ] in
  List.iteri
    (fun i (p50, p95, p99, rate) ->
      Printf.printf "  round %d: p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  hit rate %5.1f%%\n%!"
        (i + 1) p50 p95 p99 rate)
    rounds;
  Unix.kill child Sys.sigterm;
  let _, status = Unix.waitpid [] child in
  let drained = status = Unix.WEXITED 0 in
  let rates = List.map (fun (_, _, _, r) -> r) rounds in
  let cold_rate = List.nth rates 0 in
  let warm_rates = List.tl rates in
  let pass = drained && List.for_all (fun r -> r >= 99.0 && r > cold_rate) warm_rates in
  Printf.printf "  drain: %s; hit rate %s\n%!"
    (if drained then "clean (exit 0)" else "FAILED")
    (if List.for_all (fun r -> r > cold_rate) warm_rates then "climbs" else "DOES NOT CLIMB");
  let out = "BENCH_serve.json" in
  let oc = open_out out in
  output_string oc
    (Json.to_string_pretty
       (Json.Obj
          [
            ( "serve_daemon",
              Json.Obj
                [
                  ("requests_per_round", Json.Int (List.length requests));
                  ( "rounds",
                    Json.List
                      (List.map
                         (fun (p50, p95, p99, rate) ->
                           Json.Obj
                             [
                               ("p50_ms", Json.Float p50);
                               ("p95_ms", Json.Float p95);
                               ("p99_ms", Json.Float p99);
                               ("hit_rate_pct", Json.Float rate);
                             ])
                         rounds) );
                  ("drained_clean", Json.Bool drained);
                  ("pass", Json.Bool pass);
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "serve-daemon: wrote %s\n" out;
  if not pass then exit 1

(* Auditor scaling: time Audit.check_kernels over growing prefixes of the
   bundled kernel family and persist the curve (plus the per-kernel
   exhaustive-enumeration sizes that drive it) to BENCH_audit.json, so the
   differential oracle's cost stays visible as kernels are added. *)
let audit_bench () =
  let module Audit = Sun_analysis.Audit in
  let module Json = Sun_serve.Json in
  let total = List.length (Audit.kernels ()) in
  Printf.printf "audit: differential oracle over %d bundled kernels\n%!" total;
  let rows =
    List.map
      (fun limit ->
        let started = Unix.gettimeofday () in
        let reports = Audit.check_kernels ~limit () in
        let elapsed = Unix.gettimeofday () -. started in
        let mappings =
          List.fold_left (fun acc r -> acc + r.Audit.mappings_enumerated) 0 reports
        in
        let diags =
          List.fold_left (fun acc r -> acc + List.length r.Audit.diagnostics) 0 reports
        in
        Printf.printf "  kernels %-2d %8.3fs  %7d mappings enumerated, %d diagnostics\n%!"
          limit elapsed mappings diags;
        Json.Obj
          [
            ("kernels", Json.Int limit);
            ("wall_s", Json.Float elapsed);
            ("mappings_enumerated", Json.Int mappings);
            ("diagnostics", Json.Int diags);
            ( "reports",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("kernel", Json.String r.Audit.kernel);
                         ("orders_kept", Json.Int r.Audit.orders_kept);
                         ("orders_total", Json.Int r.Audit.orders_total);
                         ("frontier_checked", Json.Int r.Audit.frontier_checked);
                         ("mappings_enumerated", Json.Int r.Audit.mappings_enumerated);
                         ("exhaustive_edp", Json.Float r.Audit.exhaustive_edp);
                         ("search_edp", Json.Float r.Audit.search_edp);
                       ])
                   reports) );
          ])
      (List.init total (fun i -> i + 1))
  in
  let out = "BENCH_audit.json" in
  let oc = open_out out in
  output_string oc (Json.to_string_pretty (Json.Obj [ ("audit", Json.List rows) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "audit: wrote %s\n" out

(* Telemetry overhead: the instrumentation promises to be ~free when
   disabled (the default), so time the same searches with telemetry off and
   on, interleaved min-of-N to shed scheduler noise, and assert the
   *enabled* cost stays within the 2%% budget — the disabled path does
   strictly less work (one flag load per site), so it is bounded by the
   same measurement. Persists the curve to BENCH_telemetry.json and exits
   non-zero on a budget violation so ci.sh can gate on it. *)
let telemetry_bench () =
  let module Tel = Sun_telemetry.Metrics in
  let module Json = Sun_serve.Json in
  let workloads =
    List.filteri (fun i _ -> i < 2) (Sun_workloads.Resnet18.layers ())
    |> List.map (fun l -> l.Sun_workloads.Resnet18.workload)
  in
  let arch = Sun_arch.Presets.simba_like in
  let search () =
    List.iter (fun w -> ignore (Sun_core.Optimizer.optimize w arch)) workloads
  in
  let time_once () =
    let started = Unix.gettimeofday () in
    search ();
    Unix.gettimeofday () -. started
  in
  let reps = 9 in
  Printf.printf "telemetry: %d resnet18 searches on simba, interleaved min-of-%d\n%!"
    (List.length workloads) reps;
  (* warm up allocators and caches before anything is timed *)
  search ();
  let off = ref infinity and on = ref infinity in
  for _ = 1 to reps do
    Tel.set_enabled false;
    off := Float.min !off (time_once ());
    Tel.set_enabled true;
    Tel.reset ();
    on := Float.min !on (time_once ())
  done;
  Tel.set_enabled false;
  let budget = 0.02 in
  let overhead = (!on -. !off) /. !off in
  (* sub-millisecond searches would make the ratio pure noise *)
  let pass = !on <= (!off *. (1.0 +. budget)) +. 1e-4 in
  Printf.printf "  disabled %8.4fs  enabled %8.4fs  overhead %+.2f%% (budget %.0f%%)  %s\n%!"
    !off !on (100.0 *. overhead) (100.0 *. budget)
    (if pass then "ok" else "OVER BUDGET");
  let out = "BENCH_telemetry.json" in
  let oc = open_out out in
  output_string oc
    (Json.to_string_pretty
       (Json.Obj
          [
            ( "telemetry",
              Json.Obj
                [
                  ("reps", Json.Int reps);
                  ("searches", Json.Int (List.length workloads));
                  ("disabled_s", Json.Float !off);
                  ("enabled_s", Json.Float !on);
                  ("overhead_frac", Json.Float overhead);
                  ("budget_frac", Json.Float budget);
                  ("pass", Json.Bool pass);
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "telemetry: wrote %s\n" out;
  if not pass then exit 1

(* Time a full srclint scan of the shipping tree (lib/, bin/, bench/),
   min-of-N over a warmed page cache, and persist the corpus size plus the
   best wall time to BENCH_lint.json. Exits non-zero if the tree is not
   clean, so ci.sh can gate on the same run it times. *)
let lint_bench () =
  let module Srclint = Sun_analysis.Srclint in
  let module Json = Sun_serve.Json in
  let roots =
    List.filter (fun p -> Sys.file_exists p && Sys.is_directory p) [ "lib"; "bin"; "bench" ]
  in
  if roots = [] then begin
    Printf.eprintf "lint: no lib/, bin/ or bench/ under %s\n" (Sys.getcwd ());
    exit 2
  end;
  let scan () = Srclint.scan ~roots () in
  let r = scan () in
  let reps = 5 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Sun_util.Stopwatch.monotonic_now () in
    ignore (scan ());
    best := Float.min !best (Sun_util.Stopwatch.monotonic_now () -. t0)
  done;
  let hits = List.length r.Srclint.hits in
  let stale = List.length r.Srclint.stale in
  let throughput = float_of_int r.Srclint.tokens_seen /. !best in
  Printf.printf
    "lint: %d files, %d tokens, %d hit(s), %d stale, min-of-%d %.4fs (%.0f ktok/s)\n%!"
    r.Srclint.files_scanned r.Srclint.tokens_seen hits stale reps !best
    (throughput /. 1e3);
  let out = "BENCH_lint.json" in
  (* regression gate against the committed baseline, before overwriting it:
     the interprocedural passes must not halve the scan throughput *)
  let regressed =
    match
      if Sys.file_exists out then Json.of_string (In_channel.with_open_text out In_channel.input_all)
      else Error "no baseline"
    with
    | Error _ -> false
    | Ok j -> (
      let get f conv = Result.bind (Result.bind (Json.field "lint" j) (Json.field f)) conv in
      match (get "tokens" Json.as_int, get "wall_s" Json.as_float) with
      | Ok tokens, Ok wall_s when tokens > 0 && wall_s > 0.0 ->
        let baseline = float_of_int tokens /. wall_s in
        if throughput < 0.5 *. baseline then begin
          Printf.eprintf
            "lint: throughput %.0f tok/s is below 0.5x the %s baseline (%.0f tok/s)\n"
            throughput out baseline;
          true
        end
        else begin
          Printf.printf "lint: throughput gate ok (%.2fx the committed baseline)\n%!"
            (throughput /. baseline);
          false
        end
      | _ -> false)
  in
  let oc = open_out out in
  output_string oc
    (Json.to_string_pretty
       (Json.Obj
          [
            ( "lint",
              Json.Obj
                [
                  ("reps", Json.Int reps);
                  ("files", Json.Int r.Srclint.files_scanned);
                  ("tokens", Json.Int r.Srclint.tokens_seen);
                  ("hits", Json.Int hits);
                  ("suppressed", Json.Int r.Srclint.suppressed);
                  ("stale", Json.Int stale);
                  ("wall_s", Json.Float !best);
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "lint: wrote %s\n" out;
  if hits > 0 || regressed then exit 1

(* Cost-model hot path: evaluations/sec of the allocation-free evaluator
   (full and score-only) against the frozen pre-PR evaluator (Model_ref) on
   the registry's hardest kernels, min-of-N interleaved-free reps, plus the
   footprint-probe memo cold vs memoized on an optimizer-like access
   pattern. Persists everything to BENCH_evaluate.json and exits non-zero
   unless the hardest kernel clears the 2x evaluations/sec gate and every
   kernel's costs are bit-identical across evaluators. *)
let evaluate_bench () =
  let module W = Sun_tensor.Workload in
  let module Model = Sun_cost.Model in
  let module Ref = Sun_cost.Model_ref in
  let module Probe = Sun_cost.Probe in
  let module Json = Sun_serve.Json in
  let arch_name = "conventional" in
  let arch = Sun_arch.Presets.conventional in
  (* hardest last: tcl (6 dims, 64^3 x 32^3) carries the acceptance gate *)
  let kernel_names = [ "mmc"; "ttmc"; "tcl" ] in
  let hardest = "tcl" in
  let reps = 7 and evals = 1000 in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to evals do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  Printf.printf "evaluate: %d evaluations/rep, min-of-%d, arch %s\n%!" evals reps arch_name;
  let gate = 2.0 in
  let gate_speedup = ref nan in
  let all_identical = ref true in
  let rows =
    List.map
      (fun name ->
        let w =
          match Sun_serve.Registry.find_workload name with
          | Ok w -> w
          | Error msg ->
            Printf.eprintf "evaluate: %s\n" msg;
            exit 2
        in
        let m =
          match Sun_core.Optimizer.optimize w arch with
          | Ok r -> r.Sun_core.Optimizer.mapping
          | Error msg ->
            Printf.eprintf "evaluate: no mapping for %s: %s\n" name msg;
            exit 2
        in
        let ctx = Model.context w arch in
        let ref_ctx = Ref.context w arch in
        (* bit-identity spot check before timing anything *)
        let identical =
          match (Model.evaluate_ctx ctx m, Ref.evaluate_ctx ref_ctx m) with
          | Ok c, Ok c' ->
            Int64.bits_of_float c.Model.energy_pj = Int64.bits_of_float c'.Ref.energy_pj
            && Int64.bits_of_float c.Model.cycles = Int64.bits_of_float c'.Ref.cycles
            && Int64.bits_of_float c.Model.edp = Int64.bits_of_float c'.Ref.edp
          | _ -> false
        in
        if not identical then all_identical := false;
        (* interleave the three evaluators rep by rep, min-of-N each, so a
           load spike hits all of them rather than skewing one ratio *)
        let ref_best = ref infinity and full_best = ref infinity and score_best = ref infinity in
        for _ = 1 to reps do
          ref_best := Float.min !ref_best (time_once (fun () -> ignore (Ref.evaluate_ctx ref_ctx m)));
          full_best :=
            Float.min !full_best (time_once (fun () -> ignore (Model.evaluate_ctx ctx m)));
          score_best :=
            Float.min !score_best (time_once (fun () -> ignore (Model.score_ctx ctx m)))
        done;
        let ref_eps = float_of_int evals /. !ref_best in
        let full_eps = float_of_int evals /. !full_best in
        let score_eps = float_of_int evals /. !score_best in
        let speedup_full = full_eps /. ref_eps in
        let speedup_score = score_eps /. ref_eps in
        if name = hardest then gate_speedup := speedup_score;
        (* probe memo, cold vs warm: the optimizer's fit-test pattern — a
           small pool of candidate extent vectors probed for every operand,
           revisited many times within one search scope *)
        let dims = Array.of_list (W.dim_names w) in
        let dim_idx = Hashtbl.create 16 in
        Array.iteri (fun i d -> Hashtbl.replace dim_idx d i) dims;
        let nvec = 64 in
        let pool =
          Array.init nvec (fun v ->
              Array.mapi (fun i _ -> 1 + ((v + i) mod 4)) dims)
        in
        let ops = List.map (fun (op : W.operand) -> op.W.name) w.W.operands in
        let probe_rounds = 200 in
        let run_probes probe =
          for _ = 1 to probe_rounds do
            Array.iter
              (fun vec ->
                Probe.set_extents probe (fun d -> vec.(Hashtbl.find dim_idx d));
                List.iter (fun op -> ignore (Probe.footprint probe ~op ~level:0)) ops)
              pool
          done
        in
        let nprobes = probe_rounds * nvec * List.length ops in
        let probes_once probe =
          let t0 = Unix.gettimeofday () in
          run_probes probe;
          Unix.gettimeofday () -. t0
        in
        let cold = Probe.create ~memo:false w in
        let warm = Probe.create ~memo:true w in
        let cold_best = ref infinity and warm_best = ref infinity in
        for _ = 1 to reps do
          cold_best := Float.min !cold_best (probes_once cold);
          warm_best := Float.min !warm_best (probes_once warm)
        done;
        let cold_pps = float_of_int nprobes /. !cold_best in
        let warm_pps = float_of_int nprobes /. !warm_best in
        let hits = Probe.hits warm and misses = Probe.misses warm in
        Printf.printf
          "  %-5s ref %9.0f/s  full %9.0f/s (%.2fx)  score %9.0f/s (%.2fx)  %s\n%!" name
          ref_eps full_eps speedup_full score_eps speedup_score
          (if identical then "bit-identical" else "COSTS DIFFER");
        Printf.printf
          "        probes cold %9.0f/s  memoized %9.0f/s (%.2fx)  %d hits / %d misses\n%!"
          cold_pps warm_pps (warm_pps /. cold_pps) hits misses;
        Json.Obj
          [
            ("kernel", Json.String name);
            ("arch", Json.String arch_name);
            ("ref_evals_per_s", Json.Float ref_eps);
            ("full_evals_per_s", Json.Float full_eps);
            ("score_evals_per_s", Json.Float score_eps);
            ("speedup_full", Json.Float speedup_full);
            ("speedup_score", Json.Float speedup_score);
            ("bit_identical", Json.Bool identical);
            ( "probe",
              Json.Obj
                [
                  ("cold_probes_per_s", Json.Float cold_pps);
                  ("memoized_probes_per_s", Json.Float warm_pps);
                  ("hits", Json.Int hits);
                  ("misses", Json.Int misses);
                ] );
          ])
      kernel_names
  in
  let pass = !all_identical && !gate_speedup >= gate in
  Printf.printf "evaluate: hardest kernel %s speedup %.2fx (gate %.1fx)  %s\n%!" hardest
    !gate_speedup gate
    (if pass then "ok" else "FAILED");
  let out = "BENCH_evaluate.json" in
  let oc = open_out out in
  output_string oc
    (Json.to_string_pretty
       (Json.Obj
          [
            ( "evaluate",
              Json.Obj
                [
                  ("reps", Json.Int reps);
                  ("evals_per_rep", Json.Int evals);
                  ("kernels", Json.List rows);
                  ("hardest", Json.String hardest);
                  ("gate_speedup", Json.Float gate);
                  ("measured_speedup", Json.Float !gate_speedup);
                  ("bit_identical", Json.Bool !all_identical);
                  ("pass", Json.Bool pass);
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "evaluate: wrote %s\n" out;
  if not pass then exit 1

(* Cross-request mapping transfer ({!Sun_serve.Transfer}): for each
   catalog (resnet18, inception on simba_like), a cold pass searches every
   layer from scratch and stores its result, then a warm pass re-runs the
   catalog against that populated cache — the steady state of a server
   that has already scheduled the rest of the network — seeding each layer
   from its nearest family member. A layer never seeds itself
   ([~exclude_self]); the exact-fingerprint repeat is the pipeline's cache
   hit, which skips the search entirely, so the bench isolates what
   cross-layer nearest-neighbor transfer buys a search that must still
   run. Persists per-layer evaluated counts and EDPs to
   BENCH_transfer.json and exits non-zero unless the warm resnet18 pass
   evaluates >= 25% fewer mappings than cold with per-layer EDP equal or
   better on both catalogs. *)
let transfer_bench () =
  let module Json = Sun_serve.Json in
  let module Cache = Sun_serve.Cache in
  let module Transfer = Sun_serve.Transfer in
  let module Codec = Sun_serve.Codec in
  let module Opt = Sun_core.Optimizer in
  let module Model = Sun_cost.Model in
  let arch = Sun_arch.Presets.simba_like in
  let config = Opt.default_config in
  let catalog prefix =
    let pl = String.length prefix in
    List.filter
      (fun (n, _) -> String.length n > pl && String.sub n 0 pl = prefix)
      (Sun_serve.Registry.workloads ())
  in
  let search ?seed w =
    match Opt.optimize ~config ?seed w arch with
    | Ok r -> (r.Opt.stats.Opt.evaluated, r.Opt.cost.Model.edp, r.Opt.mapping)
    | Error msg ->
      Printf.eprintf "transfer: optimize failed: %s\n" msg;
      exit 2
  in
  let run_catalog name prefix =
    let layers = catalog prefix in
    let cold = List.map (fun (n, w) -> (n, search w)) layers in
    let cache = Cache.create ~capacity:(List.length layers + 1) () in
    List.iter2
      (fun (n, w) (_, (_, _, m)) ->
        Cache.store cache n
          (Json.Obj
             (("mapping", Codec.encode_mapping m) :: Transfer.family_fields ~config w arch)))
      layers cold;
    let warm =
      List.map
        (fun (n, w) ->
          let seed = Transfer.find_seed ~exclude_self:true ~cache ~config w arch in
          (n, search ?seed w, seed <> None))
        layers
    in
    let sum f = List.fold_left (fun acc x -> acc + f x) 0 in
    let cold_evals = sum (fun (_, (e, _, _)) -> e) cold in
    let warm_evals = sum (fun (_, (e, _, _), _) -> e) warm in
    let seeded = sum (fun (_, _, s) -> if s then 1 else 0) warm in
    let edp_ok = ref true in
    let rows =
      List.map2
        (fun (n, (ce, cedp, _)) (_, (we, wedp, _), s) ->
          (* "equal or better" up to float-print jitter: one part in 1e9 *)
          if wedp > cedp *. (1.0 +. 1e-9) then begin
            Printf.eprintf "transfer: %s warm EDP %.6g worse than cold %.6g\n" n wedp cedp;
            edp_ok := false
          end;
          Json.Obj
            [
              ("layer", Json.String n);
              ("seeded", Json.Bool s);
              ("cold_evaluated", Json.Int ce);
              ("warm_evaluated", Json.Int we);
              ("cold_edp", Json.Float cedp);
              ("warm_edp", Json.Float wedp);
            ])
        cold warm
    in
    let reduction =
      if cold_evals = 0 then 0.0
      else 1.0 -. (float_of_int warm_evals /. float_of_int cold_evals)
    in
    Printf.printf
      "transfer: %-10s %d layers, %d seeded; evaluated cold %d -> warm %d (%.1f%% fewer)\n%!"
      name (List.length layers) seeded cold_evals warm_evals (100.0 *. reduction);
    ( Json.Obj
        [
          ("layers", Json.Int (List.length layers));
          ("seeded", Json.Int seeded);
          ("cold_evaluated", Json.Int cold_evals);
          ("warm_evaluated", Json.Int warm_evals);
          ("reduction", Json.Float reduction);
          ("per_layer", Json.List rows);
        ],
      reduction, !edp_ok )
  in
  let resnet, resnet_reduction, resnet_edp_ok = run_catalog "resnet18" "resnet18/" in
  let inception, _, inception_edp_ok = run_catalog "inception" "inception/" in
  let gate = 0.25 in
  let pass = resnet_reduction >= gate && resnet_edp_ok && inception_edp_ok in
  let out = "BENCH_transfer.json" in
  let oc = open_out out in
  output_string oc
    (Json.to_string_pretty
       (Json.Obj
          [
            ( "transfer",
              Json.Obj
                [
                  ("arch", Json.String "simba_like");
                  ("gate_reduction", Json.Float gate);
                  ("resnet18", resnet);
                  ("inception", inception);
                  ("pass", Json.Bool pass);
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "transfer: wrote %s\n" out;
  if not pass then begin
    if resnet_reduction < gate then
      Printf.eprintf "transfer: resnet18 reduction %.1f%% below the %.0f%% gate\n"
        (100.0 *. resnet_reduction) (100.0 *. gate);
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Sun_experiments.Figures.all in
  match args with
  | [ "micro" ] -> micro_suite ()
  | [ "serve" ] -> serve_bench ()
  | [ "serve-daemon" ] -> serve_daemon_bench ()
  | [ "audit" ] -> audit_bench ()
  | [ "telemetry" ] -> telemetry_bench ()
  | [ "evaluate" ] -> evaluate_bench ()
  | [ "lint" ] -> lint_bench ()
  | [ "transfer" ] -> transfer_bench ()
  | [] -> List.iter (fun (name, driver) -> run_experiment name driver) Sun_experiments.Figures.all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name Sun_experiments.Figures.all with
        | Some driver -> run_experiment name driver
        | None ->
          Printf.eprintf
            "unknown experiment %S; known: %s, 'micro', 'serve', 'serve-daemon', 'audit', \
             'telemetry', 'evaluate', 'lint' or 'transfer'\n"
            name
            (String.concat ", " known);
          exit 2)
      names
