(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments or a subset of
   table1/table3/table6/fig6/fig7/fig8/fig9, plus the extra
   ablation/versatility/scalability studies), and exposes a Bechamel
   micro-benchmark suite ("micro") with one Test.make per experiment
   driver to time the generators themselves. *)

let run_experiment name driver =
  Printf.printf "==============================================================\n";
  Printf.printf "== %s\n" name;
  Printf.printf "==============================================================\n%!";
  let started = Unix.gettimeofday () in
  let output = driver () in
  print_string output;
  if output <> "" && output.[String.length output - 1] <> '\n' then print_newline ();
  Printf.printf "-- %s done in %.1fs\n\n%!" name (Unix.gettimeofday () -. started)

let micro_suite () =
  let open Bechamel in
  let quick_tests =
    [
      Test.make ~name:"table1:space-sizes"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table1 ())));
      Test.make ~name:"table3:reuse-inference"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table3 ())));
      Test.make ~name:"table6:one-layer-ablation"
        (Staged.stage (fun () -> ignore (Sun_experiments.Figures.table6 ~layers:1 ())));
      Test.make ~name:"fig6:one-mttkrp-schedule"
        (Staged.stage (fun () ->
             let w = (List.hd Sun_workloads.Non_dnn.mttkrp_suite).Sun_workloads.Non_dnn.workload in
             ignore (Sun_core.Optimizer.optimize w Sun_arch.Presets.conventional)));
      Test.make ~name:"fig7:one-weight-update-schedule"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Inception.weight_update_layers ()) in
             ignore
               (Sun_core.Optimizer.optimize l.Sun_workloads.Inception.workload
                  Sun_arch.Presets.conventional)));
      Test.make ~name:"fig8:one-resnet-simba-schedule"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Resnet18.layers ~batch:16 ()) in
             ignore
               (Sun_core.Optimizer.optimize l.Sun_workloads.Resnet18.workload
                  Sun_arch.Presets.simba_like)));
      Test.make ~name:"fig9:one-diannao-simulation"
        (Staged.stage (fun () ->
             let l = List.hd (Sun_workloads.Resnet18.layers ()) in
             let w = l.Sun_workloads.Resnet18.workload in
             match Sun_core.Optimizer.optimize w Sun_arch.Presets.diannao_like with
             | Ok r ->
               let p = Sun_diannao.Compiler.compile w r.Sun_core.Optimizer.mapping in
               ignore (Sun_diannao.Simulator.run w p)
             | Error _ -> ()));
    ]
  in
  let test = Test.make_grouped ~name:"experiments" quick_tests in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-44s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-44s (no estimate)\n" name)
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Sun_experiments.Figures.all in
  match args with
  | [ "micro" ] -> micro_suite ()
  | [] -> List.iter (fun (name, driver) -> run_experiment name driver) Sun_experiments.Figures.all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name Sun_experiments.Figures.all with
        | Some driver -> run_experiment name driver
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s or 'micro'\n" name
            (String.concat ", " known);
          exit 2)
      names
