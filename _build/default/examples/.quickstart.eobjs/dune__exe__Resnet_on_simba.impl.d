examples/resnet_on_simba.ml: List Printf Sun_arch Sun_baselines Sun_core Sun_cost Sun_util Sun_workloads
