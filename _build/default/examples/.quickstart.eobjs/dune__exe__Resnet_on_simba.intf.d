examples/resnet_on_simba.mli:
