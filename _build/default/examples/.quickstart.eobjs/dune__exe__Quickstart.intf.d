examples/quickstart.mli:
