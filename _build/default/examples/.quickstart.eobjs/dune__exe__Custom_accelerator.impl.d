examples/custom_accelerator.ml: Format Sun_arch Sun_core Sun_cost Sun_mapping Sun_tensor
