examples/tensor_decomposition.ml: List Printf String Sun_arch Sun_core Sun_cost Sun_tensor Sun_util Sun_workloads
