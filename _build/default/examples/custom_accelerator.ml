(* Define your own accelerator and your own tensor operation from scratch,
   then schedule one on the other — the full public API surface in one
   file. The machine below is a small edge NPU: a 1-D ring of 8 PEs, each
   with a 4-wide vector unit and a 2 KB unified scratchpad, behind a 64 KB
   global buffer. The workload is a batched attention score computation
   (out[b,i,j] = sum_d q[b,i,d] * k[b,j,d]) that no preset covers.

     dune exec examples/custom_accelerator.exe *)

module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module E = Sun_arch.Energy_table
module Model = Sun_cost.Model
module Optimizer = Sun_core.Optimizer

let attention_scores ~batch ~seq ~head_dim =
  W.make ~name:"attention-scores"
    ~dims:[ ("B", batch); ("I", seq); ("J", seq); ("D", head_dim) ]
    ~operands:
      [
        { W.name = "q"; kind = `Input; indices = [ W.Dim "B"; W.Dim "I"; W.Dim "D" ] };
        { W.name = "k"; kind = `Input; indices = [ W.Dim "B"; W.Dim "J"; W.Dim "D" ] };
        { W.name = "scores"; kind = `Output; indices = [ W.Dim "B"; W.Dim "I"; W.Dim "J" ] };
      ]

let edge_npu =
  let sram name capacity_words bandwidth : A.partition =
    {
      A.part_name = name;
      capacity_words;
      accepts = `All;
      read_energy = E.sram_read ~capacity_words ~bits:16;
      write_energy = E.sram_write ~capacity_words ~bits:16;
      bandwidth;
    }
  in
  let pe_scratch : A.level =
    {
      A.level_name = "Scratch";
      partitions = [ sram "Scratch" 1024 16.0 ];
      fanout = 4 (* vector lanes *);
      multicast = true;
      noc_hop_energy = 0.05;
      unbounded = false;
    }
  in
  let global_buffer : A.level =
    {
      A.level_name = "GLB";
      partitions = [ sram "GLB" 32768 32.0 ];
      fanout = 8 (* ring of PEs *);
      multicast = true;
      noc_hop_energy = E.noc_hop ~bits:16;
      unbounded = false;
    }
  in
  let dram : A.level =
    {
      A.level_name = "DRAM";
      partitions =
        [
          {
            A.part_name = "DRAM";
            capacity_words = 0;
            accepts = `All;
            read_energy = E.dram_access ~bits:16;
            write_energy = E.dram_access ~bits:16;
            bandwidth = 8.0;
          };
        ];
      fanout = 1;
      multicast = false;
      noc_hop_energy = 0.0;
      unbounded = true;
    }
  in
  A.make ~name:"edge-npu" ~levels:[ pe_scratch; global_buffer; dram ]
    ~mac_energy:(E.mac ~bits:16) ()

let () =
  let w = attention_scores ~batch:4 ~seq:256 ~head_dim:64 in
  Format.printf "Machine:@.%a@.@." A.pp edge_npu;
  Format.printf "Workload:@.%a@.@." W.pp w;
  match Optimizer.optimize w edge_npu with
  | Error msg -> Format.printf "no valid mapping: %s@." msg
  | Ok r ->
    Format.printf "Best mapping:@.%s@.@." (Sun_mapping.Mapping.to_string r.Optimizer.mapping);
    Format.printf "%a@.@." Model.pp_cost r.Optimizer.cost;
    (* sanity: an independently validated mapping *)
    (match Model.validate w edge_npu r.Optimizer.mapping with
    | Ok () -> Format.printf "mapping independently validated: fits all buffers and fanouts@."
    | Error e -> Format.printf "VALIDATION BUG: %s@." e)
