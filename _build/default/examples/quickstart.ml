(* Quickstart: describe a tensor workload, pick an architecture preset, and
   let Sunstone find a dataflow mapping.

     dune exec examples/quickstart.exe *)

module W = Sun_tensor.Workload
module Catalog = Sun_tensor.Catalog
module Presets = Sun_arch.Presets
module Mapping = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Optimizer = Sun_core.Optimizer

let () =
  (* 1. A workload is a perfectly nested loop over named dimensions. The
     catalog covers the common families; this is a mid-network ResNet
     convolution. You could equally build one by hand with
     [Workload.make] — see examples/custom_accelerator.ml. *)
  let layer = Catalog.conv2d ~name:"demo-conv" ~n:1 ~k:64 ~c:64 ~p:56 ~q:56 ~r:3 ~s:3 () in
  Format.printf "Workload:@.%a@.@." W.pp layer;

  (* 2. Sunstone first infers, from the index expressions alone, which loop
     dimensions can reuse each operand (the paper's Table III). *)
  Format.printf "Inferred reuse:%a@.@." Sun_tensor.Reuse.pp (Sun_tensor.Reuse.analyze layer);

  (* 3. Schedule it on the conventional (Eyeriss-like) machine. *)
  let arch = Presets.conventional in
  match Optimizer.optimize layer arch with
  | Error msg -> Format.printf "no valid mapping: %s@." msg
  | Ok result ->
    Format.printf "Best mapping found:@.%s@.@." (Mapping.to_string result.Optimizer.mapping);
    Format.printf "%a@.@." Model.pp_cost result.Optimizer.cost;
    let stats = result.Optimizer.stats in
    Format.printf "Search: %d candidates examined, %d scored, in %.2f s@." stats.Optimizer.examined
      stats.Optimizer.evaluated stats.Optimizer.wall_seconds;

    (* 4. For calibration: how much better is this than streaming
       everything from DRAM? *)
    let naive = Mapping.single_level layer ~num_levels:(Sun_arch.Arch.num_levels arch) in
    let naive_cost = Model.evaluate_exn layer arch naive in
    Format.printf "EDP vs DRAM streaming: %.0fx better@."
      (naive_cost.Model.edp /. result.Optimizer.cost.Model.edp)
