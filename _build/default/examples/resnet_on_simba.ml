(* Schedule every ResNet-18 convolution on the Simba-like hierarchical
   accelerator (two spatial levels inside each PE), and compare against the
   Timeloop-like random-search baseline — a miniature of the paper's Fig 8.

     dune exec examples/resnet_on_simba.exe *)

module Model = Sun_cost.Model
module Optimizer = Sun_core.Optimizer
module Resnet18 = Sun_workloads.Resnet18
module TL = Sun_baselines.Timeloop_like

let () =
  let arch = Sun_arch.Presets.simba_like in
  Printf.printf "%-10s  %-12s %-9s  %-12s %-9s  %s\n" "layer" "sunstone EDP" "time" "TL-fast EDP"
    "time" "winner";
  let sun_total = ref 0.0 and tl_total = ref 0.0 in
  List.iter
    (fun (layer : Resnet18.layer) ->
      let w = layer.Resnet18.workload in
      match Optimizer.optimize w arch with
      | Error msg -> Printf.printf "%-10s no mapping (%s)\n" layer.Resnet18.layer_name msg
      | Ok r ->
        let tl = TL.run ~config:TL.fast w arch in
        let tl_edp = Sun_baselines.Mapper.edp tl in
        let weight = float_of_int layer.Resnet18.count in
        sun_total := !sun_total +. (weight *. r.Optimizer.cost.Model.edp);
        tl_total := !tl_total +. (weight *. tl_edp);
        Printf.printf "%-10s  %-12s %-9s  %-12s %-9s  %s\n" layer.Resnet18.layer_name
          (Sun_util.Table_fmt.si r.Optimizer.cost.Model.edp)
          (Sun_util.Table_fmt.seconds r.Optimizer.stats.Optimizer.wall_seconds)
          (Sun_util.Table_fmt.si tl_edp)
          (Sun_util.Table_fmt.seconds tl.Sun_baselines.Mapper.wall_seconds)
          (if r.Optimizer.cost.Model.edp <= tl_edp then "sunstone" else "TL"))
    (Resnet18.layers ~batch:16 ());
  Printf.printf "\nNetwork EDP (occurrence-weighted): sunstone %s vs TL-fast %s (%.2fx)\n"
    (Sun_util.Table_fmt.si !sun_total) (Sun_util.Table_fmt.si !tl_total)
    (!tl_total /. !sun_total)
