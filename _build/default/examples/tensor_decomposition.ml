(* Versatility beyond DNNs: schedule the bottleneck kernels of CP and
   Tucker tensor decompositions (MTTKRP, TTMc) and SDDMM on the
   conventional accelerator. No per-workload heuristics are involved — the
   same reuse algebra drives everything (paper Fig 6).

     dune exec examples/tensor_decomposition.exe *)

module W = Sun_tensor.Workload
module Model = Sun_cost.Model
module Optimizer = Sun_core.Optimizer
module Non_dnn = Sun_workloads.Non_dnn

let () =
  let arch = Sun_arch.Presets.conventional in
  List.iter
    (fun (instance : Non_dnn.instance) ->
      let w = instance.Non_dnn.workload in
      Printf.printf "== %s  (%.2e MACs)\n" instance.Non_dnn.instance_name (W.macs w);
      (* the scheduler never saw these access patterns before: it derives
         the reuse directions from the workload description alone *)
      let reuse = Sun_tensor.Reuse.analyze w in
      List.iter
        (fun (e : Sun_tensor.Reuse.entry) ->
          Printf.printf "   %-8s reused across: %s\n" e.Sun_tensor.Reuse.operand.W.name
            (match e.Sun_tensor.Reuse.reused_by with [] -> "-" | ds -> String.concat "," ds))
        reuse;
      match Optimizer.optimize w arch with
      | Error msg -> Printf.printf "   no valid mapping: %s\n\n" msg
      | Ok r ->
        Printf.printf "   EDP %s, energy %s pJ, %.1f%% of the PE array, found in %s\n\n"
          (Sun_util.Table_fmt.si r.Optimizer.cost.Model.edp)
          (Sun_util.Table_fmt.si r.Optimizer.cost.Model.energy_pj)
          (100.0 *. r.Optimizer.cost.Model.spatial_utilization)
          (Sun_util.Table_fmt.seconds r.Optimizer.stats.Optimizer.wall_seconds))
    Non_dnn.all
