module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module B = Sun_baselines
module Mapper = B.Mapper

let layer = C.conv2d ~n:16 ~k:64 ~c:64 ~p:14 ~q:14 ~r:3 ~s:3 ()
let small_tl = { B.Timeloop_like.fast with B.Timeloop_like.threads = 2; max_wall_seconds = 5.0 }

(* ----------------------------- mapper ------------------------------ *)

let test_mapper_outcome () =
  let m = M.single_level layer ~num_levels:3 in
  let o =
    Mapper.of_mapping ~tool:"t" ~examined:1 ~wall_seconds:0.0 layer P.conventional (Some m)
  in
  Alcotest.(check bool) "valid naive" true o.Mapper.valid;
  Alcotest.(check bool) "edp finite" true (Float.is_finite (Mapper.edp o));
  let bad =
    Mapper.of_mapping ~tool:"t" ~examined:1 ~wall_seconds:0.0 layer
      (P.toy ~l1_words:8 ~l2_words:16 ~pes:4 ())
      None
  in
  Alcotest.(check bool) "none invalid" false bad.Mapper.valid;
  Alcotest.(check bool) "edp infinite" true (Mapper.edp bad = Float.infinity)

let test_mapper_detects_overflow () =
  (* a mapping that overflows L1 must be reported invalid, mirroring how
     CoSA's rounded outputs are judged *)
  let w = C.matmul ~m:64 ~n:64 ~k:64 () in
  let arch = P.toy ~l1_words:8 ~l2_words:100000 ~pes:4 () in
  let dims = [ "M"; "N"; "K" ] in
  let ones = List.map (fun d -> (d, 1)) dims in
  let level t = { M.temporal = t; order = dims; spatial = ones } in
  let m =
    M.make_exn w
      [ level [ ("M", 64); ("N", 1); ("K", 1) ]; level ones; level [ ("M", 1); ("N", 64); ("K", 64) ] ]
  in
  let o = Mapper.of_mapping ~tool:"t" ~examined:1 ~wall_seconds:0.0 w arch (Some m) in
  Alcotest.(check bool) "overflow flagged" false o.Mapper.valid

(* --------------------------- timeloop ------------------------------ *)

let test_timeloop_finds_valid () =
  let o = B.Timeloop_like.run ~config:small_tl layer P.conventional in
  Alcotest.(check bool) "valid" true o.Mapper.valid;
  Alcotest.(check bool) "examined several" true (o.Mapper.examined > 20)

let test_timeloop_deterministic () =
  let a = B.Timeloop_like.run ~config:small_tl layer P.conventional in
  let b = B.Timeloop_like.run ~config:small_tl layer P.conventional in
  Alcotest.(check (float 0.0)) "same result for same seed" (Mapper.edp a) (Mapper.edp b)

let test_timeloop_slow_no_worse () =
  let slow_cfg =
    { B.Timeloop_like.slow with B.Timeloop_like.threads = 2; max_wall_seconds = 10.0 }
  in
  let fast = B.Timeloop_like.run ~config:small_tl layer P.conventional in
  let slow = B.Timeloop_like.run ~config:slow_cfg layer P.conventional in
  Alcotest.(check bool) "slow explores at least as much" true
    (slow.Mapper.examined >= fast.Mapper.examined);
  Alcotest.(check bool) "slow EDP <= fast EDP" true (Mapper.edp slow <= Mapper.edp fast +. 1e-6)

(* ----------------------------- dmaze ------------------------------- *)

let test_dmaze_rejects_asymmetric () =
  let asym = C.conv2d ~n:16 ~k:64 ~c:64 ~p:17 ~q:17 ~r:1 ~s:7 () in
  let o = B.Dmaze_like.run asym P.conventional in
  Alcotest.(check bool) "asymmetric rejected" false o.Mapper.valid;
  Alcotest.(check int) "rejected before searching" 0 o.Mapper.examined

let test_dmaze_underutilized_layer_fails () =
  (* tiny layer cannot reach the L2 utilization floor of the fast config *)
  let small = C.conv2d ~n:1 ~k:8 ~c:8 ~p:7 ~q:7 ~r:3 ~s:3 () in
  let o = B.Dmaze_like.run ~config:B.Dmaze_like.fast small P.conventional in
  Alcotest.(check bool) "no valid mapping" false o.Mapper.valid

let test_dmaze_valid_on_large_layer () =
  (* a layer big enough to clear the 40% L2 floor of the slow config *)
  let big = C.conv2d ~n:16 ~k:64 ~c:64 ~p:56 ~q:56 ~r:3 ~s:3 () in
  let o = B.Dmaze_like.run ~config:B.Dmaze_like.slow big P.conventional in
  Alcotest.(check bool) "valid on batch-16 layer" true o.Mapper.valid;
  match o.Mapper.mapping with
  | Some m ->
    (* the returned mapping honors the thresholds it was searched under *)
    let l2_fill = Model.level_fill_fraction big P.conventional m ~level:1 in
    Alcotest.(check bool)
      (Printf.sprintf "L2 fill %.2f >= 0.4" l2_fill)
      true (l2_fill >= 0.4 -. 1e-9)
  | None -> Alcotest.fail "expected mapping"

let test_dmaze_no_spatial_reduction_in_fast () =
  let o = B.Dmaze_like.run ~config:B.Dmaze_like.fast layer P.conventional in
  match o.Mapper.mapping with
  | Some m ->
    let out = W.output layer in
    for l = 0 to M.num_levels m - 1 do
      List.iter
        (fun (d, f) ->
          if f > 1 then
            Alcotest.(check bool)
              (Printf.sprintf "unrolled %s indexes the output" d)
              true (W.is_indexing out d))
        m.M.levels.(l).M.spatial
    done
  | None -> () (* thresholds may legitimately reject; covered above *)

(* -------------------------- interstellar --------------------------- *)

let test_interstellar_ck_unrolling () =
  let o = B.Interstellar_like.run layer P.conventional in
  Alcotest.(check bool) "valid" true o.Mapper.valid;
  match o.Mapper.mapping with
  | Some m ->
    (* the prescription: spatial unrolling confined to C and K whenever CK
       can fill the array *)
    for l = 0 to M.num_levels m - 1 do
      List.iter
        (fun (d, f) ->
          if f > 1 then
            Alcotest.(check bool)
              (Printf.sprintf "%s is C or K" d)
              true
              (List.mem d [ "C"; "K" ]))
        m.M.levels.(l).M.spatial
    done
  | None -> Alcotest.fail "expected mapping"

let test_interstellar_fallback_on_small_channels () =
  (* C x K = 4 cannot fill 1024 PEs: other dims must be admitted *)
  let thin = C.conv2d ~n:16 ~k:2 ~c:2 ~p:56 ~q:56 ~r:3 ~s:3 () in
  let o = B.Interstellar_like.run thin P.conventional in
  Alcotest.(check bool) "still valid" true o.Mapper.valid;
  match o.Mapper.mapping with
  | Some m ->
    let unrolled_non_ck = ref false in
    for l = 0 to M.num_levels m - 1 do
      List.iter
        (fun (d, f) -> if f > 1 && not (List.mem d [ "C"; "K" ]) then unrolled_non_ck := true)
        m.M.levels.(l).M.spatial
    done;
    Alcotest.(check bool) "widened beyond CK" true !unrolled_non_ck
  | None -> Alcotest.fail "expected mapping"

let test_interstellar_preset_on_foreign_workload () =
  (* MTTKRP happens to have a K dimension, so the CK preset degenerates to
     K-only unrolling; workloads without any preset dim are rejected *)
  let mm = C.mttkrp ~i:64 ~j:32 ~k:64 ~l:64 () in
  let o = B.Interstellar_like.run mm P.conventional in
  (* K=64 cannot fill 1024 PEs so the tool legitimately widens; it must at
     least return something structurally sound *)
  Alcotest.(check bool) "returns a mapping" true (o.Mapper.mapping <> None);
  let custom =
    W.make ~name:"axpy"
      ~dims:[ ("X", 4096) ]
      ~operands:
        [
          { W.name = "a"; kind = `Input; indices = [ W.Dim "X" ] };
          { W.name = "out"; kind = `Output; indices = [ W.Dim "X" ] };
        ]
  in
  let o2 = B.Interstellar_like.run custom P.conventional in
  Alcotest.(check bool) "no preset dims: rejected" false o2.Mapper.valid

(* ------------------------------ cosa -------------------------------- *)

let test_cosa_one_shot () =
  let o = B.Cosa_like.run layer P.conventional in
  Alcotest.(check int) "single shot" 1 o.Mapper.examined;
  Alcotest.(check bool) "fast" true (o.Mapper.wall_seconds < 1.0)

let test_cosa_produces_structurally_complete () =
  let o = B.Cosa_like.run layer P.simba_like in
  match o.Mapper.mapping with
  | Some m ->
    List.iter
      (fun (d, b) -> Alcotest.(check int) d b (M.tile_at m ~level:(M.num_levels m - 1) d))
      layer.W.dims
  | None -> Alcotest.fail "CoSA must always emit a mapping"

let test_cosa_invalidity_on_simba () =
  (* the paper's observation: a large fraction of CoSA mappings overflow on
     the Simba-like machine *)
  let layers = Sun_workloads.Resnet18.layers ~batch:16 () in
  let invalid =
    List.length
      (List.filter
         (fun (l : Sun_workloads.Resnet18.layer) ->
           not (B.Cosa_like.run l.Sun_workloads.Resnet18.workload P.simba_like).Mapper.valid)
         layers)
  in
  let n = List.length layers in
  Alcotest.(check bool)
    (Printf.sprintf "invalid on %d/%d layers (expect a substantial fraction, not all)" invalid n)
    true
    (invalid >= n / 3 && invalid < n)

(* --------------------------- space sizes ---------------------------- *)

let test_space_size_ordering () =
  let w = Sun_workloads.Inception.example_layer in
  let arch = P.conventional in
  let t = B.Space_size.timeloop w arch in
  let i = B.Space_size.interstellar w arch in
  let m = B.Space_size.marvel w arch in
  let s = B.Space_size.sunstone w arch in
  Alcotest.(check bool) "timeloop biggest" true
    (t.B.Space_size.space > i.B.Space_size.space && t.B.Space_size.space > m.B.Space_size.space);
  Alcotest.(check bool) "sunstone smallest constructed" true
    (s.B.Space_size.space < m.B.Space_size.space /. 1e3);
  Alcotest.(check int) "sunstone uses 4 reuse dims" 4 s.B.Space_size.tile_dims;
  Alcotest.(check int) "interstellar unrolls 2 dims" 2 i.B.Space_size.unroll_dims

let () =
  Alcotest.run "sun_baselines"
    [
      ( "mapper",
        [
          Alcotest.test_case "outcome fields" `Quick test_mapper_outcome;
          Alcotest.test_case "overflow detection" `Quick test_mapper_detects_overflow;
        ] );
      ( "timeloop-like",
        [
          Alcotest.test_case "finds valid" `Quick test_timeloop_finds_valid;
          Alcotest.test_case "deterministic" `Quick test_timeloop_deterministic;
          Alcotest.test_case "slow config no worse" `Slow test_timeloop_slow_no_worse;
        ] );
      ( "dmaze-like",
        [
          Alcotest.test_case "asymmetric rejected" `Quick test_dmaze_rejects_asymmetric;
          Alcotest.test_case "underutilization fails" `Quick test_dmaze_underutilized_layer_fails;
          Alcotest.test_case "valid on large layers" `Slow test_dmaze_valid_on_large_layer;
          Alcotest.test_case "fast forbids spatial reduction" `Slow
            test_dmaze_no_spatial_reduction_in_fast;
        ] );
      ( "interstellar-like",
        [
          Alcotest.test_case "CK unrolling" `Quick test_interstellar_ck_unrolling;
          Alcotest.test_case "fallback on small channels" `Quick
            test_interstellar_fallback_on_small_channels;
          Alcotest.test_case "preset on foreign workloads" `Quick
            test_interstellar_preset_on_foreign_workload;
        ] );
      ( "cosa-like",
        [
          Alcotest.test_case "one shot" `Quick test_cosa_one_shot;
          Alcotest.test_case "structurally complete" `Quick test_cosa_produces_structurally_complete;
          Alcotest.test_case "invalidity on simba" `Quick test_cosa_invalidity_on_simba;
        ] );
      ("space sizes (Table I)", [ Alcotest.test_case "ordering" `Quick test_space_size_ordering ]);
    ]
