module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module D = Sun_diannao

let conv = C.conv2d ~n:1 ~k:16 ~c:8 ~p:14 ~q:14 ~r:3 ~s:3 ()

let schedule w =
  match Sun_core.Optimizer.optimize w P.diannao_like with
  | Ok r -> r.Sun_core.Optimizer.mapping
  | Error msg -> Alcotest.failf "schedule failed: %s" msg

let test_placement () =
  let place = D.Compiler.default_placement conv in
  Alcotest.(check string) "ifmap to NBin" "NBin" (D.Isa.buffer_name (place "ifmap"));
  Alcotest.(check string) "weight to SB" "SB" (D.Isa.buffer_name (place "weight"));
  Alcotest.(check string) "ofmap to NBout" "NBout" (D.Isa.buffer_name (place "ofmap"))

let test_compile_structure () =
  let m = schedule conv in
  let program = D.Compiler.compile conv m in
  Alcotest.(check bool) "passes positive" true (program.D.Compiler.passes > 0);
  (* one compute per pass *)
  let computes =
    Seq.fold_left
      (fun acc insn -> match insn with D.Isa.Compute _ -> acc + 1 | _ -> acc)
      0
      (program.D.Compiler.instructions ())
  in
  Alcotest.(check int) "computes = passes" program.D.Compiler.passes computes

let test_mac_conservation () =
  let m = schedule conv in
  let program = D.Compiler.compile conv m in
  let macs =
    Seq.fold_left
      (fun acc insn -> match insn with D.Isa.Compute { macs } -> acc +. macs | _ -> acc)
      0.0
      (program.D.Compiler.instructions ())
  in
  Alcotest.(check (float 1e-6)) "all MACs executed" (W.macs conv) macs

let test_loads_cover_operands () =
  let m = schedule conv in
  let program = D.Compiler.compile conv m in
  let r = D.Simulator.run conv program in
  (* DRAM must supply at least each input once and receive the output *)
  let input_words =
    Sun_util.Listx.sum_by (W.operand_size conv) (W.inputs conv)
  in
  Alcotest.(check bool) "reads cover inputs" true
    (r.D.Simulator.events.D.Simulator.dram_read_words >= input_words -. 1e-6);
  Alcotest.(check bool) "writes cover output" true
    (r.D.Simulator.events.D.Simulator.dram_write_words
    >= W.operand_size conv (W.output conv) -. 1e-6)

let test_reuse_between_passes () =
  (* with the output-indexing loops outermost and the reduction inside,
     weights reload per pass but ifmap stays when only K changes *)
  let dims = W.dim_names conv in
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  let m =
    M.make_exn conv
      [
        { M.temporal = fill [ ("C", 8); ("P", 14); ("Q", 14); ("R", 3); ("S", 3) ]; order = dims; spatial = fill [] };
        { M.temporal = fill [ ("K", 16) ]; order = [ "K"; "N"; "C"; "P"; "Q"; "R"; "S" ]; spatial = fill [] };
      ]
  in
  let program = D.Compiler.compile conv m in
  let ifmap_loads =
    Seq.fold_left
      (fun acc insn ->
        match insn with D.Isa.Load { buffer = D.Isa.NBin; _ } -> acc + 1 | _ -> acc)
      0
      (program.D.Compiler.instructions ())
  in
  (* ifmap loaded once: K is non-indexing for it, so the resident tile
     survives all 16 passes *)
  Alcotest.(check int) "ifmap loaded once" 1 ifmap_loads

let test_sliding_refill_smaller () =
  (* P innermost at DRAM level: consecutive passes overlap in ifmap rows *)
  let w = C.conv1d ~k:4 ~c:4 ~p:32 ~r:5 () in
  let dims = W.dim_names w in
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  let m =
    M.make_exn w
      [
        { M.temporal = fill [ ("K", 4); ("C", 4); ("P", 8); ("R", 5) ]; order = dims; spatial = fill [] };
        { M.temporal = fill [ ("P", 4) ]; order = [ "K"; "C"; "R"; "P" ]; spatial = fill [] };
      ]
  in
  let program = D.Compiler.compile w m in
  let full_tile = ref 0 and partial = ref 0 in
  Seq.iter
    (fun insn ->
      match insn with
      | D.Isa.Load { buffer = D.Isa.NBin; words; sliding_refill; _ } ->
        if sliding_refill then begin
          incr partial;
          Alcotest.(check bool) "refill smaller than tile" true (words < !full_tile)
        end
        else full_tile := max !full_tile words
      | _ -> ())
    (program.D.Compiler.instructions ());
  Alcotest.(check bool) "some sliding refills happened" true (!partial > 0)

let test_energy_components () =
  let m = schedule conv in
  let program = D.Compiler.compile conv m in
  let r = D.Simulator.run conv program in
  let e = r.D.Simulator.energy in
  List.iter
    (fun (name, v) -> Alcotest.(check bool) (name ^ " >= 0") true (v >= 0.0))
    [
      ("dram", e.D.Simulator.dram);
      ("nbin", e.D.Simulator.nbin);
      ("sb", e.D.Simulator.sb);
      ("nbout", e.D.Simulator.nbout);
      ("mac", e.D.Simulator.mac);
      ("instr", e.D.Simulator.instruction_fetch);
      ("reorder", e.D.Simulator.reorder);
    ];
  Alcotest.(check bool) "mac energy exact" true
    (Float.abs (e.D.Simulator.mac -. W.macs conv) < 1e-6)

let test_naive_worse_than_tuned () =
  let m = schedule conv in
  let _, _, tuned = D.Tuner.tune conv m in
  let naive = D.Simulator.naive conv in
  Alcotest.(check bool) "dataflow optimization pays" true
    (D.Simulator.total naive.D.Simulator.energy > D.Simulator.total tuned.D.Simulator.energy)

let test_tuner_no_worse_than_seed () =
  let m = schedule conv in
  let seed_program = D.Compiler.compile conv m in
  let seed = D.Simulator.run conv seed_program in
  let _, _, tuned = D.Tuner.tune conv m in
  Alcotest.(check bool) "tuner monotone" true
    (D.Simulator.total tuned.D.Simulator.energy
    <= D.Simulator.total seed.D.Simulator.energy +. 1e-6)

let test_instruction_counting () =
  Alcotest.(check int) "load bursts" 7
    (D.Isa.instruction_count
       (D.Isa.Load { buffer = D.Isa.NBin; words = 100; bursts = 7; sliding_refill = false }));
  Alcotest.(check int) "compute is one" 1 (D.Isa.instruction_count (D.Isa.Compute { macs = 5.0 }))

let test_rejects_wrong_levels () =
  let m3 = M.single_level conv ~num_levels:3 in
  match D.Compiler.compile conv m3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of 3-level mapping"

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"compiled MACs always conserved" ~count:20
      (make Gen.(tup4 (1 -- 3) (1 -- 3) (2 -- 5) (1 -- 2)))
      (fun (k, c, p, r) ->
        let w = C.conv2d ~n:1 ~k:(4 * k) ~c:(4 * c) ~p:(2 * p) ~q:(2 * p) ~r ~s:r () in
        match Sun_core.Optimizer.optimize w P.diannao_like with
        | Error _ -> true
        | Ok res ->
          let program = D.Compiler.compile w res.Sun_core.Optimizer.mapping in
          let macs =
            Seq.fold_left
              (fun acc insn -> match insn with D.Isa.Compute { macs } -> acc +. macs | _ -> acc)
              0.0
              (program.D.Compiler.instructions ())
          in
          Float.abs (macs -. W.macs w) < 1e-6);
  ]

let () =
  Alcotest.run "sun_diannao"
    [
      ( "compiler",
        [
          Alcotest.test_case "placement" `Quick test_placement;
          Alcotest.test_case "structure" `Quick test_compile_structure;
          Alcotest.test_case "MAC conservation" `Quick test_mac_conservation;
          Alcotest.test_case "inter-pass reuse" `Quick test_reuse_between_passes;
          Alcotest.test_case "sliding refill" `Quick test_sliding_refill_smaller;
          Alcotest.test_case "rejects wrong level count" `Quick test_rejects_wrong_levels;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "loads cover operands" `Quick test_loads_cover_operands;
          Alcotest.test_case "energy components" `Quick test_energy_components;
          Alcotest.test_case "naive is worse" `Quick test_naive_worse_than_tuned;
          Alcotest.test_case "instruction counting" `Quick test_instruction_counting;
        ] );
      ("tuner", [ Alcotest.test_case "no worse than seed" `Quick test_tuner_no_worse_than_seed ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
