module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Mapspace = Sun_search.Mapspace

let tiny = C.matmul ~m:4 ~n:6 ~k:2 ()
let arch = P.toy ~l1_words:16 ~l2_words:64 ~pes:4 ()

let test_size_positive () =
  let space = Mapspace.create tiny arch in
  Alcotest.(check bool) "size >= 1" true (Mapspace.size space >= 1.0);
  Alcotest.(check bool) "orders multiply the space" true
    (Mapspace.size space > Mapspace.size_no_orders space)

(* the analytic tiling/unrolling count must agree with brute enumeration
   under fixed orders *)
let test_size_matches_enumeration () =
  let space = Mapspace.create tiny arch in
  let enumerated = Seq.length (Mapspace.enumerate_fixed_orders space) in
  (* enumerate_fixed_orders drops joint fanout overflows that the analytic
     count includes, so enumerated <= size_no_orders *)
  Alcotest.(check bool)
    (Printf.sprintf "enumerated %d <= analytic %.0f" enumerated (Mapspace.size_no_orders space))
    true
    (float_of_int enumerated <= Mapspace.size_no_orders space);
  Alcotest.(check bool) "non-trivial" true (enumerated > 100)

let test_samples_structurally_valid () =
  let w = C.conv2d ~n:2 ~k:8 ~c:8 ~p:6 ~q:6 ~r:3 ~s:3 () in
  let space = Mapspace.create w P.conventional in
  let rng = Sun_util.Rng.create 11 in
  for _ = 1 to 500 do
    let m = Mapspace.sample space rng in
    (* Mapping.make inside sample validates factor products; check fanout *)
    List.iter
      (fun d ->
        Alcotest.(check int)
          (d ^ " covered")
          (W.bound w d)
          (M.tile_at m ~level:(M.num_levels m - 1) d))
      (W.dim_names w);
    Alcotest.(check bool) "fanout respected" true
      (M.spatial_product m ~level:1 <= 1024)
  done

let test_sample_distribution_covers_space () =
  (* sampling should not be stuck on a single point *)
  let space = Mapspace.create tiny arch in
  let rng = Sun_util.Rng.create 3 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 300 do
    let m = Mapspace.sample space rng in
    Hashtbl.replace seen (M.to_string m) ()
  done;
  Alcotest.(check bool) "many distinct samples" true (Hashtbl.length seen > 50)

let test_enumerate_all_valid_products () =
  let space = Mapspace.create tiny arch in
  Seq.iter
    (fun m ->
      List.iter
        (fun (d, b) -> Alcotest.(check int) d b (M.tile_at m ~level:(M.num_levels m - 1) d))
        tiny.W.dims)
    (Mapspace.enumerate_fixed_orders space)

(* sampling on the huge non-DNN shapes must stay fast and correct *)
let test_sample_huge_dims () =
  let w = C.mttkrp ~i:480000 ~j:32 ~k:17760 ~l:2160 () in
  let space = Mapspace.create w P.conventional in
  let rng = Sun_util.Rng.create 17 in
  for _ = 1 to 50 do
    let m = Mapspace.sample space rng in
    Alcotest.(check int) "I covered" 480000 (M.tile_at m ~level:2 "I")
  done

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"samples evaluate or fail validation cleanly" ~count:100 (int_range 0 10000)
      (fun seed ->
        let w = C.conv1d ~k:8 ~c:8 ~p:12 ~r:3 () in
        let space = Mapspace.create w (P.toy ~l1_words:64 ~l2_words:512 ~pes:4 ()) in
        let rng = Sun_util.Rng.create seed in
        let m = Mapspace.sample space rng in
        match Model.evaluate w (P.toy ~l1_words:64 ~l2_words:512 ~pes:4 ()) m with
        | Ok c -> c.Model.energy_pj > 0.0
        | Error _ -> true);
    Test.make ~name:"sample determinism per seed" ~count:50 (int_range 0 10000) (fun seed ->
        let w = C.matmul ~m:12 ~n:8 ~k:6 () in
        let space = Mapspace.create w (P.toy ()) in
        let a = Mapspace.sample space (Sun_util.Rng.create seed) in
        let b = Mapspace.sample space (Sun_util.Rng.create seed) in
        M.to_string a = M.to_string b);
  ]

let () =
  Alcotest.run "sun_search"
    [
      ( "mapspace",
        [
          Alcotest.test_case "size positive" `Quick test_size_positive;
          Alcotest.test_case "size vs enumeration" `Quick test_size_matches_enumeration;
          Alcotest.test_case "samples structurally valid" `Quick test_samples_structurally_valid;
          Alcotest.test_case "sampling covers space" `Quick test_sample_distribution_covers_space;
          Alcotest.test_case "enumerate products" `Quick test_enumerate_all_valid_products;
          Alcotest.test_case "huge dimensions" `Quick test_sample_huge_dims;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
