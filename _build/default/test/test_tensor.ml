module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module R = Sun_tensor.Reuse

let check_dims = Alcotest.(check (list string))
let conv1d = C.conv1d ~k:4 ~c:4 ~p:7 ~r:3 ()

let test_conv1d_structure () =
  Alcotest.(check (float 0.0)) "macs" (4.0 *. 4.0 *. 7.0 *. 3.0) (W.macs conv1d);
  check_dims "dims" [ "K"; "C"; "P"; "R" ] (W.dim_names conv1d);
  Alcotest.(check string) "output" "ofmap" (W.output conv1d).W.name;
  Alcotest.(check int) "inputs" 2 (List.length (W.inputs conv1d))

(* Table III of the paper: reuse inferred for the 1-D convolution example. *)
let test_table3_reuse () =
  let table = R.analyze conv1d in
  let ofmap = R.entry table "ofmap" in
  check_dims "ofmap indexed by" [ "K"; "P" ] ofmap.R.indexed_by;
  check_dims "ofmap reused by" [ "C"; "R" ] ofmap.R.reused_by;
  check_dims "ofmap no partial" [] ofmap.R.partially_reused_by;
  let ifmap = R.entry table "ifmap" in
  check_dims "ifmap indexed by" [ "C"; "P"; "R" ] ifmap.R.indexed_by;
  check_dims "ifmap reused by" [ "K" ] ifmap.R.reused_by;
  check_dims "ifmap partial" [ "P"; "R" ] ifmap.R.partially_reused_by;
  let weight = R.entry table "weight" in
  check_dims "weight indexed by" [ "C"; "K"; "R" ] weight.R.indexed_by;
  check_dims "weight reused by" [ "P" ] weight.R.reused_by;
  check_dims "weight no partial" [] weight.R.partially_reused_by

let test_reusers_of_dim () =
  let table = R.analyze conv1d in
  Alcotest.(check (list string)) "C reuses ofmap" [ "ofmap" ] (R.reusers_of_dim table "C");
  Alcotest.(check (list string)) "K reuses ifmap" [ "ifmap" ] (R.reusers_of_dim table "K");
  Alcotest.(check (list string)) "P reuses weight" [ "weight" ] (R.reusers_of_dim table "P")

let test_reuse_dims () =
  let table = R.analyze conv1d in
  let ofmap = (R.entry table "ofmap").R.operand in
  check_dims "reuse dims of ofmap level" [ "K"; "P" ] (R.reuse_dims conv1d ofmap)

let test_axis_extent_sliding () =
  let ifmap = W.find_operand conv1d "ifmap" in
  let tile = function "P" -> 5 | "R" -> 3 | "C" -> 2 | _ -> 1 in
  (* footprint of ifmap tile: C * (P + R - 1) = 2 * 7 *)
  Alcotest.(check (float 0.0)) "halo footprint" 14.0 (W.footprint tile ifmap);
  let strided =
    C.conv2d ~stride:2 ~n:1 ~k:1 ~c:1 ~p:4 ~q:4 ~r:3 ~s:3 ()
  in
  let ifmap2 = W.find_operand strided "ifmap" in
  let tile2 = function "P" -> 4 | "Q" -> 4 | "R" -> 3 | "S" -> 3 | _ -> 1 in
  (* extent along P axis: 2*(4-1) + 1*(3-1) + 1 = 9 *)
  Alcotest.(check (float 0.0)) "strided halo" 81.0 (W.footprint tile2 ifmap2)

let test_operand_sizes () =
  let w = C.conv2d ~n:1 ~k:8 ~c:4 ~p:6 ~q:6 ~r:3 ~s:3 () in
  Alcotest.(check (float 0.0)) "weight elems" (8.0 *. 4.0 *. 9.0)
    (W.operand_size w (W.find_operand w "weight"));
  Alcotest.(check (float 0.0)) "ofmap elems" (8.0 *. 36.0)
    (W.operand_size w (W.find_operand w "ofmap"));
  Alcotest.(check (float 0.0)) "ifmap elems (padded extent)" (4.0 *. 8.0 *. 8.0)
    (W.operand_size w (W.find_operand w "ifmap"))

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_make_validation () =
  expect_invalid "bad bound" (fun () ->
      W.make ~name:"bad" ~dims:[ ("X", 0) ]
        ~operands:[ { W.name = "o"; kind = `Output; indices = [ W.Dim "X" ] } ]);
  expect_invalid "unknown dim" (fun () ->
      W.make ~name:"bad" ~dims:[ ("X", 2) ]
        ~operands:[ { W.name = "o"; kind = `Output; indices = [ W.Dim "Y" ] } ]);
  expect_invalid "no output" (fun () ->
      W.make ~name:"bad" ~dims:[ ("X", 2) ]
        ~operands:[ { W.name = "a"; kind = `Input; indices = [ W.Dim "X" ] } ]);
  expect_invalid "two outputs" (fun () ->
      W.make ~name:"bad" ~dims:[ ("X", 2) ]
        ~operands:
          [
            { W.name = "o1"; kind = `Output; indices = [ W.Dim "X" ] };
            { W.name = "o2"; kind = `Output; indices = [ W.Dim "X" ] };
          ]);
  expect_invalid "unused dim" (fun () ->
      W.make ~name:"bad"
        ~dims:[ ("X", 2); ("Y", 3) ]
        ~operands:[ { W.name = "o"; kind = `Output; indices = [ W.Dim "X" ] } ]);
  expect_invalid "duplicate dim" (fun () ->
      W.make ~name:"bad"
        ~dims:[ ("X", 2); ("X", 3) ]
        ~operands:[ { W.name = "o"; kind = `Output; indices = [ W.Dim "X" ] } ])

(* Table II catalog: check each family builds and has the documented
   indexing structure. *)
let test_catalog_families () =
  let mttkrp = C.mttkrp ~i:5 ~j:6 ~k:7 ~l:8 () in
  check_dims "mttkrp out" [ "I"; "J" ] (W.indexing_dims (W.output mttkrp));
  check_dims "mttkrp out reused by" [ "K"; "L" ] (W.non_indexing_dims mttkrp (W.output mttkrp));
  let sddmm = C.sddmm ~i:5 ~j:6 ~k:7 () in
  check_dims "sddmm a" [ "I"; "J" ] (W.indexing_dims (W.find_operand sddmm "a"));
  let ttmc = C.ttmc ~i:2 ~j:3 ~k:4 ~l:5 ~m:6 () in
  check_dims "ttmc out" [ "I"; "L"; "M" ] (W.indexing_dims (W.output ttmc));
  let mmc = C.mmc ~i:2 ~j:3 ~k:4 ~l:5 () in
  check_dims "mmc out" [ "I"; "L" ] (W.indexing_dims (W.output mmc));
  let tcl = C.tcl ~i:2 ~j:3 ~k:4 ~l:5 ~m:6 ~n:7 () in
  check_dims "tcl out" [ "L"; "M"; "N" ] (W.indexing_dims (W.output tcl));
  Alcotest.(check int) "tcl operands" 5 (List.length tcl.W.operands);
  let wu = C.conv2d_weight_update ~n:2 ~k:3 ~c:4 ~p:5 ~q:5 ~r:3 ~s:3 () in
  check_dims "weight-update output" [ "C"; "K"; "R"; "S" ] (W.indexing_dims (W.output wu));
  check_dims "weight-update output reused by N,P,Q" [ "N"; "P"; "Q" ]
    (W.non_indexing_dims wu (W.output wu))

let test_matmul () =
  let mm = C.matmul ~m:3 ~n:4 ~k:5 () in
  Alcotest.(check (float 0.0)) "macs" 60.0 (W.macs mm);
  check_dims "a reused by N" [ "N" ] (W.non_indexing_dims mm (W.find_operand mm "a"))

let qcheck_props =
  let open QCheck in
  let dims_gen = Gen.(map (fun (a, b, c) -> (1 + a, 1 + b, 1 + c)) (tup3 (0 -- 8) (0 -- 8) (0 -- 8))) in
  [
    Test.make ~name:"matmul macs = m*n*k" ~count:50 (make dims_gen) (fun (m, n, k) ->
        let w = C.matmul ~m ~n ~k () in
        W.macs w = float_of_int (m * n * k));
    Test.make ~name:"footprint monotone in tile" ~count:100
      (make Gen.(tup2 (1 -- 6) (1 -- 6)))
      (fun (a, b) ->
        let w = C.conv1d ~k:8 ~c:8 ~p:8 ~r:3 () in
        let ifmap = W.find_operand w "ifmap" in
        let t1 = function "P" -> a | _ -> 1
        and t2 = function "P" -> a + b | _ -> 1 in
        W.footprint t1 ifmap <= W.footprint t2 ifmap);
    Test.make ~name:"indexing + non-indexing = all dims" ~count:50
      (make dims_gen)
      (fun (i, j, k) ->
        let w = C.sddmm ~i ~j ~k () in
        List.for_all
          (fun op ->
            let all =
              List.sort_uniq String.compare (W.indexing_dims op @ W.non_indexing_dims w op)
            in
            all = List.sort String.compare (W.dim_names w))
          w.W.operands);
  ]

let () =
  Alcotest.run "sun_tensor"
    [
      ( "workload",
        [
          Alcotest.test_case "conv1d structure" `Quick test_conv1d_structure;
          Alcotest.test_case "sliding extents" `Quick test_axis_extent_sliding;
          Alcotest.test_case "operand sizes" `Quick test_operand_sizes;
          Alcotest.test_case "make validation" `Quick test_make_validation;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "table III" `Quick test_table3_reuse;
          Alcotest.test_case "reusers of dim" `Quick test_reusers_of_dim;
          Alcotest.test_case "reuse dims" `Quick test_reuse_dims;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "families" `Quick test_catalog_families;
          Alcotest.test_case "matmul" `Quick test_matmul;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
