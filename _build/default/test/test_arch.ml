module A = Sun_arch.Arch
module E = Sun_arch.Energy_table
module P = Sun_arch.Presets

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let dram : A.level =
  {
    A.level_name = "DRAM";
    partitions =
      [
        {
          A.part_name = "DRAM";
          capacity_words = 0;
          accepts = `All;
          read_energy = 200.0;
          write_energy = 200.0;
          bandwidth = 16.0;
        };
      ];
    fanout = 1;
    multicast = false;
    noc_hop_energy = 0.0;
    unbounded = true;
  }

let l1 : A.level =
  {
    A.level_name = "L1";
    partitions =
      [
        {
          A.part_name = "L1";
          capacity_words = 64;
          accepts = `All;
          read_energy = 1.0;
          write_energy = 1.1;
          bandwidth = 8.0;
        };
      ];
    fanout = 4;
    multicast = true;
    noc_hop_energy = 0.5;
    unbounded = false;
  }

let test_make_validation () =
  expect_invalid "single level" (fun () -> A.make ~name:"x" ~levels:[ dram ] ~mac_energy:1.0 ());
  expect_invalid "bounded top" (fun () -> A.make ~name:"x" ~levels:[ l1; l1 ] ~mac_energy:1.0 ());
  expect_invalid "zero fanout" (fun () ->
      A.make ~name:"x" ~levels:[ { l1 with A.fanout = 0 }; dram ] ~mac_energy:1.0 ());
  expect_invalid "zero capacity in bounded level" (fun () ->
      A.make ~name:"x"
        ~levels:
          [ { l1 with A.partitions = [ { (List.hd l1.A.partitions) with A.capacity_words = 0 } ] }; dram ]
        ~mac_energy:1.0 ());
  let ok = A.make ~name:"ok" ~levels:[ l1; dram ] ~mac_energy:1.0 () in
  Alcotest.(check int) "levels" 2 (A.num_levels ok);
  Alcotest.(check int) "total fanout" 4 (A.total_fanout ok);
  Alcotest.(check int) "dram index" 1 (A.dram_index ok)

let test_role_routing () =
  let weights_only : A.partition =
    { (List.hd l1.A.partitions) with A.part_name = "WB"; accepts = `Roles [ "weight" ] }
  in
  let lvl = { l1 with A.partitions = [ weights_only ] } in
  Alcotest.(check bool) "stores weight" true (A.stores lvl ~role:"weight");
  Alcotest.(check bool) "rejects ifmap" false (A.stores lvl ~role:"ifmap");
  (match A.partition_for lvl ~role:"weight" with
  | Some p -> Alcotest.(check string) "partition name" "WB" p.A.part_name
  | None -> Alcotest.fail "expected a partition");
  Alcotest.(check bool) "unified accepts anything" true
    (A.stores l1 ~role:"whatever")

(* Table IV encodings *)
let test_presets_conventional () =
  let a = P.conventional in
  Alcotest.(check int) "3 levels" 3 (A.num_levels a);
  Alcotest.(check int) "32x32 PEs" 1024 (A.level a 1).A.fanout;
  Alcotest.(check int) "512B L1 = 256 words" 256
    (List.hd (A.level a 0).A.partitions).A.capacity_words;
  Alcotest.(check bool) "L2 multicast" true (A.level a 1).A.multicast

let test_presets_simba () =
  let a = P.simba_like in
  Alcotest.(check int) "4 levels" 4 (A.num_levels a);
  Alcotest.(check int) "peak lanes" 1024 (A.total_fanout a);
  (* weights bypass L2 *)
  Alcotest.(check bool) "L2 holds ifmap" true (A.stores (A.level a 2) ~role:"ifmap");
  Alcotest.(check bool) "L2 rejects weight" false (A.stores (A.level a 2) ~role:"weight");
  (* per-datatype L1 capacities: 32KB/8b, 8KB/8b, 3KB/24b *)
  let cap role =
    match A.partition_for (A.level a 1) ~role with
    | Some p -> p.A.capacity_words
    | None -> -1
  in
  Alcotest.(check int) "weight buffer" 32768 (cap "weight");
  Alcotest.(check int) "ifmap buffer" 8192 (cap "ifmap");
  Alcotest.(check int) "ofmap buffer" 1024 (cap "ofmap")

let test_presets_diannao () =
  let a = P.diannao_like in
  Alcotest.(check int) "2 levels" 2 (A.num_levels a);
  Alcotest.(check int) "256 multipliers" 256 (A.level a 0).A.fanout

let test_energy_monotone_in_capacity () =
  let small = E.sram_read ~capacity_words:256 ~bits:16 in
  let big = E.sram_read ~capacity_words:1_000_000 ~bits:16 in
  Alcotest.(check bool) "bigger SRAM costs more" true (big > small);
  Alcotest.(check bool) "register cheapest" true (E.register_read ~bits:16 < small);
  Alcotest.(check bool) "DRAM most expensive" true (E.dram_access ~bits:16 > big)

let test_energy_ratios () =
  (* the published qualitative ratios that drive mapping choice *)
  let mac = E.mac ~bits:16 in
  Alcotest.(check bool) "DRAM ~200x MAC" true
    (E.dram_access ~bits:16 /. mac >= 100.0 && E.dram_access ~bits:16 /. mac <= 400.0);
  Alcotest.(check bool) "width scales energy" true (E.mac ~bits:8 < E.mac ~bits:16)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"sram energy monotone" ~count:100
      (make Gen.(tup2 (64 -- 100000) (64 -- 100000)))
      (fun (a, b) ->
        let small = min a b and big = max a b in
        E.sram_read ~capacity_words:small ~bits:16 <= E.sram_read ~capacity_words:big ~bits:16);
    Test.make ~name:"write costs at least read" ~count:100 (int_range 64 1000000) (fun c ->
        E.sram_write ~capacity_words:c ~bits:16 >= E.sram_read ~capacity_words:c ~bits:16);
  ]

let () =
  Alcotest.run "sun_arch"
    [
      ( "arch",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "role routing" `Quick test_role_routing;
        ] );
      ( "presets (Table IV)",
        [
          Alcotest.test_case "conventional" `Quick test_presets_conventional;
          Alcotest.test_case "simba" `Quick test_presets_simba;
          Alcotest.test_case "diannao" `Quick test_presets_diannao;
        ] );
      ( "energy table",
        [
          Alcotest.test_case "capacity monotone" `Quick test_energy_monotone_in_capacity;
          Alcotest.test_case "published ratios" `Quick test_energy_ratios;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
