test/test_util.ml: Alcotest Factor Gen Hashtbl List Listx QCheck QCheck_alcotest Rng String Sun_util Table_fmt Test
