test/test_baselines.ml: Alcotest Array Float List Printf Sun_arch Sun_baselines Sun_cost Sun_mapping Sun_tensor Sun_workloads
