test/test_sunstone.ml: Alcotest Float Gen List Printf QCheck QCheck_alcotest Seq String Sun_arch Sun_core Sun_cost Sun_mapping Sun_search Sun_tensor Sun_util Test
