test/test_tensor.ml: Alcotest Gen List QCheck QCheck_alcotest String Sun_tensor Test
