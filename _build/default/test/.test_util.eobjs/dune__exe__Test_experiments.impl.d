test/test_experiments.ml: Alcotest List String Sun_arch Sun_baselines Sun_cost Sun_experiments Sun_tensor
