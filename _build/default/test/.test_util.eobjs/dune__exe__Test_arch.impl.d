test/test_arch.ml: Alcotest Gen List QCheck QCheck_alcotest Sun_arch Test
