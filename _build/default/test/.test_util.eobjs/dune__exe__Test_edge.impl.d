test/test_edge.ml: Alcotest Float List String Sun_arch Sun_core Sun_cost Sun_mapping Sun_tensor Sun_util
