test/test_search.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Seq Sun_arch Sun_cost Sun_mapping Sun_search Sun_tensor Sun_util Test
