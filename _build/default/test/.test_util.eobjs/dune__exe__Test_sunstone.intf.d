test/test_sunstone.mli:
