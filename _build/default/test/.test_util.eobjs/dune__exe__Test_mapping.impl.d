test/test_mapping.ml: Alcotest Gen List QCheck QCheck_alcotest String Sun_mapping Sun_tensor Sun_util Test
