test/test_cost.ml: Alcotest Float Fun Gen List QCheck QCheck_alcotest String Sun_arch Sun_cost Sun_mapping Sun_search Sun_tensor Sun_util Test
