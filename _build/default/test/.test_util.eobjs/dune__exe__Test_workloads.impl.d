test/test_workloads.ml: Alcotest List Printf Sun_tensor Sun_util Sun_workloads
