test/test_exec.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Sun_arch Sun_core Sun_exec Sun_mapping Sun_search Sun_tensor Sun_util Test
