test/test_diannao.ml: Alcotest Float Gen List QCheck QCheck_alcotest Seq Sun_arch Sun_core Sun_diannao Sun_mapping Sun_tensor Sun_util Test
