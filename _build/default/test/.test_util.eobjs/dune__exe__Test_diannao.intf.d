test/test_diannao.mli:
