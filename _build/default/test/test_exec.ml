module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module M = Sun_mapping.Mapping
module P = Sun_arch.Presets
module T = Sun_exec.Tensor
module E = Sun_exec.Executor
module Loopnest = Sun_mapping.Loopnest

let conv = C.conv1d ~k:4 ~c:2 ~p:6 ~r:3 ()

(* ----------------------------- tensor ------------------------------ *)

let test_tensor_basics () =
  let t = T.create [| 2; 3 |] in
  Alcotest.(check int) "size" 6 (T.size t);
  T.add t [| 1; 2 |] 5.0;
  Alcotest.(check (float 0.0)) "get after add" 5.0 (T.get t [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "others zero" 0.0 (T.get t [| 0; 0 |]);
  Alcotest.(check int) "row-major flat index" 5 (T.flat_index t [| 1; 2 |])

let test_tensor_equal () =
  let a = T.create [| 4 |] and b = T.create [| 4 |] in
  Alcotest.(check bool) "zeros equal" true (T.equal a b);
  T.add a [| 0 |] 1.0;
  Alcotest.(check bool) "differ" false (T.equal a b);
  T.add b [| 0 |] (1.0 +. 1e-12);
  Alcotest.(check bool) "within eps" true (T.equal a b)

let test_operand_shapes () =
  let ifmap = W.find_operand conv "ifmap" in
  Alcotest.(check (array int)) "ifmap padded" [| 2; 8 |] (T.shape_of_operand conv ifmap);
  let strided = C.conv2d ~stride:2 ~n:1 ~k:1 ~c:1 ~p:4 ~q:4 ~r:3 ~s:3 () in
  let ifmap2 = W.find_operand strided "ifmap" in
  Alcotest.(check (array int)) "strided extents" [| 1; 1; 9; 9 |]
    (T.shape_of_operand strided ifmap2)

(* ---------------------------- executor ----------------------------- *)

(* hand-computed 2x2 matmul ground truth *)
let test_reference_matmul () =
  let mm = C.matmul ~m:2 ~n:2 ~k:2 () in
  let a = T.create [| 2; 2 |] and b = T.create [| 2; 2 |] in
  (* a = [[1 2];[3 4]], b = [[5 6];[7 8]] *)
  List.iteri (fun i v -> a.T.data.(i) <- v) [ 1.; 2.; 3.; 4. ];
  List.iteri (fun i v -> b.T.data.(i) <- v) [ 5.; 6.; 7.; 8. ];
  let out = E.reference mm [ ("a", a); ("b", b) ] in
  Alcotest.(check (float 1e-9)) "out[0,0]" 19.0 (T.get out [| 0; 0 |]);
  Alcotest.(check (float 1e-9)) "out[0,1]" 22.0 (T.get out [| 0; 1 |]);
  Alcotest.(check (float 1e-9)) "out[1,0]" 43.0 (T.get out [| 1; 0 |]);
  Alcotest.(check (float 1e-9)) "out[1,1]" 50.0 (T.get out [| 1; 1 |])

let test_reference_conv () =
  (* 1-D conv with unit weights sums a sliding window *)
  let w = C.conv1d ~k:1 ~c:1 ~p:4 ~r:2 () in
  let ifmap = T.create [| 1; 5 |] in
  List.iteri (fun i v -> ifmap.T.data.(i) <- v) [ 1.; 2.; 3.; 4.; 5. ];
  let weight = T.create [| 1; 1; 2 |] in
  weight.T.data.(0) <- 1.0;
  weight.T.data.(1) <- 1.0;
  let out = E.reference w [ ("ifmap", ifmap); ("weight", weight) ] in
  List.iteri
    (fun p expect -> Alcotest.(check (float 1e-9)) (Printf.sprintf "p=%d" p) expect (T.get out [| 0; p |]))
    [ 3.; 5.; 7.; 9. ]

let test_missing_input_rejected () =
  let mm = C.matmul ~m:2 ~n:2 ~k:2 () in
  match E.reference mm [ ("a", T.create [| 2; 2 |]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected missing-input error"

let test_wrong_shape_rejected () =
  let mm = C.matmul ~m:2 ~n:2 ~k:2 () in
  match E.reference mm [ ("a", T.create [| 3; 2 |]); ("b", T.create [| 2; 2 |]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected shape error"

(* the headline property: mapped execution == reference, whatever the
   mapping *)
let test_mapped_equals_reference_handpicked () =
  let inputs = E.random_inputs conv in
  let want = E.reference conv inputs in
  let dims = W.dim_names conv in
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  let mappings =
    [
      M.make_exn conv
        [
          { M.temporal = fill [ ("K", 2); ("P", 3); ("R", 3) ]; order = dims; spatial = fill [] };
          {
            M.temporal = fill [ ("K", 2); ("C", 2) ];
            order = [ "P"; "K"; "C"; "R" ];
            spatial = fill [];
          };
          { M.temporal = fill [ ("P", 2) ]; order = dims; spatial = fill [] };
        ];
      M.make_exn conv
        [
          { M.temporal = fill [ ("R", 3) ]; order = dims; spatial = fill [ ("K", 2) ] };
          {
            M.temporal = fill [ ("C", 2); ("P", 6) ];
            order = [ "C"; "R"; "P"; "K" ];
            spatial = fill [ ("K", 2) ];
          };
          { M.temporal = fill []; order = dims; spatial = fill [] };
        ];
    ]
  in
  List.iteri
    (fun i m ->
      let got = E.run_mapping conv m inputs in
      Alcotest.(check bool) (Printf.sprintf "mapping %d agrees" i) true (T.equal ~eps:1e-9 want got))
    mappings

let test_sunstone_mapping_executes_correctly () =
  let arch = P.toy ~l1_words:64 ~l2_words:512 ~pes:4 () in
  match Sun_core.Optimizer.optimize conv arch with
  | Error msg -> Alcotest.failf "optimize failed: %s" msg
  | Ok r ->
    let inputs = E.random_inputs conv in
    let want = E.reference conv inputs in
    let got = E.run_mapping conv r.Sun_core.Optimizer.mapping inputs in
    Alcotest.(check bool) "optimizer's mapping computes the right tensor" true
      (T.equal ~eps:1e-9 want got)

(* ---------------------------- loop nest ----------------------------- *)

let test_loopnest_emission () =
  let dims = W.dim_names conv in
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  let m =
    M.make_exn conv
      [
        { M.temporal = fill [ ("K", 2); ("P", 3); ("R", 3) ]; order = dims; spatial = fill [] };
        { M.temporal = fill [ ("K", 2); ("C", 2) ]; order = [ "P"; "K"; "C"; "R" ]; spatial = fill [] };
        { M.temporal = fill [ ("P", 2) ]; order = dims; spatial = fill [ ("C", 1) ] };
      ]
  in
  let s = Sun_mapping.Loopnest.emit conv m in
  let contains sub =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has MAC statement" true (contains "ofmap[k, p] += ifmap[c, p+r] * weight[k, c, r]");
  Alcotest.(check bool) "has a loop" true (contains "for k");
  Alcotest.(check int) "loop count" 6 (Loopnest.loop_count conv m)

let test_loopnest_spatial_marker () =
  let dims = W.dim_names conv in
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  let m =
    M.make_exn conv
      [
        { M.temporal = fill [ ("P", 6); ("C", 2); ("R", 3) ]; order = dims; spatial = fill [] };
        { M.temporal = fill []; order = dims; spatial = fill [ ("K", 4) ] };
        { M.temporal = fill []; order = dims; spatial = fill [] };
      ]
  in
  let s = Sun_mapping.Loopnest.emit conv m in
  Alcotest.(check bool) "parallel loop marked" true
    (let sub = "parallel_for k" in
     let n = String.length s and k = String.length sub in
     let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
     go 0)

let qcheck_props =
  let open QCheck in
  let arch = P.toy ~l1_words:1_000_000 ~l2_words:10_000_000 ~pes:4 () in
  [
    Test.make ~name:"random mappings compute the reference tensor" ~count:40
      (int_range 0 100000)
      (fun seed ->
        let w = C.conv1d ~k:4 ~c:2 ~p:6 ~r:3 () in
        let space = Sun_search.Mapspace.create w arch in
        let rng = Sun_util.Rng.create seed in
        let m = Sun_search.Mapspace.sample space rng in
        let inputs = E.random_inputs ~seed w in
        let want = E.reference w inputs in
        let got = E.run_mapping w m inputs in
        T.equal ~eps:1e-9 want got);
    Test.make ~name:"mapped matmul equals reference" ~count:40 (int_range 0 100000) (fun seed ->
        let w = C.matmul ~m:4 ~n:6 ~k:3 () in
        let space = Sun_search.Mapspace.create w arch in
        let rng = Sun_util.Rng.create seed in
        let m = Sun_search.Mapspace.sample space rng in
        let inputs = E.random_inputs ~seed w in
        T.equal ~eps:1e-9 (E.reference w inputs) (E.run_mapping w m inputs));
    Test.make ~name:"mapped mttkrp equals reference" ~count:25 (int_range 0 100000) (fun seed ->
        let w = C.mttkrp ~i:3 ~j:4 ~k:3 ~l:2 () in
        let space = Sun_search.Mapspace.create w arch in
        let rng = Sun_util.Rng.create seed in
        let m = Sun_search.Mapspace.sample space rng in
        let inputs = E.random_inputs ~seed w in
        T.equal ~eps:1e-9 (E.reference w inputs) (E.run_mapping w m inputs));
  ]

let () =
  Alcotest.run "sun_exec"
    [
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "equal" `Quick test_tensor_equal;
          Alcotest.test_case "operand shapes" `Quick test_operand_shapes;
        ] );
      ( "executor",
        [
          Alcotest.test_case "matmul ground truth" `Quick test_reference_matmul;
          Alcotest.test_case "conv ground truth" `Quick test_reference_conv;
          Alcotest.test_case "missing input" `Quick test_missing_input_rejected;
          Alcotest.test_case "wrong shape" `Quick test_wrong_shape_rejected;
          Alcotest.test_case "mapped == reference" `Quick test_mapped_equals_reference_handpicked;
          Alcotest.test_case "optimizer mapping correct" `Quick
            test_sunstone_mapping_executes_correctly;
        ] );
      ( "loop nest",
        [
          Alcotest.test_case "emission" `Quick test_loopnest_emission;
          Alcotest.test_case "spatial marker" `Quick test_loopnest_spatial_marker;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
