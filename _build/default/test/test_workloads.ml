module W = Sun_tensor.Workload
module Resnet18 = Sun_workloads.Resnet18
module Inception = Sun_workloads.Inception
module Non_dnn = Sun_workloads.Non_dnn

let test_resnet_catalog () =
  let layers = Resnet18.layers () in
  Alcotest.(check int) "11 unique shapes" 11 (List.length layers);
  let total_occurrences = List.fold_left (fun acc l -> acc + l.Resnet18.count) 0 layers in
  (* 20 convolutions in ResNet-18 (17 in blocks + conv1 + 2... counting the
     3 downsample convs as in the catalog) *)
  Alcotest.(check int) "occurrence count" 20 total_occurrences;
  let conv1 = List.find (fun l -> l.Resnet18.layer_name = "conv1") layers in
  Alcotest.(check int) "conv1 filter" 7 (W.bound conv1.Resnet18.workload "R");
  Alcotest.(check int) "conv1 channels" 3 (W.bound conv1.Resnet18.workload "C");
  (* stride-2 conv1 halo: input extent 2*(112-1)+7 = 229 *)
  let ifmap = W.find_operand conv1.Resnet18.workload "ifmap" in
  let extent =
    W.axis_extent (W.bound conv1.Resnet18.workload) (List.nth ifmap.W.indices 2)
  in
  Alcotest.(check int) "strided halo" 229 extent

let test_resnet_batch () =
  let batched = Resnet18.layers ~batch:16 () in
  List.iter
    (fun l -> Alcotest.(check int) "batch dim" 16 (W.bound l.Resnet18.workload "N"))
    batched

let test_resnet_representative_subset () =
  let reps = Resnet18.representative () in
  Alcotest.(check int) "4 layers" 4 (List.length reps)

let test_inception_asymmetric_layers () =
  let layers = Inception.conv_layers () in
  let l17 = List.find (fun l -> l.Inception.layer_name = "1x7_deep") layers in
  Alcotest.(check int) "R=1" 1 (W.bound l17.Inception.workload "R");
  Alcotest.(check int) "S=7" 7 (W.bound l17.Inception.workload "S");
  let l31 = List.find (fun l -> l.Inception.layer_name = "3x1_deep") layers in
  Alcotest.(check int) "R=3" 3 (W.bound l31.Inception.workload "R");
  Alcotest.(check int) "S=1" 1 (W.bound l31.Inception.workload "S")

let test_weight_update_structure () =
  List.iter
    (fun l ->
      let w = l.Inception.workload in
      let out = W.output w in
      Alcotest.(check string) "output is the weight gradient" "dweight" out.W.name;
      (* weight gradient accumulates over batch and feature map positions *)
      Alcotest.(check (list string)) "reduction dims" [ "N"; "P"; "Q" ]
        (W.non_indexing_dims w out);
      Alcotest.(check int) "batch 16" 16 (W.bound w "N"))
    (Inception.weight_update_layers ())

let test_non_dnn_shapes () =
  Alcotest.(check int) "3 MTTKRP" 3 (List.length Non_dnn.mttkrp_suite);
  Alcotest.(check int) "3 TTMc" 3 (List.length Non_dnn.ttmc_suite);
  Alcotest.(check int) "2 SDDMM" 2 (List.length Non_dnn.sddmm_suite);
  List.iter
    (fun (i : Non_dnn.instance) ->
      Alcotest.(check int) "rank 32" 32 (W.bound i.Non_dnn.workload "J"))
    Non_dnn.mttkrp_suite;
  List.iter
    (fun (i : Non_dnn.instance) ->
      Alcotest.(check int) "rank 8 (L)" 8 (W.bound i.Non_dnn.workload "L");
      Alcotest.(check int) "rank 8 (M)" 8 (W.bound i.Non_dnn.workload "M"))
    Non_dnn.ttmc_suite;
  List.iter
    (fun (i : Non_dnn.instance) ->
      Alcotest.(check int) "rank 512" 512 (W.bound i.Non_dnn.workload "K"))
    Non_dnn.sddmm_suite

let test_non_dnn_composite_dims () =
  (* rounded dataset shapes must be usefully factorable so tiling has
     freedom *)
  List.iter
    (fun (i : Non_dnn.instance) ->
      List.iter
        (fun (d, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s=%d composite" i.Non_dnn.instance_name d b)
            true
            (b <= 64 || Sun_util.Factor.count_divisors b >= 8))
        i.Non_dnn.workload.W.dims)
    Non_dnn.all

let test_all_workloads_well_formed () =
  (* Workload.make validates on construction; force all catalogs *)
  let count =
    List.length (Resnet18.layers ~batch:16 ())
    + List.length (Inception.conv_layers ())
    + List.length (Inception.weight_update_layers ())
    + List.length Non_dnn.all
  in
  Alcotest.(check bool) "catalogs built" true (count > 30)

let () =
  Alcotest.run "sun_workloads"
    [
      ( "resnet18",
        [
          Alcotest.test_case "catalog" `Quick test_resnet_catalog;
          Alcotest.test_case "batch" `Quick test_resnet_batch;
          Alcotest.test_case "representative subset" `Quick test_resnet_representative_subset;
        ] );
      ( "inception",
        [
          Alcotest.test_case "asymmetric layers" `Quick test_inception_asymmetric_layers;
          Alcotest.test_case "weight update" `Quick test_weight_update_structure;
        ] );
      ( "non-dnn",
        [
          Alcotest.test_case "shapes" `Quick test_non_dnn_shapes;
          Alcotest.test_case "composite dims" `Quick test_non_dnn_composite_dims;
        ] );
      ("all", [ Alcotest.test_case "well formed" `Quick test_all_workloads_well_formed ]);
    ]
