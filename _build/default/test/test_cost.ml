(* Validates the analytical cost model against the closed-form access
   equations the paper derives for the running 1-D convolution example
   (Equations 1-3 for tiling, Equations 5-7 for spatial unrolling). *)

module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module A = Sun_arch.Arch
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model

let dims = [ "K"; "C"; "P"; "R" ]
let ones = List.map (fun d -> (d, 1)) dims

let lm ?(spatial = ones) ?(order = dims) temporal : M.level_mapping =
  let fill assoc =
    List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
  in
  { M.temporal = fill temporal; order; spatial = fill spatial }

(* K = KL2*KL1, C = CL2*CL1, P = PL2*PL1, R in L1. L2 order: P, K, C
   (C innermost) as in Algorithm 4. *)
let kl1 = 2
and kl2 = 2
and cl1 = 2
and cl2 = 2
and pl1 = 7
and pl2 = 2
and r = 3

let conv = C.conv1d ~k:(kl1 * kl2) ~c:(cl1 * cl2) ~p:(pl1 * pl2) ~r ()
let arch = P.toy ~l1_words:64 ~l2_words:512 ~pes:4 ()

let algorithm4 =
  M.make_exn conv
    [
      lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
      lm ~order:[ "P"; "K"; "C"; "R" ] [ ("K", kl2); ("P", pl2); ("C", cl2) ];
      lm [];
    ]

let transfer cost ~operand ~from_level ~to_level =
  match
    List.find_opt
      (fun (t : Model.transfer) ->
        t.Model.operand = operand && t.Model.from_level = from_level && t.Model.to_level = to_level)
      cost.Model.transfers
  with
  | Some t -> t
  | None -> Alcotest.failf "no transfer %s L%d->L%d" operand from_level to_level

let check_f = Alcotest.(check (float 1e-6))

let test_equations_1_to_3 () =
  let cost = Model.evaluate_exn conv arch algorithm4 in
  let l2_reads name = (transfer cost ~operand:name ~from_level:1 ~to_level:0).Model.reads in
  let kf = float_of_int in
  (* Eq 1: ifmap accesses to L2 = KL2 * C * PL2 * (PL1 + R - 1) *)
  check_f "Eq 1 (ifmap)" (kf (kl2 * cl1 * cl2 * pl2 * (pl1 + r - 1))) (l2_reads "ifmap");
  (* Eq 2: weight accesses = C * K * R * PL2 *)
  check_f "Eq 2 (weight)" (kf (cl1 * cl2 * kl1 * kl2 * r * pl2)) (l2_reads "weight");
  (* Eq 3: ofmap accesses = P * K (C innermost reuses ofmap across L1 tiles) *)
  check_f "Eq 3 (ofmap)" (kf (pl1 * pl2 * kl1 * kl2)) (l2_reads "ofmap")

(* Swapping the two innermost L2 loops (C before K) destroys the ofmap reuse
   (Ordering Principle 2): ofmap traffic picks up the CL2 factor. *)
let test_ordering_principle_2 () =
  let reordered =
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
        lm ~order:[ "P"; "C"; "K"; "R" ] [ ("K", kl2); ("P", pl2); ("C", cl2) ];
        lm [];
      ]
  in
  let cost = Model.evaluate_exn conv arch reordered in
  let reads = (transfer cost ~operand:"ofmap" ~from_level:1 ~to_level:0).Model.reads in
  check_f "ofmap refetched CL2 times"
    (float_of_int (pl1 * pl2 * kl1 * kl2 * cl2))
    reads

(* Partial (sliding-window) reuse: with P innermost at L2, consecutive L1
   tiles overlap in ifmap by R-1 rows; the model must charge the union. *)
let test_partial_reuse () =
  let p_innermost =
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
        lm ~order:[ "C"; "K"; "P"; "R" ] [ ("K", kl2); ("P", pl2); ("C", cl2) ];
        lm [];
      ]
  in
  let cost = Model.evaluate_exn conv arch p_innermost in
  let reads = (transfer cost ~operand:"ifmap" ~from_level:1 ~to_level:0).Model.reads in
  (* union along P: (PL2*PL1 + R - 1) * CL1, repeated KL2 * CL2 times *)
  check_f "sliding union"
    (float_of_int (kl2 * cl2 * ((pl2 * pl1) + r - 1) * cl1))
    reads

(* Equations 5-7: unrolling K across PEs broadcasts ifmap (no extra L2
   reads) while weight/ofmap traffic is redistributed, not multiplied. *)
let test_equations_5_to_7 () =
  let spatial_k =
    M.make_exn conv
      [
        lm [ ("P", pl1); ("C", cl1); ("R", r) ];
        lm
          ~order:[ "P"; "K"; "C"; "R" ]
          ~spatial:[ ("K", kl1) ]
          [ ("K", kl2); ("P", pl2); ("C", cl2) ];
        lm [];
      ]
  in
  let cost = Model.evaluate_exn conv arch spatial_k in
  let rd name = (transfer cost ~operand:name ~from_level:1 ~to_level:0).Model.reads in
  let kf = float_of_int in
  (* Eq 5: ifmap accesses unchanged by K_spatial (broadcast) *)
  check_f "Eq 5 (ifmap)" (kf (kl2 * cl1 * cl2 * pl2 * (pl1 + r - 1))) (rd "ifmap");
  (* Eq 6: weight accesses = C * K * R * PL2 — K_spatial absorbed into tile *)
  check_f "Eq 6 (weight)" (kf (cl1 * cl2 * kl1 * kl2 * r * pl2)) (rd "weight");
  (* Eq 7: ofmap accesses = P * K *)
  check_f "Eq 7 (ofmap)" (kf (pl1 * pl2 * kl1 * kl2)) (rd "ofmap");
  (* ifmap is delivered to both PEs: fills count each destination *)
  let t = transfer cost ~operand:"ifmap" ~from_level:1 ~to_level:0 in
  check_f "broadcast fills" (t.Model.reads *. 2.0) t.Model.fills

let test_validation_capacity () =
  let too_big =
    M.make_exn conv
      [
        lm [ ("K", kl1 * kl2); ("P", pl1 * pl2); ("C", cl1 * cl2); ("R", r) ];
        lm [];
        lm [];
      ]
  in
  (match Model.validate conv (P.toy ~l1_words:8 ~l2_words:1_000_000 ~pes:4 ()) too_big with
  | Error msg -> Alcotest.(check bool) "names partition" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected capacity violation");
  match Model.validate conv arch algorithm4 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "algorithm4 should fit: %s" msg

let test_validation_fanout () =
  let too_wide =
    M.make_exn conv
      [
        lm [ ("P", pl1); ("C", cl1); ("R", r) ];
        lm ~spatial:[ ("K", kl1 * kl2); ("C", cl2); ("P", pl2) ] [];
        lm [];
      ]
  in
  match Model.validate conv arch too_wide with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected fanout violation (16 > 4 PEs)"

let test_level_mismatch () =
  let two_level = M.single_level conv ~num_levels:2 in
  match Model.evaluate conv arch two_level with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected level-count mismatch"

let test_streaming_baseline_worst () =
  (* everything at DRAM level: maximal energy among valid mappings *)
  let naive = M.single_level conv ~num_levels:3 in
  let c_naive = Model.evaluate_exn conv arch naive in
  let c_tiled = Model.evaluate_exn conv arch algorithm4 in
  Alcotest.(check bool) "tiling saves energy" true (c_tiled.Model.energy_pj < c_naive.Model.energy_pj);
  Alcotest.(check bool) "edp consistent" true
    (Float.abs (c_tiled.Model.edp -. (c_tiled.Model.energy_pj *. c_tiled.Model.cycles)) < 1e-6)

let test_breakdown_sums () =
  let c = Model.evaluate_exn conv arch algorithm4 in
  let total = List.fold_left (fun s (_, v) -> s +. v) 0.0 c.Model.breakdown in
  check_f "breakdown sums to energy" c.Model.energy_pj total;
  Alcotest.(check bool) "has MAC entry" true (List.mem_assoc "MAC" c.Model.breakdown)

let test_lower_bound () =
  let full = Model.evaluate_exn conv arch algorithm4 in
  let lb = Model.energy_lower_bound conv arch ~partial_levels:2 algorithm4 in
  Alcotest.(check bool) "bound below total" true (lb <= full.Model.energy_pj +. 1e-6);
  let lb1 = Model.energy_lower_bound conv arch ~partial_levels:1 algorithm4 in
  Alcotest.(check bool) "bound monotone in levels" true (lb1 <= lb +. 1e-6)

(* Simba-like arch: weights bypass L2; the weight chain must be
   DRAM -> L1 -> Reg with no L2 transfer. *)
let test_bypass_chain () =
  let w = C.conv1d ~k:8 ~c:8 ~p:8 ~r:1 () in
  let dims = [ "K"; "C"; "P"; "R" ] in
  let ones = List.map (fun d -> (d, 1)) dims in
  let level ?(order = dims) ?(spatial = ones) t =
    let fill assoc =
      List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
    in
    { M.temporal = fill t; order; spatial = fill spatial }
  in
  let m =
    M.make_exn w
      [
        level [ ("P", 2) ];
        (* Reg *)
        level [ ("C", 8) ];
        (* L1 *)
        level [ ("K", 8) ];
        (* L2 *)
        level [ ("P", 4) ];
        (* DRAM *)
      ]
  in
  let binding = Fun.id in
  let cost = Model.evaluate_exn ~binding w P.simba_like m in
  let weight_pairs =
    List.filter
      (fun (t : Model.transfer) -> t.Model.operand = "weight" && t.Model.to_level >= 0)
      cost.Model.transfers
  in
  let pairs = List.map (fun (t : Model.transfer) -> (t.Model.from_level, t.Model.to_level)) weight_pairs in
  Alcotest.(check (list (pair int int))) "weight skips L2" [ (1, 0); (3, 1) ] pairs

let qcheck_props =
  let open QCheck in
  let splits_of n = Sun_util.Factor.divisors n in
  let gen_map =
    (* random 3-level mapping of a fixed conv on the toy arch *)
    Gen.(
      map
        (fun (a, b, c, seed) -> (a, b, c, seed))
        (tup4 (0 -- 100) (0 -- 100) (0 -- 100) (0 -- 1000)))
  in
  let build (a, b, c, seed) =
    let pick xs i = List.nth xs (i mod List.length xs) in
    let k1 = pick (splits_of 8) a in
    let c1 = pick (splits_of 8) b in
    let p1 = pick (splits_of 8) c in
    let rng = Sun_util.Rng.create seed in
    let order () = Sun_util.Rng.shuffle rng dims in
    let fill assoc =
      List.map (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1)) dims
    in
    let w = C.conv1d ~k:8 ~c:8 ~p:8 ~r:3 () in
    let m =
      M.make_exn w
        [
          { M.temporal = fill [ ("K", k1); ("C", c1); ("P", p1); ("R", 3) ]; order = order (); spatial = fill [] };
          { M.temporal = fill [ ("K", 8 / k1); ("C", 8 / c1); ("P", 8 / p1) ]; order = order (); spatial = fill [] };
          { M.temporal = fill []; order = order (); spatial = fill [] };
        ]
    in
    (w, m)
  in
  let big_arch = P.toy ~l1_words:100_000 ~l2_words:1_000_000 ~pes:4 () in
  [
    Test.make ~name:"energy positive and finite" ~count:200 (make gen_map) (fun inputs ->
        let w, m = build inputs in
        match Model.evaluate w big_arch m with
        | Ok c -> c.Model.energy_pj > 0.0 && Float.is_finite c.Model.edp
        | Error _ -> false);
    Test.make ~name:"macs invariant across mappings" ~count:200 (make gen_map) (fun inputs ->
        let w, m = build inputs in
        match Model.evaluate w big_arch m with
        | Ok c -> c.Model.macs = W.macs w
        | Error _ -> false);
    Test.make ~name:"reads bounded below by operand size" ~count:200 (make gen_map)
      (fun inputs ->
        let w, m = build inputs in
        match Model.evaluate w big_arch m with
        | Ok c ->
          (* DRAM must supply each input operand at least once *)
          List.for_all
            (fun (op : W.operand) ->
              let t =
                List.find
                  (fun (t : Model.transfer) ->
                    t.Model.operand = op.W.name && t.Model.from_level = 2 && t.Model.to_level >= 0)
                  c.Model.transfers
              in
              t.Model.reads >= W.operand_size w op -. 1e-6)
            (W.inputs w)
        | Error _ -> false);
    Test.make ~name:"lower bound below total energy" ~count:200 (make gen_map) (fun inputs ->
        let w, m = build inputs in
        match Model.evaluate w big_arch m with
        | Ok c ->
          Model.energy_lower_bound w big_arch ~partial_levels:2 m <= c.Model.energy_pj +. 1e-6
        | Error _ -> false);
  ]

module Mapspace = Sun_search.Mapspace

(* ------------------------------------------------------------------ *)
(* The paper's principles as executable properties                      *)
(* ------------------------------------------------------------------ *)

(* Tiling Principle: for a fixed L2 ordering that reuses OP across L1
   tiles, enlarging an indexing dimension of OP in the L1 tile (while it
   still fits) never increases the total L2 access count. *)
let test_tiling_principle_monotone () =
  let big = P.toy ~l1_words:100_000 ~l2_words:1_000_000 ~pes:4 () in
  let build kl1 pl1 =
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
        lm
          ~order:[ "P"; "K"; "C"; "R" ]
          [ ("K", kl1 * kl2 * cl1 / (kl1 * cl1)); ("P", pl1 * pl2 * 7 / (pl1 * 7)) ];
        lm
          [
            ("K", kl1 * kl2 / kl1 / (kl2 * cl1 / cl1));
            ("C", cl2);
          ];
      ]
  in
  ignore build;
  (* direct comparison on the running example: P_L1 = 7 vs P_L1 = 14 *)
  let total_l2_reads m =
    let cost = Model.evaluate_exn conv big m in
    Sun_util.Listx.sum_by
      (fun (t : Model.transfer) ->
        if t.Model.from_level = 1 && t.Model.to_level = 0 then t.Model.reads else 0.0)
      cost.Model.transfers
  in
  let small_tile =
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
        lm ~order:[ "P"; "K"; "C"; "R" ] [ ("K", kl2); ("P", pl2); ("C", cl2) ];
        lm [];
      ]
  in
  let bigger_tile =
    (* grow P (an indexing dim of the reused ofmap) in the L1 tile *)
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1 * pl2); ("C", cl1); ("R", r) ];
        lm ~order:[ "P"; "K"; "C"; "R" ] [ ("K", kl2); ("C", cl2) ];
        lm [];
      ]
  in
  Alcotest.(check bool) "bigger reuse-dim tile, fewer L2 accesses" true
    (total_l2_reads bigger_tile <= total_l2_reads small_tile +. 1e-6)

(* Ordering Principle 3: permuting the loops ABOVE the reuse-determining
   suffix changes no access count. *)
let test_ordering_principle_3 () =
  let build order =
    M.make_exn conv
      [
        lm [ ("K", kl1); ("P", pl1); ("C", cl1); ("R", r) ];
        lm ~order [ ("K", kl2); ("P", pl2); ("C", cl2) ];
        lm [];
      ]
  in
  (* C innermost (reuses ofmap); K and P above it in either order *)
  let a = Model.evaluate_exn conv arch (build [ "R"; "P"; "K"; "C" ]) in
  let b = Model.evaluate_exn conv arch (build [ "R"; "K"; "P"; "C" ]) in
  check_f "energy unchanged by outer permutation" a.Model.energy_pj b.Model.energy_pj

(* context-based and one-shot evaluation agree *)
let test_ctx_equivalence () =
  let ctx = Model.context conv arch in
  let direct = Model.evaluate_exn conv arch algorithm4 in
  match Model.evaluate_ctx ctx algorithm4 with
  | Ok via_ctx ->
    check_f "energy" direct.Model.energy_pj via_ctx.Model.energy_pj;
    check_f "cycles" direct.Model.cycles via_ctx.Model.cycles;
    check_f "edp" direct.Model.edp via_ctx.Model.edp
  | Error e -> Alcotest.failf "ctx path failed: %s" e

let test_fill_fraction () =
  let f = Model.level_fill_fraction conv arch algorithm4 ~level:0 in
  (* Algorithm 4's L1 tile: 14 + 12 + 18 = 44 of 64 words *)
  check_f "L1 fill fraction" (44.0 /. 64.0) f

let principle_props =
  let open QCheck in
  let big = P.toy ~l1_words:1_000_000 ~l2_words:10_000_000 ~pes:8 () in
  [
    Test.make ~name:"outer-loop permutations never change energy" ~count:80
      (int_range 0 100000)
      (fun seed ->
        let w = C.conv1d ~k:8 ~c:4 ~p:12 ~r:3 () in
        let rng = Sun_util.Rng.create seed in
        let dims = [ "K"; "C"; "P"; "R" ] in
        let fill assoc =
          List.map
            (fun d -> match List.assoc_opt d assoc with Some f -> (d, f) | None -> (d, 1))
            dims
        in
        (* fixed innermost pair (C then R reused by ofmap); shuffle outers *)
        let outer = Sun_util.Rng.shuffle rng [ "K"; "P" ] in
        let build o =
          M.make_exn w
            [
              { M.temporal = fill [ ("K", 2); ("P", 3); ("R", 3) ]; order = dims; spatial = fill [] };
              { M.temporal = fill [ ("K", 4); ("P", 4); ("C", 4) ]; order = o @ [ "C"; "R" ]; spatial = fill [] };
              { M.temporal = fill []; order = dims; spatial = fill [] };
            ]
        in
        let a = Model.evaluate_exn w big (build outer) in
        let b = Model.evaluate_exn w big (build (List.rev outer)) in
        Float.abs (a.Model.energy_pj -. b.Model.energy_pj) < 1e-6);
    Test.make ~name:"ctx evaluation equals one-shot evaluation" ~count:80 (int_range 0 100000)
      (fun seed ->
        let w = C.conv1d ~k:8 ~c:8 ~p:8 ~r:3 () in
        let space = Mapspace.create w big in
        let m = Mapspace.sample space (Sun_util.Rng.create seed) in
        let ctx = Model.context w big in
        match (Model.evaluate w big m, Model.evaluate_ctx ctx m) with
        | Ok a, Ok b -> Float.abs (a.Model.edp -. b.Model.edp) < 1e-6
        | Error _, Error _ -> true
        | _ -> false);
  ]

let () =
  Alcotest.run "sun_cost"
    [
      ( "paper equations",
        [
          Alcotest.test_case "equations 1-3" `Quick test_equations_1_to_3;
          Alcotest.test_case "ordering principle 2" `Quick test_ordering_principle_2;
          Alcotest.test_case "partial reuse" `Quick test_partial_reuse;
          Alcotest.test_case "equations 5-7" `Quick test_equations_5_to_7;
        ] );
      ( "validation",
        [
          Alcotest.test_case "capacity" `Quick test_validation_capacity;
          Alcotest.test_case "fanout" `Quick test_validation_fanout;
          Alcotest.test_case "level mismatch" `Quick test_level_mismatch;
        ] );
      ( "energy",
        [
          Alcotest.test_case "streaming is worst" `Quick test_streaming_baseline_worst;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "lower bound" `Quick test_lower_bound;
          Alcotest.test_case "bypass chain (Simba L2)" `Quick test_bypass_chain;
        ] );
      ( "principles",
        [
          Alcotest.test_case "tiling principle monotone" `Quick test_tiling_principle_monotone;
          Alcotest.test_case "ordering principle 3" `Quick test_ordering_principle_3;
          Alcotest.test_case "ctx equivalence" `Quick test_ctx_equivalence;
          Alcotest.test_case "fill fraction" `Quick test_fill_fraction;
        ] );
      ("principle properties", List.map QCheck_alcotest.to_alcotest principle_props);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
