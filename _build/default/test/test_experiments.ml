module B = Sun_baselines
module Runners = Sun_experiments.Runners
module Figures = Sun_experiments.Figures

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let outcome ?(valid = true) ?(edp_value = 1.0) ?(secs = 1.0) tool =
  let open B.Mapper in
  if valid then
    {
      tool;
      mapping = None;
      cost =
        Some
          {
            Sun_cost.Model.energy_pj = edp_value;
            cycles = 1.0;
            edp = edp_value;
            macs = 1.0;
            transfers = [];
            breakdown = [];
            spatial_utilization = 1.0;
          };
      valid = true;
      examined = 1;
      wall_seconds = secs;
    }
  else { tool; mapping = None; cost = None; valid = false; examined = 1; wall_seconds = secs }

let rows =
  [
    {
      Runners.workload_name = "a";
      outcomes = [ ("sunstone", outcome ~edp_value:1.0 "sunstone"); ("tl", outcome ~edp_value:2.0 "tl") ];
    };
    {
      Runners.workload_name = "b";
      outcomes = [ ("sunstone", outcome ~edp_value:1.0 "sunstone"); ("tl", outcome ~edp_value:8.0 "tl") ];
    };
    {
      Runners.workload_name = "c";
      outcomes = [ ("sunstone", outcome ~edp_value:1.0 "sunstone"); ("tl", outcome ~valid:false "tl") ];
    };
  ]

let test_geomean_ratio () =
  match Runners.geomean_ratio_vs ~baseline:"sunstone" ~tool:"tl" rows with
  | Some r -> Alcotest.(check (float 1e-9)) "geomean of 2 and 8" 4.0 r
  | None -> Alcotest.fail "expected ratio"

let test_invalid_count () =
  Alcotest.(check int) "one invalid" 1 (Runners.invalid_count ~tool:"tl" rows);
  Alcotest.(check int) "none invalid" 0 (Runners.invalid_count ~tool:"sunstone" rows)

let test_cells () =
  Alcotest.(check string) "invalid cell" "INVALID" (Runners.edp_cell (outcome ~valid:false "x"));
  Alcotest.(check bool) "valid cell numeric" true (Runners.edp_cell (outcome ~edp_value:123.0 "x") = "123")

let test_sunstone_tool_runs () =
  let w = Sun_tensor.Catalog.conv1d ~k:4 ~c:4 ~p:14 ~r:3 () in
  let arch = Sun_arch.Presets.toy ~l1_words:64 ~l2_words:512 ~pes:4 () in
  let o = Runners.sunstone_outcome w arch in
  Alcotest.(check bool) "valid" true o.B.Mapper.valid;
  Alcotest.(check string) "tool name" "sunstone" o.B.Mapper.tool

let test_run_suite_shape () =
  let w = Sun_tensor.Catalog.matmul ~m:16 ~n:16 ~k:16 () in
  let arch = Sun_arch.Presets.toy ~l1_words:64 ~l2_words:512 ~pes:4 () in
  let rows =
    Runners.run_suite
      ~tools:[ Runners.sunstone (); Runners.cosa ]
      ~workloads:[ ("mm", w) ]
      ~arch
  in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check int) "two outcomes" 2 (List.length (List.hd rows).Runners.outcomes)

(* driver smoke tests: the cheap tables run end-to-end and mention their
   key artifacts *)
let test_table3_driver () =
  let s = Figures.table3 () in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "ofmap"; "ifmap"; "weight"; "partially" ]

let test_table1_driver () =
  let s = Figures.table1 () in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "timeloop"; "sunstone"; "dmaze"; "interstellar"; "marvel"; "cosa" ]

let test_table6_driver () =
  let s = Figures.table6 ~layers:1 () in
  Alcotest.(check bool) "has bottom-up rows" true (contains s "bottom-up");
  Alcotest.(check bool) "has top-down row" true (contains s "top-down")

let test_fig9_driver () =
  let s = Figures.fig9 () in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "NBin"; "SB"; "NBout"; "instr"; "reorder"; "TOTAL" ]

let () =
  Alcotest.run "sun_experiments"
    [
      ( "runners",
        [
          Alcotest.test_case "geomean ratio" `Quick test_geomean_ratio;
          Alcotest.test_case "invalid count" `Quick test_invalid_count;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "sunstone tool" `Quick test_sunstone_tool_runs;
          Alcotest.test_case "run_suite" `Quick test_run_suite_shape;
        ] );
      ( "figure drivers",
        [
          Alcotest.test_case "table 3" `Quick test_table3_driver;
          Alcotest.test_case "table 1" `Slow test_table1_driver;
          Alcotest.test_case "table 6 (1 layer)" `Slow test_table6_driver;
          Alcotest.test_case "fig 9" `Slow test_fig9_driver;
        ] );
    ]
