(* Edge cases and failure injection across the stack: degenerate workloads,
   unmappable problems, single-dimension nests, and boundary behaviour the
   main suites do not exercise. *)

module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module A = Sun_arch.Arch
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Trie = Sun_core.Order_trie

(* a one-dimensional "copy with scale" workload *)
let axpy n =
  W.make ~name:"axpy" ~dims:[ ("X", n) ]
    ~operands:
      [
        { W.name = "a"; kind = `Input; indices = [ W.Dim "X" ] };
        { W.name = "out"; kind = `Output; indices = [ W.Dim "X" ] };
      ]

let test_single_dim_workload () =
  let w = axpy 64 in
  let arch = P.toy ~l1_words:16 ~l2_words:64 ~pes:4 () in
  (* no operand has a non-indexing dimension: the trie degenerates to the
     canonical order *)
  let cands = Trie.candidates w in
  Alcotest.(check int) "one canonical order" 1 (List.length cands);
  Alcotest.(check (list string)) "no reuse" [] (List.hd cands).Trie.reused_operands;
  match Opt.optimize w arch with
  | Ok r -> (
    match Model.validate w arch r.Opt.mapping with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e)
  | Error e -> Alcotest.failf "axpy should map: %s" e

let test_unmappable_problem () =
  (* the unit tile of the giant-filter conv exceeds a 2-word L1: weight
     needs R=8 resident even at tile 1 because the full R lives somewhere *)
  let w =
    W.make ~name:"wide-row" ~dims:[ ("X", 4); ("Y", 64) ]
      ~operands:
        [
          { W.name = "a"; kind = `Input; indices = [ W.Dim "Y" ] };
          { W.name = "b"; kind = `Input; indices = [ W.Dim "X" ; W.Dim "Y" ] };
          { W.name = "out"; kind = `Output; indices = [ W.Dim "X" ] };
        ]
  in
  ignore w;
  (* an arch whose innermost buffer cannot even hold one word per operand *)
  let tiny =
    let l1 : A.level =
      {
        A.level_name = "L1";
        partitions =
          [
            {
              A.part_name = "L1";
              capacity_words = 2;
              accepts = `All;
              read_energy = 1.0;
              write_energy = 1.0;
              bandwidth = 1.0;
            };
          ];
        fanout = 1;
        multicast = false;
        noc_hop_energy = 0.0;
        unbounded = false;
      }
    in
    let dram : A.level =
      {
        A.level_name = "DRAM";
        partitions =
          [
            {
              A.part_name = "DRAM";
              capacity_words = 0;
              accepts = `All;
              read_energy = 100.0;
              write_energy = 100.0;
              bandwidth = 1.0;
            };
          ];
        fanout = 1;
        multicast = false;
        noc_hop_energy = 0.0;
        unbounded = true;
      }
    in
    A.make ~name:"tiny" ~levels:[ l1; dram ] ~mac_energy:1.0 ()
  in
  (* three operands cannot coexist in 2 words *)
  let mm = C.matmul ~m:4 ~n:4 ~k:4 () in
  match Opt.optimize mm tiny with
  | Error _ -> ()
  | Ok r ->
    (* if something is returned it must still be valid *)
    (match Model.validate mm tiny r.Opt.mapping with
    | Ok () -> ()
    | Error e -> Alcotest.failf "optimizer returned an invalid mapping: %s" e)

let test_prime_dimensions () =
  (* 17x17 Inception maps have prime feature dims: tiling can only keep or
     split nothing, and the scheduler must still produce a valid mapping *)
  let w = C.conv2d ~n:1 ~k:32 ~c:32 ~p:17 ~q:17 ~r:3 ~s:3 () in
  match Opt.optimize w P.conventional with
  | Ok r -> (
    match Model.validate w P.conventional r.Opt.mapping with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e)
  | Error e -> Alcotest.failf "prime dims should map: %s" e

let test_dim_of_size_one () =
  (* 1x1 convolutions: R = S = 1 collapse the sliding window *)
  let w = C.conv2d ~n:1 ~k:16 ~c:16 ~p:8 ~q:8 ~r:1 ~s:1 () in
  let ifmap = W.find_operand w "ifmap" in
  Alcotest.(check (list string)) "no sliding dims when window is 1x1... (P,Q remain)"
    [ "P"; "Q"; "R"; "S" ] (W.sliding_dims ifmap);
  match Opt.optimize w P.conventional with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "1x1 conv should map: %s" e

let test_workload_larger_than_chip () =
  (* nothing fits on chip beyond single elements; only DRAM-heavy mappings
     exist and they must still be produced and valid *)
  let w = C.matmul ~m:4096 ~n:4096 ~k:4096 () in
  let arch = P.toy ~l1_words:16 ~l2_words:64 ~pes:4 () in
  match Opt.optimize w arch with
  | Ok r -> (
    match Model.validate w arch r.Opt.mapping with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e)
  | Error e -> Alcotest.failf "should map: %s" e

let test_mapping_with_all_unit_levels () =
  let w = axpy 8 in
  let m = M.single_level w ~num_levels:2 in
  let arch =
    A.make ~name:"two"
      ~levels:
        [
          {
            A.level_name = "L1";
            partitions =
              [
                {
                  A.part_name = "L1";
                  capacity_words = 32;
                  accepts = `All;
                  read_energy = 1.0;
                  write_energy = 1.0;
                  bandwidth = 1.0;
                };
              ];
            fanout = 1;
            multicast = false;
            noc_hop_energy = 0.0;
            unbounded = false;
          };
          {
            A.level_name = "DRAM";
            partitions =
              [
                {
                  A.part_name = "DRAM";
                  capacity_words = 0;
                  accepts = `All;
                  read_energy = 100.0;
                  write_energy = 100.0;
                  bandwidth = 1.0;
                };
              ];
            fanout = 1;
            multicast = false;
            noc_hop_energy = 0.0;
            unbounded = true;
          };
        ]
      ~mac_energy:1.0 ()
  in
  let c = Model.evaluate_exn w arch m in
  (* each element read once from DRAM for "a" and written once for "out" *)
  Alcotest.(check bool) "macs" true (c.Model.macs = 8.0);
  Alcotest.(check bool) "energy finite" true (Float.is_finite c.Model.energy_pj)

let test_zero_reuse_workload_energy () =
  (* pure elementwise op: no reuse exists anywhere; the model must not
     invent any (DRAM reads >= operand size) *)
  let w = axpy 128 in
  let arch = P.toy ~l1_words:32 ~l2_words:256 ~pes:4 () in
  match Opt.optimize w arch with
  | Error e -> Alcotest.failf "should map: %s" e
  | Ok r ->
    let dram_reads =
      Sun_util.Listx.sum_by
        (fun (t : Model.transfer) ->
          if t.Model.from_level = 2 && t.Model.operand = "a" && t.Model.to_level >= 0 then
            t.Model.reads
          else 0.0)
        r.Opt.cost.Model.transfers
    in
    Alcotest.(check bool) "input fetched at least once" true (dram_reads >= 128.0)

let test_trie_stats () =
  let w = C.conv2d ~n:4 ~k:8 ~c:8 ~p:8 ~q:8 ~r:3 ~s:3 () in
  let cands, stats = Trie.candidates_with_stats w in
  Alcotest.(check bool) "visited nodes" true (stats.Trie.nodes_visited > 0);
  Alcotest.(check bool) "pruned nodes" true (stats.Trie.nodes_pruned > 0);
  Alcotest.(check bool) "far fewer than 7! orders" true
    (List.length cands * 20 < Trie.all_orders_count w)

let test_mapping_pp_smoke () =
  let w = axpy 8 in
  let m = M.single_level w ~num_levels:3 in
  Alcotest.(check bool) "prints" true (String.length (M.to_string m) > 0);
  Alcotest.(check bool) "loopnest prints" true
    (String.length (Sun_mapping.Loopnest.emit w m) > 0)

let () =
  Alcotest.run "edge cases"
    [
      ( "degenerate workloads",
        [
          Alcotest.test_case "single dimension" `Quick test_single_dim_workload;
          Alcotest.test_case "unmappable" `Quick test_unmappable_problem;
          Alcotest.test_case "prime dimensions" `Quick test_prime_dimensions;
          Alcotest.test_case "1x1 window" `Quick test_dim_of_size_one;
          Alcotest.test_case "larger than chip" `Quick test_workload_larger_than_chip;
        ] );
      ( "model boundaries",
        [
          Alcotest.test_case "all-unit levels" `Quick test_mapping_with_all_unit_levels;
          Alcotest.test_case "zero-reuse energy" `Quick test_zero_reuse_workload_energy;
        ] );
      ( "misc",
        [
          Alcotest.test_case "trie stats" `Quick test_trie_stats;
          Alcotest.test_case "pretty printing" `Quick test_mapping_pp_smoke;
        ] );
    ]
