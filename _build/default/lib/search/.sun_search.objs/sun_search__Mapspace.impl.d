lib/search/mapspace.ml: Array Hashtbl List Seq Sun_arch Sun_mapping Sun_tensor Sun_util
