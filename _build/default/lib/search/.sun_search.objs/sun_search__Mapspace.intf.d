lib/search/mapspace.mli: Seq Sun_arch Sun_mapping Sun_tensor Sun_util
