let placeholder () = ()
