(** Dense row-major tensors for the reference executor. *)

type t = { dims : int array; data : float array }

val create : int array -> t
(** Zero-filled. *)

val random : Sun_util.Rng.t -> int array -> t
(** Entries uniform in [0, 1). *)

val size : t -> int

val get : t -> int array -> float
val add : t -> int array -> float -> unit
(** In-place accumulation at a coordinate. *)

val flat_index : t -> int array -> int

val equal : ?eps:float -> t -> t -> bool
(** Same shape and element-wise agreement within [eps] (default 1e-9
    relative to magnitude). *)

val shape_of_operand : Sun_tensor.Workload.t -> Sun_tensor.Workload.operand -> int array
(** Axis sizes the operand spans over the full problem (sliding-window axes
    get their padded extent). *)
