module W = Sun_tensor.Workload

type t = { dims : int array; data : float array }

let size t = Array.length t.data

let create dims =
  let n = Array.fold_left ( * ) 1 dims in
  { dims; data = Array.make n 0.0 }

let random rng dims =
  let n = Array.fold_left ( * ) 1 dims in
  { dims; data = Array.init n (fun _ -> Sun_util.Rng.float rng 1.0) }

let flat_index t coords =
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      assert (c >= 0 && c < t.dims.(i));
      acc := (!acc * t.dims.(i)) + c)
    coords;
  !acc

let get t coords = t.data.(flat_index t coords)

let add t coords v =
  let i = flat_index t coords in
  t.data.(i) <- t.data.(i) +. v

let equal ?(eps = 1e-9) a b =
  a.dims = b.dims
  && Array.for_all2
       (fun x y -> Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)))
       a.data b.data

let shape_of_operand w (op : W.operand) =
  Array.of_list (List.map (W.axis_extent (W.bound w)) op.W.indices)
