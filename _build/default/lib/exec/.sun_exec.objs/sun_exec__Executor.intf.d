lib/exec/executor.mli: Sun_mapping Sun_tensor Tensor
