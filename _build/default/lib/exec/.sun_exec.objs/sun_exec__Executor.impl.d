lib/exec/executor.ml: Array Hashtbl List Printf Sun_mapping Sun_tensor Sun_util Tensor
