lib/exec/tensor.ml: Array Float List Sun_tensor Sun_util
