lib/exec/tensor.mli: Sun_tensor Sun_util
