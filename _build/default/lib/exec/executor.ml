module W = Sun_tensor.Workload
module M = Sun_mapping.Mapping

type bindings = (string * Tensor.t) list

let random_inputs ?(seed = 42) w =
  let rng = Sun_util.Rng.create seed in
  List.map
    (fun (op : W.operand) -> (op.W.name, Tensor.random rng (Tensor.shape_of_operand w op)))
    (W.inputs w)

let lookup w bindings (op : W.operand) =
  match List.assoc_opt op.W.name bindings with
  | Some t ->
    if t.Tensor.dims <> Tensor.shape_of_operand w op then
      invalid_arg (Printf.sprintf "Executor: input %s has the wrong shape" op.W.name);
    t
  | None -> invalid_arg (Printf.sprintf "Executor: missing input %s" op.W.name)

(* coordinates of an operand given the per-dimension point values *)
let coords (op : W.operand) point =
  Array.of_list
    (List.map
       (fun idx ->
         match idx with
         | W.Dim d -> (point : (W.dim * int ref) list) |> fun p -> !(List.assoc d p)
         | W.Affine terms ->
           List.fold_left (fun acc (d, c) -> acc + (c * !(List.assoc d point))) 0 terms)
       op.W.indices)

let execute_points w bindings iterate =
  let out_op = W.output w in
  let out = Tensor.create (Tensor.shape_of_operand w out_op) in
  let inputs = List.map (fun op -> (op, lookup w bindings op)) (W.inputs w) in
  let point = List.map (fun d -> (d, ref 0)) (W.dim_names w) in
  iterate point (fun () ->
      let product =
        List.fold_left (fun acc (op, t) -> acc *. Tensor.get t (coords op point)) 1.0 inputs
      in
      Tensor.add out (coords out_op point) product);
  out

let reference w bindings =
  execute_points w bindings (fun point body ->
      let rec loop = function
        | [] -> body ()
        | (d, cell) :: rest ->
          for v = 0 to W.bound w d - 1 do
            cell := v;
            loop rest
          done
      in
      loop point)

(* Flattened loop nest of a mapping, outermost first: per level from the
   top, temporal loops in order then spatial loops. Each loop carries the
   span of one iteration step (the product of the same dimension's inner
   loops), so a dimension's value is the weighted digit sum of its loops. *)
type loop = { dim : W.dim; bound : int; mutable stride : int }

let nest_of w m =
  ignore w;
  let acc = ref [] in
  (* innermost-to-outermost accumulation *)
  for level = 0 to M.num_levels m - 1 do
    let lm = m.M.levels.(level) in
    List.iter
      (fun (dim, bound) -> if bound > 1 then acc := { dim; bound; stride = 0 } :: !acc)
      lm.M.spatial;
    List.iter
      (fun dim ->
        let bound = match List.assoc_opt dim lm.M.temporal with Some b -> b | None -> 1 in
        if bound > 1 then acc := { dim; bound; stride = 0 } :: !acc)
      (List.rev lm.M.order)
  done;
  let outer_first = !acc in
  (* strides: product of inner loops of the same dimension *)
  let inner_span = Hashtbl.create 8 in
  List.iter
    (fun loop ->
      let span = try Hashtbl.find inner_span loop.dim with Not_found -> 1 in
      loop.stride <- span;
      Hashtbl.replace inner_span loop.dim (span * loop.bound))
    (List.rev outer_first);
  outer_first

let run_mapping w m bindings =
  (match M.make w (Array.to_list m.M.levels) with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Executor.run_mapping: " ^ msg));
  let nest = nest_of w m in
  execute_points w bindings (fun point body ->
      let cells = List.map (fun loop -> (loop, List.assoc loop.dim point)) nest in
      let rec walk = function
        | [] -> body ()
        | (loop, cell) :: rest ->
          let base = !cell in
          for v = 0 to loop.bound - 1 do
            cell := base + (v * loop.stride);
            walk rest
          done;
          cell := base
      in
      walk cells)
