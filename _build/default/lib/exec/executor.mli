(** Reference executor: actually runs a tensor workload on dense data.

    Two evaluation paths must agree bit-for-bit in visit counts (and to
    floating-point tolerance in values) for every valid mapping:

    - {!reference} walks the operation space in canonical order;
    - {!run_mapping} walks the mapped loop nest (temporal and spatial loops
      flattened in nest order), exactly the traversal the accelerator
      performs.

    Agreement is the functional-correctness argument for the mapping IR:
    tiling, reordering and unrolling are pure traversal choices and cannot
    change the computed tensor. The property test in the suite runs random
    mappings of small workloads through both paths. *)

type bindings = (string * Tensor.t) list
(** Input operand name -> data. *)

val random_inputs : ?seed:int -> Sun_tensor.Workload.t -> bindings

val reference : Sun_tensor.Workload.t -> bindings -> Tensor.t
(** Direct evaluation of the algebraic definition. Raises
    [Invalid_argument] if an input is missing or mis-shaped. *)

val run_mapping : Sun_tensor.Workload.t -> Sun_mapping.Mapping.t -> bindings -> Tensor.t
(** Evaluation in mapped order. The mapping must be structurally valid for
    the workload ([Mapping.make] rules); buffer capacities are irrelevant
    to functional behaviour and are not checked here. *)
