(** Tensor-workload intermediate representation.

    A workload is a perfectly nested loop over named problem dimensions with
    no inter-iteration dependencies (Section II-B of the paper): every point
    of the operation space performs one multiply-accumulate reading each
    input operand and updating the output operand at positions given by the
    operand's index expressions. This IR is what Sunstone's problem
    description (Section IV) denotes: it covers convolution (via compound
    sliding-window indices), MTTKRP, TTMc, SDDMM, MMc, TCL and friends. *)

type dim = string
(** A problem dimension, identified by name (e.g. ["K"], ["P"]). *)

type index =
  | Dim of dim  (** the operand axis is addressed by a single dimension *)
  | Affine of (dim * int) list
      (** sliding-window axis: the address is [sum coeff_i * d_i], e.g.
          [p*stride + r] for convolution. Coefficients are strictly
          positive. *)

type operand = {
  name : string;  (** e.g. ["ifmap"], ["weight"], ["ofmap"] *)
  kind : [ `Input | `Output ];
  indices : index list;  (** one entry per tensor axis *)
}

type t = {
  name : string;
  dims : (dim * int) list;  (** dimension bounds, each >= 1 *)
  operands : operand list;  (** exactly one [`Output] member *)
}

val make : name:string -> dims:(dim * int) list -> operands:operand list -> t
(** Validates and builds a workload. Raises [Invalid_argument] if bounds are
    non-positive, an operand references an unknown dimension, a dimension is
    referenced by no operand, or the number of [`Output] operands is not
    exactly one. *)

val dim_names : t -> dim list
val bound : t -> dim -> int
(** Raises [Not_found] on an unknown dimension. *)

val macs : t -> float
(** Size of the operation space: the product of all dimension bounds. *)

val output : t -> operand
val inputs : t -> operand list
val find_operand : t -> string -> operand

val index_dims : index -> dim list
val indexing_dims : operand -> dim list
(** All dimensions appearing in the operand's index expressions (sorted,
    deduplicated). *)

val non_indexing_dims : t -> operand -> dim list
(** Dimensions of the workload not used to index the operand — iterating
    over them reuses the operand (Ordering Principle 1). *)

val sliding_dims : operand -> dim list
(** Dimensions that appear inside a compound [Affine] index of the operand:
    iterating over them gives partial (sliding-window) reuse. *)

val is_indexing : operand -> dim -> bool

val operand_size : t -> operand -> float
(** Number of distinct elements the operand spans over the full problem. *)

val axis_extent : (dim -> int) -> index -> int
(** [axis_extent tile idx] is the number of distinct positions the axis
    [idx] touches when each dimension [d] ranges over [tile d] values:
    [tile d] for [Dim d] and [sum coeff_i * (tile d_i - 1) + 1] for a
    compound index. *)

val footprint : (dim -> int) -> operand -> float
(** Product of [axis_extent] over the operand's axes. *)

val pp : Format.formatter -> t -> unit
val pp_operand : Format.formatter -> operand -> unit
