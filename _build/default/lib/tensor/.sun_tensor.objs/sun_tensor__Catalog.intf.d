lib/tensor/catalog.mli: Workload
