lib/tensor/reuse.ml: Format List String Workload
