lib/tensor/workload.mli: Format
