lib/tensor/catalog.ml: Workload
