lib/tensor/workload.ml: Format Hashtbl List Printf String Sun_util
