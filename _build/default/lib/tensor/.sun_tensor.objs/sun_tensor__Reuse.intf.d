lib/tensor/reuse.mli: Format Workload
