(** Automatic reuse inference (Section IV, Table III).

    From a workload description alone, derive for each operand which loop
    dimensions fully reuse it (its non-indexing dimensions) and which
    partially reuse it through a sliding window (dimensions inside a
    compound index). This table drives both the ordering trie and the
    tiling/unrolling principles. *)

type entry = {
  operand : Workload.operand;
  indexed_by : Workload.dim list;
  reused_by : Workload.dim list;  (** full temporal reuse (Principle 1) *)
  partially_reused_by : Workload.dim list;  (** sliding-window overlap *)
}

type t = entry list

val analyze : Workload.t -> t
(** One entry per operand, operands in workload order. *)

val entry : t -> string -> entry
(** Lookup by operand name. Raises [Not_found]. *)

val reusers_of_dim : t -> Workload.dim -> string list
(** Names of operands fully reused when iterating over the dimension. *)

val reuse_dims : Workload.t -> Workload.operand -> Workload.dim list
(** The "reuse dimensions" of the Tiling/Unrolling principles for a level at
    which [operand] is the temporally reused operand: its *indexing*
    dimensions — the only dimensions worth enlarging in the tile below or
    unrolling spatially (Section III). *)

val pp : Format.formatter -> t -> unit
(** Renders the Table III layout. *)
