open Workload

let input name indices = { name; kind = `Input; indices }
let out name indices = { name; kind = `Output; indices }

let conv1d ?(name = "conv1d") ~k ~c ~p ~r () =
  make ~name
    ~dims:[ ("K", k); ("C", c); ("P", p); ("R", r) ]
    ~operands:
      [
        input "ifmap" [ Dim "C"; Affine [ ("P", 1); ("R", 1) ] ];
        input "weight" [ Dim "K"; Dim "C"; Dim "R" ];
        out "ofmap" [ Dim "K"; Dim "P" ];
      ]

let conv2d ?(name = "conv2d") ?(stride = 1) ~n ~k ~c ~p ~q ~r ~s () =
  make ~name
    ~dims:[ ("N", n); ("K", k); ("C", c); ("P", p); ("Q", q); ("R", r); ("S", s) ]
    ~operands:
      [
        input "ifmap"
          [ Dim "N"; Dim "C"; Affine [ ("P", stride); ("R", 1) ]; Affine [ ("Q", stride); ("S", 1) ] ];
        input "weight" [ Dim "K"; Dim "C"; Dim "R"; Dim "S" ];
        out "ofmap" [ Dim "N"; Dim "K"; Dim "P"; Dim "Q" ];
      ]

let conv2d_weight_update ?(name = "conv2d_wu") ~n ~k ~c ~p ~q ~r ~s () =
  make ~name
    ~dims:[ ("N", n); ("K", k); ("C", c); ("P", p); ("Q", q); ("R", r); ("S", s) ]
    ~operands:
      [
        input "ifmap" [ Dim "N"; Dim "C"; Affine [ ("P", 1); ("R", 1) ]; Affine [ ("Q", 1); ("S", 1) ] ];
        input "dofmap" [ Dim "N"; Dim "K"; Dim "P"; Dim "Q" ];
        out "dweight" [ Dim "K"; Dim "C"; Dim "R"; Dim "S" ];
      ]

let matmul ?(name = "matmul") ~m ~n ~k () =
  make ~name
    ~dims:[ ("M", m); ("N", n); ("K", k) ]
    ~operands:
      [ input "a" [ Dim "M"; Dim "K" ]; input "b" [ Dim "K"; Dim "N" ]; out "out" [ Dim "M"; Dim "N" ] ]

let mttkrp ?(name = "mttkrp") ~i ~j ~k ~l () =
  make ~name
    ~dims:[ ("I", i); ("J", j); ("K", k); ("L", l) ]
    ~operands:
      [
        input "a" [ Dim "I"; Dim "K"; Dim "L" ];
        input "b" [ Dim "K"; Dim "J" ];
        input "c" [ Dim "L"; Dim "J" ];
        out "out" [ Dim "I"; Dim "J" ];
      ]

let sddmm ?(name = "sddmm") ~i ~j ~k () =
  make ~name
    ~dims:[ ("I", i); ("J", j); ("K", k) ]
    ~operands:
      [
        input "a" [ Dim "I"; Dim "J" ];
        input "b" [ Dim "I"; Dim "K" ];
        input "c" [ Dim "K"; Dim "J" ];
        out "out" [ Dim "I"; Dim "J" ];
      ]

let ttmc ?(name = "ttmc") ~i ~j ~k ~l ~m () =
  make ~name
    ~dims:[ ("I", i); ("J", j); ("K", k); ("L", l); ("M", m) ]
    ~operands:
      [
        input "a" [ Dim "I"; Dim "J"; Dim "K" ];
        input "b" [ Dim "J"; Dim "L" ];
        input "c" [ Dim "K"; Dim "M" ];
        out "out" [ Dim "I"; Dim "L"; Dim "M" ];
      ]

let mmc ?(name = "mmc") ~i ~j ~k ~l () =
  make ~name
    ~dims:[ ("I", i); ("J", j); ("K", k); ("L", l) ]
    ~operands:
      [
        input "a" [ Dim "I"; Dim "J" ];
        input "b" [ Dim "J"; Dim "K" ];
        input "c" [ Dim "K"; Dim "L" ];
        out "out" [ Dim "I"; Dim "L" ];
      ]

let tcl ?(name = "tcl") ~i ~j ~k ~l ~m ~n () =
  make ~name
    ~dims:[ ("I", i); ("J", j); ("K", k); ("L", l); ("M", m); ("N", n) ]
    ~operands:
      [
        input "a" [ Dim "I"; Dim "J"; Dim "K" ];
        input "b" [ Dim "I"; Dim "L" ];
        input "c" [ Dim "J"; Dim "M" ];
        input "d" [ Dim "K"; Dim "N" ];
        out "out" [ Dim "L"; Dim "M"; Dim "N" ];
      ]
