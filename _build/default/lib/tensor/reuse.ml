type entry = {
  operand : Workload.operand;
  indexed_by : Workload.dim list;
  reused_by : Workload.dim list;
  partially_reused_by : Workload.dim list;
}

type t = entry list

let analyze (w : Workload.t) =
  let analyze_operand op =
    {
      operand = op;
      indexed_by = Workload.indexing_dims op;
      reused_by = Workload.non_indexing_dims w op;
      partially_reused_by = Workload.sliding_dims op;
    }
  in
  List.map analyze_operand w.operands

let entry t name = List.find (fun e -> e.operand.Workload.name = name) t

let reusers_of_dim t d =
  List.filter_map
    (fun e -> if List.mem d e.reused_by then Some e.operand.Workload.name else None)
    t

let reuse_dims w op =
  ignore w;
  Workload.indexing_dims op

let pp ppf t =
  let dims ppf ds =
    if ds = [] then Format.pp_print_string ppf "-"
    else Format.pp_print_string ppf (String.concat ", " ds)
  in
  let row e =
    Format.fprintf ppf "@,%-8s  indexed by: %a;  reused by: %a;  partially reused by: %a"
      e.operand.Workload.name dims e.indexed_by dims e.reused_by dims e.partially_reused_by
  in
  Format.fprintf ppf "@[<v>";
  List.iter row t;
  Format.fprintf ppf "@]"
