(** Constructors for the tensor-algebra workload families of Table II.

    Dimension naming follows the paper: convolutions use N (batch), K
    (output channels), C (input channels), P/Q (output feature map), R/S
    (filter); the decomposition kernels use I, J, K, L, M. *)

val conv1d : ?name:string -> k:int -> c:int -> p:int -> r:int -> unit -> Workload.t
(** ofmap[k,p] += ifmap[c,p+r] * weight[k,c,r] — the paper's running
    example (Section II-D). *)

val conv2d :
  ?name:string ->
  ?stride:int ->
  n:int ->
  k:int ->
  c:int ->
  p:int ->
  q:int ->
  r:int ->
  s:int ->
  unit ->
  Workload.t
(** ofmap[n,k,p,q] += ifmap[n,c,p*stride+r,q*stride+s] * weight[k,c,r,s]. *)

val conv2d_weight_update :
  ?name:string -> n:int -> k:int -> c:int -> p:int -> q:int -> r:int -> s:int -> unit -> Workload.t
(** The backward-weights pass of [conv2d] used by Fig 7: the *weight
    gradient* is the output, indexed [k,c,r,s]; ifmap and the output-gradient
    are the inputs. The loop nest has the same seven dimensions with a
    different reuse pattern. *)

val matmul : ?name:string -> m:int -> n:int -> k:int -> unit -> Workload.t
(** out[m,n] += a[m,k] * b[k,n] — fully connected layers. *)

val mttkrp : ?name:string -> i:int -> j:int -> k:int -> l:int -> unit -> Workload.t
(** out[i,j] += a[i,k,l] * b[k,j] * c[l,j] — CP decomposition bottleneck. *)

val sddmm : ?name:string -> i:int -> j:int -> k:int -> unit -> Workload.t
(** out[i,j] += a[i,j] * b[i,k] * c[k,j] — sampled dense-dense matmul. *)

val ttmc : ?name:string -> i:int -> j:int -> k:int -> l:int -> m:int -> unit -> Workload.t
(** out[i,l,m] += a[i,j,k] * b[j,l] * c[k,m] — Tucker decomposition. *)

val mmc : ?name:string -> i:int -> j:int -> k:int -> l:int -> unit -> Workload.t
(** out[i,l] += a[i,j] * b[j,k] * c[k,l] — matrix-multiply chain
    (attention). *)

val tcl : ?name:string -> i:int -> j:int -> k:int -> l:int -> m:int -> n:int -> unit -> Workload.t
(** out[l,m,n] += a[i,j,k] * b[i,l] * c[j,m] * d[k,n] — tensor contraction
    layer. *)
