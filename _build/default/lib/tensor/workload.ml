type dim = string

type index = Dim of dim | Affine of (dim * int) list

type operand = { name : string; kind : [ `Input | `Output ]; indices : index list }

type t = { name : string; dims : (dim * int) list; operands : operand list }

let index_dims = function
  | Dim d -> [ d ]
  | Affine terms -> List.map fst terms

let indexing_dims op =
  Sun_util.Listx.unique String.compare (List.concat_map index_dims op.indices)

let sliding_dims op =
  let compound = function Dim _ -> [] | Affine terms -> List.map fst terms in
  let dims = List.concat_map (fun i -> match i with Affine (_ :: _ :: _) -> compound i | _ -> []) op.indices in
  Sun_util.Listx.unique String.compare dims

let is_indexing op d = List.mem d (indexing_dims op)

let dim_names t = List.map fst t.dims

let bound t d = List.assoc d t.dims

let non_indexing_dims t op =
  List.filter (fun d -> not (is_indexing op d)) (dim_names t)

let output t =
  match List.filter (fun op -> op.kind = `Output) t.operands with
  | [ op ] -> op
  | _ -> invalid_arg "Workload.output: malformed workload"

let inputs t = List.filter (fun op -> op.kind = `Input) t.operands

let find_operand t name =
  match List.find_opt (fun (op : operand) -> op.name = name) t.operands with
  | Some op -> op
  | None -> raise Not_found

let macs t = List.fold_left (fun acc (_, b) -> acc *. float_of_int b) 1.0 t.dims

let axis_extent tile = function
  | Dim d -> tile d
  | Affine terms ->
    List.fold_left (fun acc (d, coeff) -> acc + (coeff * (tile d - 1))) 1 terms

let footprint tile op =
  List.fold_left (fun acc idx -> acc *. float_of_int (axis_extent tile idx)) 1.0 op.indices

let operand_size t op = footprint (bound t) op

let make ~name ~dims ~operands =
  let known = List.map fst dims in
  List.iter
    (fun (d, b) ->
      if b <= 0 then invalid_arg (Printf.sprintf "Workload.make: bound of %s is %d" d b))
    dims;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (d, _) ->
      if Hashtbl.mem seen d then invalid_arg (Printf.sprintf "Workload.make: duplicate dim %s" d);
      Hashtbl.add seen d ())
    dims;
  List.iter
    (fun (op : operand) ->
      List.iter
        (fun idx ->
          List.iter
            (fun d ->
              if not (List.mem d known) then
                invalid_arg (Printf.sprintf "Workload.make: operand %s uses unknown dim %s" op.name d))
            (index_dims idx);
          match idx with
          | Dim _ -> ()
          | Affine terms ->
            if terms = [] then invalid_arg "Workload.make: empty affine index";
            List.iter
              (fun (d, c) ->
                if c <= 0 then
                  invalid_arg (Printf.sprintf "Workload.make: non-positive coefficient on %s" d))
              terms)
        op.indices)
    operands;
  (match List.filter (fun op -> op.kind = `Output) operands with
  | [ _ ] -> ()
  | outs ->
    invalid_arg (Printf.sprintf "Workload.make: expected 1 output operand, got %d" (List.length outs)));
  let used =
    Sun_util.Listx.unique String.compare
      (List.concat_map (fun op -> List.concat_map index_dims op.indices) operands)
  in
  List.iter
    (fun d ->
      if not (List.mem d used) then
        invalid_arg (Printf.sprintf "Workload.make: dim %s indexes no operand" d))
    known;
  { name; dims; operands }

let pp_index ppf = function
  | Dim d -> Format.pp_print_string ppf d
  | Affine terms ->
    let term ppf (d, c) = if c = 1 then Format.pp_print_string ppf d else Format.fprintf ppf "%d%s" c d in
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "+") term ppf terms

let pp_operand ppf (op : operand) =
  Format.fprintf ppf "%s[%a]" op.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_index)
    op.indices

let pp ppf t =
  let dim ppf (d, b) = Format.fprintf ppf "%s:%d" d b in
  Format.fprintf ppf "@[<v>%s {%a}@,%a@]" t.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") dim)
    t.dims
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_operand)
    t.operands
