module W = Sun_tensor.Workload

type loop = { dim : W.dim; bound : int; level : int; kind : [ `Temporal | `Spatial ] }

(* Loops outermost-first: for each level from the top down, its temporal
   loops in order, then the spatial loops distributing its children. *)
let loops w m =
  ignore w;
  let acc = ref [] in
  for level = Mapping.num_levels m - 1 downto 0 do
    let lm = m.Mapping.levels.(level) in
    let spatial =
      List.filter_map
        (fun (dim, bound) ->
          if bound > 1 then Some { dim; bound; level; kind = `Spatial } else None)
        lm.Mapping.spatial
    in
    let temporal =
      List.filter_map
        (fun dim ->
          let bound =
            match List.assoc_opt dim lm.Mapping.temporal with Some b -> b | None -> 1
          in
          if bound > 1 then Some { dim; bound; level; kind = `Temporal } else None)
        lm.Mapping.order
    in
    (* innermost-first accumulation: spatial loops of a level sit inside
       its temporal loops (they index the children) *)
    acc := temporal @ spatial @ !acc
  done;
  !acc

let loop_count w m = List.length (loops w m)

let body w =
  let index_str = function
    | W.Dim d -> String.lowercase_ascii d
    | W.Affine terms ->
      String.concat "+"
        (List.map
           (fun (d, c) ->
             if c = 1 then String.lowercase_ascii d
             else Printf.sprintf "%d*%s" c (String.lowercase_ascii d))
           terms)
  in
  let operand_str (op : W.operand) =
    Printf.sprintf "%s[%s]" op.W.name (String.concat ", " (List.map index_str op.W.indices))
  in
  let out = W.output w in
  let inputs = W.inputs w in
  Printf.sprintf "%s += %s" (operand_str out) (String.concat " * " (List.map operand_str inputs))

let emit w m =
  let buf = Buffer.create 512 in
  let nest = loops w m in
  let seen_level = Hashtbl.create 8 in
  List.iteri
    (fun depth { dim; bound; level; kind } ->
      let indent = String.make (2 * depth) ' ' in
      let keyword = match kind with `Temporal -> "for" | `Spatial -> "parallel_for" in
      let comment =
        if Hashtbl.mem seen_level level then ""
        else begin
          Hashtbl.add seen_level level ();
          Printf.sprintf "   // level %d%s" level
            (match kind with `Spatial -> " fanout" | `Temporal -> "")
        end
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s%d in 0..%d do%s\n" indent keyword
           (String.lowercase_ascii dim) level bound comment))
    nest;
  Buffer.add_string buf (String.make (2 * List.length nest) ' ');
  Buffer.add_string buf (body w);
  Buffer.add_string buf "\n";
  Buffer.contents buf
