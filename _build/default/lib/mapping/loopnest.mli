(** Lower a mapping to the paper's loop-nest presentation (Algorithms 1-5):
    a nested pseudocode listing with per-level tile comments, spatial loops
    marked [parallel_for], and the innermost MAC statement written in terms
    of the workload's operands and index expressions. *)

val emit : Sun_tensor.Workload.t -> Mapping.t -> string
(** Pseudocode for the full nest. Loops with trip count 1 are omitted.
    Example output for the paper's Algorithm 2:

    {v
    for k2 in 0..2 do            // L1 tile boundary
      for p2 in 0..2 do
        for k1 in 0..2 do
          for p1 in 0..7 do
            for r in 0..3 do
              ofmap[k, p] += ifmap[c, p+r] * weight[k, c, r]
    v} *)

val loop_count : Sun_tensor.Workload.t -> Mapping.t -> int
(** Number of emitted loops (trip count > 1), a rough code-size proxy for
    the instruction-overhead discussion of Section V-D. *)
