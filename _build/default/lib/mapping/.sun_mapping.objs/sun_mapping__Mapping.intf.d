lib/mapping/mapping.mli: Format Sun_tensor
