lib/mapping/loopnest.ml: Array Buffer Hashtbl List Mapping Printf String Sun_tensor
