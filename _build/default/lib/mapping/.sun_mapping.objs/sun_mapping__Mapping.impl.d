lib/mapping/mapping.ml: Array Format List Printf String Sun_tensor
