lib/mapping/loopnest.mli: Mapping Sun_tensor
