(** Mapping (dataflow) intermediate representation.

    A mapping assigns to each memory level of an architecture: the temporal
    tiling factors of every problem dimension at that level, the traversal
    order of those temporal loops, and the spatial unrolling factors of the
    fanout directly *below* that level. Level 0 is the innermost memory.

    Conventions:
    - for every dimension [d], the product over levels of
      [temporal d * spatial d] must equal the workload bound of [d];
    - [order] lists all workload dimensions outermost-to-innermost; loops
      with factor 1 are no-ops but keep mappings uniform and printable;
    - temporal loops at level [l] iterate *within* the data resident in the
      level-[l] buffer (they are the "L1 loops" of the paper's Algorithm 4),
      so the resident tile spans the temporal and spatial factors of levels
      [<= l], and refills of level [l] are driven by the loops of levels
      strictly above it. *)

type dim = Sun_tensor.Workload.dim

type level_mapping = {
  temporal : (dim * int) list;
  order : dim list;  (** outermost first *)
  spatial : (dim * int) list;
}

type t = { levels : level_mapping array }

val make : Sun_tensor.Workload.t -> level_mapping list -> (t, string) result
(** Structural validation: factor lists cover exactly the workload dims with
    positive factors, orders are permutations of the dims, and per-dimension
    factor products equal the workload bounds. (Capacity and fanout checks
    need the architecture and live in the cost model.) *)

val make_exn : Sun_tensor.Workload.t -> level_mapping list -> t

val num_levels : t -> int

val temporal_factor : t -> level:int -> dim -> int
val spatial_factor : t -> level:int -> dim -> int

val tile_at : t -> level:int -> dim -> int
(** Extent of [d] inside the level-[l] buffer tile: product of temporal and
    spatial factors of levels [<= l]. *)

val tile_at_top : t -> dim -> int
(** Product over all levels; equals the workload bound for valid mappings. *)

val spatial_product : t -> level:int -> int
(** Product of all spatial factors at the level: parallel instances used. *)

val total_spatial : t -> int

val footprint_at :
  Sun_tensor.Workload.t -> t -> level:int -> Sun_tensor.Workload.operand -> float
(** Words of the operand resident in one level-[l] buffer instance. *)

val single_level : Sun_tensor.Workload.t -> num_levels:int -> t
(** The degenerate mapping placing the whole problem at the outermost level
    (everything streams from DRAM): temporal factors all at the top, orders
    in declaration order. Used as a baseline and in tests. *)

val loops_outermost_first : t -> (int * dim * int) list
(** Flattened temporal loop nest [(level, dim, bound)], outermost first;
    bound-1 loops are omitted. *)

val pp : Format.formatter -> t -> unit
(** Timeloop-style rendering: one line per level, e.g.
    [L2: for K in 4, for P in 2 | spatial K:2 * C:2]. *)

val to_string : t -> string
