module C = Sun_tensor.Catalog

type layer = { layer_name : string; workload : Sun_tensor.Workload.t; count : int }

let shapes =
  (* name, k, c, p(=q), r(=s), stride, occurrences *)
  [
    ("conv1", 64, 3, 112, 7, 2, 1);
    ("conv2_x", 64, 64, 56, 3, 1, 4);
    ("conv3_1", 128, 64, 28, 3, 2, 1);
    ("conv3_ds", 128, 64, 28, 1, 2, 1);
    ("conv3_x", 128, 128, 28, 3, 1, 3);
    ("conv4_1", 256, 128, 14, 3, 2, 1);
    ("conv4_ds", 256, 128, 14, 1, 2, 1);
    ("conv4_x", 256, 256, 14, 3, 1, 3);
    ("conv5_1", 512, 256, 7, 3, 2, 1);
    ("conv5_ds", 512, 256, 7, 1, 2, 1);
    ("conv5_x", 512, 512, 7, 3, 1, 3);
  ]

let layers ?(batch = 1) () =
  List.map
    (fun (layer_name, k, c, p, r, stride, count) ->
      {
        layer_name;
        workload =
          C.conv2d ~name:("resnet18/" ^ layer_name) ~stride ~n:batch ~k ~c ~p ~q:p ~r ~s:r ();
        count;
      })
    shapes

let representative ?batch () =
  let all = layers ?batch () in
  List.filter
    (fun l -> List.mem l.layer_name [ "conv2_x"; "conv3_x"; "conv4_x"; "conv5_ds" ])
    all
