(** Non-DNN tensor-algebra instances for Fig 6: MTTKRP (rank 32), TTMc
    (rank 8), SDDMM (rank 512) on the conventional accelerator.

    Dataset shapes are dense bounding boxes of the paper's FROSTT /
    SuiteSparse tensors, rounded to nearby highly composite sizes so that
    divisor-based tiling has factors to work with (Timeloop users pad the
    same way; see DESIGN.md §2):

    - nell-2   (12092 x 9184 x 28818)  -> 12096 x 9216 x 28800
    - netflix  (480189 x 17770 x 2182) -> 480000 x 17760 x 2160
    - poisson1 (synthetic 3-D Poisson) -> 3072 x 3072 x 3072
    - bcsstk17 (10974 x 10974)         -> 10944 x 10944
    - cant     (62451 x 62451)         -> 62400 x 62400 *)

type instance = { instance_name : string; workload : Sun_tensor.Workload.t }

val mttkrp_suite : instance list
(** nell2 / netflix / poisson1 at rank 32. *)

val ttmc_suite : instance list
(** nell2 / netflix / poisson1 at rank 8. *)

val sddmm_suite : instance list
(** bcsstk17 / cant at rank 512. *)

val mmc_suite : instance list
(** Matrix-multiply chains with Transformer attention shapes
    (Table II's NLP application): BERT-base and GPT-2-small layer sizes. *)

val tcl_suite : instance list
(** Tensor contraction layers replacing the first dense layers of AlexNet
    and VGG-16 (Kossaifi et al.). *)

val all : instance list
(** The Fig 6 suite: MTTKRP + TTMc + SDDMM. *)

val extended : instance list
(** [all] plus the MMc and TCL families, for the versatility study. *)
