lib/workloads/non_dnn.mli: Sun_tensor
