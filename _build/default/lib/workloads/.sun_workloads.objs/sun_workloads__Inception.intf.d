lib/workloads/inception.mli: Sun_tensor
