lib/workloads/resnet18.ml: List Sun_tensor
