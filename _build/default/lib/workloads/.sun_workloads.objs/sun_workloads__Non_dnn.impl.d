lib/workloads/non_dnn.ml: List Sun_tensor
