lib/workloads/resnet18.mli: Sun_tensor
