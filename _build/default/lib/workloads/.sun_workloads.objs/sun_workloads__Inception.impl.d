lib/workloads/inception.ml: List Sun_tensor
