(** Inception-v3 convolution layers (Szegedy et al., CVPR 2016), including
    the asymmetric 1x7 / 7x1 / 1x3 / 3x1 factorized convolutions that break
    the symmetric-filter assumption of dMazeRunner (paper Fig 7).

    [weight_update_layers] are the backward-weights workloads (batch 16 in
    the paper's Fig 7): the weight gradient is the output operand. *)

type layer = { layer_name : string; workload : Sun_tensor.Workload.t }

val conv_layers : ?batch:int -> unit -> layer list
val weight_update_layers : ?batch:int -> unit -> layer list

val example_layer : Sun_tensor.Workload.t
(** The Table I space-size example: a mid-network 17x17 layer. *)
