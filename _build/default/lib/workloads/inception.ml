module C = Sun_tensor.Catalog

type layer = { layer_name : string; workload : Sun_tensor.Workload.t }

(* name, k, c, p, q, r, s *)
let shapes =
  [
    ("3x3_stem", 32, 32, 147, 147, 3, 3);
    ("3x3_early", 64, 32, 147, 147, 3, 3);
    ("1x1_5b", 64, 192, 35, 35, 1, 1);
    ("5x5_5b", 64, 48, 35, 35, 5, 5);
    ("3x3_5b", 96, 64, 35, 35, 3, 3);
    ("1x7_mid", 128, 128, 17, 17, 1, 7);
    ("7x1_mid", 128, 128, 17, 17, 7, 1);
    ("1x7_deep", 192, 192, 17, 17, 1, 7);
    ("7x1_deep", 192, 192, 17, 17, 7, 1);
    ("1x3_deep", 384, 384, 8, 8, 1, 3);
    ("3x1_deep", 384, 384, 8, 8, 3, 1);
  ]

let conv_layers ?(batch = 1) () =
  List.map
    (fun (layer_name, k, c, p, q, r, s) ->
      {
        layer_name;
        workload = C.conv2d ~name:("inception/" ^ layer_name) ~n:batch ~k ~c ~p ~q ~r ~s ();
      })
    shapes

let weight_update_layers ?(batch = 16) () =
  List.map
    (fun (layer_name, k, c, p, q, r, s) ->
      {
        layer_name;
        workload =
          C.conv2d_weight_update ~name:("inception-wu/" ^ layer_name) ~n:batch ~k ~c ~p ~q ~r ~s ();
      })
    shapes

let example_layer =
  C.conv2d ~name:"inception/table1-example" ~n:1 ~k:192 ~c:128 ~p:17 ~q:17 ~r:3 ~s:3 ()
