(** ResNet-18 convolution layers (He et al., CVPR 2016), 224x224 input.

    Used by Fig 8 (inference, batch 16, Simba-like accelerator) and the
    Table VI / Fig 9 studies. Layer shapes are the standard unique
    convolutions of the network; [count] is how many times the shape occurs
    so totals can be weighted. *)

type layer = {
  layer_name : string;
  workload : Sun_tensor.Workload.t;
  count : int;  (** occurrences of this shape in the network *)
}

val layers : ?batch:int -> unit -> layer list
(** All unique convolution shapes, input-to-output order. Default batch 1. *)

val representative : ?batch:int -> unit -> layer list
(** A four-layer subset (early / mid / late / downsample) for the costlier
    ablations. *)
