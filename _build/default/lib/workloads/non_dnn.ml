module C = Sun_tensor.Catalog

type instance = { instance_name : string; workload : Sun_tensor.Workload.t }

let tensor3_shapes =
  [ ("nell2", (12096, 9216, 28800)); ("netflix", (480000, 17760, 2160)); ("poisson1", (3072, 3072, 3072)) ]

let matrix_shapes = [ ("bcsstk17", 10944); ("cant", 62400) ]

let mttkrp_suite =
  List.map
    (fun (name, (i, k, l)) ->
      {
        instance_name = "mttkrp/" ^ name;
        workload = C.mttkrp ~name:("mttkrp/" ^ name) ~i ~j:32 ~k ~l ();
      })
    tensor3_shapes

let ttmc_suite =
  List.map
    (fun (name, (i, j, k)) ->
      {
        instance_name = "ttmc/" ^ name;
        workload = C.ttmc ~name:("ttmc/" ^ name) ~i ~j ~k ~l:8 ~m:8 ();
      })
    tensor3_shapes

let sddmm_suite =
  List.map
    (fun (name, n) ->
      {
        instance_name = "sddmm/" ^ name;
        workload = C.sddmm ~name:("sddmm/" ^ name) ~i:n ~j:n ~k:512 ();
      })
    matrix_shapes

let mmc_suite =
  (* attention-style chains out[i,l] = A[i,j] B[j,k] C[k,l] *)
  [
    ( "mmc/bert-base",
      C.mmc ~name:"mmc/bert-base" ~i:512 ~j:768 ~k:768 ~l:768 () );
    ( "mmc/gpt2-small",
      C.mmc ~name:"mmc/gpt2-small" ~i:1024 ~j:768 ~k:768 ~l:768 () );
  ]
  |> List.map (fun (instance_name, workload) -> { instance_name; workload })

let tcl_suite =
  (* contraction layers over the flattened conv activations:
     AlexNet 256x6x6 -> 64x4x4, VGG-16 512x7x7 -> 128x4x4 (ranks per
     Kossaifi et al., rounded to composite sizes) *)
  [
    ( "tcl/alexnet",
      C.tcl ~name:"tcl/alexnet" ~i:256 ~j:6 ~k:6 ~l:64 ~m:4 ~n:4 () );
    ( "tcl/vgg16",
      C.tcl ~name:"tcl/vgg16" ~i:512 ~j:7 ~k:7 ~l:128 ~m:4 ~n:4 () );
  ]
  |> List.map (fun (instance_name, workload) -> { instance_name; workload })

let all = mttkrp_suite @ ttmc_suite @ sddmm_suite

let extended = all @ mmc_suite @ tcl_suite
