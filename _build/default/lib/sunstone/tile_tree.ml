module Factor = Sun_util.Factor

type dim = Sun_tensor.Workload.dim

type assignment = (dim * int) list

let factor_of assignment d = match List.assoc_opt d assignment with Some f -> f | None -> 1

type outcome = { frontier : assignment list; explored : int }

let canonical grow_dims assignment = List.map (fun d -> (d, factor_of assignment d)) grow_dims

(* Thin a sorted divisor list to [max_steps] geometrically spaced rungs,
   keeping the first and last. *)
let thin max_steps divisors =
  let n = List.length divisors in
  if n <= max_steps then divisors
  else begin
    let arr = Array.of_list divisors in
    let picked =
      List.init max_steps (fun i -> arr.(i * (n - 1) / (max_steps - 1)))
    in
    Sun_util.Listx.unique compare picked
  end

let search ?(max_steps = max_int) ~grow_dims ~remaining ~fits () =
  let ladder =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun d -> Hashtbl.replace tbl d (thin max_steps (Factor.divisors (remaining d))))
      grow_dims;
    fun d -> Hashtbl.find tbl d
  in
  let next_step d current =
    let rec go = function
      | [] -> None
      | x :: _ when x > current -> Some x
      | _ :: rest -> go rest
    in
    go (ladder d)
  in
  let explored = ref 0 in
  let seen = Hashtbl.create 64 in
  let frontier = ref [] in
  let rec visit assignment =
    let key = canonical grow_dims assignment in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr explored;
      let grown =
        List.filter_map
          (fun d ->
            match next_step d (factor_of assignment d) with
            | Some f' ->
              let child = (d, f') :: List.remove_assoc d assignment in
              if fits child then Some child else None
            | None -> None)
          grow_dims
      in
      if grown = [] then frontier := key :: !frontier else List.iter visit grown
    end
  in
  let root = canonical grow_dims [] in
  if fits root then visit root else incr explored;
  { frontier = List.rev !frontier; explored = !explored }
