type dim = Sun_tensor.Workload.dim

type outcome = { candidates : (dim * int) list list; explored : int }

let product assignment = List.fold_left (fun acc (_, f) -> acc * f) 1 assignment

let candidates ~fanout ~dims ~remaining ?(min_utilization = 0.0) () =
  if fanout <= 1 || dims = [] then { candidates = [ List.map (fun d -> (d, 1)) dims ]; explored = 1 }
  else begin
    let fits a = product a <= fanout in
    let out = Tile_tree.search ~max_steps:24 ~grow_dims:dims ~remaining ~fits () in
    let threshold = min_utilization *. float_of_int fanout in
    let selected =
      List.filter (fun a -> float_of_int (product a) >= threshold) out.Tile_tree.frontier
    in
    (* below the threshold, the maximal assignments are still the best
       available spatial reuse — only an empty frontier degrades to ones *)
    let candidates =
      match (selected, out.Tile_tree.frontier) with
      | [], [] -> [ List.map (fun d -> (d, 1)) dims ]
      | [], frontier -> frontier
      | selected, _ -> selected
    in
    { candidates; explored = out.Tile_tree.explored }
  end
