lib/sunstone/unroll.mli: Sun_tensor
