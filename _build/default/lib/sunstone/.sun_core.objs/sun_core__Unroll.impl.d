lib/sunstone/unroll.ml: List Sun_tensor Tile_tree
