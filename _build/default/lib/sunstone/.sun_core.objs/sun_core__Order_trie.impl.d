lib/sunstone/order_trie.ml: Hashtbl List String Sun_tensor
