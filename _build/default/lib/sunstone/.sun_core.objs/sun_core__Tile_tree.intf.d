lib/sunstone/tile_tree.mli: Sun_tensor
