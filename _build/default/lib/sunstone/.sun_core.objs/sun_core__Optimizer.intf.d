lib/sunstone/optimizer.mli: Stdlib Sun_arch Sun_cost Sun_mapping Sun_tensor
