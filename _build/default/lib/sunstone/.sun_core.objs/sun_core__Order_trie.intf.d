lib/sunstone/order_trie.mli: Sun_tensor
