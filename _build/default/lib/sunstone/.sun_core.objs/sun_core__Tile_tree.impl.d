lib/sunstone/tile_tree.ml: Array Hashtbl List Sun_tensor Sun_util
