lib/sunstone/optimizer.ml: Array Buffer Fun Hashtbl List Order_trie String Sun_arch Sun_cost Sun_mapping Sun_tensor Sun_util Tile_tree Unroll
