(** Loop-ordering search space as a pruned trie (Section IV-A, Fig 4).

    Nodes are partially determined loop orders, innermost loops first; each
    node is annotated with the operands the suffix reuses. Children extend
    the suffix outward by one loop. Pruning applies:

    - {b Ordering Principle 3}: a child whose added loop offers no reuse
      beyond its parent is not extended further — outer loop order beyond
      the reuse-determining suffix does not change any access count, so the
      suffix is completed canonically;
    - {b subsumption}: among siblings, a node whose reuse signature is
      strictly contained in another sibling's is dropped (Fig 4's xxxC
      pruned in favour of xxCR).

    The reuse annotation mirrors the cost model's refill scan exactly: a
    loop over a non-indexing dimension of an operand fully reuses it as
    long as every loop inside is also non-indexing for it; one loop over a
    sliding-window dimension adds partial reuse and terminates the chain. *)

type dim = Sun_tensor.Workload.dim

type reuse_kind = Full | Partial

type signature = (string * reuse_kind) list
(** Sorted (operand-name, kind) pairs reused by a suffix. *)

type candidate = {
  order : dim list;  (** complete loop order, outermost first *)
  suffix : dim list;  (** the reuse-determining innermost loops, innermost first *)
  signature : signature;
  reused_operands : string list;  (** operands with [Full] reuse, sorted *)
}

type stats = { nodes_visited : int; nodes_pruned : int }

val suffix_signature : Sun_tensor.Workload.t -> dim list -> signature
(** Signature of a suffix given innermost-first; exposed for tests. *)

val candidates : Sun_tensor.Workload.t -> candidate list
(** The pruned set of representative loop orders for one memory level of
    the given workload. Deterministic: dimensions are considered in
    workload declaration order. *)

val candidates_with_stats : Sun_tensor.Workload.t -> candidate list * stats

val all_orders_count : Sun_tensor.Workload.t -> int
(** |dims|! — the unpruned ordering space, for space-size comparisons. *)
