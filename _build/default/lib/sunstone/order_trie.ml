module W = Sun_tensor.Workload

type dim = W.dim

type reuse_kind = Full | Partial

type signature = (string * reuse_kind) list

(* Rich signature used internally: per operand, the set of suffix loops
   granting full reuse and whether a sliding-window loop grants partial
   reuse. Fig 4's pruning needs the dim sets: xxCR (ofmap reused across R
   and C) strictly dominates xxxC (ofmap reused across C only). *)
type rich = (string * (dim list * bool)) list

type candidate = {
  order : dim list;
  suffix : dim list;
  signature : signature;
  reused_operands : string list;
}

type stats = { nodes_visited : int; nodes_pruned : int }

(* Mirror of the cost model's refill scan: walk the suffix innermost-first
   per operand, absorbing non-indexing loops (full reuse) and at most one
   sliding-window loop (partial reuse). *)
let rich_signature w suffix : rich =
  let operand_entry (op : W.operand) =
    let sliding = W.sliding_dims op in
    let rec scan full = function
      | [] -> (full, false)
      | d :: rest ->
        if not (W.is_indexing op d) then scan (d :: full) rest
        else if List.mem d sliding then (full, true)
        else (full, false)
    in
    let full, partial = scan [] suffix in
    if full = [] && not partial then None
    else Some (op.W.name, (List.sort String.compare full, partial))
  in
  List.sort compare (List.filter_map operand_entry w.W.operands)

let suffix_signature w suffix =
  List.concat_map
    (fun (op, (full, partial)) ->
      (if full <> [] then [ (op, Full) ] else []) @ if partial then [ (op, Partial) ] else [])
    (rich_signature w suffix)
  |> List.sort compare

(* [leq a b]: every reuse in [a] is matched or exceeded in [b]. *)
let leq (a : rich) (b : rich) =
  List.for_all
    (fun (op, (dims_a, partial_a)) ->
      match List.assoc_opt op b with
      | None -> dims_a = [] && not partial_a
      | Some (dims_b, partial_b) ->
        List.for_all (fun d -> List.mem d dims_b) dims_a && ((not partial_a) || partial_b))
    a

let lt a b = leq a b && not (leq b a)

let all_orders_count w =
  let n = List.length (W.dim_names w) in
  let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
  fact n

let candidates_with_stats w =
  let dims = W.dim_names w in
  let visited = ref 0 and pruned = ref 0 in
  let leaves = ref [] in
  let emit suffix rich =
    let outer = List.filter (fun d -> not (List.mem d suffix)) dims in
    let order = outer @ List.rev suffix in
    let signature =
      List.concat_map
        (fun (op, (full, partial)) ->
          (if full <> [] then [ (op, Full) ] else []) @ if partial then [ (op, Partial) ] else [])
        rich
      |> List.sort compare
    in
    let reused_operands =
      List.sort String.compare
        (List.filter_map (fun (op, (full, _)) -> if full <> [] then Some op else None) rich)
    in
    leaves := { order; suffix; signature; reused_operands } :: !leaves
  in
  let rec expand suffix rich remaining =
    incr visited;
    let children =
      List.filter_map
        (fun d ->
          let suffix' = suffix @ [ d ] in
          let rich' = rich_signature w suffix' in
          (* Principle 3: extend only if the added loop gains reuse *)
          if lt rich rich' then Some (d, suffix', rich') else None)
        remaining
    in
    pruned := !pruned + (List.length remaining - List.length children);
    (* sibling subsumption: drop children dominated by another sibling *)
    let indexed = List.mapi (fun j c -> (c, j)) children in
    let survivors =
      List.filteri
        (fun i (_, _, si) ->
          not
            (List.exists
               (fun ((_, _, sj), j) -> i <> j && (lt si sj || (leq si sj && leq sj si && j < i)))
               indexed))
        children
    in
    pruned := !pruned + (List.length children - List.length survivors);
    if survivors = [] then emit suffix rich
    else
      List.iter
        (fun (d, suffix', rich') ->
          expand suffix' rich' (List.filter (fun d' -> d' <> d) remaining))
        survivors
  in
  expand [] [] dims;
  (* global dedup: cousins like xxAB / xxBA share signature and suffix set *)
  let key c = (c.signature, List.sort String.compare c.suffix) in
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem seen k then begin
          incr pruned;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (List.rev !leaves)
  in
  (unique, { nodes_visited = !visited; nodes_pruned = !pruned })

let candidates w = fst (candidates_with_stats w)
