(** Spatial-unrolling candidates under the Spatial Unrolling Principle
    (Section III-B).

    Given the operand [op] temporally reused at the level above the fanout,
    only the *indexing* dimensions of [op] are unrolled — unrolling a
    non-indexing dimension would spatially reuse the already-optimized
    operand. Candidates are the maximal assignments ("high throughput"
    pruning): no factor can be raised to its next divisor without exceeding
    the fanout. *)

type dim = Sun_tensor.Workload.dim

type outcome = { candidates : (dim * int) list list; explored : int }

val candidates :
  fanout:int ->
  dims:dim list ->
  remaining:(dim -> int) ->
  ?min_utilization:float ->
  unit ->
  outcome
(** [candidates ~fanout ~dims ~remaining ()] are the maximal unrollings of
    [dims] with product within [fanout], each factor dividing its remaining
    extent. [min_utilization] (fraction of [fanout], default 0) additionally
    filters candidates that underuse the array; when every maximal
    assignment falls below the threshold the unfiltered frontier is
    returned (the best spatial reuse available), and the all-ones
    assignment only when [fanout = 1] or [dims] is empty. *)
