(** Tiling search tree with Tiling-Principle pruning (Section IV-B, Fig 5).

    Starting from the all-ones tile, each tree edge enlarges one growable
    dimension to the next divisor of its remaining extent. A node with a
    fitting child is pruned (the child offers strictly more reuse — the
    Tiling Principle); nodes that fit but cannot be enlarged in any growable
    dimension are the frontier of candidate tiles.

    The same monotone search is reused for spatial-unrolling candidates (see
    {!Unroll}), where "fits" means the unrolled product stays within the
    fanout. *)

type dim = Sun_tensor.Workload.dim

type assignment = (dim * int) list
(** Factors for the growable dimensions; absent dimensions are 1. *)

val factor_of : assignment -> dim -> int

type outcome = {
  frontier : assignment list;  (** maximal fitting tiles, deterministic order *)
  explored : int;  (** nodes visited, for space-size accounting *)
}

val search :
  ?max_steps:int ->
  grow_dims:dim list ->
  remaining:(dim -> int) ->
  fits:(assignment -> bool) ->
  unit ->
  outcome
(** [search ~grow_dims ~remaining ~fits ()] walks the tree. Factors assigned
    to a dimension are always divisors of [remaining d]. If even the
    all-ones root does not fit, the frontier is empty.

    [max_steps] (default unlimited) thins each dimension's divisor ladder to
    at most that many geometrically spaced rungs (always keeping 1 and the
    full extent) — dimensions in the tens of thousands (the non-DNN tensor
    workloads) otherwise make the walk quadratically expensive for no
    meaningful gain in tile choice. *)
