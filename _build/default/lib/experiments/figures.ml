module W = Sun_tensor.Workload
module Catalog = Sun_tensor.Catalog
module Reuse = Sun_tensor.Reuse
module Presets = Sun_arch.Presets
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Mapper = Sun_baselines.Mapper
module Space_size = Sun_baselines.Space_size
module Table_fmt = Sun_util.Table_fmt
module Resnet18 = Sun_workloads.Resnet18
module Inception = Sun_workloads.Inception
module Non_dnn = Sun_workloads.Non_dnn

let buf_add buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

(* ------------------------------------------------------------------ *)

let table1 () =
  let buf = Buffer.create 1024 in
  buf_add buf "Table I: optimization-space size per tool";
  buf_add buf "Workload: Inception-v3 example layer (K192 C128 17x17 R3S3), conventional accelerator";
  buf_add buf "";
  let entries = Space_size.table Inception.example_layer Presets.conventional in
  let rows =
    List.map
      (fun (e : Space_size.entry) ->
        [
          e.Space_size.tool;
          string_of_int e.Space_size.tile_dims;
          string_of_int e.Space_size.unroll_dims;
          Table_fmt.si e.Space_size.space;
        ])
      entries
  in
  buf_add buf "%s"
    (Table_fmt.render ~header:[ "tool"; "tile dims"; "unroll dims"; "space size" ] ~rows);
  (match
     ( List.find_opt (fun (e : Space_size.entry) -> e.Space_size.tool = "timeloop") entries,
       List.find_opt (fun (e : Space_size.entry) -> e.Space_size.tool = "sunstone") entries )
   with
  | Some tl, Some sun when sun.Space_size.space > 0.0 ->
    buf_add buf "";
    buf_add buf "Timeloop space / Sunstone space = %s (paper: ~10^7x smaller)"
      (Table_fmt.si (tl.Space_size.space /. sun.Space_size.space))
  | _ -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let table3 () =
  let buf = Buffer.create 512 in
  buf_add buf "Table III: inferred reuse for 1-D convolution (K4 C4 P7 R3)";
  let w = Catalog.conv1d ~k:4 ~c:4 ~p:7 ~r:3 () in
  let table = Reuse.analyze w in
  let rows =
    List.map
      (fun (e : Reuse.entry) ->
        let dims ds = if ds = [] then "-" else String.concat ", " (List.map String.lowercase_ascii ds) in
        [
          e.Reuse.operand.W.name;
          dims e.Reuse.indexed_by;
          dims e.Reuse.reused_by;
          dims e.Reuse.partially_reused_by;
        ])
      table
  in
  buf_add buf "%s"
    (Table_fmt.render ~header:[ "tensor"; "indexed by"; "reused by"; "partially reused by" ] ~rows);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let table6 ?(layers = 4) () =
  let buf = Buffer.create 1024 in
  buf_add buf "Table VI: effect of optimization order (ResNet-18 layers, conventional accelerator)";
  buf_add buf "";
  let selected = Sun_util.Listx.take layers (Resnet18.representative ()) in
  let configs =
    [
      ("bottom-up / unroll->tile->order", { Opt.default_config with Opt.intra = Opt.Unrolling_first });
      ("bottom-up / tile->unroll->order", { Opt.default_config with Opt.intra = Opt.Tiling_first });
      ("bottom-up / order->tile->unroll", { Opt.default_config with Opt.intra = Opt.Ordering_first });
      ( "top-down  / unroll->tile->order",
        { Opt.default_config with Opt.direction = Opt.Top_down; Opt.intra = Opt.Unrolling_first } );
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let space, edp =
          List.fold_left
            (fun (space, edp) (l : Resnet18.layer) ->
              match Opt.optimize ~config l.Resnet18.workload Presets.conventional with
              | Ok r -> (space + r.Opt.stats.Opt.examined, edp +. r.Opt.cost.Model.edp)
              | Error _ -> (space, edp))
            (0, 0.0) selected
        in
        [ name; string_of_int space; Table_fmt.si edp ])
      configs
  in
  buf_add buf "%s" (Table_fmt.render ~header:[ "order of optimization"; "space size"; "EDP sum" ] ~rows);
  buf_add buf "";
  buf_add buf
    "Expected shape: the three bottom-up variants reach the same EDP; top-down examines ~10-100x more.";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let render_suite buf ~title rows =
  buf_add buf "%s" title;
  let tool_names =
    match rows with [] -> [] | r :: _ -> List.map fst r.Runners.outcomes
  in
  let edp_rows =
    List.map
      (fun (r : Runners.row) ->
        r.Runners.workload_name :: List.map (fun (_, o) -> Runners.edp_cell o) r.Runners.outcomes)
      rows
  in
  buf_add buf "%s" (Table_fmt.render ~header:("EDP" :: tool_names) ~rows:edp_rows);
  buf_add buf "";
  let time_rows =
    List.map
      (fun (r : Runners.row) ->
        r.Runners.workload_name :: List.map (fun (_, o) -> Runners.time_cell o) r.Runners.outcomes)
      rows
  in
  buf_add buf "%s" (Table_fmt.render ~header:("time-to-solution" :: tool_names) ~rows:time_rows);
  buf_add buf "";
  List.iter
    (fun tool ->
      if tool <> "sunstone" then begin
        let ratio = Runners.geomean_ratio_vs ~baseline:"sunstone" ~tool rows in
        let speed = Runners.speedup_vs ~baseline:"sunstone" ~tool rows in
        let invalid = Runners.invalid_count ~tool rows in
        buf_add buf "%-12s EDP vs sunstone: %s   time vs sunstone: %s   invalid: %d/%d" tool
          (match ratio with Some r -> Printf.sprintf "%.2fx" r | None -> "n/a")
          (match speed with Some s -> Printf.sprintf "%.1fx" s | None -> "n/a")
          invalid (List.length rows)
      end)
    tool_names

let fig6 () =
  let buf = Buffer.create 2048 in
  let workloads =
    List.map (fun (i : Non_dnn.instance) -> (i.Non_dnn.instance_name, i.Non_dnn.workload)) Non_dnn.all
  in
  let rows =
    Runners.run_suite
      ~tools:[ Runners.sunstone (); Runners.timeloop_fast; Runners.timeloop_slow ]
      ~workloads ~arch:Presets.conventional
  in
  render_suite buf
    ~title:"Fig 6: non-DNN workloads (MTTKRP r32, TTMc r8, SDDMM r512) on the conventional accelerator"
    rows;
  Buffer.contents buf

let fig7 ?(batch = 16) () =
  let buf = Buffer.create 2048 in
  let workloads =
    List.map
      (fun (l : Inception.layer) -> (l.Inception.layer_name, l.Inception.workload))
      (Inception.weight_update_layers ~batch ())
  in
  let rows =
    Runners.run_suite
      ~tools:
        [
          Runners.sunstone ();
          Runners.timeloop_fast;
          Runners.timeloop_slow;
          Runners.dmaze_fast;
          Runners.dmaze_slow;
          Runners.interstellar;
        ]
      ~workloads ~arch:Presets.conventional
  in
  render_suite buf
    ~title:
      (Printf.sprintf "Fig 7: Inception-v3 weight update (batch %d) on the conventional accelerator"
         batch)
    rows;
  Buffer.contents buf

let fig8 ?(batch = 16) () =
  let buf = Buffer.create 2048 in
  let workloads =
    List.map (fun (l : Resnet18.layer) -> (l.Resnet18.layer_name, l.Resnet18.workload))
      (Resnet18.layers ~batch ())
  in
  let rows =
    Runners.run_suite
      ~tools:[ Runners.sunstone (); Runners.timeloop_fast; Runners.timeloop_slow; Runners.cosa ]
      ~workloads ~arch:Presets.simba_like
  in
  render_suite buf
    ~title:(Printf.sprintf "Fig 8: ResNet-18 inference (batch %d) on the Simba-like accelerator" batch)
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let fig9 () =
  let buf = Buffer.create 2048 in
  buf_add buf "Fig 9: tiling/unrolling overheads on a DianNao-like accelerator (ResNet-18)";
  buf_add buf "";
  let layers = Resnet18.layers () in
  let arch = Presets.diannao_like in
  let results =
    List.filter_map
      (fun (l : Resnet18.layer) ->
        match Opt.optimize l.Resnet18.workload arch with
        | Error _ -> None
        | Ok r ->
          (* the compiler's layout pass: tune the analytic schedule against
             the simulated instruction/reorder overheads *)
          let _, program, opt = Sun_diannao.Tuner.tune l.Resnet18.workload r.Opt.mapping in
          let naive = Sun_diannao.Simulator.naive l.Resnet18.workload in
          Some (l, program, opt, naive))
      layers
  in
  (* Fig 9a: naive vs optimized *)
  let module S = Sun_diannao.Simulator in
  let rows9a =
    List.map
      (fun ((l : Resnet18.layer), _, opt, naive) ->
        let n = S.total naive.S.energy and o = S.total opt.S.energy in
        [ l.Resnet18.layer_name; Table_fmt.si n; Table_fmt.si o; Printf.sprintf "%.1fx" (n /. o) ])
      results
  in
  let weighted f =
    List.fold_left
      (fun acc ((l : Resnet18.layer), p, o, n) -> acc +. (float_of_int l.Resnet18.count *. f (l, p, o, n)))
      0.0 results
  in
  let total_naive = weighted (fun (_, _, _, n) -> S.total n.S.energy) in
  let total_opt = weighted (fun (_, _, o, _) -> S.total o.S.energy) in
  buf_add buf "%s"
    (Table_fmt.render
       ~header:[ "layer"; "naive energy (pJ)"; "optimized (pJ)"; "saving" ]
       ~rows:
         (rows9a
         @ [
             [
               "TOTAL (weighted)";
               Table_fmt.si total_naive;
               Table_fmt.si total_opt;
               Printf.sprintf "%.1fx" (total_naive /. total_opt);
             ];
           ]));
  buf_add buf "";
  (* Fig 9b: energy breakdown *)
  let rows9b =
    List.map
      (fun ((l : Resnet18.layer), program, opt, _) ->
        let e = opt.S.energy in
        let t = S.total e in
        let pct v = Printf.sprintf "%.1f%%" (100.0 *. v /. t) in
        [
          l.Resnet18.layer_name;
          pct e.S.dram;
          pct e.S.nbin;
          pct e.S.sb;
          pct e.S.nbout;
          pct e.S.mac;
          pct e.S.instruction_fetch;
          pct e.S.reorder;
          string_of_int opt.S.events.S.instructions;
          string_of_int program.Sun_diannao.Compiler.passes;
        ])
      results
  in
  buf_add buf "%s"
    (Table_fmt.render
       ~header:[ "layer"; "DRAM"; "NBin"; "SB"; "NBout"; "MAC"; "instr"; "reorder"; "#instr"; "#passes" ]
       ~rows:rows9b);
  buf_add buf "";
  let total_instr =
    weighted (fun (_, _, o, _) -> float_of_int o.S.events.S.instructions)
  in
  let instr_pct = weighted (fun (_, _, o, _) -> o.S.energy.S.instruction_fetch) /. total_opt in
  let reorder_pct = weighted (fun (_, _, o, _) -> o.S.energy.S.reorder) /. total_opt in
  buf_add buf "Network totals: %.2fM instructions; instruction overhead %.1f%%; reorder overhead %.2f%%"
    (total_instr /. 1e6) (100.0 *. instr_pct) (100.0 *. reorder_pct);
  buf_add buf "(paper: 4.1M instructions, ~5%% instruction and ~0.2%% reorder overhead, 2.9x saving)";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let ablation ?(layers = 3) () =
  let buf = Buffer.create 2048 in
  buf_add buf "Ablation: Sunstone design choices (ResNet-18 layers, conventional + Simba)";
  buf_add buf "";
  let selected = Sun_util.Listx.take layers (Resnet18.representative ~batch:16 ()) in
  let variants =
    [
      ("default (beam 12)", Opt.default_config);
      ("no alpha-beta", { Opt.default_config with Opt.alpha_beta = false });
      ("no refinement", { Opt.default_config with Opt.refine = false });
      ("beam 1 (greedy)", { Opt.default_config with Opt.beam_width = 1 });
      ("beam 4", { Opt.default_config with Opt.beam_width = 4 });
      ("beam 32", { Opt.default_config with Opt.beam_width = 32 });
      ("no utilization floor", { Opt.default_config with Opt.min_spatial_utilization = 0.0 });
    ]
  in
  let run_on arch_name arch =
    buf_add buf "-- %s --" arch_name;
    let rows =
      List.map
        (fun (name, config) ->
          let edp, examined, secs =
            List.fold_left
              (fun (edp, ex, secs) (l : Resnet18.layer) ->
                match Opt.optimize ~config l.Resnet18.workload arch with
                | Ok r ->
                  ( edp +. r.Opt.cost.Model.edp,
                    ex + r.Opt.stats.Opt.examined,
                    secs +. r.Opt.stats.Opt.wall_seconds )
                | Error _ -> (edp, ex, secs))
              (0.0, 0, 0.0) selected
          in
          [ name; Table_fmt.si edp; string_of_int examined; Table_fmt.seconds secs ])
        variants
    in
    buf_add buf "%s"
      (Table_fmt.render ~header:[ "variant"; "EDP sum"; "examined"; "time" ] ~rows);
    buf_add buf ""
  in
  run_on "conventional" Presets.conventional;
  run_on "simba-like" Presets.simba_like;
  buf_add buf
    "Reading: on the flat conventional machine every variant converges (the per-level candidate";
  buf_add buf
    "sets are small and good); on the 4-level Simba hierarchy the beam matters (greedy loses";
  buf_add buf
    "~8%%, saturating by width ~12), local refinement recovers ~6%%, and alpha-beta only fires";
  buf_add buf "once the incumbent is tight enough to dominate committed partial energies.";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let versatility () =
  let buf = Buffer.create 2048 in
  buf_add buf
    "Versatility: every Table II workload family under one scheduler (conventional accelerator)";
  buf_add buf "";
  let fc = Catalog.matmul ~name:"fc/resnet-head" ~m:512 ~n:1000 ~k:512 () in
  let conv = (List.nth (Resnet18.layers ~batch:16 ()) 1).Resnet18.workload in
  let extras =
    [ ("conv/resnet-conv2", conv); ("fc/resnet-head", fc) ]
    @ List.map
        (fun (i : Non_dnn.instance) -> (i.Non_dnn.instance_name, i.Non_dnn.workload))
        (Non_dnn.mmc_suite @ Non_dnn.tcl_suite)
  in
  let rows =
    List.map
      (fun (name, w) ->
        let reuse = Sun_tensor.Reuse.analyze w in
        let reused_ops =
          String.concat "," (List.filter_map
            (fun (e : Sun_tensor.Reuse.entry) ->
              if e.Sun_tensor.Reuse.reused_by <> [] then Some e.Sun_tensor.Reuse.operand.W.name
              else None)
            reuse)
        in
        match Opt.optimize w Presets.conventional with
        | Ok r ->
          [
            name;
            string_of_int (List.length w.W.dims);
            reused_ops;
            Table_fmt.si r.Opt.cost.Model.edp;
            Printf.sprintf "%.0f%%" (100.0 *. r.Opt.cost.Model.spatial_utilization);
            Table_fmt.seconds r.Opt.stats.Opt.wall_seconds;
          ]
        | Error _ -> [ name; "-"; reused_ops; "UNMAPPABLE"; "-"; "-" ])
      extras
  in
  buf_add buf "%s"
    (Table_fmt.render
       ~header:[ "workload"; "dims"; "reusable operands"; "EDP"; "PE util"; "time" ]
       ~rows);
  buf_add buf "";
  buf_add buf
    "Every family is scheduled by the same reuse algebra; no per-workload heuristics involved.";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let scalability () =
  let buf = Buffer.create 2048 in
  buf_add buf "Scalability: adding memory/spatial levels (synthetic deep hierarchies, conv2d K64 C64 56x56)";
  buf_add buf "";
  let w = Catalog.conv2d ~n:1 ~k:64 ~c:64 ~p:56 ~q:56 ~r:3 ~s:3 () in
  let rows =
    List.map
      (fun on_chip ->
        let arch = Presets.deep ~on_chip_levels:on_chip in
        let space = Sun_search.Mapspace.size (Sun_search.Mapspace.create w arch) in
        match Opt.optimize w arch with
        | Ok r ->
          [
            string_of_int (on_chip + 1);
            Table_fmt.si space;
            string_of_int r.Opt.stats.Opt.examined;
            Table_fmt.si r.Opt.cost.Model.edp;
            Table_fmt.seconds r.Opt.stats.Opt.wall_seconds;
          ]
        | Error _ -> [ string_of_int (on_chip + 1); Table_fmt.si space; "-"; "UNMAPPABLE"; "-" ])
      [ 1; 2; 3; 4 ]
  in
  buf_add buf "%s"
    (Table_fmt.render
       ~header:[ "memory levels"; "full map-space"; "sunstone examined"; "EDP"; "time" ]
       ~rows);
  buf_add buf "";
  buf_add buf
    "The full space grows by orders of magnitude per level; Sunstone's examined count and";
  buf_add buf "time-to-solution grow far slower (the paper's scalability claim, Section I).";
  Buffer.contents buf

let all =
  [
    ("table1", table1);
    ("table3", table3);
    ("table6", fun () -> table6 ());
    ("fig6", fig6);
    ("fig7", fun () -> fig7 ());
    ("fig8", fun () -> fig8 ());
    ("fig9", fig9);
    ("ablation", fun () -> ablation ());
    ("versatility", versatility);
    ("scalability", scalability);
  ]
