(** Shared plumbing for the experiment drivers: run a set of mappers over a
    set of workloads and collect paper-style rows. *)

type tool = {
  tool_name : string;
  run :
    Sun_tensor.Workload.t -> Sun_arch.Arch.t -> Sun_baselines.Mapper.outcome;
}

val sunstone : ?config:Sun_core.Optimizer.config -> unit -> tool
(** Sunstone wrapped in the common mapper interface. *)

val sunstone_outcome :
  ?config:Sun_core.Optimizer.config ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Sun_baselines.Mapper.outcome

val timeloop_fast : tool
val timeloop_slow : tool
val dmaze_fast : tool
val dmaze_slow : tool
val interstellar : tool
val cosa : tool

type row = {
  workload_name : string;
  outcomes : (string * Sun_baselines.Mapper.outcome) list;  (** tool name -> outcome *)
}

val run_suite :
  tools:tool list ->
  workloads:(string * Sun_tensor.Workload.t) list ->
  arch:Sun_arch.Arch.t ->
  row list

val edp_cell : Sun_baselines.Mapper.outcome -> string
(** EDP formatted, or ["INVALID"]. *)

val time_cell : Sun_baselines.Mapper.outcome -> string

val geomean_ratio_vs : baseline:string -> tool:string -> row list -> float option
(** Geometric mean over rows (where both are valid) of
    [EDP tool / EDP baseline]. *)

val speedup_vs : baseline:string -> tool:string -> row list -> float option
(** Geometric mean of [time tool / time baseline]. *)

val invalid_count : tool:string -> row list -> int
