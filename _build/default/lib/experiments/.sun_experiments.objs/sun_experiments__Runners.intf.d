lib/experiments/runners.mli: Sun_arch Sun_baselines Sun_core Sun_tensor
