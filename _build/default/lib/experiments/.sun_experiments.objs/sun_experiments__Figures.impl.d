lib/experiments/figures.ml: Buffer List Printf Runners String Sun_arch Sun_baselines Sun_core Sun_cost Sun_diannao Sun_search Sun_tensor Sun_util Sun_workloads
