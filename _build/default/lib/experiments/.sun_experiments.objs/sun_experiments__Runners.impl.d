lib/experiments/runners.ml: Float List Sun_arch Sun_baselines Sun_core Sun_cost Sun_tensor Sun_util
