lib/experiments/figures.mli:
