(** One driver per table and figure of the paper's evaluation (DESIGN.md's
    per-experiment index). Each driver runs the experiment and renders a
    plain-text report with the same rows/series the paper plots, plus the
    summary statistics the paper quotes in prose (speedups, EDP ratios,
    invalid-mapping counts). *)

val table1 : unit -> string
(** Search-space sizes per tool for an Inception-v3 example layer. *)

val table3 : unit -> string
(** Inferred reuse of each tensor in the 1-D convolution example. *)

val table6 : ?layers:int -> unit -> string
(** Optimization-order ablation: bottom-up intra-level variants vs
    top-down, space size and achieved EDP over ResNet-18 layers on the
    conventional (Eyeriss-like) machine. *)

val fig6 : unit -> string
(** Non-DNN workloads (MTTKRP r32, TTMc r8, SDDMM r512) on the conventional
    accelerator: EDP (6a) and time-to-solution (6b) for Sunstone vs
    Timeloop-like fast/slow. *)

val fig7 : ?batch:int -> unit -> string
(** Inception-v3 weight update on the conventional accelerator: EDP (7a)
    and time (7b) for Sunstone, TL fast/slow, dMaze fast/slow, INTER, with
    invalid markers. *)

val fig8 : ?batch:int -> unit -> string
(** ResNet-18 inference on the Simba-like accelerator: EDP (8a) and time
    (8b) for Sunstone, TL fast/slow, CoSA, with invalid markers. *)

val fig9 : unit -> string
(** DianNao overhead study: naive vs dataflow-optimized energy (9a) and the
    per-component energy breakdown incl. instruction-fetch and reordering
    overheads (9b) for ResNet-18 layers. *)

val ablation : ?layers:int -> unit -> string
(** Beyond the paper: sensitivity of Sunstone's own design choices (beam
    width, alpha-beta, local refinement, utilization floor) on
    representative ResNet-18 layers over both evaluated machines. *)

val versatility : unit -> string
(** Beyond Fig 6: all six Table II families — conv, FC, MTTKRP, SDDMM,
    TTMc, MMc (attention) and TCL — scheduled by the same reuse algebra. *)

val scalability : unit -> string
(** The Section I scalability claim: synthetic hierarchies with 2-5 memory
    levels; the full map-space explodes per level while Sunstone's examined
    count grows slowly. *)

val all : (string * (unit -> string)) list
(** Drivers in paper order, keyed ["table1"], ["table3"], ["table6"],
    ["fig6"], ["fig7"], ["fig8"], ["fig9"], plus ["ablation"],
    ["versatility"] and ["scalability"]. *)
