module W = Sun_tensor.Workload
module Opt = Sun_core.Optimizer
module Mapper = Sun_baselines.Mapper
module Model = Sun_cost.Model
module Table_fmt = Sun_util.Table_fmt

type tool = { tool_name : string; run : W.t -> Sun_arch.Arch.t -> Mapper.outcome }

let sunstone_outcome ?config w arch =
  match Opt.optimize ?config w arch with
  | Ok r ->
    {
      Mapper.tool = "sunstone";
      mapping = Some r.Opt.mapping;
      cost = Some r.Opt.cost;
      valid = true;
      examined = r.Opt.stats.Opt.examined;
      wall_seconds = r.Opt.stats.Opt.wall_seconds;
    }
  | Error _ -> Mapper.failure ~tool:"sunstone" ~examined:0 ~wall_seconds:0.0

let sunstone ?config () =
  { tool_name = "sunstone"; run = (fun w arch -> sunstone_outcome ?config w arch) }

let timeloop_fast =
  {
    tool_name = "TL-fast";
    run = (fun w arch -> Sun_baselines.Timeloop_like.run ~config:Sun_baselines.Timeloop_like.fast w arch);
  }

let timeloop_slow =
  {
    tool_name = "TL-slow";
    run = (fun w arch -> Sun_baselines.Timeloop_like.run ~config:Sun_baselines.Timeloop_like.slow w arch);
  }

let dmaze_fast =
  {
    tool_name = "dMaze-fast";
    run = (fun w arch -> Sun_baselines.Dmaze_like.run ~config:Sun_baselines.Dmaze_like.fast w arch);
  }

let dmaze_slow =
  {
    tool_name = "dMaze-slow";
    run = (fun w arch -> Sun_baselines.Dmaze_like.run ~config:Sun_baselines.Dmaze_like.slow w arch);
  }

let interstellar =
  { tool_name = "INTER"; run = (fun w arch -> Sun_baselines.Interstellar_like.run w arch) }

let cosa = { tool_name = "CoSA"; run = (fun w arch -> Sun_baselines.Cosa_like.run w arch) }

type row = { workload_name : string; outcomes : (string * Mapper.outcome) list }

let run_suite ~tools ~workloads ~arch =
  List.map
    (fun (workload_name, w) ->
      let outcomes = List.map (fun t -> (t.tool_name, t.run w arch)) tools in
      { workload_name; outcomes })
    workloads

let edp_cell (o : Mapper.outcome) =
  match o.Mapper.cost with
  | Some c -> Table_fmt.si c.Model.edp
  | None -> "INVALID"

let time_cell (o : Mapper.outcome) = Table_fmt.seconds o.Mapper.wall_seconds

let paired ~baseline ~tool rows =
  List.filter_map
    (fun row ->
      match (List.assoc_opt baseline row.outcomes, List.assoc_opt tool row.outcomes) with
      | Some b, Some t -> Some (b, t)
      | _ -> None)
    rows

let geomean values =
  match values with
  | [] -> None
  | vs ->
    let log_sum = List.fold_left (fun acc v -> acc +. Float.log v) 0.0 vs in
    Some (Float.exp (log_sum /. float_of_int (List.length vs)))

let geomean_ratio_vs ~baseline ~tool rows =
  paired ~baseline ~tool rows
  |> List.filter_map (fun (b, t) ->
         match (b.Mapper.cost, t.Mapper.cost) with
         | Some cb, Some ct when cb.Model.edp > 0.0 -> Some (ct.Model.edp /. cb.Model.edp)
         | _ -> None)
  |> geomean

let speedup_vs ~baseline ~tool rows =
  paired ~baseline ~tool rows
  |> List.filter_map (fun (b, t) ->
         if b.Mapper.wall_seconds > 0.0 && t.Mapper.wall_seconds > 0.0 then
           Some (t.Mapper.wall_seconds /. b.Mapper.wall_seconds)
         else None)
  |> geomean

let invalid_count ~tool rows =
  List.length
    (List.filter
       (fun row ->
         match List.assoc_opt tool row.outcomes with
         | Some o -> not o.Mapper.valid
         | None -> false)
       rows)
