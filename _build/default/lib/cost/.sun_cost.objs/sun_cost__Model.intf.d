lib/cost/model.mli: Format Sun_arch Sun_mapping Sun_tensor
