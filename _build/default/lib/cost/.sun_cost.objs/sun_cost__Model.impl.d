lib/cost/model.ml: Array Float Format Fun Hashtbl List Option Printf Sun_arch Sun_mapping Sun_tensor
