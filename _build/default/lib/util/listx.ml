let cartesian lists =
  let add_axis acc choices =
    List.concat_map (fun prefix -> List.map (fun c -> c :: prefix) choices) acc
  in
  List.map List.rev (List.fold_left add_axis [ [] ] lists)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let min_by key = function
  | [] -> None
  | x :: xs ->
    let best, _ =
      List.fold_left
        (fun (b, kb) y ->
          let ky = key y in
          if ky < kb then (y, ky) else (b, kb))
        (x, key x) xs
    in
    Some best

let sum_by key xs = List.fold_left (fun acc x -> acc +. key x) 0.0 xs

let unique cmp xs =
  let sorted = List.sort cmp xs in
  let rec dedup = function
    | a :: b :: rest when cmp a b = 0 -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let range n = List.init n (fun i -> i)
