(** List combinatorics shared by the search-space machinery. *)

val cartesian : 'a list list -> 'a list list
(** [cartesian \[xs1; xs2; ...\]] is all ways to pick one element from each
    list, in order. [cartesian \[\] = \[\[\]\]]. *)

val permutations : 'a list -> 'a list list
(** All permutations; factorial blowup is the caller's concern. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (or fewer if the list is shorter). *)

val min_by : ('a -> float) -> 'a list -> 'a option
(** Element minimizing the key, or [None] on the empty list. Ties keep the
    earliest element, making searches deterministic. *)

val sum_by : ('a -> float) -> 'a list -> float

val unique : ('a -> 'a -> int) -> 'a list -> 'a list
(** Sorted deduplication under the given comparison. *)

val range : int -> int list
(** [range n] is [\[0; 1; ...; n-1\]]. *)
