let check_pos name n =
  if n <= 0 then invalid_arg (Printf.sprintf "Factor.%s: %d <= 0" name n)

let divisors n =
  check_pos "divisors" n;
  let rec loop d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let large = if d * d = n then large else (n / d) :: large in
      loop (d + 1) (d :: small) large
    else loop (d + 1) small large
  in
  loop 1 [] []

let prime_factorization n =
  check_pos "prime_factorization" n;
  let rec extract n p acc =
    if p * p > n then if n > 1 then (n, 1) :: acc else acc
    else if n mod p = 0 then begin
      let rec count n k = if n mod p = 0 then count (n / p) (k + 1) else (n, k) in
      let n', k = count n 0 in
      extract n' (p + 1) ((p, k) :: acc)
    end
    else extract n (p + 1) acc
  in
  List.rev (extract n 2 [])

let count_divisors n =
  List.fold_left (fun acc (_, k) -> acc * (k + 1)) 1 (prime_factorization n)

let is_divisor n d = d >= 1 && n mod d = 0

let next_divisor n d =
  check_pos "next_divisor" n;
  let rec loop c = if c > n then None else if n mod c = 0 then Some c else loop (c + 1) in
  loop (d + 1)

(* Binomial coefficient on small arguments; the exponents of prime
   factorizations of tensor dimensions are tiny, so overflow is not a
   concern here. *)
let binomial n k =
  let k = min k (n - k) in
  let rec loop i acc = if i > k then acc else loop (i + 1) (acc * (n - k + i) / i) in
  if k < 0 then 0 else loop 1 1

let count_splits n k =
  check_pos "count_splits" n;
  check_pos "count_splits(k)" k;
  List.fold_left
    (fun acc (_, m) -> acc * binomial (m + k - 1) (k - 1))
    1 (prime_factorization n)

let splits n k =
  check_pos "splits" n;
  check_pos "splits(k)" k;
  let rec go n k =
    if k = 1 then [ [ n ] ]
    else
      List.concat_map (fun d -> List.map (fun rest -> d :: rest) (go (n / d) (k - 1))) (divisors n)
  in
  go n k

let cdiv a b =
  check_pos "cdiv" b;
  (a + b - 1) / b
