(** Wall-clock timing used to report time-to-solution for the mappers. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns the result with its wall-clock
    duration in seconds. *)
