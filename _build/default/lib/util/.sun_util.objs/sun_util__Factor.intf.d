lib/util/factor.mli:
