lib/util/table_fmt.ml: Float List Printf String
