lib/util/listx.mli:
