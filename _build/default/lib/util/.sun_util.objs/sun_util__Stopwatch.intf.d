lib/util/stopwatch.mli:
