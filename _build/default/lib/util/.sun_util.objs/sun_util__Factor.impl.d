lib/util/factor.ml: List Printf
