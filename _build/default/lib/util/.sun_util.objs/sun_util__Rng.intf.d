lib/util/rng.mli:
