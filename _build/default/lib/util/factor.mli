(** Integer factorization helpers used throughout the map-space machinery.

    All functions expect strictly positive arguments and raise
    [Invalid_argument] otherwise. *)

val divisors : int -> int list
(** [divisors n] is the sorted list of positive divisors of [n],
    including [1] and [n]. *)

val prime_factorization : int -> (int * int) list
(** [prime_factorization n] is the list of [(prime, multiplicity)] pairs in
    increasing prime order. [prime_factorization 1 = []]. *)

val count_divisors : int -> int
(** [count_divisors n = List.length (divisors n)], computed without
    materializing the list. *)

val splits : int -> int -> int list list
(** [splits n k] enumerates all ordered tuples [\[f1; ...; fk\]] of positive
    integers with [f1 * ... * fk = n]. The number of such tuples is
    [count_splits n k]. *)

val count_splits : int -> int -> int
(** Number of ordered [k]-tuples of positive integers whose product is [n],
    computed combinatorially (stars and bars per prime). *)

val next_divisor : int -> int -> int option
(** [next_divisor n d] is the smallest divisor of [n] strictly greater than
    [d], or [None] if [d >= n]. *)

val is_divisor : int -> int -> bool
(** [is_divisor n d] is [true] iff [d] divides [n]. *)

val cdiv : int -> int -> int
(** Ceiling division on positive integers. *)
