let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let line cells = String.concat "  " (List.map2 pad widths cells) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: rule :: List.map line rows)

let si v =
  let a = Float.abs v in
  if a = 0.0 then "0"
  else if a >= 1e4 || a < 1e-2 then
    let exp = int_of_float (Float.floor (Float.log10 a)) in
    let mant = v /. (10.0 ** float_of_int exp) in
    Printf.sprintf "%.2fe%d" mant exp
  else if Float.is_integer v && a < 1e4 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let seconds s = if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1000.0) else Printf.sprintf "%.2fs" s
