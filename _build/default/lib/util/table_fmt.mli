(** Plain-text table rendering for the experiment harness output. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a header rule, ready to print. Rows shorter
    than the header are right-padded with empty cells. *)

val si : float -> string
(** Compact engineering formatting: [si 1.2e9 = "1.20e9"], small magnitudes
    printed plainly. Used for EDP and space-size columns. *)

val seconds : float -> string
(** Human-readable duration: ms below one second, otherwise seconds. *)
