type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* keep 62 bits so the native-int conversion stays non-negative *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
