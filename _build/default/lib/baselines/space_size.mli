(** Search-space size accounting per tool (paper Table I).

    Analytic counts follow each tool's published space construction;
    Sunstone's and dMazeRunner's entries are *measured* (nodes their
    directed searches actually touch), matching how the paper contrasts
    constructed-space sizes with pruned-space sizes. *)

type entry = {
  tool : string;
  tile_dims : int;  (** dimensions used to build each temporal-level tile *)
  unroll_dims : int;  (** dimensions considered at each spatial level *)
  space : float;  (** space size for the given workload/architecture *)
}

val timeloop : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Full map-space: all splits of all dimensions across every temporal and
    spatial slot, crossed with every per-level loop order. *)

val cosa : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Same constructed space as Timeloop; the MIP explores it implicitly. *)

val marvel : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Decoupled off-chip / on-chip subspaces: sizes add instead of multiply. *)

val interstellar : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Spatial unrolling fixed to the channel dimensions. *)

val dmaze :
  ?config:Dmaze_like.config -> Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Measured: candidates the utilization-pruned enumeration touches. *)

val sunstone : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry
(** Measured: nodes Sunstone's trie/tile-tree/unrolling passes examine. *)

val table : Sun_tensor.Workload.t -> Sun_arch.Arch.t -> entry list
(** All six rows, Timeloop first, Sunstone last. *)
