(** CoSA-style mapper (Huang et al., ISCA 2021): one-shot scheduling by
    constrained optimization. CoSA approximates the non-linear mapping
    problem as a mixed-integer program in log space and emits a single
    mapping without search.

    We reproduce the approach and its published failure mode: each
    dimension's prime factors are distributed over the memory levels
    proportionally to log-capacity weights of a continuous relaxation, then
    rounded to integers. The relaxation is oblivious to the *joint*
    footprint of the operands sharing a buffer (and to halo terms), so the
    rounded mapping frequently overflows a partition — the "invalid 60% of
    the time" behaviour of the paper's Fig 8. *)

type config = {
  seed : int;  (** tie-breaking in the greedy rounding *)
  utilization_weight : float;
      (** relative preference for pushing factors toward spatial slots *)
}

val default : config

val run :
  ?config:config ->
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Mapper.outcome
