module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Factor = Sun_util.Factor
module Listx = Sun_util.Listx

type config = { seed : int; utilization_weight : float }

let default = { seed = 7; utilization_weight = 1.0 }

(* Flatten a dimension into its prime factors, largest first. *)
let prime_factors n =
  List.concat_map
    (fun (p, k) -> List.init k (fun _ -> p))
    (Factor.prime_factorization n)
  |> List.sort (fun a b -> compare b a)

let run ?(config = default) ?(binding = Fun.id) w arch =
  let timer = Sun_util.Stopwatch.start () in
  let dims = W.dim_names w in
  let num_levels = A.num_levels arch in
  let out = W.output w in
  let remaining = Hashtbl.create 8 in
  List.iter (fun (d, b) -> Hashtbl.replace remaining d b) w.W.dims;
  (* per-operand linearized buffer budgets (see the temporal phase below) *)
  let op_budget lvl_idx (op : W.operand) =
    let lvl = A.level arch lvl_idx in
    if lvl.A.unbounded then infinity
    else
      match A.partition_for lvl ~role:(binding op.W.name) with
      | Some p -> Float.log2 (float_of_int (max p.A.capacity_words 1))
      | None -> 0.0 (* bypassed level: nothing may land here for this op *)
  in
  let ops = Array.of_list w.W.operands in
  let budgets = Array.init num_levels (fun l -> Array.map (op_budget l) ops) in
  let op_assigned = Array.make_matrix num_levels (Array.length ops) 0.0 in
  let fits_op_budgets l d logp =
    let ok = ref true in
    Array.iteri
      (fun oi op ->
        if W.is_indexing op d && op_assigned.(l).(oi) +. logp > budgets.(l).(oi) then ok := false)
      ops;
    !ok
  in
  let charge_ops l d logp =
    Array.iteri
      (fun oi op ->
        if W.is_indexing op d then op_assigned.(l).(oi) <- op_assigned.(l).(oi) +. logp)
      ops
  in
  (* --- spatial one-shot: pack prime factors, output-indexing dims first,
     until each fanout is full (the MIP's utilization objective). A factor
     is charged against the budgets of its own level only; that it also
     occupies every level above is the nonlinearity the relaxation drops,
     and where the rounded mapping can still overflow. --- *)
  let spatial = Hashtbl.create 8 in
  let rng = Sun_util.Rng.create config.seed in
  let dim_preference =
    let indexing, reduction = List.partition (W.is_indexing out) dims in
    Sun_util.Rng.shuffle rng indexing @ reduction
  in
  List.iter
    (fun lvl_idx ->
      let fanout = (A.level arch lvl_idx).A.fanout in
      if fanout > 1 then begin
        let budget = ref fanout in
        List.iter
          (fun d ->
            List.iter
              (fun p ->
                let logp = Float.log2 (float_of_int p) in
                if p <= !budget && fits_op_budgets lvl_idx d logp then begin
                  budget := !budget / p;
                  charge_ops lvl_idx d logp;
                  Hashtbl.replace spatial (d, lvl_idx)
                    (p * try Hashtbl.find spatial (d, lvl_idx) with Not_found -> 1);
                  Hashtbl.replace remaining d (Hashtbl.find remaining d / p)
                end)
              (prime_factors (Hashtbl.find remaining d)))
          dim_preference
      end)
    (Listx.range num_levels);
  (* --- temporal relaxation: per-level log-capacity weights; each prime
     factor goes to the level with the largest remaining deficit. This is
     the linearization: it never checks the joint footprint of the operands
     sharing a buffer, so the rounded result can overflow. --- *)
  (* CoSA's objective maximizes on-chip reuse/utilization: the relaxation
     crowds factors into the buffered levels proportionally to their
     log-capacity and leaves DRAM only a small share — which is precisely
     what makes the capacity-blind rounding overflow a partition. *)
  let weight lvl_idx =
    let lvl = A.level arch lvl_idx in
    if lvl.A.unbounded then 2.0 /. config.utilization_weight
    else
      let cap =
        List.fold_left (fun acc (p : A.partition) -> max acc p.A.capacity_words) 1 lvl.A.partitions
      in
      Float.log2 (float_of_int (cap + 2))
  in
  let weights = List.map weight (Listx.range num_levels) in
  let weight_sum = List.fold_left ( +. ) 0.0 weights in
  let total_log =
    List.fold_left
      (fun acc d -> acc +. Float.log2 (float_of_int (Hashtbl.find remaining d)))
      0.0 dims
  in
  let target = Array.of_list (List.map (fun wt -> total_log *. wt /. weight_sum) weights) in
  (* the MIP's buffer constraints, linearized per operand: each level
     grants every operand a log-capacity budget, charged as each temporal
     prime factor of an indexing dimension lands there. Three deliberate
     linearization gaps mirror CoSA's published failure mode: spatial
     factors are not charged (they belong to the utilization objective),
     sliding-window halos are ignored, and tiles accumulate bottom-up
     (factors below a level also occupy it) only approximately. The rounded
     mapping can therefore overflow a real partition. *)
  let assigned = Array.make num_levels 0.0 in
  let temporal = Hashtbl.create 8 in
  let charge l d logp =
    charge_ops l d logp;
    assigned.(l) <- assigned.(l) +. logp
  in
  List.iter
    (fun d ->
      List.iter
        (fun p ->
          let logp = Float.log2 (float_of_int p) in
          let best_lvl = ref (-1) and best_deficit = ref neg_infinity in
          for l = 0 to num_levels - 1 do
            let deficit = target.(l) -. assigned.(l) in
            if fits_op_budgets l d logp && deficit > !best_deficit then begin
              best_deficit := deficit;
              best_lvl := l
            end
          done;
          (* every budget exhausted: spill to DRAM *)
          let l = if !best_lvl >= 0 then !best_lvl else num_levels - 1 in
          charge l d logp;
          Hashtbl.replace temporal (d, l)
            (p * try Hashtbl.find temporal (d, l) with Not_found -> 1))
        (prime_factors (Hashtbl.find remaining d)))
    dims;
  (* --- fixed order heuristic: reduction loops innermost per level --- *)
  let order =
    let indexing, reduction = List.partition (W.is_indexing out) dims in
    indexing @ reduction
  in
  let level lvl_idx =
    {
      M.temporal =
        List.map
          (fun d -> (d, try Hashtbl.find temporal (d, lvl_idx) with Not_found -> 1))
          dims;
      order;
      spatial =
        List.map
          (fun d -> (d, try Hashtbl.find spatial (d, lvl_idx) with Not_found -> 1))
          dims;
    }
  in
  let mapping =
    match M.make w (List.init num_levels level) with Ok m -> Some m | Error _ -> None
  in
  Mapper.of_mapping ~tool:"cosa-like" ~examined:1
    ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer) ~binding w arch mapping
