module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module Factor = Sun_util.Factor
module Mapspace = Sun_search.Mapspace
module Listx = Sun_util.Listx

type entry = { tool : string; tile_dims : int; unroll_dims : int; space : float }

let ndims w = List.length (W.dim_names w)

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
  go 1.0 n

let timeloop w arch =
  let space = Mapspace.size (Mapspace.create w arch) in
  { tool = "timeloop"; tile_dims = ndims w; unroll_dims = ndims w; space }

let cosa w arch = { (timeloop w arch) with tool = "cosa" }

let marvel w arch =
  let n = ndims w in
  let levels = A.num_levels arch in
  (* off-chip: one split boundary (DRAM vs on-chip) per dim, ordered at DRAM *)
  let off_chip =
    List.fold_left (fun acc (_, b) -> acc *. float_of_int (Factor.count_splits b 2)) 1.0 w.W.dims
    *. factorial n
  in
  (* on-chip: the remaining temporal and spatial slots *)
  let spatial_slots =
    List.length (List.filter (fun i -> (A.level arch i).A.fanout > 1) (Listx.range levels))
  in
  let on_chip_slots = levels - 1 + spatial_slots in
  let on_chip =
    List.fold_left
      (fun acc (_, b) -> acc *. float_of_int (Factor.count_splits b on_chip_slots))
      1.0 w.W.dims
    *. (factorial n ** float_of_int (levels - 1))
  in
  { tool = "marvel"; tile_dims = n; unroll_dims = n; space = off_chip +. on_chip }

let interstellar w arch =
  let n = ndims w in
  let levels = A.num_levels arch in
  (* temporal splits over the memory levels, full orders, but spatial
     choices limited to divisors of C and K *)
  let temporal =
    List.fold_left
      (fun acc (_, b) -> acc *. float_of_int (Factor.count_splits b levels))
      1.0 w.W.dims
  in
  let spatial_choices =
    List.fold_left
      (fun acc d ->
        match List.assoc_opt d w.W.dims with
        | Some b -> acc *. float_of_int (Factor.count_divisors b)
        | None -> acc)
      1.0 [ "C"; "K" ]
  in
  let orders = factorial n ** float_of_int (levels - 1) in
  {
    tool = "interstellar";
    tile_dims = n;
    unroll_dims = 2;
    space = temporal *. spatial_choices *. orders;
  }

(* Space accounting ignores the feasibility thresholds (they depend on the
   layer's size relative to the buffers); what is counted is the
   high-utilization / high-throughput space the tool walks. *)
let dmaze_space_config =
  {
    Dmaze_like.fast with
    Dmaze_like.l1_min_utilization = 0.0;
    l2_min_utilization = 0.0;
    pe_min_utilization = 0.0;
  }

let dmaze ?(config = dmaze_space_config) w arch =
  let outcome = Dmaze_like.run ~config w arch in
  {
    tool = "dmaze";
    tile_dims = ndims w;
    unroll_dims = ndims w;
    space = float_of_int outcome.Mapper.examined;
  }

let sunstone w arch =
  match Sun_core.Optimizer.optimize w arch with
  | Ok r ->
    (* "reuse dimensions" per level = the axes of the operand reused there;
       a compound sliding-window axis counts once (conv: 4 of 7) *)
    let reuse_dims =
      List.fold_left
        (fun acc (op : W.operand) -> max acc (List.length op.W.indices))
        0 w.W.operands
    in
    {
      tool = "sunstone";
      tile_dims = reuse_dims;
      unroll_dims = reuse_dims;
      space = float_of_int r.Sun_core.Optimizer.stats.Sun_core.Optimizer.examined;
    }
  | Error _ -> { tool = "sunstone"; tile_dims = 0; unroll_dims = 0; space = 0.0 }

let table w arch =
  [ timeloop w arch; cosa w arch; marvel w arch; interstellar w arch; dmaze w arch; sunstone w arch ]
