lib/baselines/cosa_like.ml: Array Float Fun Hashtbl List Mapper Sun_arch Sun_mapping Sun_tensor Sun_util
