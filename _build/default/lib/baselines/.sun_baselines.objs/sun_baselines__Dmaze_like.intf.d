lib/baselines/dmaze_like.mli: Mapper Sun_arch Sun_cost Sun_tensor
