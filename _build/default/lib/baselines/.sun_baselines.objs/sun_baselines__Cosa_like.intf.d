lib/baselines/cosa_like.mli: Mapper Sun_arch Sun_cost Sun_tensor
