lib/baselines/mapper.ml: Float Sun_cost Sun_mapping
