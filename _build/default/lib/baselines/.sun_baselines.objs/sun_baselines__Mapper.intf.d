lib/baselines/mapper.mli: Sun_arch Sun_cost Sun_mapping Sun_tensor
