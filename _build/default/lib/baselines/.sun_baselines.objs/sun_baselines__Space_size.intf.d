lib/baselines/space_size.mli: Dmaze_like Sun_arch Sun_tensor
