lib/baselines/interstellar_like.ml: Array Float Fun List Mapper Sun_arch Sun_core Sun_cost Sun_mapping Sun_tensor Sun_util
