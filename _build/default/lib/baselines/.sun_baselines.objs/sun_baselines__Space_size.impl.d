lib/baselines/space_size.ml: Dmaze_like List Mapper Sun_arch Sun_core Sun_search Sun_tensor Sun_util
