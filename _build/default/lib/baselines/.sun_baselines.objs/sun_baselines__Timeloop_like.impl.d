lib/baselines/timeloop_like.ml: Float Mapper Sun_cost Sun_search Sun_tensor Sun_util
