module Model = Sun_cost.Model

type outcome = {
  tool : string;
  mapping : Sun_mapping.Mapping.t option;
  cost : Model.cost option;
  valid : bool;
  examined : int;
  wall_seconds : float;
}

let of_mapping ~tool ~examined ~wall_seconds ?binding w arch mapping =
  match mapping with
  | None -> { tool; mapping = None; cost = None; valid = false; examined; wall_seconds }
  | Some m -> (
    match Model.evaluate ?binding w arch m with
    | Ok cost -> { tool; mapping = Some m; cost = Some cost; valid = true; examined; wall_seconds }
    | Error _ -> { tool; mapping = Some m; cost = None; valid = false; examined; wall_seconds })

let failure ~tool ~examined ~wall_seconds =
  { tool; mapping = None; cost = None; valid = false; examined; wall_seconds }

let edp outcome = match outcome.cost with Some c -> c.Model.edp | None -> Float.infinity
