(** Interstellar-style mapper (Yang et al., ASPLOS 2020): the spatial
    unrolling is preset to the input/output channel dimensions (C, K), as
    prescribed in that paper, with other dimensions admitted only when C x K
    cannot fill the array; tiling is then searched exhaustively over
    maximal-throughput candidates.

    The reproduced weakness (paper Section V-B2): the CK restriction
    sometimes forces mappings that reuse the output both temporally and
    spatially, violating Sunstone's Unrolling Principle and costing EDP. *)

type config = {
  unroll_dims : Sun_tensor.Workload.dim list;  (** default [\["C"; "K"\]] *)
  min_pe_utilization : float;  (** below this, other dims may be unrolled *)
  max_order_candidates : int;
}

val default : config

val run :
  ?config:config ->
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Mapper.outcome
(** Fails (invalid) when the preset dimensions do not exist in the workload
    and no fallback fills the array — non-DNN workloads are out of scope
    for this tool, as in the paper. *)
