(** dMazeRunner-style mapper (Dave et al., TECS 2019): directed enumeration
    of the map-space pruned by user-specified minimum-utilization
    thresholds (the paper's Table V fast/slow configurations).

    Reproduced behaviours from the paper's evaluation: layers that cannot
    meet the utilization floors yield *no valid mapping* (early Inception
    layers under-filling L2), and asymmetric convolutions (R != S) are
    rejected outright because the tool assumes symmetric filter windows. *)

type config = {
  l1_min_utilization : float;
  l2_min_utilization : float;
  pe_min_utilization : float;
  allow_spatial_reduction : bool;
      (** when [false], spatially unrolled dimensions must index the output
          (no cross-PE accumulation) *)
  assume_symmetric_conv : bool;
  max_order_candidates : int;  (** per-level loop permutations evaluated *)
  max_wall_seconds : float;  (** enumeration budget *)
}

val fast : config
(** Table V fast/aggressive: L1 80%, L2 50%, PE 80%, spatial reduction
    not allowed. *)

val slow : config
(** Table V slow/conservative: L1 60%, L2 40%, PE 80%, spatial reduction
    allowed. *)

val run :
  ?config:config ->
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Mapper.outcome
