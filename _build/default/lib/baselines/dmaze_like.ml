module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Tree = Sun_core.Tile_tree
module Listx = Sun_util.Listx

type config = {
  l1_min_utilization : float;
  l2_min_utilization : float;
  pe_min_utilization : float;
  allow_spatial_reduction : bool;
  assume_symmetric_conv : bool;
  max_order_candidates : int;
  max_wall_seconds : float;
}

let fast =
  {
    l1_min_utilization = 0.8;
    l2_min_utilization = 0.5;
    pe_min_utilization = 0.8;
    allow_spatial_reduction = false;
    assume_symmetric_conv = true;
    max_order_candidates = 24;
    max_wall_seconds = 60.0;
  }

let slow =
  {
    l1_min_utilization = 0.6;
    l2_min_utilization = 0.4;
    pe_min_utilization = 0.8;
    allow_spatial_reduction = true;
    assume_symmetric_conv = true;
    max_order_candidates = 24;
    max_wall_seconds = 120.0;
  }

let is_asymmetric_conv w =
  match (List.assoc_opt "R" w.W.dims, List.assoc_opt "S" w.W.dims) with
  | Some r, Some s -> r <> s
  | _ -> false

(* Occupied fraction of a level, computed directly from extents. *)
let fill_fraction w arch binding ~level extent =
  let lvl = A.level arch level in
  let fraction_of (p : A.partition) =
    if p.A.capacity_words = 0 then 1.0
    else
      let used =
        List.fold_left
          (fun acc (op : W.operand) ->
            match A.partition_for lvl ~role:(binding op.W.name) with
            | Some p' when p'.A.part_name = p.A.part_name -> acc +. W.footprint extent op
            | _ -> acc)
          0.0 w.W.operands
      in
      used /. float_of_int p.A.capacity_words
  in
  List.fold_left (fun acc p -> Float.max acc (fraction_of p)) 0.0 lvl.A.partitions

let product a = List.fold_left (fun acc (_, f) -> acc * f) 1 a

let run ?(config = fast) ?(binding = Fun.id) w arch =
  let timer = Sun_util.Stopwatch.start () in
  let examined = ref 0 in
  if config.assume_symmetric_conv && is_asymmetric_conv w then
    Mapper.failure ~tool:"dmaze-like" ~examined:0
      ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer)
  else begin
    let ctx = Model.context ~binding w arch in
    let dims = W.dim_names w in
    let num_levels = A.num_levels arch in
    let out = W.output w in
    let best = ref None and best_edp = ref Float.infinity in
    (* spatial levels and their candidate unrollings *)
    let spatial_levels =
      List.filter (fun i -> (A.level arch i).A.fanout > 1) (Listx.range num_levels)
    in
    let spatial_choices lvl remaining =
      let fanout = (A.level arch lvl).A.fanout in
      let grow =
        if config.allow_spatial_reduction then dims
        else List.filter (fun d -> W.is_indexing out d) dims
      in
      let fits a = product a <= fanout in
      let o = Tree.search ~max_steps:24 ~grow_dims:grow ~remaining ~fits () in
      examined := !examined + o.Tree.explored;
      List.filter
        (fun a -> float_of_int (product a) >= config.pe_min_utilization *. float_of_int fanout)
        o.Tree.frontier
    in
    (* tile candidates at a memory level meeting the utilization floor *)
    let tile_choices ~level ~floor ~base remaining =
      let fits a =
        let extent d = base d * Tree.factor_of a d in
        fill_fraction w arch binding ~level extent <= 1.0 +. 1e-9
      in
      let o = Tree.search ~max_steps:24 ~grow_dims:dims ~remaining ~fits () in
      examined := !examined + o.Tree.explored;
      List.filter
        (fun a ->
          let extent d = base d * Tree.factor_of a d in
          fill_fraction w arch binding ~level extent >= floor)
        o.Tree.frontier
    in
    let fill_levels assoc = List.map (fun d -> (d, Tree.factor_of assoc d)) dims in
    (* enumerate: spatial (innermost spatial level treated jointly for the
       common two-on-chip-level machines), then L1 and L2 tiles *)
    let rec assign_spatial levels acc remaining k =
      match levels with
      | [] -> k acc remaining
      | lvl :: rest ->
        List.iter
          (fun a ->
            let remaining' d = remaining d / Tree.factor_of a d in
            assign_spatial rest ((lvl, a) :: acc) remaining' k)
          (spatial_choices lvl remaining)
    in
    let utilization_floor level =
      if level = 0 then config.l1_min_utilization
      else if level = num_levels - 1 then 0.0
      else config.l2_min_utilization
    in
    let out_of_time () = Sun_util.Stopwatch.elapsed_s timer > config.max_wall_seconds in
    let try_mapping ~spatials ~tiles =
      (* orders: per level, greedy best over permutations of active dims *)
      let base_levels =
        Array.init num_levels (fun i ->
            {
              M.temporal =
                (match List.assoc_opt i tiles with
                | Some t -> fill_levels t
                | None -> List.map (fun d -> (d, 1)) dims);
              order = dims;
              spatial =
                (match List.assoc_opt i spatials with
                | Some s -> fill_levels s
                | None -> List.map (fun d -> (d, 1)) dims);
            })
      in
      (* place the residual at DRAM *)
      let top = num_levels - 1 in
      let m0 = { M.levels = base_levels } in
      let residual d = W.bound w d / M.tile_at m0 ~level:top d in
      base_levels.(top) <-
        {
          (base_levels.(top)) with
          M.temporal =
            List.map
              (fun (d, f) -> (d, f * residual d))
              base_levels.(top).M.temporal;
        };
      let eval levels =
        incr examined;
        match M.make w (Array.to_list levels) with
        | Error _ -> None
        | Ok m -> (
          match Model.evaluate_ctx ctx m with Ok c -> Some (m, c) | Error _ -> None)
      in
      let current = Array.map (fun x -> x) base_levels in
      for lvl = 1 to top do
        let active =
          List.filter (fun d -> Tree.factor_of current.(lvl).M.temporal d > 1) dims
        in
        if List.length active > 1 then begin
          let perms = Listx.take config.max_order_candidates (Listx.permutations active) in
          let rest = List.filter (fun d -> not (List.mem d active)) dims in
          let best_perm = ref None and best_perm_edp = ref Float.infinity in
          List.iter
            (fun perm ->
              let trial = Array.map (fun x -> x) current in
              trial.(lvl) <- { (trial.(lvl)) with M.order = rest @ perm };
              match eval trial with
              | Some (_, c) when c.Model.edp < !best_perm_edp ->
                best_perm_edp := c.Model.edp;
                best_perm := Some (rest @ perm)
              | _ -> ())
            perms;
          match !best_perm with
          | Some order -> current.(lvl) <- { (current.(lvl)) with M.order = order }
          | None -> ()
        end
      done;
      match eval current with
      | Some (m, c) when c.Model.edp < !best_edp ->
        best_edp := c.Model.edp;
        best := Some m
      | _ -> ()
    in
    assign_spatial spatial_levels [] (W.bound w) (fun spatials remaining0 ->
        let s_at lvl d =
          List.fold_left
            (fun acc (l, a) -> if l = lvl then acc * Tree.factor_of a d else acc)
            1 spatials
        in
        (* tiles bottom-up across bounded levels; [base] carries the extents
           fixed strictly below the level, and the level's own spatial
           factors join its resident tile *)
        let rec assign_tiles level tiles base remaining =
          if out_of_time () then ()
          else if level >= num_levels - 1 then try_mapping ~spatials ~tiles
          else begin
            let base_here d = base d * s_at level d in
            let choices =
              tile_choices ~level ~floor:(utilization_floor level) ~base:base_here remaining
            in
            List.iter
              (fun t ->
                let base' d = base_here d * Tree.factor_of t d in
                let remaining' d = remaining d / Tree.factor_of t d in
                assign_tiles (level + 1) ((level, t) :: tiles) base' remaining')
              choices
          end
        in
        assign_tiles 0 [] (fun _ -> 1) remaining0);
    match !best with
    | Some m ->
      Mapper.of_mapping ~tool:"dmaze-like" ~examined:!examined
        ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer) ~binding w arch (Some m)
    | None ->
      Mapper.failure ~tool:"dmaze-like" ~examined:!examined
        ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer)
  end
