(** Common result shape for every mapper (Sunstone and the prior-art
    reimplementations), consumed by the experiment harness. *)

type outcome = {
  tool : string;
  mapping : Sun_mapping.Mapping.t option;
      (** the returned mapping; [None] when the tool found nothing at all *)
  cost : Sun_cost.Model.cost option;  (** [Some] only for valid mappings *)
  valid : bool;
      (** [false] when nothing was returned or the returned mapping violates
          the architecture (CoSA-style rounding overflow, dMaze-style
          threshold failure) *)
  examined : int;  (** search-space points the tool touched *)
  wall_seconds : float;
}

val of_mapping :
  tool:string ->
  examined:int ->
  wall_seconds:float ->
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Sun_mapping.Mapping.t option ->
  outcome
(** Evaluates the mapping (if any) and fills the validity/cost fields. *)

val failure : tool:string -> examined:int -> wall_seconds:float -> outcome

val edp : outcome -> float
(** EDP of a valid outcome, [infinity] otherwise — convenient for
    comparisons and geometric means. *)
