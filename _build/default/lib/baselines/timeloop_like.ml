module W = Sun_tensor.Workload
module Model = Sun_cost.Model
module Mapspace = Sun_search.Mapspace
module Rng = Sun_util.Rng

type config = {
  timeout : int;
  victory_condition : int;
  max_wall_seconds : float;
  seed : int;
  threads : int;
}

let fast =
  { timeout = 20_000; victory_condition = 25; max_wall_seconds = 30.0; seed = 0x71; threads = 8 }

let slow =
  { timeout = 80_000; victory_condition = 1_500; max_wall_seconds = 120.0; seed = 0x71; threads = 8 }

(* One hunt thread of Timeloop's search pool. Each thread keeps its own
   termination counters but shares the incumbent, like the original. *)
let hunt ~config ~ctx ~space ~rng ~timer best best_edp examined =
  let since_improvement = ref 0 in
  let valid_since_improvement = ref 0 in
  let stop = ref false in
  while not !stop do
    let m = Mapspace.sample space rng in
    incr examined;
    (match Model.evaluate_ctx ctx m with
    | Ok cost ->
      if cost.Model.edp < !best_edp then begin
        best_edp := cost.Model.edp;
        best := Some m;
        since_improvement := 0;
        valid_since_improvement := 0
      end
      else begin
        incr since_improvement;
        incr valid_since_improvement
      end
    | Error _ -> incr since_improvement);
    if
      !since_improvement >= config.timeout
      || !valid_since_improvement >= config.victory_condition
      || (!examined land 255 = 0 && Sun_util.Stopwatch.elapsed_s timer > config.max_wall_seconds)
    then stop := true
  done

let run ?(config = fast) ?binding w arch =
  let timer = Sun_util.Stopwatch.start () in
  let ctx = Model.context ?binding w arch in
  let space = Mapspace.create w arch in
  let best = ref None in
  let best_edp = ref Float.infinity in
  let examined = ref 0 in
  for thread = 0 to config.threads - 1 do
    if Sun_util.Stopwatch.elapsed_s timer <= config.max_wall_seconds then begin
      let rng = Rng.create (config.seed + (thread * 7919)) in
      hunt ~config ~ctx ~space ~rng ~timer best best_edp examined
    end
  done;
  Mapper.of_mapping ~tool:"timeloop-like" ~examined:!examined
    ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer) ?binding w arch !best
