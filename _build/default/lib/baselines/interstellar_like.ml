module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Tree = Sun_core.Tile_tree
module Listx = Sun_util.Listx

type config = {
  unroll_dims : W.dim list;
  min_pe_utilization : float;
  max_order_candidates : int;
}

let default = { unroll_dims = [ "C"; "K" ]; min_pe_utilization = 0.75; max_order_candidates = 24 }

let product a = List.fold_left (fun acc (_, f) -> acc * f) 1 a

let run ?(config = default) ?(binding = Fun.id) w arch =
  let timer = Sun_util.Stopwatch.start () in
  let examined = ref 0 in
  let dims = W.dim_names w in
  let preset = List.filter (fun d -> List.mem d dims) config.unroll_dims in
  if preset = [] then
    (* the tool's unrolling recipe does not apply to this workload *)
    Mapper.failure ~tool:"interstellar-like" ~examined:0
      ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer)
  else begin
    let ctx = Model.context ~binding w arch in
    let num_levels = A.num_levels arch in
    let spatial_levels =
      List.filter (fun i -> (A.level arch i).A.fanout > 1) (Listx.range num_levels)
    in
    let best = ref None and best_edp = ref Float.infinity in
    (* preset CK unrolling per spatial level, widened only on underfill *)
    let spatial_choices lvl remaining =
      let fanout = (A.level arch lvl).A.fanout in
      let fits a = product a <= fanout in
      let o = Tree.search ~max_steps:24 ~grow_dims:preset ~remaining ~fits () in
      examined := !examined + o.Tree.explored;
      let threshold = config.min_pe_utilization *. float_of_int fanout in
      let good = List.filter (fun a -> float_of_int (product a) >= threshold) o.Tree.frontier in
      if good <> [] then good
      else begin
        (* CK cannot fill the array: allow the remaining dimensions too *)
        let o2 = Tree.search ~max_steps:24 ~grow_dims:dims ~remaining ~fits () in
        examined := !examined + o2.Tree.explored;
        if o2.Tree.frontier = [] then o.Tree.frontier else o2.Tree.frontier
      end
    in
    let fill assoc = List.map (fun d -> (d, Tree.factor_of assoc d)) dims in
    let fits_level ~level extent =
      let lvl = A.level arch level in
      lvl.A.unbounded
      || List.for_all
           (fun (p : A.partition) ->
             let used =
               List.fold_left
                 (fun acc (op : W.operand) ->
                   match A.partition_for lvl ~role:(binding op.W.name) with
                   | Some p' when p'.A.part_name = p.A.part_name -> acc +. W.footprint extent op
                   | _ -> acc)
                 0.0 w.W.operands
             in
             used <= float_of_int p.A.capacity_words +. 1e-9)
           lvl.A.partitions
    in
    let try_mapping spatials tiles =
      let levels =
        Array.init num_levels (fun i ->
            {
              M.temporal =
                (match List.assoc_opt i tiles with
                | Some t -> fill t
                | None -> List.map (fun d -> (d, 1)) dims);
              order = dims;
              spatial =
                (match List.assoc_opt i spatials with
                | Some s -> fill s
                | None -> List.map (fun d -> (d, 1)) dims);
            })
      in
      let top = num_levels - 1 in
      let m0 = { M.levels } in
      let residual d = W.bound w d / M.tile_at m0 ~level:top d in
      levels.(top) <-
        {
          (levels.(top)) with
          M.temporal = List.map (fun (d, f) -> (d, f * residual d)) levels.(top).M.temporal;
        };
      (* greedy per-level order refinement, inner to outer *)
      let eval ls =
        incr examined;
        match M.make w (Array.to_list ls) with
        | Error _ -> None
        | Ok m -> (
          match Model.evaluate_ctx ctx m with Ok c -> Some (m, c) | Error _ -> None)
      in
      let current = Array.map (fun x -> x) levels in
      for lvl = 1 to top do
        let active = List.filter (fun d -> Tree.factor_of current.(lvl).M.temporal d > 1) dims in
        if List.length active > 1 then begin
          let perms = Listx.take config.max_order_candidates (Listx.permutations active) in
          let rest = List.filter (fun d -> not (List.mem d active)) dims in
          let best_perm = ref None and best_perm_edp = ref Float.infinity in
          List.iter
            (fun perm ->
              let trial = Array.map (fun x -> x) current in
              trial.(lvl) <- { (trial.(lvl)) with M.order = rest @ perm };
              match eval trial with
              | Some (_, c) when c.Model.edp < !best_perm_edp ->
                best_perm_edp := c.Model.edp;
                best_perm := Some (rest @ perm)
              | _ -> ())
            perms;
          match !best_perm with
          | Some order -> current.(lvl) <- { (current.(lvl)) with M.order = order }
          | None -> ()
        end
      done;
      match eval current with
      | Some (m, c) when c.Model.edp < !best_edp ->
        best_edp := c.Model.edp;
        best := Some m
      | _ -> ()
    in
    let rec assign_spatial levels acc remaining k =
      match levels with
      | [] -> k acc remaining
      | lvl :: rest ->
        List.iter
          (fun a ->
            let remaining' d = remaining d / Tree.factor_of a d in
            assign_spatial rest ((lvl, a) :: acc) remaining' k)
          (spatial_choices lvl remaining)
    in
    assign_spatial spatial_levels [] (W.bound w) (fun spatials remaining0 ->
        let s_at lvl d =
          List.fold_left
            (fun acc (l, a) -> if l = lvl then acc * Tree.factor_of a d else acc)
            1 spatials
        in
        let rec assign_tiles level tiles base remaining =
          if level >= num_levels - 1 then try_mapping spatials tiles
          else begin
            let base_here d = base d * s_at level d in
            let fits a =
              let extent d = base_here d * Tree.factor_of a d in
              fits_level ~level extent
            in
            let o = Tree.search ~max_steps:24 ~grow_dims:dims ~remaining ~fits () in
            examined := !examined + o.Tree.explored;
            List.iter
              (fun t ->
                let base' d = base_here d * Tree.factor_of t d in
                let remaining' d = remaining d / Tree.factor_of t d in
                assign_tiles (level + 1) ((level, t) :: tiles) base' remaining')
              o.Tree.frontier
          end
        in
        assign_tiles 0 [] (fun _ -> 1) remaining0);
    match !best with
    | Some m ->
      Mapper.of_mapping ~tool:"interstellar-like" ~examined:!examined
        ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer) ~binding w arch (Some m)
    | None ->
      Mapper.failure ~tool:"interstellar-like" ~examined:!examined
        ~wall_seconds:(Sun_util.Stopwatch.elapsed_s timer)
  end
