(** Timeloop-style mapper: undirected random search over the full map-space
    with the hunt-group termination criteria of the original tool
    (Parashar et al., ISPASS 2019) and the paper's Table V hyperparameters.

    The search samples mappings uniformly from {!Sun_search.Mapspace},
    evaluates each with the shared cost model, and keeps the best valid
    mapping. It terminates when any of these trips: [timeout] consecutive
    samples without improvement, [victory_condition] consecutive *valid*
    samples without improvement, or the wall-clock budget. *)

type config = {
  timeout : int;  (** consecutive sampled mappings without improvement *)
  victory_condition : int;  (** consecutive valid mappings without improvement *)
  max_wall_seconds : float;  (** stand-in for the paper's one-hour cap *)
  seed : int;
  threads : int;  (** hunt threads of the search pool (paper: 8) *)
}

val fast : config
(** Table V "fast/aggressive": TO = 20000, VC = 25. *)

val slow : config
(** Table V "slow/conservative": TO = 80000, VC = 1500. *)

val run :
  ?config:config ->
  ?binding:Sun_cost.Model.binding ->
  Sun_tensor.Workload.t ->
  Sun_arch.Arch.t ->
  Mapper.outcome
