(* Reference points (16-bit words, pJ): register 0.06, 512 B SRAM ~0.6,
   32 KB SRAM ~3.5, 512 KB SRAM ~13, 3 MB SRAM ~28, DRAM 200. The sqrt
   law below passes near these points; see DESIGN.md §2 for why only the
   ratios matter for reproduction. *)

let width_scale bits = float_of_int bits /. 16.0

let mac ~bits = 1.0 *. width_scale bits

let sram_read ~capacity_words ~bits =
  let kb = float_of_int (capacity_words * bits / 8) /. 1024.0 in
  let base = 0.45 +. (0.55 *. Float.sqrt (Float.max kb 0.03)) in
  base *. width_scale bits

let sram_write ~capacity_words ~bits = 1.1 *. sram_read ~capacity_words ~bits

let register_read ~bits = 0.06 *. width_scale bits
let register_write ~bits = 0.06 *. width_scale bits

let dram_access ~bits = 200.0 *. width_scale bits

let noc_hop ~bits = 0.9 *. width_scale bits

let noc_tag_check = 0.12
