type partition = {
  part_name : string;
  capacity_words : int;
  accepts : [ `All | `Roles of string list ];
  read_energy : float;
  write_energy : float;
  bandwidth : float;
}

type level = {
  level_name : string;
  partitions : partition list;
  fanout : int;
  multicast : bool;
  noc_hop_energy : float;
  unbounded : bool;
}

type t = { arch_name : string; levels : level list; mac_energy : float; mac_throughput : int }

let make ~name ~levels ~mac_energy ?(mac_throughput = 1) () =
  if List.length levels < 2 then invalid_arg "Arch.make: need at least two levels";
  let top = List.nth levels (List.length levels - 1) in
  if not top.unbounded then invalid_arg "Arch.make: outermost level must be unbounded (DRAM)";
  List.iter
    (fun l ->
      if l.fanout < 1 then invalid_arg (Printf.sprintf "Arch.make: fanout of %s < 1" l.level_name);
      if l.partitions = [] then
        invalid_arg (Printf.sprintf "Arch.make: level %s has no partitions" l.level_name);
      List.iter
        (fun p ->
          if p.capacity_words < 0 then
            invalid_arg (Printf.sprintf "Arch.make: negative capacity in %s" p.part_name);
          if (not l.unbounded) && p.capacity_words = 0 then
            invalid_arg (Printf.sprintf "Arch.make: zero capacity in bounded level %s" l.level_name))
        l.partitions)
    levels;
  { arch_name = name; levels; mac_energy; mac_throughput }

let num_levels t = List.length t.levels
let level t i = List.nth t.levels i
let dram_index t = num_levels t - 1
let total_fanout t = List.fold_left (fun acc l -> acc * l.fanout) 1 t.levels

let accepts_operand p ~role =
  match p.accepts with `All -> true | `Roles rs -> List.mem role rs

let stores l ~role = List.exists (accepts_operand ~role) l.partitions

let partition_for l ~role = List.find_opt (accepts_operand ~role) l.partitions

let pp ppf t =
  let pp_partition ppf p =
    let accepts =
      match p.accepts with `All -> "all" | `Roles rs -> String.concat "/" rs
    in
    Format.fprintf ppf "%s[%s] %d words (r %.2f / w %.2f pJ, %.0f w/cyc)" p.part_name accepts
      p.capacity_words p.read_energy p.write_energy p.bandwidth
  in
  let pp_level ppf l =
    Format.fprintf ppf "%-6s fanout=%-4d %s@,        %a" l.level_name l.fanout
      (if l.multicast then "multicast" else "unicast")
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,        ") pp_partition)
      l.partitions
  in
  Format.fprintf ppf "@[<v>%s (MAC %.2f pJ)@,%a@]" t.arch_name t.mac_energy
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_level)
    (List.rev t.levels)
