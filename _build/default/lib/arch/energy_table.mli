(** Per-component access-energy model.

    Stand-in for Accelergy + Cacti + Aladdin at 45 nm (see DESIGN.md §2):
    absolute picojoules are synthetic, but the relative magnitudes follow the
    published ratios (register ≪ small SRAM ≪ large SRAM ≪ DRAM, with DRAM
    roughly 200× a MAC), which is what drives mapping choice. All values are
    per access of one word of the stated width. *)

val mac : bits:int -> float
(** Energy of one multiply-accumulate at the given operand width. A 16-bit
    MAC is the normalization point (1.0 pJ). *)

val sram_read : capacity_words:int -> bits:int -> float
val sram_write : capacity_words:int -> bits:int -> float
(** SRAM access energy grows with the square root of capacity (wordline /
    bitline scaling), linear in word width. *)

val register_read : bits:int -> float
val register_write : bits:int -> float

val dram_access : bits:int -> float
(** Off-chip access; identical cost charged for reads and writes. *)

val noc_hop : bits:int -> float
(** Per-destination word-delivery energy over the on-chip network. *)

val noc_tag_check : float
(** Per-packet destination-tag comparison at a PE (Eyeriss-style NoC,
    Section V-A of the paper). *)
