(** The evaluated accelerator configurations (paper Table IV), plus a
    DianNao-like machine for the overhead study (Section V-D) and a tiny toy
    machine used by tests and the worked examples of the paper's figures.

    Operand roles used by the per-datatype partitions are ["weight"],
    ["ifmap"] and ["ofmap"]; bind workload operand names to these roles via
    the cost-model binding (identity for the convolution catalog). *)

val conventional : Arch.t
(** Eyeriss-like conventional machine: 32x32 grid of single-MAC PEs with a
    512 B unified L1 each, a 3.1 MB unified L2, 16-bit datapath. *)

val simba_like : Arch.t
(** Simba-like machine: 4x4 PEs; each PE has 8 vector MACs of width 8 with a
    per-lane weight register; per-PE weight (32 KB), ifmap (8 KB) and ofmap
    (3 KB) buffers; a 512 KB L2 holding only ifmap and ofmap (weights stream
    from DRAM to the PE buffers). *)

val diannao_like : Arch.t
(** DianNao-like machine: one 256-multiplier NFU fed by NBin (ifmap), SB
    (weights) and NBout (ofmap) scratchpads, 16-bit datapath. *)

val toy : ?l1_words:int -> ?l2_words:int -> ?pes:int -> unit -> Arch.t
(** Two on-chip levels with unified buffers; defaults: 8-word L1 (the Fig 5
    example), 64-word L2, 4 PEs. *)

val deep : on_chip_levels:int -> Arch.t
(** Synthetic hierarchy for the scalability study: [on_chip_levels] unified
    memory levels (capacities growing 64x per level from 256 words, each
    with a 4-way spatial fanout below it) under DRAM. The mapping space
    grows exponentially with every added level; Sunstone's per-level pruned
    search should not. *)

val all : (string * Arch.t) list
(** Named presets for the CLI. *)
