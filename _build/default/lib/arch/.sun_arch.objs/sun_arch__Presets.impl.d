lib/arch/presets.ml: Arch Energy_table List Printf
