lib/arch/energy_table.ml: Float
