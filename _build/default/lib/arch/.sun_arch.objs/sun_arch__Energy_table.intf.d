lib/arch/energy_table.mli:
