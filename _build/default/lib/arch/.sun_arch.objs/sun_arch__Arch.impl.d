lib/arch/arch.ml: Format List Printf String
