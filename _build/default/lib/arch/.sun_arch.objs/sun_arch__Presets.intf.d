lib/arch/presets.mli: Arch
