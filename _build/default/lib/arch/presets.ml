let sram name ~capacity_words ~bits ~accepts ~bandwidth : Arch.partition =
  {
    part_name = name;
    capacity_words;
    accepts;
    read_energy = Energy_table.sram_read ~capacity_words ~bits;
    write_energy = Energy_table.sram_write ~capacity_words ~bits;
    bandwidth;
  }

let dram_level ~bits ~bandwidth : Arch.level =
  {
    level_name = "DRAM";
    partitions =
      [
        {
          part_name = "DRAM";
          capacity_words = 0;
          accepts = `All;
          read_energy = Energy_table.dram_access ~bits;
          write_energy = Energy_table.dram_access ~bits;
          bandwidth;
        };
      ];
    fanout = 1;
    multicast = false;
    noc_hop_energy = 0.0;
    unbounded = true;
  }

let conventional =
  let l1 : Arch.level =
    {
      level_name = "L1";
      partitions = [ sram "L1" ~capacity_words:256 ~bits:16 ~accepts:`All ~bandwidth:8.0 ];
      fanout = 1;
      multicast = false;
      noc_hop_energy = 0.0;
      unbounded = false;
    }
  in
  let l2 : Arch.level =
    {
      level_name = "L2";
      partitions = [ sram "L2" ~capacity_words:1_625_088 ~bits:16 ~accepts:`All ~bandwidth:64.0 ];
      fanout = 1024;
      multicast = true;
      noc_hop_energy = Energy_table.noc_hop ~bits:16 +. Energy_table.noc_tag_check;
      unbounded = false;
    }
  in
  Arch.make ~name:"conventional-32x32" ~levels:[ l1; l2; dram_level ~bits:16 ~bandwidth:16.0 ]
    ~mac_energy:(Energy_table.mac ~bits:16) ()

let simba_like =
  let reg : Arch.level =
    {
      level_name = "Reg";
      partitions =
        [
          {
            (* one 8-bit register per lane; the level instance is the
               register row of one vector MAC *)
            part_name = "Wreg";
            capacity_words = 8;
            accepts = `Roles [ "weight" ];
            read_energy = Energy_table.register_read ~bits:8;
            write_energy = Energy_table.register_write ~bits:8;
            bandwidth = 64.0;
          };
        ];
      fanout = 8;
      (* vector lanes fed by each register file row *)
      multicast = true;
      noc_hop_energy = 0.02;
      unbounded = false;
    }
  in
  let l1 : Arch.level =
    {
      level_name = "L1";
      partitions =
        [
          sram "Wbuf" ~capacity_words:32_768 ~bits:8 ~accepts:(`Roles [ "weight" ]) ~bandwidth:64.0;
          sram "Ibuf" ~capacity_words:8_192 ~bits:8 ~accepts:(`Roles [ "ifmap" ]) ~bandwidth:64.0;
          sram "Obuf" ~capacity_words:1_024 ~bits:24 ~accepts:(`Roles [ "ofmap" ]) ~bandwidth:8.0;
        ];
      fanout = 8;
      (* vector MACs per PE *)
      multicast = true;
      noc_hop_energy = 0.05;
      unbounded = false;
    }
  in
  let l2 : Arch.level =
    {
      level_name = "L2";
      partitions =
        [
          sram "L2" ~capacity_words:262_144 ~bits:16
            ~accepts:(`Roles [ "ifmap"; "ofmap" ])
            ~bandwidth:32.0;
        ];
      fanout = 16;
      (* 4x4 PE grid *)
      multicast = true;
      noc_hop_energy = Energy_table.noc_hop ~bits:16 +. Energy_table.noc_tag_check;
      unbounded = false;
    }
  in
  Arch.make ~name:"simba-like" ~levels:[ reg; l1; l2; dram_level ~bits:16 ~bandwidth:16.0 ]
    ~mac_energy:(Energy_table.mac ~bits:8) ()

let diannao_like =
  let buffers : Arch.level =
    {
      level_name = "Buf";
      partitions =
        [
          sram "NBin" ~capacity_words:1_024 ~bits:16 ~accepts:(`Roles [ "ifmap" ]) ~bandwidth:64.0;
          sram "SB" ~capacity_words:16_384 ~bits:16 ~accepts:(`Roles [ "weight" ]) ~bandwidth:64.0;
          sram "NBout" ~capacity_words:1_024 ~bits:16 ~accepts:(`Roles [ "ofmap" ]) ~bandwidth:16.0;
        ];
      fanout = 256;
      (* NFU multiplier array *)
      multicast = true;
      noc_hop_energy = 0.05;
      unbounded = false;
    }
  in
  Arch.make ~name:"diannao-like" ~levels:[ buffers; dram_level ~bits:16 ~bandwidth:16.0 ]
    ~mac_energy:(Energy_table.mac ~bits:16) ()

let toy ?(l1_words = 8) ?(l2_words = 64) ?(pes = 4) () =
  let l1 : Arch.level =
    {
      level_name = "L1";
      partitions = [ sram "L1" ~capacity_words:l1_words ~bits:16 ~accepts:`All ~bandwidth:4.0 ];
      fanout = 1;
      multicast = false;
      noc_hop_energy = 0.0;
      unbounded = false;
    }
  in
  let l2 : Arch.level =
    {
      level_name = "L2";
      partitions = [ sram "L2" ~capacity_words:l2_words ~bits:16 ~accepts:`All ~bandwidth:8.0 ];
      fanout = pes;
      multicast = true;
      noc_hop_energy = Energy_table.noc_hop ~bits:16;
      unbounded = false;
    }
  in
  Arch.make ~name:"toy" ~levels:[ l1; l2; dram_level ~bits:16 ~bandwidth:4.0 ] ~mac_energy:1.0 ()

let deep ~on_chip_levels =
  if on_chip_levels < 1 then invalid_arg "Presets.deep: need at least one on-chip level";
  let level i : Arch.level =
    let capacity_words = 256 * int_of_float (64.0 ** float_of_int i) in
    {
      level_name = Printf.sprintf "L%d" (i + 1);
      partitions = [ sram (Printf.sprintf "L%d" (i + 1)) ~capacity_words ~bits:16 ~accepts:`All ~bandwidth:16.0 ];
      fanout = 4;
      multicast = true;
      noc_hop_energy = Energy_table.noc_hop ~bits:16;
      unbounded = false;
    }
  in
  Arch.make
    ~name:(Printf.sprintf "deep-%d" on_chip_levels)
    ~levels:(List.init on_chip_levels level @ [ dram_level ~bits:16 ~bandwidth:16.0 ])
    ~mac_energy:(Energy_table.mac ~bits:16) ()

let all =
  [
    ("conventional", conventional);
    ("simba", simba_like);
    ("diannao", diannao_like);
    ("toy", toy ());
  ]
