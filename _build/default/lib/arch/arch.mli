(** Spatial-accelerator architecture description.

    An architecture is a stack of memory levels from the innermost storage
    (closest to the MACs) out to DRAM. Between a level and its children sits
    a spatial fanout: the number of child instances the level feeds (vector
    lanes, vector MACs per PE, PEs on the grid). A level is split into
    partitions, each accepting either every operand (unified buffers) or a
    set of operand *roles* (per-datatype buffers, e.g. Simba's weight /
    ifmap / ofmap buffers). An operand not accepted anywhere at a level
    bypasses it (e.g. weights skip Simba's L2). *)

type partition = {
  part_name : string;
  capacity_words : int;  (** 0 is allowed only at the DRAM level (unbounded) *)
  accepts : [ `All | `Roles of string list ];
  read_energy : float;  (** pJ per word *)
  write_energy : float;  (** pJ per word *)
  bandwidth : float;  (** words per cycle, aggregate *)
}

type level = {
  level_name : string;
  partitions : partition list;
  fanout : int;  (** number of child instances this level feeds, >= 1 *)
  multicast : bool;  (** NoC below this level can broadcast a word *)
  noc_hop_energy : float;  (** pJ per word per destination *)
  unbounded : bool;  (** true only for DRAM: capacity checks are skipped *)
}

type t = {
  arch_name : string;
  levels : level list;  (** innermost first, DRAM last *)
  mac_energy : float;  (** pJ per multiply-accumulate *)
  mac_throughput : int;  (** MACs each leaf compute instance retires/cycle *)
}

val make : name:string -> levels:level list -> mac_energy:float -> ?mac_throughput:int -> unit -> t
(** Validates (at least two levels, outermost unbounded, positive fanouts)
    and builds. *)

val num_levels : t -> int
val level : t -> int -> level
(** [level t i] with 0 the innermost. *)

val dram_index : t -> int
val total_fanout : t -> int
(** Product of all fanouts: the peak number of parallel compute lanes. *)

val accepts_operand : partition -> role:string -> bool
val stores : level -> role:string -> bool
(** Whether some partition of the level accepts the role. *)

val partition_for : level -> role:string -> partition option
(** First partition accepting the role. *)

val pp : Format.formatter -> t -> unit
