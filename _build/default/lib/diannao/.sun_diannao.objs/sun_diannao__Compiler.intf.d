lib/diannao/compiler.mli: Isa Seq Sun_mapping Sun_tensor
