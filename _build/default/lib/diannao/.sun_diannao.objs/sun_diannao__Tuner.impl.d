lib/diannao/tuner.ml: Compiler Float Isa List Simulator Sun_arch Sun_core Sun_cost Sun_mapping Sun_tensor Sun_util
