lib/diannao/compiler.ml: Array Float Isa List Seq Sun_mapping Sun_tensor
