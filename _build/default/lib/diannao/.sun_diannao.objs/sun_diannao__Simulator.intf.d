lib/diannao/simulator.mli: Compiler Format Isa Sun_tensor
