lib/diannao/simulator.ml: Compiler Format Isa List Seq Sun_arch Sun_tensor
