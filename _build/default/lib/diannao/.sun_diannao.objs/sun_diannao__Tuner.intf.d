lib/diannao/tuner.mli: Compiler Simulator Sun_mapping Sun_tensor
