lib/diannao/isa.ml: Format
