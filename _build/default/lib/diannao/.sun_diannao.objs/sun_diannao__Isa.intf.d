lib/diannao/isa.mli: Format
