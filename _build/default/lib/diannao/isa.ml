type buffer = NBin | SB | NBout

type instruction =
  | Load of { buffer : buffer; words : int; bursts : int; sliding_refill : bool }
  | Store of { words : int; bursts : int }
  | Compute of { macs : float }

let instruction_count = function
  | Load { bursts; _ } | Store { bursts; _ } -> max 1 bursts
  | Compute _ -> 1

let instruction_bits = 256

let buffer_name = function NBin -> "NBin" | SB -> "SB" | NBout -> "NBout"

let pp ppf = function
  | Load { buffer; words; bursts; sliding_refill } ->
    Format.fprintf ppf "LOAD  %-5s %d words / %d bursts%s" (buffer_name buffer) words bursts
      (if sliding_refill then " (sliding refill)" else "")
  | Store { words; bursts } -> Format.fprintf ppf "STORE NBout %d words / %d bursts" words bursts
  | Compute { macs } -> Format.fprintf ppf "COMPUTE %.0f MACs" macs
