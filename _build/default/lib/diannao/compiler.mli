(** Compiler from a (workload, 2-level mapping) pair to a DianNao
    instruction stream (Section V-D).

    The DRAM-level loop nest is walked with an odometer; at each processing
    pass the compiler emits loads only for the operand tiles invalidated by
    the loop indices that changed (buffer-resident tiles are reused without
    instructions), one compute instruction for the FSM pass, and a store
    whenever the resident output tile is evicted. A load refreshing only the
    sliding-window halo moves just the new rows.

    The compiler also reports which operands must be re-laid-out in DRAM so
    that each pass's tile is a contiguous burst: any operand tiled along an
    axis other than its innermost one (Section V-D's data-reordering
    overhead). *)

type program = {
  instructions : unit -> Isa.instruction Seq.t;
      (** regenerable stream; forcing it is cheap per element *)
  passes : int;  (** number of compute passes *)
  tile_macs : float;  (** MACs per pass *)
  out_tile_words : float;  (** resident output-tile size *)
  reorder_words : (string * float) list;
      (** operands needing a one-time DRAM re-layout, with their sizes *)
  buffer_of : string -> Isa.buffer;  (** operand-name placement *)
}

val default_placement : Sun_tensor.Workload.t -> string -> Isa.buffer
(** ifmap-like inputs to NBin, weight-like to SB, the output to NBout; by
    operand name when the conv names are used, positional otherwise. *)

val compile :
  ?placement:(string -> Isa.buffer) ->
  Sun_tensor.Workload.t ->
  Sun_mapping.Mapping.t ->
  program
(** The mapping must have exactly two levels (scratchpads, DRAM). Raises
    [Invalid_argument] otherwise. *)
