(** Event-counting simulator for the DianNao-like accelerator.

    Executes an instruction stream, accumulating event counts per hardware
    component, and converts them to energy with the shared energy table.
    Compute passes charge the scratchpad reads the NFU performs per MAC:
    with [nfu_width] = Tn parallel output neurons, each NBin word feeds Tn
    multipliers per cycle while SB supplies one word per multiplier, and
    partial sums accumulate in NFU registers with one NBout read-modify-
    write per output element per pass. Instructions are fetched from DRAM
    (the paper's pessimistic assumption: energy could only improve with a
    dedicated instruction buffer). *)

type events = {
  instructions : int;
  dram_read_words : float;
  dram_write_words : float;
  fills : (Isa.buffer * float) list;  (** words written into each scratchpad *)
  compute_reads : (Isa.buffer * float) list;  (** words read during passes *)
  macs : float;
  reorder_words : float;  (** one-time DRAM re-layout traffic *)
}

type energy = {
  dram : float;
  nbin : float;
  sb : float;
  nbout : float;
  mac : float;
  instruction_fetch : float;
  reorder : float;
}

val total : energy -> float

type result = { events : events; energy : energy }

val run : ?nfu_width:int -> Sun_tensor.Workload.t -> Compiler.program -> result
(** Default [nfu_width] = 16 (DianNao's Tn). *)

val naive : ?nfu_width:int -> Sun_tensor.Workload.t -> result
(** The untiled baseline of Fig 9a: operands stream from DRAM for every
    use (the NFU's intrinsic input broadcast is still granted), outputs
    accumulate on chip and are written back once. Only MAC and DRAM energy
    is spent. *)

val pp_energy : Format.formatter -> energy -> unit
