(** DianNao-style instruction set (Chen et al., ASPLOS 2014).

    The accelerator executes 256-bit control instructions that either move a
    block between DRAM and one of the three scratchpads (NBin for inputs,
    SB for synapses/weights, NBout for outputs) or fire the NFU's FSM over
    the resident tiles. On-chip data is processed without further
    instructions — instructions are only needed per off-chip transfer and
    per compute pass, which is why tensor workloads compile to far fewer
    instructions than MAC operations (Section V-D). *)

type buffer = NBin | SB | NBout

type instruction =
  | Load of { buffer : buffer; words : int; bursts : int; sliding_refill : bool }
      (** fill a scratchpad tile from DRAM with [bursts] DMA descriptors
          (one per contiguous run of the strided tile); [sliding_refill]
          marks a partial (halo-overlap) refill that moves only the new
          rows *)
  | Store of { words : int; bursts : int }  (** drain an NBout tile to DRAM *)
  | Compute of { macs : float }  (** one FSM pass over the resident tiles *)

val instruction_count : instruction -> int
(** Control words issued: [bursts] for transfers, 1 for a compute pass. *)

val instruction_bits : int
(** 256, as in DianNao. *)

val buffer_name : buffer -> string

val pp : Format.formatter -> instruction -> unit
