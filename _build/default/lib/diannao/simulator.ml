module W = Sun_tensor.Workload
module E = Sun_arch.Energy_table

type events = {
  instructions : int;
  dram_read_words : float;
  dram_write_words : float;
  fills : (Isa.buffer * float) list;
  compute_reads : (Isa.buffer * float) list;
  macs : float;
  reorder_words : float;
}

type energy = {
  dram : float;
  nbin : float;
  sb : float;
  nbout : float;
  mac : float;
  instruction_fetch : float;
  reorder : float;
}

let total e =
  e.dram +. e.nbin +. e.sb +. e.nbout +. e.mac +. e.instruction_fetch +. e.reorder

type result = { events : events; energy : energy }

let bits = 16
let nbin_words = 1_024
let sb_words = 16_384
let nbout_words = 1_024

let buffer_capacity = function
  | Isa.NBin -> nbin_words
  | Isa.SB -> sb_words
  | Isa.NBout -> nbout_words

let sram_read buf = E.sram_read ~capacity_words:(buffer_capacity buf) ~bits
let sram_write buf = E.sram_write ~capacity_words:(buffer_capacity buf) ~bits

let add assoc key v =
  let rec go = function
    | [] -> [ (key, v) ]
    | (k, x) :: rest when k = key -> (k, x +. v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let find assoc key = match List.assoc_opt key assoc with Some v -> v | None -> 0.0

let run ?(nfu_width = 16) (_ : W.t) (program : Compiler.program) =
  let instructions = ref 0 in
  let dram_read = ref 0.0 and dram_write = ref 0.0 in
  let fills = ref [] and compute_reads = ref [] in
  let macs = ref 0.0 in
  Seq.iter
    (fun insn ->
      instructions := !instructions + Isa.instruction_count insn;
      match insn with
      | Isa.Load { buffer; words; _ } ->
        dram_read := !dram_read +. float_of_int words;
        fills := add !fills buffer (float_of_int words)
      | Isa.Store { words; _ } ->
        dram_write := !dram_write +. float_of_int words;
        compute_reads := add !compute_reads Isa.NBout (float_of_int words)
      | Isa.Compute { macs = m } ->
        macs := !macs +. m;
        (* NBin feeds Tn output neurons per word; SB feeds one MAC per word *)
        compute_reads := add !compute_reads Isa.NBin (m /. float_of_int nfu_width);
        compute_reads := add !compute_reads Isa.SB m;
        (* accumulate partials: one NBout read+write per output element per
           pass *)
        compute_reads := add !compute_reads Isa.NBout (2.0 *. program.Compiler.out_tile_words))
    (program.Compiler.instructions ());
  let reorder_words = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 program.Compiler.reorder_words in
  let events =
    {
      instructions = !instructions;
      dram_read_words = !dram_read;
      dram_write_words = !dram_write;
      fills = !fills;
      compute_reads = !compute_reads;
      macs = !macs;
      reorder_words;
    }
  in
  let buffer_energy buf =
    (find events.fills buf *. sram_write buf) +. (find events.compute_reads buf *. sram_read buf)
  in
  let dram_word = E.dram_access ~bits in
  let energy =
    {
      dram = (events.dram_read_words +. events.dram_write_words) *. dram_word;
      nbin = buffer_energy Isa.NBin;
      sb = buffer_energy Isa.SB;
      nbout = buffer_energy Isa.NBout;
      mac = events.macs *. E.mac ~bits;
      instruction_fetch =
        float_of_int events.instructions
        *. (float_of_int Isa.instruction_bits /. float_of_int bits)
        *. dram_word;
      reorder = events.reorder_words *. 2.0 *. dram_word;
    }
  in
  { events; energy }

let naive ?(nfu_width = 16) w =
  let macs = W.macs w in
  let out = W.output w in
  let out_size = W.operand_size w out in
  let input_reads =
    (* every MAC streams its operands from DRAM; the NFU's intrinsic
       broadcast still shares the ifmap-like operand across Tn neurons *)
    List.fold_left
      (fun acc (op : W.operand) ->
        match Compiler.default_placement w op.W.name with
        | Isa.NBin -> acc +. (macs /. float_of_int nfu_width)
        | Isa.SB -> acc +. macs
        | Isa.NBout -> acc)
      0.0 (W.inputs w)
  in
  let dram_word = E.dram_access ~bits in
  let events =
    {
      instructions = 0;
      dram_read_words = input_reads;
      dram_write_words = out_size;
      fills = [];
      compute_reads = [];
      macs;
      reorder_words = 0.0;
    }
  in
  let energy =
    {
      dram = (input_reads +. out_size) *. dram_word;
      nbin = 0.0;
      sb = 0.0;
      nbout = 0.0;
      mac = macs *. E.mac ~bits;
      instruction_fetch = 0.0;
      reorder = 0.0;
    }
  in
  { events; energy }

let pp_energy ppf e =
  Format.fprintf ppf
    "@[<v>DRAM %.3e  NBin %.3e  SB %.3e  NBout %.3e@,MAC %.3e  instr %.3e  reorder %.3e  total %.3e@]"
    e.dram e.nbin e.sb e.nbout e.mac e.instruction_fetch e.reorder (total e)
