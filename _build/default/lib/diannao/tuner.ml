module W = Sun_tensor.Workload
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Trie = Sun_core.Order_trie
module Tree = Sun_core.Tile_tree
module Unroll = Sun_core.Unroll

let nbin = 1024.0
let sb = 16384.0
let nbout = 1024.0
let lanes = 256

let cap_of w op =
  match Compiler.default_placement w op with Isa.NBin -> nbin | Isa.SB -> sb | Isa.NBout -> nbout

let simulate w m =
  let program = Compiler.compile w m in
  (program, Simulator.run w program)

let score (r : Simulator.result) = Simulator.total r.Simulator.energy

(* Enumerate the (order, lane-unrolling, tile) candidates of the 2-level
   machine — the same pruned sets the scheduler uses — and keep those whose
   analytic energy is within [prefilter] of the best; only the survivors
   pay for a full ISA-level simulation. *)
let tune w seed =
  let dims = W.dim_names w in
  let arch = Sun_arch.Presets.diannao_like in
  let ctx = Model.context w arch in
  let orders = Trie.candidates w in
  let candidates = ref [ seed ] in
  List.iter
    (fun (op : W.operand) ->
      let grow = W.indexing_dims op in
      let unrolls =
        Unroll.candidates ~fanout:lanes ~dims:grow
          ~remaining:(fun d -> W.bound w d)
          ~min_utilization:0.5 ()
      in
      List.iter
        (fun spatial ->
          let u d = Tree.factor_of spatial d in
          let remaining d = W.bound w d / u d in
          let fits assignment =
            let extent d = u d * Tree.factor_of assignment d in
            List.for_all
              (fun (o : W.operand) -> W.footprint extent o <= cap_of w o.W.name)
              w.W.operands
          in
          let tiles = Tree.search ~max_steps:16 ~grow_dims:dims ~remaining ~fits () in
          List.iter
            (fun tile ->
              List.iter
                (fun (o : Trie.candidate) ->
                  let t0 d = Tree.factor_of tile d in
                  let level0 =
                    {
                      M.temporal = List.map (fun d -> (d, t0 d)) dims;
                      order = dims;
                      spatial = List.map (fun d -> (d, u d)) dims;
                    }
                  in
                  let level1 =
                    {
                      M.temporal = List.map (fun d -> (d, W.bound w d / (t0 d * u d))) dims;
                      order = o.Trie.order;
                      spatial = List.map (fun d -> (d, 1)) dims;
                    }
                  in
                  match M.make w [ level0; level1 ] with
                  | Ok m -> candidates := m :: !candidates
                  | Error _ -> ())
                orders)
            tiles.Tree.frontier)
        unrolls.Unroll.candidates)
    w.W.operands;
  (* analytic prefilter *)
  let scored =
    List.filter_map
      (fun m ->
        match Model.evaluate_ctx ctx m with
        | Ok c -> Some (m, c.Model.energy_pj)
        | Error _ -> None)
      !candidates
  in
  let best_energy = List.fold_left (fun acc (_, e) -> Float.min acc e) infinity scored in
  let survivors =
    List.filter_map (fun (m, e) -> if e <= best_energy *. 2.5 then Some (m, e) else None) scored
  in
  let survivors = List.sort (fun (_, a) (_, b) -> compare a b) survivors in
  let survivors = List.map fst (Sun_util.Listx.take 48 survivors) in
  let survivors = if survivors = [] then [ seed ] else survivors in
  (* simulate the survivors; the seed is always among the candidates *)
  let best = ref None in
  List.iter
    (fun m ->
      let _, result = simulate w m in
      match !best with
      | Some (_, _, r) when score r <= score result -> ()
      | _ ->
        let program = Compiler.compile w m in
        best := Some (m, program, result))
    survivors;
  match !best with
  | Some (m, program, result) -> (m, program, result)
  | None ->
    let program, result = simulate w seed in
    (seed, program, result)
