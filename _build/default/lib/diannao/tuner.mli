(** Layout-aware dataflow tuning for the DianNao-like machine.

    The analytical scheduler minimizes buffer/DRAM traffic, but the ISA
    simulator also charges instruction fetches and DRAM re-layouts that
    depend on tile shape (contiguous-run lengths). Starting from a seed
    mapping, the tuner hill-climbs single-prime factor moves between the
    two levels and per-level order swaps, scoring each candidate with the
    full simulator — the role a production compiler's layout pass plays. *)

val tune :
  Sun_tensor.Workload.t ->
  Sun_mapping.Mapping.t ->
  Sun_mapping.Mapping.t * Compiler.program * Simulator.result
(** Best mapping found (possibly the seed), its program and simulation. The
    seed must be a valid 2-level mapping of the workload. *)
