module W = Sun_tensor.Workload
module M = Sun_mapping.Mapping

type program = {
  instructions : unit -> Isa.instruction Seq.t;
  passes : int;
  tile_macs : float;
  out_tile_words : float;
  reorder_words : (string * float) list;
  buffer_of : string -> Isa.buffer;
}

let default_placement w =
  let out = (W.output w).W.name in
  let inputs = List.map (fun (op : W.operand) -> op.W.name) (W.inputs w) in
  fun name ->
    if name = out then Isa.NBout
    else if name = "weight" || name = "w" then Isa.SB
    else if name = "ifmap" then Isa.NBin
    else
      (* positional fallback: first input streams through NBin, the rest
         share SB *)
      match inputs with first :: _ when first = name -> Isa.NBin | _ -> Isa.SB

(* words moved by a refill of [op] when only dimension [d] advanced and [d]
   sits in a sliding-window axis: the tile shifts by its own step, so only
   the non-overlapping rows are new. *)
let sliding_refill_words tile (op : W.operand) d =
  let fp = W.footprint tile op in
  let axis =
    List.find_opt
      (function W.Affine terms when List.mem_assoc d terms -> true | _ -> false)
      op.W.indices
  in
  match axis with
  | Some (W.Affine terms) ->
    let extent = W.axis_extent tile (W.Affine terms) in
    let step = List.assoc d terms * tile d in
    if step >= extent then (fp, false)
    else (fp *. float_of_int step /. float_of_int extent, true)
  | _ -> (fp, false)

(* Length of a contiguous DRAM run of the operand's tile under row-major
   layout: trailing full axes stay contiguous, and the innermost cut axis
   contributes its tile extent. *)
let contiguous_run tile full (op : W.operand) =
  let rec scan = function
    | [] -> 1
    | axis :: outer_axes ->
      let t = W.axis_extent tile axis in
      if t = W.axis_extent full axis then t * scan outer_axes else t
  in
  scan (List.rev op.W.indices)

(* DMA descriptors below this burst length (half a 256-bit instruction's
   worth of 16-bit words) cannot keep the memory busy; the tensor must be
   re-laid-out in DRAM instead (Section V-D's reordering). *)
let reorder_burst_threshold = 8

let compile ?placement w m =
  if M.num_levels m <> 2 then invalid_arg "Diannao.Compiler.compile: expected a 2-level mapping";
  let placement = match placement with Some p -> p | None -> default_placement w in
  let dims = W.dim_names w in
  let tile d = M.tile_at m ~level:0 d in
  let tile_macs =
    List.fold_left (fun acc d -> acc *. float_of_int (tile d)) 1.0 dims
  in
  let loops =
    (* DRAM-level loops, outermost first *)
    List.filter_map
      (fun d ->
        let b = M.temporal_factor m ~level:1 d in
        if b > 1 then Some (d, b) else None)
      m.M.levels.(1).M.order
  in
  let passes = List.fold_left (fun acc (_, b) -> acc * b) 1 loops in
  let out = W.output w in
  let tile_fn d = tile d in
  (* after a re-layout the tile is one burst; otherwise bursts follow the
     row-major contiguous runs *)
  let run_of op =
    let run = contiguous_run tile_fn (W.bound w) op in
    if run < reorder_burst_threshold then max_int else run
  in
  let bursts_of op words = (words + run_of op - 1) / run_of op in
  let load_ops changed first =
    List.concat_map
      (fun (op : W.operand) ->
        if op.W.kind = `Output then []
        else begin
          let touched = List.filter (fun d -> W.is_indexing op d) changed in
          if (not first) && touched = [] then []
          else
            match touched with
            | [ d ] when (not first) && List.mem d (W.sliding_dims op) ->
              let words, partial = sliding_refill_words tile_fn op d in
              let words = int_of_float (Float.ceil words) in
              [
                Isa.Load
                  {
                    buffer = placement op.W.name;
                    words;
                    bursts = bursts_of op words;
                    sliding_refill = partial;
                  };
              ]
            | _ ->
              let words = int_of_float (Float.ceil (W.footprint tile_fn op)) in
              [
                Isa.Load
                  {
                    buffer = placement op.W.name;
                    words;
                    bursts = bursts_of op words;
                    sliding_refill = false;
                  };
              ]
        end)
      w.W.operands
  in
  let out_words = int_of_float (Float.ceil (W.footprint tile_fn out)) in
  let out_bursts = bursts_of out out_words in
  let instructions () =
    (* odometer over the DRAM loops; emits the per-pass instruction group *)
    let bounds = Array.of_list (List.map snd loops) in
    let names = Array.of_list (List.map fst loops) in
    let n = Array.length bounds in
    let counters = Array.make n 0 in
    let finished = ref false in
    let first = ref true in
    let rec advance i =
      (* returns the list of loop dims that changed, innermost-inclusive *)
      if i < 0 then begin
        finished := true;
        []
      end
      else if counters.(i) + 1 < bounds.(i) then begin
        counters.(i) <- counters.(i) + 1;
        [ names.(i) ]
      end
      else begin
        counters.(i) <- 0;
        names.(i) :: advance (i - 1)
      end
    in
    let rec pass () =
      if !finished then Seq.Nil
      else begin
        let changed =
          if !first then Array.to_list names
          else begin
            let c = advance (n - 1) in
            if !finished then []
            else c
          end
        in
        if !finished && not !first then Seq.Nil
        else begin
          let was_first = !first in
          first := false;
          let loads = load_ops changed was_first in
          let output_evicted =
            was_first || List.exists (fun d -> W.is_indexing out d) changed
          in
          let stores =
            if output_evicted && not was_first then
              [ Isa.Store { words = out_words; bursts = out_bursts } ]
            else []
          in
          let group = stores @ loads @ [ Isa.Compute { macs = tile_macs } ] in
          Seq.Cons (group, pass)
        end
      end
    in
    let groups () = pass () in
    Seq.append
      (Seq.concat_map List.to_seq groups)
      (Seq.return (Isa.Store { words = out_words; bursts = out_bursts }))
  in
  (* re-layout analysis: a tensor whose contiguous runs are shorter than
     the burst threshold must be re-laid-out once in DRAM. Weights (SB) are
     laid out offline by the compiler at no runtime cost. *)
  let reorder_words =
    List.filter_map
      (fun (op : W.operand) ->
        let run = contiguous_run tile_fn (W.bound w) op in
        if run < reorder_burst_threshold && placement op.W.name <> Isa.SB then
          Some (op.W.name, W.operand_size w op)
        else None)
      w.W.operands
  in
  {
    instructions;
    passes;
    tile_macs;
    out_tile_words = float_of_int out_words;
    reorder_words;
    buffer_of = placement;
  }
