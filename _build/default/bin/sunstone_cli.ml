(* Command-line front end for the Sunstone scheduler.

   sunstone list                         - workloads and architectures
   sunstone reuse -w conv1d              - Table III-style reuse inference
   sunstone schedule -w resnet18/conv2_x -a simba [...]
   sunstone compare -w mttkrp/nell2 -a conventional -t sunstone,tl-fast
   sunstone experiment fig6              - run a paper experiment *)

open Cmdliner
module W = Sun_tensor.Workload
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Opt = Sun_core.Optimizer
module Runners = Sun_experiments.Runners

(* ------------------------------------------------------------------ *)
(* Workload / architecture registries                                  *)
(* ------------------------------------------------------------------ *)

let builtin_workloads () =
  let open Sun_tensor.Catalog in
  let resnet =
    List.map
      (fun (l : Sun_workloads.Resnet18.layer) ->
        ("resnet18/" ^ l.Sun_workloads.Resnet18.layer_name, l.Sun_workloads.Resnet18.workload))
      (Sun_workloads.Resnet18.layers ())
  in
  let inception =
    List.map
      (fun (l : Sun_workloads.Inception.layer) ->
        ("inception/" ^ l.Sun_workloads.Inception.layer_name, l.Sun_workloads.Inception.workload))
      (Sun_workloads.Inception.conv_layers ())
  in
  let non_dnn =
    List.map
      (fun (i : Sun_workloads.Non_dnn.instance) ->
        (i.Sun_workloads.Non_dnn.instance_name, i.Sun_workloads.Non_dnn.workload))
      Sun_workloads.Non_dnn.all
  in
  [
    ("conv1d", conv1d ~k:4 ~c:4 ~p:14 ~r:3 ());
    ("conv2d", conv2d ~n:1 ~k:64 ~c:64 ~p:14 ~q:14 ~r:3 ~s:3 ());
    ("matmul", matmul ~m:512 ~n:512 ~k:512 ());
    ("mttkrp", mttkrp ~i:1024 ~j:32 ~k:512 ~l:512 ());
    ("sddmm", sddmm ~i:1024 ~j:1024 ~k:512 ());
    ("ttmc", ttmc ~i:512 ~j:256 ~k:256 ~l:8 ~m:8 ());
    ("mmc", mmc ~i:512 ~j:512 ~k:512 ~l:512 ());
    ("tcl", tcl ~i:64 ~j:64 ~k:64 ~l:32 ~m:32 ~n:32 ());
  ]
  @ resnet @ inception @ non_dnn

let find_workload name =
  match List.assoc_opt name (builtin_workloads ()) with
  | Some w -> Ok w
  | None -> Error (`Msg (Printf.sprintf "unknown workload %S (try `sunstone list`)" name))

let find_arch name =
  match List.assoc_opt name Sun_arch.Presets.all with
  | Some a -> Ok a
  | None -> Error (`Msg (Printf.sprintf "unknown architecture %S (try `sunstone list`)" name))

(* ------------------------------------------------------------------ *)
(* Common args                                                         *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  let doc = "Workload name (see `sunstone list`)." in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let arch_arg =
  let doc = "Architecture preset: conventional, simba, diannao or toy." in
  Arg.(value & opt string "conventional" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let beam_arg =
  let doc = "Beam width of the level-by-level search." in
  Arg.(value & opt int Opt.default_config.Opt.beam_width & info [ "beam" ] ~docv:"N" ~doc)

let top_down_arg =
  let doc = "Optimize top-down instead of bottom-up (Table VI ablation)." in
  Arg.(value & flag & info [ "top-down" ] ~doc)

let loopnest_arg =
  let doc = "Also print the mapped loop nest as pseudocode." in
  Arg.(value & flag & info [ "emit-loopnest" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "Workloads:";
    List.iter (fun (name, w) -> Printf.printf "  %-24s %s\n" name w.W.name) (builtin_workloads ());
    print_endline "";
    print_endline "Architectures:";
    List.iter
      (fun (name, a) -> Printf.printf "  %-24s %s\n" name a.Sun_arch.Arch.arch_name)
      Sun_arch.Presets.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads and architecture presets")
    Term.(const run $ const ())

let reuse_cmd =
  let run workload =
    match find_workload workload with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w ->
      Format.printf "%a@." Sun_tensor.Workload.pp w;
      Format.printf "%a@." Sun_tensor.Reuse.pp (Sun_tensor.Reuse.analyze w);
      0
  in
  Cmd.v
    (Cmd.info "reuse" ~doc:"Infer each operand's reuse pattern (paper Table III)")
    Term.(const run $ workload_arg)

let schedule_cmd =
  let run workload arch beam top_down emit_loopnest =
    match (find_workload workload, find_arch arch) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w, Ok a -> (
      let config =
        {
          Opt.default_config with
          Opt.beam_width = beam;
          direction = (if top_down then Opt.Top_down else Opt.Bottom_up);
        }
      in
      match Opt.optimize ~config w a with
      | Error msg ->
        Printf.eprintf "no valid mapping: %s\n" msg;
        1
      | Ok r ->
        Printf.printf "workload:     %s\narchitecture: %s\n\n" w.W.name a.Sun_arch.Arch.arch_name;
        Printf.printf "%s\n\n" (M.to_string r.Opt.mapping);
        Format.printf "%a@." Model.pp_cost r.Opt.cost;
        Printf.printf "\nsearch: %d candidates examined, %d evaluated, %d pruned, %.2fs\n"
          r.Opt.stats.Opt.examined r.Opt.stats.Opt.evaluated r.Opt.stats.Opt.pruned_alpha_beta
          r.Opt.stats.Opt.wall_seconds;
        if emit_loopnest then begin
          print_newline ();
          print_string (Sun_mapping.Loopnest.emit w r.Opt.mapping)
        end;
        0)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Find the best dataflow mapping for a workload on an architecture")
    Term.(const run $ workload_arg $ arch_arg $ beam_arg $ top_down_arg $ loopnest_arg)

let tools =
  [
    ("sunstone", Runners.sunstone ());
    ("tl-fast", Runners.timeloop_fast);
    ("tl-slow", Runners.timeloop_slow);
    ("dmaze-fast", Runners.dmaze_fast);
    ("dmaze-slow", Runners.dmaze_slow);
    ("interstellar", Runners.interstellar);
    ("cosa", Runners.cosa);
  ]

let compare_cmd =
  let tools_arg =
    let doc = "Comma-separated mappers: sunstone, tl-fast, tl-slow, dmaze-fast, dmaze-slow, interstellar, cosa." in
    Arg.(value & opt string "sunstone,tl-fast" & info [ "t"; "tools" ] ~docv:"TOOLS" ~doc)
  in
  let run workload arch tool_names =
    match (find_workload workload, find_arch arch) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok w, Ok a ->
      let names = String.split_on_char ',' tool_names in
      let selected =
        List.filter_map (fun n -> Option.map (fun t -> t) (List.assoc_opt (String.trim n) tools)) names
      in
      if selected = [] then begin
        prerr_endline "no known tools selected";
        1
      end
      else begin
        Printf.printf "%-14s %-12s %-10s %-10s %s\n" "tool" "EDP" "time" "examined" "status";
        List.iter
          (fun (t : Runners.tool) ->
            let o = t.Runners.run w a in
            Printf.printf "%-14s %-12s %-10s %-10d %s\n" t.Runners.tool_name (Runners.edp_cell o)
              (Runners.time_cell o) o.Sun_baselines.Mapper.examined
              (if o.Sun_baselines.Mapper.valid then "ok" else "INVALID"))
          selected;
        0
      end
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run several mappers on one workload and compare EDP / time")
    Term.(const run $ workload_arg $ arch_arg $ tools_arg)

let experiment_cmd =
  let exp_arg =
    let doc = "Experiment id: table1, table3, table6, fig6, fig7, fig8, fig9." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run name =
    match List.assoc_opt name Sun_experiments.Figures.all with
    | Some driver ->
      print_string (driver ());
      print_newline ();
      0
    | None ->
      Printf.eprintf "unknown experiment %S\n" name;
      1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables or figures")
    Term.(const run $ exp_arg)

let () =
  let info =
    Cmd.info "sunstone" ~version:"1.0.0"
      ~doc:"Scalable and versatile scheduler for tensor algebra on spatial accelerators"
  in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; reuse_cmd; schedule_cmd; compare_cmd; experiment_cmd ]))
