(* srclint fixture: SA060 must fire on a blocking syscall reachable from
   the [serve] event loop, and stay silent on blocking calls in bindings
   the loop never reaches. Never compiled; lexed by the linter only. *)

let helper () = Unix.sleepf 0.25

let rec serve fd =
  helper ();
  serve fd

(* Not reachable from [serve]: must NOT trip SA060. *)
let client_only addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Unix.close fd
