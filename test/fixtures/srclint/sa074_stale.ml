(* Fixture: a hot annotation on a parameterless value binding is stale —
   hot roots must be functions (SA074). *)

(* sunstone-hot *)
let version = 3
