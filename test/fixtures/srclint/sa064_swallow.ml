(* srclint fixture: SA064 must fire on [try ... with _ ->] and stay silent
   on a [match] wildcard arm. Never compiled; lexed by the linter only. *)

let swallow f = try f () with _ -> ()

let classify = function
  | 0 -> "zero"
  | _ -> "other"

let wildcard_match x = match x with _ -> x
