(* Fixture: non-tail self-recursion in a hot root (SA072): the self-call
   feeds [+], so every frame survives until the recursion bottoms out. *)

(* sunstone-hot *)
let rec sum n = if n = 0 then 0 else n + sum (n - 1)
