(* Fixture: blocking IO directly inside a hot root (SA071). *)

(* sunstone-hot *)
let drain_hot ic = consume (input_line ic)

let consume s = String.length s
