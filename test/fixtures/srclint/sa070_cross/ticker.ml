(* Fixture (cross-module half): the hot root allocates only through
   [Gen.step], defined in the sibling module. *)

(* sunstone-hot *)
let tick_hot x = Gen.step x
