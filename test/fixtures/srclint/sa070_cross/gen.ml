(* Fixture (cross-module half): the tuple the hot root pays for. *)

let step x = (x, x)
