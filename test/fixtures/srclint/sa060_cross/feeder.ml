(* Fixture (cross-module half): [serve] itself touches nothing blocking —
   the hazard lives one module away, in [Pump.next]. A single-file scan of
   this file is provably clean; only the whole-directory scan, which builds
   the cross-module call graph, can flag it. *)

let serve q = Pump.next q
