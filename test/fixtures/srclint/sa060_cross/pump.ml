(* Fixture (cross-module half): the blocking read [serve] reaches. *)

let next q = input_line q
