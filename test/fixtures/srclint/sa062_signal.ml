(* srclint fixture: SA062 must fire on a signal handler doing real work,
   and stay silent on one that only sets a ref flag. Never compiled; lexed
   by the linter only. *)

let shutdown_requested = ref false

let install () =
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Printf.eprintf "terminating now\n"));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> shutdown_requested := true))
