(* Fixture: SA063 hashtbl-iteration hazards in cost-model code.
   Never compiled; lexed by the linter only.

   The probe memo (lib/cost/probe.ml) keeps per-operand hashtables, so
   lib/cost joined lib/serve in SA063's scope: any Hashtbl.iter /
   Hashtbl.fold over a memo table would make output depend on bucket
   order. This file stages three such hazards under a lib/cost path. *)

let dump_memo buf tbl =
  (* hazard 1: iteration order leaks into rendered output *)
  Hashtbl.iter (fun key fp -> Buffer.add_string buf (key ^ string_of_float fp)) tbl

let sum_memo tbl =
  (* hazard 2: fold order is bucket order; float addition is not
     associative, so the sum depends on it *)
  Hashtbl.fold (fun _ fp acc -> acc +. fp) tbl 0.0

let keys_memo tbl =
  (* hazard 3: collecting keys by iteration yields a bucket-ordered list *)
  let acc = ref [] in
  Hashtbl.iter (fun k _ -> acc := k :: !acc) tbl;
  !acc
