(* srclint fixture: SA063 must fire on all three determinism hazards —
   Hashtbl iteration feeding output, wall-clock time, and Random. Never
   compiled; lexed by the linter only. *)

let emit table =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) table

let stamp () = Unix.gettimeofday ()

let pick xs = List.nth xs (Random.int (List.length xs))
