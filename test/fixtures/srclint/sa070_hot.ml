(* Fixture: an allocation two calls below a hot root. Never compiled, only
   lexed — the SA070 diagnostic must render the full call chain
   score_hot -> helper -> build_row (pinned by a golden test). *)

(* sunstone-hot *)
let score_hot x = helper (x + 1)

let helper x = build_row x

let build_row x = [| x; x + 1 |]
