(* srclint fixture: a suppression matching no diagnostic must surface as
   an SA065 warning, while a used suppression silences its rule without
   one. Never compiled; lexed by the linter only. *)

(* sunstone-lint: allow SA044 deliberately stale: the next line is clean *)
let fine x = x + 1

let first xs =
  (* sunstone-lint: allow SA044 fixture exercises a used suppression *)
  List.hd xs
