(* srclint fixture: SA061 must fire on an fd binding that never reaches
   Unix.close in its module, and stay silent on one that does. Never
   compiled; lexed by the linter only. *)

let leak path =
  let fd_leaked = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  ignore (Unix.read fd_leaked (Bytes.create 1) 0 1)

let no_leak path =
  let fd_ok = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let n = Unix.read fd_ok (Bytes.create 1) 0 1 in
  Unix.close fd_ok;
  n
