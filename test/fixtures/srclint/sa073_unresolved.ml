(* Fixture: the hot annotation targets a type declaration, so it resolves
   to no toplevel binding (SA073). *)

(* sunstone-hot *)
type speed = int

let fine (x : speed) = x
