module D = Sun_analysis.Diagnostic
module Lexer = Sun_analysis.Lexer
module Srcmod = Sun_analysis.Srcmod
module Rules = Sun_analysis.Rules
module Srclint = Sun_analysis.Srclint
module Forksafe = Sun_analysis.Forksafe

let has_code id diags = List.exists (fun (d : D.t) -> D.code_id d.D.code = id) diags

let count_code id (r : Srclint.report) =
  List.length
    (List.filter (fun (h : Srclint.hit) -> D.code_id h.Srclint.h_diag.D.code = id) r.Srclint.hits)

let unscoped_rules () = Rules.unscoped (Rules.default_rules ())

let token_texts lx =
  Array.to_list (Array.map (fun t -> t.Lexer.t_text) lx.Lexer.tokens)

let has_token lx kind text =
  Array.exists (fun t -> t.Lexer.t_kind = kind && t.Lexer.t_text = text) lx.Lexer.tokens

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let src =
    "let x = 1 (* c1 (* nested *) still *)\n"
    ^ "let s = \"a (* not a comment *) b\"\n"
    ^ "let q = {|raw \"quoted\" (* nor this *)|}\n"
    ^ "let c = 'a'\n" ^ "let tv : 'a option = None\n"
  in
  let lx = Lexer.lex src in
  Alcotest.(check int) "one comment" 1 (List.length lx.Lexer.comments);
  (match lx.Lexer.comments with
  | [ c ] ->
    Alcotest.(check bool) "nested text kept" true
      (Forksafe.contains_sub c.Lexer.c_text "nested");
    Alcotest.(check int) "comment line" 1 c.Lexer.c_line
  | _ -> Alcotest.fail "expected exactly one comment");
  Alcotest.(check bool) "comment words are not tokens" false
    (List.mem "nested" (token_texts lx));
  Alcotest.(check bool) "string interior is not tokens" false
    (List.mem "not" (token_texts lx));
  Alcotest.(check bool) "quoted-string interior is not tokens" false
    (List.mem "raw" (token_texts lx));
  Alcotest.(check bool) "string literal token" true
    (has_token lx Lexer.String_lit "\"a (* not a comment *) b\"");
  Alcotest.(check bool) "char literal" true (has_token lx Lexer.Char_lit "'a'");
  Alcotest.(check bool) "type variable is not a char" true (has_token lx Lexer.Lident "option");
  Alcotest.(check bool) "uident" true (has_token lx Lexer.Uident "None");
  Alcotest.(check bool) "keyword" true (has_token lx Lexer.Keyword "let")

let test_lexer_comment_literals () =
  (* a comment-closer inside a string inside a comment must not end it *)
  let lx = Lexer.lex "(* \"*)\" still a comment *) let y = 2" in
  Alcotest.(check int) "one comment" 1 (List.length lx.Lexer.comments);
  Alcotest.(check bool) "code after survives" true (has_token lx Lexer.Lident "y");
  Alcotest.(check bool) "comment interior hidden" false (List.mem "still" (token_texts lx));
  (* ... and the same for a char literal holding a double quote *)
  let lx2 = Lexer.lex "(* '\"' *) let z = 3" in
  Alcotest.(check int) "char-in-comment: one comment" 1 (List.length lx2.Lexer.comments);
  Alcotest.(check bool) "char-in-comment: code survives" true
    (has_token lx2 Lexer.Lident "z")

let test_lexer_positions () =
  let lx = Lexer.lex "let a = 1\n  let b = 2" in
  let tok_b =
    Array.to_list lx.Lexer.tokens
    |> List.find_opt (fun t -> t.Lexer.t_text = "b")
  in
  match tok_b with
  | None -> Alcotest.fail "token b missing"
  | Some t ->
    Alcotest.(check int) "line of b" 2 t.Lexer.t_line;
    Alcotest.(check int) "col of b" 6 t.Lexer.t_col

(* ------------------------------------------------------------------ *)
(* Module model                                                         *)
(* ------------------------------------------------------------------ *)

let test_srcmod_resolution () =
  let src =
    "module T = Sun_telemetry.Metrics\n" ^ "let a q = T.count \"x\" q\n"
    ^ "let serve q = a q\n" ^ "let unused () = ()\n"
  in
  let sm = Srcmod.of_source ~path:"probe.ml" src in
  Alcotest.(check bool) "alias resolves" true
    (List.exists
       (fun (o : Srcmod.occurrence) ->
         o.Srcmod.o_path = [ "Sun_telemetry"; "Metrics"; "count" ])
       sm.Srcmod.sm_occurrences);
  let reach = Srcmod.reachable_from sm "serve" in
  Alcotest.(check bool) "serve reaches a" true (List.mem_assoc "a" reach);
  Alcotest.(check bool) "serve does not reach unused" false (List.mem_assoc "unused" reach);
  (match List.assoc_opt "a" reach with
  | Some chain -> Alcotest.(check (list string)) "call chain" [ "serve"; "a" ] chain
  | None -> Alcotest.fail "no chain for a");
  match Srcmod.binding_named sm "serve" with
  | Some b -> Alcotest.(check bool) "serve has params" true b.Srcmod.b_params
  | None -> Alcotest.fail "binding serve missing"

(* ------------------------------------------------------------------ *)
(* Suppressions                                                         *)
(* ------------------------------------------------------------------ *)

let with_temp_file content f =
  let path = Filename.temp_file "sun_srclint" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content);
      f path)

let test_suppression_semantics () =
  let src =
    "let bad1 xs = List.hd xs (* sunstone-lint: allow SA044 same-line form *)\n"
    ^ "(* sunstone-lint: allow SA044 next-line form *)\n" ^ "let bad2 xs = List.tl xs\n"
    ^ "let bad3 xs = Option.get xs\n"
    ^ "let bad4 xs = List.hd xs (* sunstone-lint: allow SA044 *)\n"
  in
  with_temp_file src (fun path ->
      let r = Srclint.scan ~rules:(unscoped_rules ()) ~roots:[ path ] () in
      Alcotest.(check int) "both suppression forms honoured" 2 r.Srclint.suppressed;
      Alcotest.(check int) "unsuppressed hits remain" 2 (count_code "SA044" r);
      Alcotest.(check bool) "reasonless allow is not a suppression" true
        (List.exists (fun (h : Srclint.hit) -> h.Srclint.h_line = 5) r.Srclint.hits);
      Alcotest.(check (list string)) "no stale warnings" []
        (List.map (fun (d : D.t) -> d.D.message) r.Srclint.stale))

(* ------------------------------------------------------------------ *)
(* Fixtures: every daemon-era rule demonstrably fires                   *)
(* ------------------------------------------------------------------ *)

let source_root () =
  let rec find d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else find parent
  in
  find (Sys.getcwd ())

let scan_fixture root name =
  let path = Filename.concat root (Filename.concat "test/fixtures/srclint" name) in
  if Sys.file_exists path then
    Some (Srclint.scan ~rules:(unscoped_rules ()) ~roots:[ path ] ())
  else None

let with_fixture name f =
  match source_root () with
  | None -> () (* no source tree visible from the sandbox: nothing to scan *)
  | Some root -> ( match scan_fixture root name with None -> () | Some r -> f r)

let test_fixture_sa060 () =
  with_fixture "sa060_block.ml" (fun r ->
      Alcotest.(check int) "one blocking call flagged" 1 (count_code "SA060" r);
      match
        List.find_opt
          (fun (h : Srclint.hit) -> D.code_id h.Srclint.h_diag.D.code = "SA060")
          r.Srclint.hits
      with
      | Some h ->
        Alcotest.(check bool) "message names the call chain" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "serve -> helper")
      | None -> Alcotest.fail "SA060 hit missing")

let test_fixture_sa061 () =
  with_fixture "sa061_fd.ml" (fun r ->
      Alcotest.(check int) "one leak flagged" 1 (count_code "SA061" r);
      match
        List.find_opt
          (fun (h : Srclint.hit) -> D.code_id h.Srclint.h_diag.D.code = "SA061")
          r.Srclint.hits
      with
      | Some h ->
        Alcotest.(check bool) "names the leaked binding" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "fd_leaked")
      | None -> Alcotest.fail "SA061 hit missing")

let test_fixture_sa062 () =
  with_fixture "sa062_signal.ml" (fun r ->
      Alcotest.(check int) "only the busy handler flagged" 1 (count_code "SA062" r))

let test_fixture_sa063 () =
  with_fixture "sa063_det.ml" (fun r ->
      Alcotest.(check int) "hashtbl + wall clock + random" 3 (count_code "SA063" r))

let test_fixture_sa064 () =
  with_fixture "sa064_swallow.ml" (fun r ->
      Alcotest.(check int) "try-swallow flagged, match wildcards not" 1
        (count_code "SA064" r))

let test_fixture_sa065 () =
  with_fixture "sa065_stale.ml" (fun r ->
      Alcotest.(check int) "used suppression silences SA044" 0 (count_code "SA044" r);
      Alcotest.(check int) "one suppressed hit" 1 r.Srclint.suppressed;
      Alcotest.(check int) "one stale warning" 1 (List.length r.Srclint.stale);
      Alcotest.(check bool) "stale warning is SA065" true (has_code "SA065" r.Srclint.stale))

let hit_with_code id (r : Srclint.report) =
  List.find_opt
    (fun (h : Srclint.hit) -> D.code_id h.Srclint.h_diag.D.code = id)
    r.Srclint.hits

let test_fixture_sa070 () =
  with_fixture "sa070_hot.ml" (fun r ->
      Alcotest.(check int) "one hot allocation flagged" 1 (count_code "SA070" r);
      match hit_with_code "SA070" r with
      | Some h ->
        (* golden: the diagnostic renders the full cross-binding call chain
           (the message is prefixed by the fixture's absolute path) *)
        let golden =
          "array literal allocates on the hot path (root score_hot, via score_hot -> \
           helper -> build_row)"
        in
        let msg = h.Srclint.h_diag.D.message in
        let ok =
          String.length msg >= String.length golden
          && String.sub msg (String.length msg - String.length golden) (String.length golden)
             = golden
        in
        if not ok then
          Alcotest.failf "chain rendering: %S does not end with %S" msg golden;
        Alcotest.(check int) "flagged at the allocation site" 10 h.Srclint.h_line
      | None -> Alcotest.fail "SA070 hit missing")

let test_fixture_sa071 () =
  with_fixture "sa071_io.ml" (fun r ->
      Alcotest.(check int) "one hot IO flagged" 1 (count_code "SA071" r);
      Alcotest.(check int) "no allocation hit piggybacks" 0 (count_code "SA070" r))

let test_fixture_sa072 () =
  with_fixture "sa072_rec.ml" (fun r ->
      Alcotest.(check int) "non-tail self-recursion flagged" 1 (count_code "SA072" r);
      match hit_with_code "SA072" r with
      | Some h ->
        Alcotest.(check bool) "names the recursive binding" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "'sum'")
      | None -> Alcotest.fail "SA072 hit missing")

let test_fixture_sa073 () =
  with_fixture "sa073_unresolved.ml" (fun r ->
      Alcotest.(check int) "unresolved hot annotation flagged" 1 (count_code "SA073" r))

let test_fixture_sa074 () =
  with_fixture "sa074_stale.ml" (fun r ->
      Alcotest.(check int) "stale hot annotation flagged" 1 (count_code "SA074" r);
      match hit_with_code "SA074" r with
      | Some h ->
        Alcotest.(check bool) "explains the function requirement" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "must be functions")
      | None -> Alcotest.fail "SA074 hit missing")

(* The tentpole's reason to exist: the same root file is provably clean
   under the old per-file view (a scan of just that file) and dirty under
   the whole-program view (a scan of the directory, which resolves the
   dotted call into the sibling module). One pair per cross-module pass. *)
let test_cross_module_sa060 () =
  with_fixture "sa060_cross/feeder.ml" (fun r ->
      Alcotest.(check int) "single-file scan misses the blocking call" 0
        (count_code "SA060" r));
  with_fixture "sa060_cross" (fun r ->
      Alcotest.(check int) "directory scan resolves Pump.next" 1 (count_code "SA060" r);
      match hit_with_code "SA060" r with
      | Some h ->
        Alcotest.(check bool) "chain crosses the module boundary" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "serve -> Pump.next")
      | None -> Alcotest.fail "SA060 hit missing")

let test_cross_module_sa070 () =
  with_fixture "sa070_cross/ticker.ml" (fun r ->
      Alcotest.(check int) "single-file scan misses the allocation" 0
        (count_code "SA070" r));
  with_fixture "sa070_cross" (fun r ->
      Alcotest.(check int) "directory scan resolves Gen.step" 1 (count_code "SA070" r);
      match hit_with_code "SA070" r with
      | Some h ->
        Alcotest.(check bool) "chain crosses the module boundary" true
          (Forksafe.contains_sub h.Srclint.h_diag.D.message "tick_hot -> Gen.step")
      | None -> Alcotest.fail "SA070 hit missing")

(* ------------------------------------------------------------------ *)
(* check --list-rules stays in sync with the diagnostic code table      *)
(* ------------------------------------------------------------------ *)

let test_rule_table_sync () =
  let table = D.rule_table () in
  Alcotest.(check int) "one row per diagnostic code" (List.length D.all_codes)
    (List.length table);
  List.iter2
    (fun code (id, sev, summary, scope) ->
      Alcotest.(check string) "row order matches all_codes" (D.code_id code) id;
      Alcotest.(check bool) (id ^ " has a severity") true
        (List.mem sev [ "error"; "warning"; "info" ]);
      Alcotest.(check bool) (id ^ " has a summary") true (String.length summary > 0);
      Alcotest.(check bool) (id ^ " has a scope") true (String.length scope > 0))
    D.all_codes table;
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " listed") true
        (List.exists (fun (id', _, _, _) -> id' = id) table))
    [ "SA070"; "SA071"; "SA072"; "SA073"; "SA074" ]

(* ------------------------------------------------------------------ *)
(* Lexer token extents: monotone, non-overlapping, faithful to source   *)
(* ------------------------------------------------------------------ *)

(* OCaml-ish source soup: random concatenation of fragments that exercise
   every token class, including the pathological ones (strings holding
   comment closers, quoted strings, chars vs type variables). *)
let source_gen =
  let fragment =
    QCheck2.Gen.oneofl
      [
        "let x = 1 "; "module M = Map "; "(* a (* nested *) comment *) "; "\"str *) \\\" q\" ";
        "{|raw \"x\" (* y *)|} "; "'c' "; "'\\n' "; "type 'a t = 'a list "; "[| 1; 2 |] ";
        "f 3.14e2 0x1f "; "a.(i) <- b.{j} "; "let g = fun (a, b) -> a :: [ b ] ";
        "match xs with [] -> 0 | y :: _ -> y "; "x + y * z mod w "; "s ^ \"t\" @ u ";
        "\n"; "  "; "(* unterminated string in comment \" still fine *) ";
      ]
  in
  QCheck2.Gen.(map (String.concat "") (list_size (int_range 0 25) fragment))

let lexer_extents_prop =
  QCheck2.Test.make ~name:"lexer token extents are monotone and faithful" ~count:500
    source_gen (fun src ->
      let lx = Lexer.lex src in
      let toks = lx.Lexer.tokens in
      let n = String.length src in
      Array.iteri
        (fun i t ->
          if not (0 <= t.Lexer.t_start && t.Lexer.t_start < t.Lexer.t_end && t.Lexer.t_end <= n)
          then
            QCheck2.Test.fail_reportf "token %d %S: extent [%d,%d) outside source of %d" i
              t.Lexer.t_text t.Lexer.t_start t.Lexer.t_end n;
          let sub = String.sub src t.Lexer.t_start (t.Lexer.t_end - t.Lexer.t_start) in
          if sub <> t.Lexer.t_text then
            QCheck2.Test.fail_reportf "token %d: text %S but source slice %S" i
              t.Lexer.t_text sub;
          if i > 0 && toks.(i - 1).Lexer.t_end > t.Lexer.t_start then
            QCheck2.Test.fail_reportf "tokens %d and %d overlap: [.., %d) then [%d, ..)"
              (i - 1) i
              toks.(i - 1).Lexer.t_end
              t.Lexer.t_start)
        toks;
      true)

(* SA063's production scope is lib/serve plus lib/cost (the probe memo
   keeps hashtables in the hot path). Stage the cost fixture under both a
   lib/cost/ and a lib/arch/ path and scan with the *scoped* rules: the
   same source must fire in cost and stay silent in arch. *)
let test_sa063_cost_scope () =
  match source_root () with
  | None -> ()
  | Some root ->
    let fixture = Filename.concat root "test/fixtures/srclint/sa063_cost.ml" in
    if Sys.file_exists fixture then begin
      let src = In_channel.with_open_text fixture In_channel.input_all in
      let tmp = Filename.temp_file "sun_sa063" "" in
      Sys.remove tmp;
      Fun.protect
        ~finally:(fun () ->
          let rm p = if Sys.file_exists p then Sys.remove p in
          rm (Filename.concat tmp "lib/cost/sa063_cost.ml");
          rm (Filename.concat tmp "lib/arch/sa063_cost.ml");
          let rmdir p = if Sys.file_exists p then Sys.rmdir p in
          rmdir (Filename.concat tmp "lib/cost");
          rmdir (Filename.concat tmp "lib/arch");
          rmdir (Filename.concat tmp "lib");
          rmdir tmp)
        (fun () ->
          let mkdir p = try Sys.mkdir p 0o755 with Sys_error _ -> () in
          List.iter
            (fun sub ->
              let dir = Filename.concat tmp sub in
              mkdir tmp;
              mkdir (Filename.dirname dir);
              mkdir dir;
              Out_channel.with_open_text (Filename.concat dir "sa063_cost.ml")
                (fun oc -> Out_channel.output_string oc src))
            [ "lib/cost"; "lib/arch" ];
          let scan sub =
            Srclint.scan ~rules:(Rules.default_rules ())
              ~roots:[ Filename.concat tmp sub ] ()
          in
          Alcotest.(check int) "fires under lib/cost" 3
            (count_code "SA063" (scan "lib/cost"));
          Alcotest.(check int) "silent under lib/arch" 0
            (count_code "SA063" (scan "lib/arch")))
    end

(* ------------------------------------------------------------------ *)
(* The shipping tree satisfies the full production rule set             *)
(* ------------------------------------------------------------------ *)

let test_tree_clean () =
  match source_root () with
  | None -> ()
  | Some root ->
    let roots =
      List.filter Sys.file_exists
        (List.map (Filename.concat root) [ "lib"; "bin"; "bench" ])
    in
    if roots <> [] then begin
      let r = Srclint.scan ~rules:(Rules.default_rules ()) ~roots () in
      Alcotest.(check (list string)) "production scan is clean" []
        (List.map Srclint.hit_string r.Srclint.hits);
      Alcotest.(check (list string)) "no stale suppressions" []
        (List.map (fun (d : D.t) -> d.D.message) r.Srclint.stale);
      Alcotest.(check bool) "scanned the whole tree" true (r.Srclint.files_scanned > 40)
    end

(* ------------------------------------------------------------------ *)
(* contains_sub: iterative, survives pathological lines                 *)
(* ------------------------------------------------------------------ *)

let test_contains_sub () =
  Alcotest.(check bool) "finds" true (Forksafe.contains_sub "abcdef" "cde");
  Alcotest.(check bool) "misses" false (Forksafe.contains_sub "abcdef" "xyz");
  Alcotest.(check bool) "empty needle" false (Forksafe.contains_sub "abc" "");
  Alcotest.(check bool) "needle longer than hay" false (Forksafe.contains_sub "ab" "abc");
  let mega = String.make 2_000_000 'a' in
  Alcotest.(check bool) "worst case self-similar miss" false
    (Forksafe.contains_sub mega (String.make 64 'a' ^ "b"));
  Alcotest.(check bool) "finds at the very end" true
    (Forksafe.contains_sub (mega ^ "needle") "needle")

let test_walk_single_file () =
  with_temp_file "let fine x = x\n" (fun path ->
      Alcotest.(check (list string)) "file root is itself" [ path ] (Srclint.walk path));
  Alcotest.(check (list string)) "missing root is empty" []
    (Srclint.walk "definitely/not/a/path")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sun_srclint"
    [
      ( "lexer",
        [
          Alcotest.test_case "comments, strings, chars" `Quick test_lexer_basics;
          Alcotest.test_case "literals inside comments" `Quick test_lexer_comment_literals;
          Alcotest.test_case "token positions" `Quick test_lexer_positions;
        ] );
      ( "srcmod",
        [ Alcotest.test_case "aliases and reachability" `Quick test_srcmod_resolution ] );
      ( "suppress",
        [
          Alcotest.test_case "inline forms and reasons" `Quick test_suppression_semantics;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "SA060 blocking in loop" `Quick test_fixture_sa060;
          Alcotest.test_case "SA061 fd leak" `Quick test_fixture_sa061;
          Alcotest.test_case "SA062 busy signal handler" `Quick test_fixture_sa062;
          Alcotest.test_case "SA063 determinism hazards" `Quick test_fixture_sa063;
          Alcotest.test_case "SA064 exception swallowing" `Quick test_fixture_sa064;
          Alcotest.test_case "SA065 stale suppression" `Quick test_fixture_sa065;
          Alcotest.test_case "SA070 hot allocation + chain golden" `Quick test_fixture_sa070;
          Alcotest.test_case "SA071 hot IO" `Quick test_fixture_sa071;
          Alcotest.test_case "SA072 non-tail recursion" `Quick test_fixture_sa072;
          Alcotest.test_case "SA073 unresolved hot annotation" `Quick test_fixture_sa073;
          Alcotest.test_case "SA074 stale hot annotation" `Quick test_fixture_sa074;
          Alcotest.test_case "SA060 cross-module pair" `Quick test_cross_module_sa060;
          Alcotest.test_case "SA070 cross-module pair" `Quick test_cross_module_sa070;
          Alcotest.test_case "SA063 lib/cost scoping" `Quick test_sa063_cost_scope;
        ] );
      ( "rules",
        [ Alcotest.test_case "--list-rules table in sync" `Quick test_rule_table_sync ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false lexer_extents_prop ] );
      ( "tree",
        [
          Alcotest.test_case "production scan is clean" `Quick test_tree_clean;
          Alcotest.test_case "contains_sub pathological" `Quick test_contains_sub;
          Alcotest.test_case "walk accepts file roots" `Quick test_walk_single_file;
        ] );
    ]
