module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module Opt = Sun_core.Optimizer
module D = Sun_analysis.Diagnostic
module Audit = Sun_analysis.Audit
module Unitlint = Sun_analysis.Unitlint
module Forksafe = Sun_analysis.Forksafe
module J = Sun_serve.Json
module Pipeline = Sun_serve.Pipeline
module Cache = Sun_serve.Cache

let ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m
let has_code id diags = List.exists (fun (d : D.t) -> D.code_id d.D.code = id) diags

let report_diags reports =
  List.concat_map (fun r -> r.Audit.diagnostics) reports

(* ------------------------------------------------------------------ *)
(* Differential oracle: golden constants                                *)
(* ------------------------------------------------------------------ *)

(* Pinned results of the full audit over the bundled kernel family:
   (kernel, orders kept by the trie, |dims|! orders audited, frontier
   points, mappings in the exhaustive oracle, exhaustive-best EDP).
   The counts are exact; the EDP is compared at 1e-9 relative. A change
   here must come with an explanation of which pruning or cost change
   moved it. *)
let golden =
  [
    ("sddmm-2x2x2", 3, 6, 4, 11448, 20495.448971425722);
    ("mmc-2x2x2x1", 8, 24, 4, 12096, 12286.621094475413);
    ("ttmc-2x2x2x1x1", 10, 120, 4, 11448, 13998.124604887564);
    ("conv1d-1x2x4x2", 4, 24, 5, 27000, 27759.110351621461);
    ("mttkrp-4x2x2x1", 7, 24, 4, 23112, 47791.526479675478);
  ]

let test_golden_differential () =
  let reports = Audit.check_kernels () in
  Alcotest.(check int) "kernel count" (List.length golden) (List.length reports);
  List.iter
    (fun (name, kept, total, frontier, mappings, edp) ->
      match List.find_opt (fun r -> r.Audit.kernel = name) reports with
      | None -> Alcotest.failf "kernel %s missing from audit" name
      | Some r ->
        Alcotest.(check (list string)) (name ^ " audits clean") []
          (List.map (fun (d : D.t) -> d.D.message) r.Audit.diagnostics);
        Alcotest.(check int) (name ^ " orders kept") kept r.Audit.orders_kept;
        Alcotest.(check int) (name ^ " orders total") total r.Audit.orders_total;
        Alcotest.(check int) (name ^ " frontier points") frontier r.Audit.frontier_checked;
        Alcotest.(check int) (name ^ " mappings enumerated") mappings
          r.Audit.mappings_enumerated;
        let rel x y = abs_float (x -. y) /. abs_float y in
        Alcotest.(check bool)
          (Printf.sprintf "%s exhaustive EDP matches golden (rel %.2e)" name
             (rel r.Audit.exhaustive_edp edp))
          true
          (rel r.Audit.exhaustive_edp edp <= 1e-9);
        Alcotest.(check bool)
          (Printf.sprintf "%s pruned best == exhaustive best (rel %.2e)" name
             (rel r.Audit.search_edp r.Audit.exhaustive_edp))
          true
          (rel r.Audit.search_edp r.Audit.exhaustive_edp <= 1e-9))
    golden

let test_inject_order () =
  let diags = report_diags (Audit.check_kernels ~inject:Audit.Drop_order_candidate ~limit:1 ()) in
  Alcotest.(check bool) "SA031 fires" true (has_code "SA031" diags);
  Alcotest.(check bool) "SA031 is an error" true (D.has_errors diags);
  (* the diagnostic carries the cost certificate *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "certificate names the exhaustive best" true
    (List.exists
       (fun (d : D.t) ->
         D.code_id d.D.code = "SA031" && contains ~needle:"exhaustive best" d.D.message)
       diags)

let test_inject_frontier () =
  let diags = report_diags (Audit.check_kernels ~inject:Audit.Shrink_frontier ~limit:1 ()) in
  Alcotest.(check bool) "SA035 fires" true (has_code "SA035" diags);
  Alcotest.(check bool) "frontier loss is an error" true (D.has_errors diags)

(* ------------------------------------------------------------------ *)
(* Serve-side recheck                                                   *)
(* ------------------------------------------------------------------ *)

let conv1d =
  match Sun_serve.Registry.find_workload "conv1d" with
  | Ok w -> w
  | Error m -> Alcotest.failf "fixture: %s" m

let toy = Sun_arch.Presets.toy ()

let test_recheck_direct () =
  match Opt.optimize conv1d toy with
  | Error m -> Alcotest.failf "optimize: %s" m
  | Ok r ->
    let c = r.Opt.cost in
    let clean =
      Audit.recheck conv1d toy r.Opt.mapping
        ~claimed_energy:c.Sun_cost.Model.energy_pj ~claimed_edp:c.Sun_cost.Model.edp
    in
    Alcotest.(check (list string)) "honest claim passes" []
      (List.map (fun (d : D.t) -> d.D.message) clean);
    let drifted =
      Audit.recheck conv1d toy r.Opt.mapping
        ~claimed_energy:(c.Sun_cost.Model.energy_pj *. 2.0)
        ~claimed_edp:(c.Sun_cost.Model.edp *. 2.0)
    in
    Alcotest.(check bool) "doubled claim raises SA037" true (has_code "SA037" drifted);
    Alcotest.(check bool) "drift is an error" true (D.has_errors drifted)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let run_batch requests =
  let input = Filename.temp_file "sun_audit_in" ".jsonl" in
  let output = Filename.temp_file "sun_audit_out" ".jsonl" in
  write_lines input requests;
  let summary = Pipeline.run_files ~input ~output () in
  let responses = List.map (fun l -> ok (J.of_string l)) (read_lines output) in
  Sys.remove input;
  Sys.remove output;
  (summary, responses)

let test_pipeline_recheck_gate () =
  let summary, responses =
    run_batch
      [
        {|{"v":1,"id":"good","workload":"conv1d","arch":"toy"}|};
        {|{"v":1,"id":"bad","workload":"conv1d","arch":"toy","x-sunstone-test-corrupt-cost":true}|};
      ]
  in
  Alcotest.(check int) "two requests" 2 summary.Pipeline.requests;
  Alcotest.(check int) "one error" 1 summary.Pipeline.errors;
  (match responses with
  | [ good; bad ] ->
    Alcotest.(check string) "good computed" "computed"
      (ok (J.as_string (ok (J.field "status" good))));
    Alcotest.(check string) "bad rejected" "error"
      (ok (J.as_string (ok (J.field "status" bad))));
    let codes =
      match J.member "diagnostics" bad with
      | Some (J.List ds) ->
        List.map
          (fun d -> ok (J.as_string (ok (J.field "code" d))))
          ds
      | _ -> []
    in
    Alcotest.(check bool) "rejection carries SA037" true (List.mem "SA037" codes)
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Unit lint                                                            *)
(* ------------------------------------------------------------------ *)

let set_level i f (a : A.t) =
  { a with A.levels = List.mapi (fun j l -> if j = i then f l else l) a.A.levels }

let set_partitions f (l : A.level) = { l with A.partitions = List.map f l.A.partitions }

let test_unitlint_presets_clean () =
  let reports = Unitlint.check_presets () in
  Alcotest.(check bool) "covers every preset" true
    (List.length reports = List.length Sun_arch.Presets.all);
  List.iter
    (fun (r : Unitlint.report) ->
      Alcotest.(check (list string)) (r.Unitlint.arch ^ " lints clean") []
        (List.map (fun (d : D.t) -> d.D.message) r.Unitlint.diagnostics);
      Alcotest.(check bool) (r.Unitlint.arch ^ " checked quantities") true
        (r.Unitlint.quantities_checked > 0))
    reports

let test_unitlint_synthetic () =
  let nan_arch =
    set_level 0 (set_partitions (fun p -> { p with A.read_energy = Float.nan })) toy
  in
  Alcotest.(check bool) "NaN energy raises SA050" true
    (has_code "SA050" (Unitlint.check_arch nan_arch).Unitlint.diagnostics);
  let neg_arch =
    set_level 0 (set_partitions (fun p -> { p with A.write_energy = -1.0 })) toy
  in
  Alcotest.(check bool) "negative energy raises SA051" true
    (has_code "SA051" (Unitlint.check_arch neg_arch).Unitlint.diagnostics);
  let joules_arch = { toy with A.mac_energy = 1e9 } in
  let diags = (Unitlint.check_arch joules_arch).Unitlint.diagnostics in
  Alcotest.(check bool) "implausible magnitude raises SA052" true (has_code "SA052" diags);
  (* magnitude complaints are warnings, not hard failures *)
  Alcotest.(check bool) "SA052 is a warning" true (not (D.has_errors diags))

(* ------------------------------------------------------------------ *)
(* Fork-safety scanner                                                  *)
(* ------------------------------------------------------------------ *)

let with_temp_tree f =
  let dir = Filename.temp_file "sun_forksafe" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_forksafe_violations () =
  with_temp_tree (fun dir ->
      let path = Filename.concat dir "bad.ml" in
      write_lines path
        [
          "let table = Hashtbl.create 17";
          "let first xs = List.hd xs";
          "let log msg = print_endline msg";
          "(* a comment mentioning Unix.fork does not count *)";
          "let snapshot v = Marshal.to_string v []";
        ];
      let r = Forksafe.scan ~root:dir () in
      Alcotest.(check int) "one file scanned" 1 r.Forksafe.files_scanned;
      let diags = Forksafe.diagnostics r in
      Alcotest.(check bool) "toplevel mutable (SA043)" true (has_code "SA043" diags);
      Alcotest.(check bool) "partial function (SA044)" true (has_code "SA044" diags);
      Alcotest.(check bool) "shared channel write (SA042)" true (has_code "SA042" diags);
      Alcotest.(check bool) "marshal outside pool (SA040)" true (has_code "SA040" diags);
      Alcotest.(check bool) "commented fork is ignored" true (not (has_code "SA041" diags));
      (* an inline allow on the Marshal site suppresses exactly that hit *)
      write_lines path
        [
          "let table = Hashtbl.create 17";
          "let first xs = List.hd xs";
          "let log msg = print_endline msg";
          "(* a comment mentioning Unix.fork does not count *)";
          "(* sunstone-lint: allow SA040 snapshotting is this fixture's whole point *)";
          "let snapshot v = Marshal.to_string v []";
        ];
      let r' = Forksafe.scan ~root:dir () in
      Alcotest.(check bool) "inline-suppressed hit gone" true
        (not (has_code "SA040" (Forksafe.diagnostics r')));
      Alcotest.(check int) "suppression counted" 1 r'.Forksafe.suppressed)

let test_forksafe_lib_clean () =
  (* the shipping library must satisfy its own checker; dune runs tests
     from the sandboxed build dir, so walk up to the source root *)
  let root =
    let rec find d =
      if Sys.file_exists (Filename.concat d "dune-project") then Some d
      else
        let parent = Filename.dirname d in
        if parent = d then None else find parent
    in
    find (Sys.getcwd ())
  in
  match root with
  | None -> () (* no source tree visible from the sandbox: nothing to scan *)
  | Some root ->
    let lib = Filename.concat root "lib" in
    if Sys.file_exists lib then begin
      let r = Forksafe.scan ~root:lib () in
      Alcotest.(check (list string)) "lib/ is fork-safe" []
        (List.map Forksafe.hit_string r.Forksafe.hits);
      Alcotest.(check bool) "scanned the tree" true (r.Forksafe.files_scanned > 20)
    end

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sun_audit"
    [
      ( "differential",
        [
          Alcotest.test_case "golden constants (all kernels)" `Slow test_golden_differential;
          Alcotest.test_case "order injection raises SA031" `Quick test_inject_order;
          Alcotest.test_case "frontier injection raises SA035" `Quick test_inject_frontier;
        ] );
      ( "recheck",
        [
          Alcotest.test_case "direct recheck gate" `Quick test_recheck_direct;
          Alcotest.test_case "pipeline rejects corrupted cost" `Quick test_pipeline_recheck_gate;
        ] );
      ( "unitlint",
        [
          Alcotest.test_case "presets are clean" `Quick test_unitlint_presets_clean;
          Alcotest.test_case "synthetic faults" `Quick test_unitlint_synthetic;
        ] );
      ( "forksafe",
        [
          Alcotest.test_case "planted violations" `Quick test_forksafe_violations;
          Alcotest.test_case "lib/ scans clean" `Quick test_forksafe_lib_clean;
        ] );
    ]
