module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module M = Sun_mapping.Mapping
module Opt = Sun_core.Optimizer
module D = Sun_analysis.Diagnostic
module Legality = Sun_analysis.Legality
module Wellformed = Sun_analysis.Wellformed
module Pruning = Sun_analysis.Pruning
module Adm = Sun_analysis.Admissibility
module Registry = Sun_serve.Registry

let conv1d =
  match Registry.find_workload "conv1d" with
  | Ok w -> w
  | Error m -> Alcotest.failf "fixture: %s" m

let toy = Sun_arch.Presets.toy ()

let has_code id diags = List.exists (fun (d : D.t) -> D.code_id d.D.code = id) diags

let check_codes what expected diags =
  List.iter
    (fun id -> Alcotest.(check bool) (Printf.sprintf "%s raises %s" what id) true (has_code id diags))
    expected

(* ------------------------------------------------------------------ *)
(* Diagnostics core                                                     *)
(* ------------------------------------------------------------------ *)

let test_code_table () =
  let table =
    [
      (D.Capacity_overflow, "SA001", "capacity-overflow");
      (D.Unroll_overflow, "SA002", "unroll-overflow");
      (D.Bad_coverage, "SA003", "bad-coverage");
      (D.Bad_order, "SA004", "bad-order");
      (D.Level_mismatch, "SA005", "level-mismatch");
      (D.Unknown_dim, "SA006", "unknown-dim");
      (D.Nonpositive_factor, "SA007", "nonpositive-factor");
      (D.Pruning_unsound, "SA010", "pruning-unsound");
      (D.Bound_overshoot, "SA011", "bound-overshoot");
      (D.Optimum_pruned, "SA012", "optimum-pruned");
      (D.Arch_malformed, "SA020", "arch-malformed");
      (D.Config_invalid, "SA021", "config-invalid");
      (D.Workload_malformed, "SA022", "workload-malformed");
      (D.Operand_unstored, "SA030", "operand-unstored");
      (D.Order_not_subsumed, "SA031", "order-not-subsumed");
      (D.Trie_incomplete, "SA032", "trie-incomplete");
      (D.Frontier_not_maximal, "SA033", "frontier-not-maximal");
      (D.Frontier_overflow, "SA034", "frontier-overflow");
      (D.Frontier_incomplete, "SA035", "frontier-incomplete");
      (D.Best_mismatch, "SA036", "pruned-best-mismatch");
      (D.Cost_drift, "SA037", "cost-drift");
      (D.Audit_skipped, "SA038", "audit-skipped");
      (D.Marshal_outside_pool, "SA040", "marshal-outside-pool");
      (D.Fork_outside_pool, "SA041", "fork-outside-pool");
      (D.Shared_channel_write, "SA042", "shared-channel-write");
      (D.Toplevel_mutable, "SA043", "toplevel-mutable-state");
      (D.Partial_function, "SA044", "partial-function");
      (D.Unit_nonfinite, "SA050", "unit-nonfinite");
      (D.Unit_negative, "SA051", "unit-negative");
      (D.Unit_implausible, "SA052", "unit-implausible");
      (D.Blocking_in_loop, "SA060", "blocking-in-event-loop");
      (D.Fd_leak, "SA061", "fd-leak");
      (D.Signal_unsafe, "SA062", "signal-handler-unsafe");
      (D.Nondeterminism, "SA063", "determinism-hazard");
      (D.Exception_swallowed, "SA064", "exception-swallowed");
      (D.Stale_suppression, "SA065", "stale-suppression");
    ]
  in
  List.iter
    (fun (code, id, name) ->
      Alcotest.(check string) ("id of " ^ name) id (D.code_id code);
      Alcotest.(check string) ("name of " ^ id) name (D.code_name code))
    table;
  (* the ids are pairwise distinct: scripts key on them *)
  let ids = List.map (fun (c, _, _) -> D.code_id c) table in
  Alcotest.(check int) "distinct ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rendering () =
  let d = D.error ~level:0 ~partition:"L1" D.Capacity_overflow "footprint 64 exceeds capacity 8" in
  let line = Format.asprintf "%a" D.pp d in
  Alcotest.(check bool) "has severity+id" true (contains ~needle:"error[SA001]" line);
  Alcotest.(check bool) "has slug" true (contains ~needle:"capacity-overflow" line);
  Alcotest.(check bool) "has location" true (contains ~needle:"level 0" line);
  Alcotest.(check bool) "has message" true (contains ~needle:"exceeds capacity" line);
  let mixed = [ d; D.warning D.Pruning_unsound "w"; D.info D.Config_invalid "i" ] in
  Alcotest.(check int) "errors filters" 1 (List.length (D.errors mixed));
  Alcotest.(check bool) "has_errors" true (D.has_errors mixed);
  Alcotest.(check bool) "summary mentions counts" true
    (contains ~needle:"1 error" (D.summary mixed))

let test_diagnostic_json () =
  let d = D.error ~level:1 ~dim:"K" D.Unroll_overflow "spatial product 8 exceeds fanout 4" in
  let j = Sun_serve.Codec.encode_diagnostic d in
  let get k = Sun_serve.Json.member k j in
  Alcotest.(check bool) "code" true (get "code" = Some (Sun_serve.Json.String "SA002"));
  Alcotest.(check bool) "severity" true (get "severity" = Some (Sun_serve.Json.String "error"));
  Alcotest.(check bool) "level" true (get "level" = Some (Sun_serve.Json.Int 1));
  Alcotest.(check bool) "dim" true (get "dim" = Some (Sun_serve.Json.String "K"));
  Alcotest.(check bool) "no operand key" true (get "operand" = None)

let test_diagnostic_roundtrip () =
  Alcotest.(check int) "code table is exhaustive" 41 (List.length D.all_codes);
  (* every code, every severity, assorted locations: decode ∘ encode = id *)
  List.iteri
    (fun i code ->
      let mk = match i mod 3 with 0 -> D.error | 1 -> D.warning | _ -> D.info in
      let d =
        match i mod 4 with
        | 0 -> mk code "plain"
        | 1 -> mk ~level:i ~dim:"K" code "with level and dim"
        | 2 -> mk ~operand:"weight" code "with operand"
        | _ -> mk ~level:0 ~partition:"L1" code "with partition"
      in
      match Sun_serve.Codec.decode_diagnostic (Sun_serve.Codec.encode_diagnostic d) with
      | Error m -> Alcotest.failf "%s does not decode: %s" (D.code_id code) m
      | Ok d' ->
        Alcotest.(check bool) (D.code_id code ^ " round-trips") true (d = d'))
    D.all_codes

(* ------------------------------------------------------------------ *)
(* Legality (pass 1)                                                    *)
(* ------------------------------------------------------------------ *)

let dims = W.dim_names conv1d
let ones = List.map (fun d -> (d, 1)) dims
let unit_level = { M.temporal = ones; order = dims; spatial = ones }
let top_level = { M.temporal = conv1d.W.dims; order = dims; spatial = ones }

let test_legal_mapping_clean () =
  (* everything streaming from DRAM is always legal *)
  let m = M.single_level conv1d ~num_levels:(A.num_levels toy) in
  Alcotest.(check (list string)) "single-level mapping clean" []
    (List.map (fun (d : D.t) -> d.D.message) (Legality.check conv1d toy m));
  (* so is whatever the optimizer returns *)
  match Opt.optimize conv1d toy with
  | Error m -> Alcotest.failf "optimize: %s" m
  | Ok r ->
    Alcotest.(check (list string)) "optimized mapping clean" []
      (List.map (fun (d : D.t) -> d.D.message) (Legality.check conv1d toy r.Opt.mapping))

let test_capacity_overflow () =
  (* the whole problem resident in the 8-word L1 *)
  let levels = [ top_level; unit_level; unit_level ] in
  let diags = Legality.check_all conv1d toy levels in
  check_codes "whole problem at L1" [ "SA001" ] diags;
  Alcotest.(check bool) "names the partition" true
    (List.exists (fun (d : D.t) -> d.D.where.D.partition = Some "L1") diags)

let test_unroll_overflow () =
  (* spatial K:4 below L1, whose fanout is 1 *)
  let spatial0 =
    { unit_level with M.spatial = List.map (fun d -> (d, if d = "K" then 4 else 1)) dims }
  in
  let top_no_k =
    {
      unit_level with
      M.temporal = List.map (fun (d, b) -> (d, if d = "K" then 1 else b)) conv1d.W.dims;
    }
  in
  let diags = Legality.check_all conv1d toy [ spatial0; unit_level; top_no_k ] in
  check_codes "overwide unroll" [ "SA002" ] diags

let test_structural_violations () =
  let missing_r =
    { unit_level with M.temporal = List.filter (fun (d, _) -> d <> "R") ones }
  in
  check_codes "missing dim" [ "SA003" ]
    (Legality.check_levels conv1d [ missing_r; unit_level; top_level ]);
  let unknown = { unit_level with M.temporal = ("Z", 2) :: ones } in
  check_codes "unknown dim" [ "SA006" ]
    (Legality.check_levels conv1d [ unknown; unit_level; top_level ]);
  let nonpos = { unit_level with M.temporal = List.map (fun d -> (d, if d = "K" then 0 else 1)) dims } in
  check_codes "nonpositive factor" [ "SA007" ]
    (Legality.check_levels conv1d [ nonpos; unit_level; top_level ]);
  let bad_order = { unit_level with M.order = List.map (fun _ -> List.hd dims) dims } in
  check_codes "duplicated order" [ "SA004" ]
    (Legality.check_levels conv1d [ bad_order; unit_level; top_level ]);
  (* all-unit factors never reach the workload bounds *)
  check_codes "underfactored" [ "SA003" ]
    (Legality.check_levels conv1d [ unit_level; unit_level; unit_level ]);
  check_codes "level count" [ "SA005" ]
    (Legality.check_levels ~arch:toy conv1d [ unit_level; top_level ])

(* ------------------------------------------------------------------ *)
(* Well-formedness (pass 4)                                             *)
(* ------------------------------------------------------------------ *)

let set_level i f (a : A.t) =
  { a with A.levels = List.mapi (fun j l -> if j = i then f l else l) a.A.levels }

let set_partitions f (l : A.level) = { l with A.partitions = List.map f l.A.partitions }

let test_arch_wellformed () =
  Alcotest.(check (list string)) "toy is clean" []
    (List.map (fun (d : D.t) -> d.D.message) (Wellformed.check_arch toy));
  check_codes "interior unbounded" [ "SA020" ]
    (Wellformed.check_arch (set_level 0 (fun l -> { l with A.unbounded = true }) toy));
  check_codes "bounded top" [ "SA020" ]
    (Wellformed.check_arch
       (set_level (A.num_levels toy - 1) (fun l -> { l with A.unbounded = false }) toy));
  check_codes "zero fanout" [ "SA020" ]
    (Wellformed.check_arch (set_level 1 (fun l -> { l with A.fanout = 0 }) toy));
  check_codes "zero capacity" [ "SA020" ]
    (Wellformed.check_arch
       (set_level 0 (set_partitions (fun p -> { p with A.capacity_words = 0 })) toy));
  check_codes "zero bandwidth" [ "SA020" ]
    (Wellformed.check_arch
       (set_level 0 (set_partitions (fun p -> { p with A.bandwidth = 0.0 })) toy))

let test_workload_wellformed () =
  List.iter
    (fun (name, w) ->
      Alcotest.(check (list string)) (name ^ " is clean") []
        (List.map (fun (d : D.t) -> d.D.message) (Wellformed.check_workload w)))
    (Registry.workloads ());
  let base = conv1d in
  check_codes "dup dim" [ "SA022" ]
    (Wellformed.check_workload { base with W.dims = ("K", 4) :: base.W.dims });
  check_codes "zero bound" [ "SA022" ]
    (Wellformed.check_workload
       { base with W.dims = List.map (fun (d, b) -> (d, if d = "P" then 0 else b)) base.W.dims });
  check_codes "no output" [ "SA022" ]
    (Wellformed.check_workload
       { base with W.operands = List.filter (fun (op : W.operand) -> op.W.kind = `Input) base.W.operands });
  let phantom =
    { W.name = "phantom"; kind = `Input; indices = [ W.Dim "Q" ] }
  in
  check_codes "unknown dim in operand" [ "SA006" ]
    (Wellformed.check_workload { base with W.operands = phantom :: base.W.operands });
  check_codes "unused dim" [ "SA022" ]
    (Wellformed.check_workload { base with W.dims = base.W.dims @ [ ("U", 2) ] })

let test_config_wellformed () =
  Alcotest.(check (list string)) "default config clean" []
    (List.map (fun (d : D.t) -> d.D.message) (Wellformed.check_config Opt.default_config));
  check_codes "zero beam" [ "SA021" ]
    (Wellformed.check_config { Opt.default_config with Opt.beam_width = 0 });
  check_codes "bad utilization" [ "SA021" ]
    (Wellformed.check_config { Opt.default_config with Opt.min_spatial_utilization = 1.5 })

let test_pair_wellformed () =
  Alcotest.(check (list string)) "conv1d on toy clean" []
    (List.map (fun (d : D.t) -> d.D.message) (Wellformed.check_pair conv1d toy));
  (* an architecture whose partitions only accept weights leaves ifmap and
     ofmap with no storage chain: this is the input that used to crash the
     cost model mid-batch *)
  let weight_only =
    { toy with A.levels = List.map (set_partitions (fun p -> { p with A.accepts = `Roles [ "weight" ] })) toy.A.levels }
  in
  let diags = Wellformed.check_pair conv1d weight_only in
  check_codes "weight-only arch" [ "SA030" ] diags;
  Alcotest.(check int) "two unstored operands" 2
    (List.length (List.filter (fun (d : D.t) -> d.D.code = D.Operand_unstored) diags));
  (* a 2-word L1 cannot hold even a unit tile of three operands *)
  let tiny = Sun_arch.Presets.toy ~l1_words:2 () in
  check_codes "unit tile overflow" [ "SA001" ] (Wellformed.check_pair conv1d tiny)

(* ------------------------------------------------------------------ *)
(* Pruning soundness (pass 2)                                           *)
(* ------------------------------------------------------------------ *)

let test_pruning_registry_clean () =
  let reports = Pruning.check_many (Registry.workloads ()) in
  Alcotest.(check bool) "covers the registry" true (List.length reports >= 30);
  List.iter
    (fun (r : Pruning.report) ->
      Alcotest.(check (list string)) (r.Pruning.workload ^ " sound") []
        (List.map (fun (d : D.t) -> d.D.message) r.Pruning.diagnostics);
      Alcotest.(check bool) (r.Pruning.workload ^ " emitted orderings") true (r.Pruning.orderings > 0))
    reports;
  (* the conv layers genuinely exercise the dropped-dim probe *)
  let conv = Pruning.check conv1d in
  Alcotest.(check bool) "conv1d probes dropped dims" true (conv.Pruning.dropped_dims_checked > 0)

(* ------------------------------------------------------------------ *)
(* Bound admissibility (pass 3)                                         *)
(* ------------------------------------------------------------------ *)

let test_admissibility_monotone () =
  let r = Adm.check_bound conv1d toy in
  Alcotest.(check (list string)) "bound chain clean" []
    (List.map (fun (d : D.t) -> d.D.message) r.Adm.diagnostics);
  Alcotest.(check bool) "checked samples" true (r.Adm.mappings_checked > 0)

let test_admissibility_differential () =
  let reports = Adm.check_suite () in
  Alcotest.(check bool) "at least three small workloads" true (List.length reports >= 3);
  List.iter
    (fun (r : Adm.report) ->
      Alcotest.(check (list string)) (r.Adm.workload ^ " admissible") []
        (List.map (fun (d : D.t) -> d.D.message) r.Adm.diagnostics);
      Alcotest.(check bool) (r.Adm.workload ^ " enumerated") true (r.Adm.mappings_checked > 100);
      let rel = abs_float (r.Adm.search_edp -. r.Adm.exhaustive_edp) /. r.Adm.exhaustive_edp in
      Alcotest.(check bool)
        (Printf.sprintf "%s search hits exhaustive optimum (rel %.2e)" r.Adm.workload rel)
        true (rel <= 1e-9);
      Alcotest.(check bool) (r.Adm.workload ^ " alpha-beta changes nothing") true
        (abs_float (r.Adm.search_edp -. r.Adm.no_prune_edp) /. r.Adm.exhaustive_edp <= 1e-9))
    reports

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sun_analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "stable code table" `Quick test_code_table;
          Alcotest.test_case "rendering" `Quick test_rendering;
          Alcotest.test_case "json encoding" `Quick test_diagnostic_json;
          Alcotest.test_case "json round-trip over all codes" `Quick test_diagnostic_roundtrip;
        ] );
      ( "legality",
        [
          Alcotest.test_case "legal mappings are clean" `Quick test_legal_mapping_clean;
          Alcotest.test_case "capacity overflow (SA001)" `Quick test_capacity_overflow;
          Alcotest.test_case "unroll overflow (SA002)" `Quick test_unroll_overflow;
          Alcotest.test_case "structural violations" `Quick test_structural_violations;
        ] );
      ( "wellformed",
        [
          Alcotest.test_case "architectures" `Quick test_arch_wellformed;
          Alcotest.test_case "workloads" `Quick test_workload_wellformed;
          Alcotest.test_case "configs" `Quick test_config_wellformed;
          Alcotest.test_case "workload-arch pairs" `Quick test_pair_wellformed;
        ] );
      ( "pruning",
        [ Alcotest.test_case "registry is sound" `Quick test_pruning_registry_clean ] );
      ( "admissibility",
        [
          Alcotest.test_case "bound monotone on samples" `Quick test_admissibility_monotone;
          Alcotest.test_case "differential vs exhaustive" `Slow test_admissibility_differential;
        ] );
    ]
