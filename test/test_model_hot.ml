(* Golden bit-identity and hot-path coverage for the allocation-free
   evaluator: the rewritten [Model] must return byte-identical cost records
   to the frozen pre-rewrite evaluator ([Model_ref]) on every registry
   workload under both the Eyeriss-like and Simba presets; the probe memo
   must be indistinguishable from direct recomputation; the batch entry
   points must equal the scalar ones; and the gid assignment order of
   [Model.context] is pinned (serialized caches depend on it). *)

module W = Sun_tensor.Workload
module A = Sun_arch.Arch
module P = Sun_arch.Presets
module M = Sun_mapping.Mapping
module Model = Sun_cost.Model
module Ref = Sun_cost.Model_ref
module Probe = Sun_cost.Probe
module Opt = Sun_core.Optimizer
module Tel = Sun_telemetry.Metrics

let presets = [ ("conventional", P.conventional); ("simba", P.simba_like) ]

let bits = Int64.bits_of_float

let check_bits what a b = Alcotest.(check int64) what (bits a) (bits b)

let find_workload name =
  match Sun_serve.Registry.find_workload name with
  | Ok w -> w
  | Error msg -> Alcotest.fail msg

(* A non-streaming companion to [M.single_level]: peel the smallest prime
   factor of every dim down to level 0, leaving the rest at the top. *)
let smallest_factor n =
  if n <= 1 then 1
  else begin
    let rec go p = if p * p > n then n else if n mod p = 0 then p else go (p + 1) in
    go 2
  end

let split_mapping w ~num_levels =
  let dims = W.dim_names w in
  let ones = List.map (fun d -> (d, 1)) dims in
  let lm temporal = { M.temporal; order = dims; spatial = ones } in
  let bottom = lm (List.map (fun d -> (d, smallest_factor (W.bound w d))) dims) in
  let top = lm (List.map (fun d -> (d, W.bound w d / smallest_factor (W.bound w d))) dims) in
  let mids = List.init (num_levels - 2) (fun _ -> lm ones) in
  M.make w ((bottom :: mids) @ [ top ])

(* [Ref]'s cost/transfer types are re-exported equalities of [Model]'s, so
   one comparator covers both. *)
let check_cost what (c : Model.cost) (c' : Model.cost) =
  check_bits (what ^ ": energy") c'.Model.energy_pj c.Model.energy_pj;
  check_bits (what ^ ": cycles") c'.Model.cycles c.Model.cycles;
  check_bits (what ^ ": edp") c'.Model.edp c.Model.edp;
  check_bits (what ^ ": macs") c'.Model.macs c.Model.macs;
  check_bits (what ^ ": utilization") c'.Model.spatial_utilization c.Model.spatial_utilization;
  Alcotest.(check int)
    (what ^ ": transfer count") (List.length c'.Model.transfers) (List.length c.Model.transfers);
  List.iter2
    (fun (t : Model.transfer) (t' : Model.transfer) ->
      Alcotest.(check string) (what ^ ": transfer operand") t'.Model.operand t.Model.operand;
      Alcotest.(check int) (what ^ ": transfer from") t'.Model.from_level t.Model.from_level;
      Alcotest.(check int) (what ^ ": transfer to") t'.Model.to_level t.Model.to_level;
      check_bits (what ^ ": transfer reads") t'.Model.reads t.Model.reads;
      check_bits (what ^ ": transfer fills") t'.Model.fills t.Model.fills;
      check_bits (what ^ ": transfer noc") t'.Model.noc_deliveries t.Model.noc_deliveries)
    c.Model.transfers c'.Model.transfers;
  Alcotest.(check (list string))
    (what ^ ": breakdown names")
    (List.map fst c'.Model.breakdown)
    (List.map fst c.Model.breakdown);
  List.iter2
    (fun (n, v) (_, v') -> check_bits (what ^ ": breakdown " ^ n) v' v)
    c.Model.breakdown c'.Model.breakdown

let compare_on what ctx rctx m =
  match (Model.evaluate_ctx ctx m, Ref.evaluate_ctx rctx m) with
  | Ok c, Ok c' ->
    check_cost what c c';
    (* the score triple must be the same floats as the full evaluation *)
    (match Model.score_ctx ctx m with
    | Ok s ->
      check_bits (what ^ ": score energy") c.Model.energy_pj s.Model.s_energy_pj;
      check_bits (what ^ ": score cycles") c.Model.cycles s.Model.s_cycles;
      check_bits (what ^ ": score edp") c.Model.edp s.Model.s_edp
    | Error msg -> Alcotest.failf "%s: score_ctx rejected an evaluable mapping: %s" what msg)
  | Error e, Error e' -> Alcotest.(check string) (what ^ ": error") e' e
  | Ok _, Error e -> Alcotest.failf "%s: rewritten accepts, reference rejects (%s)" what e
  | Error e, Ok _ -> Alcotest.failf "%s: rewritten rejects (%s), reference accepts" what e

(* every registry workload x preset, on the streaming and one split mapping *)
let test_golden_registry () =
  List.iter
    (fun (aname, arch) ->
      let nl = List.length arch.A.levels in
      List.iter
        (fun (wname, w) ->
          let ctx = Model.context w arch in
          let rctx = Ref.context w arch in
          let what mname = Printf.sprintf "%s on %s (%s)" wname aname mname in
          compare_on (what "streaming") ctx rctx (M.single_level w ~num_levels:nl);
          match split_mapping w ~num_levels:nl with
          | Ok m -> compare_on (what "split") ctx rctx m
          | Error _ -> ())
        (Sun_serve.Registry.workloads ()))
    presets

(* search-produced mappings: richer orders, spatial unrolling, bypasses *)
let test_golden_optimized () =
  List.iter
    (fun (wname, aname, arch) ->
      let w = find_workload wname in
      match Opt.optimize w arch with
      | Error msg -> Alcotest.failf "optimize %s on %s: %s" wname aname msg
      | Ok r ->
        let ctx = Model.context w arch in
        let rctx = Ref.context w arch in
        let what = Printf.sprintf "%s on %s (optimized)" wname aname in
        compare_on what ctx rctx r.Opt.mapping;
        (* the optimizer's reported cost is itself a real evaluation *)
        (match Ref.evaluate_ctx rctx r.Opt.mapping with
        | Ok c' -> check_bits (what ^ ": reported edp") c'.Model.edp r.Opt.cost.Model.edp
        | Error msg -> Alcotest.failf "%s: reference rejects the optimum: %s" what msg))
    [
      ("conv1d", "conventional", P.conventional);
      ("matmul", "conventional", P.conventional);
      ("conv2d", "simba", P.simba_like);
    ]

(* gid order pin: level-major, declaration order within a level *)
let test_gid_order () =
  let w = find_workload "conv2d" in
  Alcotest.(check (list (pair string int)))
    "simba gid order"
    [ ("Wreg", 0); ("Wbuf", 1); ("Ibuf", 1); ("Obuf", 1); ("L2", 2); ("DRAM", 3) ]
    (Array.to_list (Model.partitions (Model.context w P.simba_like)));
  Alcotest.(check (list (pair string int)))
    "conventional gid order"
    [ ("L1", 0); ("L2", 1); ("DRAM", 2) ]
    (Array.to_list (Model.partitions (Model.context w P.conventional)))

(* batch entry points = scalar entry points, including rejected members *)
let test_batch_equals_scalar () =
  let w = find_workload "matmul" in
  let arch = P.conventional in
  let nl = List.length arch.A.levels in
  let streaming = M.single_level w ~num_levels:nl in
  let split =
    match split_mapping w ~num_levels:nl with
    | Ok m -> m
    | Error msg -> Alcotest.fail msg
  in
  let short = M.single_level w ~num_levels:(nl - 1) in
  let ms = [| streaming; split; short; streaming |] in
  let ctx = Model.context w arch in
  let batch = Model.evaluate_batch_ctx ctx ms in
  Array.iteri
    (fun i m ->
      let what = Printf.sprintf "batch member %d" i in
      match (batch.(i), Model.evaluate_ctx ctx m) with
      | Ok c, Ok c' -> check_cost what c c'
      | Error e, Error e' -> Alcotest.(check string) what e' e
      | _ -> Alcotest.failf "%s: batch and scalar disagree on acceptance" what)
    ms;
  let sbatch = Model.score_batch_ctx ctx ms in
  Array.iteri
    (fun i m ->
      let what = Printf.sprintf "score batch member %d" i in
      match (sbatch.(i), Model.score_ctx ctx m) with
      | Ok s, Ok s' ->
        check_bits (what ^ ": energy") s'.Model.s_energy_pj s.Model.s_energy_pj;
        check_bits (what ^ ": cycles") s'.Model.s_cycles s.Model.s_cycles;
        check_bits (what ^ ": edp") s'.Model.s_edp s.Model.s_edp
      | Error e, Error e' -> Alcotest.(check string) what e' e
      | _ -> Alcotest.failf "%s: batch and scalar disagree on acceptance" what)
    ms

(* the probe's reuse answer equals the two-footprint derivation it replaced *)
let test_probe_changes_footprint () =
  List.iter
    (fun wname ->
      let w = find_workload wname in
      let probe = Probe.create ~memo:true w in
      let dims = W.dim_names w in
      List.iter
        (fun (op : W.operand) ->
          List.iter
            (fun d ->
              let base = W.footprint (fun _ -> 1) op in
              let bumped = W.footprint (fun d' -> if d' = d then 2 else 1) op in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s/%s" wname op.W.name d)
                (bumped <> base)
                (Probe.changes_footprint probe ~op:op.W.name ~dim:d))
            dims)
        w.W.operands;
      Alcotest.(check bool)
        (wname ^ ": unknown dim never changes a footprint") false
        (Probe.changes_footprint probe ~op:(List.hd w.W.operands).W.name ~dim:"no-such-dim"))
    [ "conv2d"; "mmc"; "mttkrp" ]

(* probe telemetry: hits/misses flushed to the model.probe_* counters *)
let test_probe_telemetry () =
  let w = find_workload "matmul" in
  Tel.set_enabled true;
  Tel.reset ();
  let probe = Probe.create ~memo:true w in
  let ops = List.map (fun (op : W.operand) -> op.W.name) w.W.operands in
  for _ = 1 to 3 do
    List.iter (fun op -> ignore (Probe.footprint_of probe ~op ~level:0 (fun _ -> 2))) ops
  done;
  let hits = Probe.hits probe and misses = Probe.misses probe in
  Alcotest.(check int) "misses: one per (op, vector)" (List.length ops) misses;
  Alcotest.(check int) "hits: the revisits" (2 * List.length ops) hits;
  Probe.flush_telemetry probe;
  let snap = Tel.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Tel.s_counters with Some v -> v | None -> 0
  in
  Tel.set_enabled false;
  Tel.reset ();
  Alcotest.(check int) "model.probe_hits" hits (counter "model.probe_hits");
  Alcotest.(check int) "model.probe_misses" misses (counter "model.probe_misses");
  Alcotest.(check int) "tallies reset by flush" 0 (Probe.hits probe + Probe.misses probe)

(* ------------------------------------------------------------------ *)
(* Gc ground truth: the dynamic oracle the SA070 static lint is pinned  *)
(* to. Each side covers the other's blind spots — the lint sees code the *)
(* harness never executes, the harness sees allocations the token-level  *)
(* approximation cannot (closure captures, compiler-inserted boxing).    *)
(* CI fails if either side disagrees with the other.                     *)
(* ------------------------------------------------------------------ *)

(* Minor-heap words per call, after a warmup that faults in lazy state
   (probe memo entries, grow-on-demand scratch) and pays any one-time
   boxing. [reps] large enough to expose even a single boxed float. *)
let words_per_call ~reps f =
  for _ = 1 to 100 do
    f ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int reps

let test_gc_score_ctx_zero_alloc () =
  List.iter
    (fun (pname, arch) ->
      let w = find_workload "conv2d" in
      let nl = List.length arch.A.levels in
      let ctx = Model.context w arch in
      List.iter
        (fun (mname, m) ->
          (* only accepted mappings are the zero-allocation contract; the
             reject path legitimately builds its [Error] *)
          if Model.validate_ctx ctx m = Ok () then begin
            let score () =
              match Model.score_ctx ctx m with
              | Ok _ -> ()
              | Error e -> Alcotest.fail e
            in
            let words = words_per_call ~reps:2000 score in
            if words <> 0.0 then
              Alcotest.failf "score_ctx allocates %.2f words/call (%s, %s) — want 0" words
                pname mname
          end)
        [
          ("single_level", M.single_level w ~num_levels:nl);
          ("split", match split_mapping w ~num_levels:nl with
                    | Ok m -> m
                    | Error e -> Alcotest.fail e);
        ])
    presets

let test_gc_edf_zero_alloc () =
  let q = Sun_serve.Edf.create () in
  (* pre-warm capacity: steady-state daemons reach a working-set size and
     stay there; growth beyond it is the allocation being amortized *)
  for i = 0 to 63 do
    Sun_serve.Edf.push q ~deadline:(float_of_int i) ~seq:i ()
  done;
  for _ = 0 to 63 do
    ignore (Sun_serve.Edf.pop q)
  done;
  (* deadlines pre-boxed the way the daemon's request records hold them: a
     freshly computed float would be boxed by the caller at the call
     boundary, which is the caller's allocation, not the heap's *)
  let deadlines = Array.init 8 (fun i -> ("req", float_of_int (i * 37 mod 11))) in
  let seq = ref 0 in
  let pairs () =
    for i = 0 to 7 do
      incr seq;
      let _, d = deadlines.(i) in
      Sun_serve.Edf.push q ~deadline:d ~seq:!seq ()
    done;
    for _ = 0 to 7 do
      ignore (Sun_serve.Edf.pop q)
    done
  in
  let words = words_per_call ~reps:2000 pairs /. 8.0 in
  if words <> 0.0 then
    Alcotest.failf "Edf push/pop allocates %.2f words/pair — want 0" words

(* Static/dynamic agreement: the production tree must carry zero SA070
   diagnostics (the static side of the gate) while the Gc assertions above
   hold (the dynamic side). A disagreement in either direction — a finding
   on a path the harness measures at zero, or measured allocation on a path
   the lint passes — fails this suite. *)
let test_static_dynamic_agreement () =
  let rec find d =
    if Sys.file_exists (Filename.concat d "dune-project") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else find parent
  in
  match find (Sys.getcwd ()) with
  | None -> ()
  | Some root ->
    let roots =
      List.filter Sys.file_exists (List.map (Filename.concat root) [ "lib"; "bin"; "bench" ])
    in
    if roots <> [] then begin
      let module Srclint = Sun_analysis.Srclint in
      let module D = Sun_analysis.Diagnostic in
      let r = Srclint.scan ~roots () in
      let hot_codes = [ "SA070"; "SA071"; "SA072"; "SA073"; "SA074" ] in
      let hot_hits =
        List.filter
          (fun (h : Srclint.hit) -> List.mem (D.code_id h.Srclint.h_diag.D.code) hot_codes)
          r.Srclint.hits
      in
      Alcotest.(check (list string))
        "static lint agrees with the Gc oracle: zero hot-path findings" []
        (List.map Srclint.hit_string hot_hits)
    end

let qcheck_props =
  let open QCheck in
  let memo_matches_direct wname =
    let w = find_workload wname in
    let dims = W.dim_names w in
    let ndims = List.length dims in
    let memo = Probe.create ~memo:true w in
    let nomemo = Probe.create ~memo:false w in
    Test.make ~count:200
      ~name:(Printf.sprintf "probe memo = direct recomputation (%s)" wname)
      (list_of_size (Gen.return ndims) (int_range 1 8))
      (fun extents ->
        let tbl = List.combine dims extents in
        let ext d = List.assoc d tbl in
        List.for_all
          (fun (op : W.operand) ->
            let direct = W.footprint ext op in
            let a = Probe.footprint_of memo ~op:op.W.name ~level:0 ext in
            let b = Probe.footprint_of nomemo ~op:op.W.name ~level:0 ext in
            (* second memoized ask exercises the hit path *)
            let a2 = Probe.footprint_of memo ~op:op.W.name ~level:0 ext in
            bits a = bits direct && bits b = bits direct && bits a2 = bits direct)
          w.W.operands)
  in
  [ memo_matches_direct "conv2d"; memo_matches_direct "mmc" ]

let () =
  Alcotest.run "model hot path"
    [
      ( "golden bit-identity",
        [
          Alcotest.test_case "registry x presets" `Quick test_golden_registry;
          Alcotest.test_case "optimized mappings" `Quick test_golden_optimized;
        ] );
      ( "context",
        [ Alcotest.test_case "gid assignment order" `Quick test_gid_order ] );
      ( "batch",
        [ Alcotest.test_case "batch = scalar" `Quick test_batch_equals_scalar ] );
      ( "probe",
        [
          Alcotest.test_case "changes_footprint = derivation" `Quick test_probe_changes_footprint;
          Alcotest.test_case "telemetry counters" `Quick test_probe_telemetry;
        ] );
      ( "gc oracle",
        [
          Alcotest.test_case "score_ctx is allocation-free" `Quick
            test_gc_score_ctx_zero_alloc;
          Alcotest.test_case "Edf push/pop is allocation-free" `Quick
            test_gc_edf_zero_alloc;
          Alcotest.test_case "static lint agrees" `Quick test_static_dynamic_agreement;
        ] );
      ("probe properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
