module W = Sun_tensor.Workload
module C = Sun_tensor.Catalog
module M = Sun_mapping.Mapping

let conv1d = C.conv1d ~k:4 ~c:4 ~p:14 ~r:3 ()
let dims = [ "K"; "C"; "P"; "R" ]
let ones = List.map (fun d -> (d, 1)) dims

let lm ?(spatial = ones) ?(order = dims) temporal : M.level_mapping =
  let full = List.map (fun d -> match List.assoc_opt d temporal with Some f -> (d, f) | None -> (d, 1)) dims in
  let full_spatial =
    List.map (fun d -> match List.assoc_opt d spatial with Some f -> (d, f) | None -> (d, 1)) dims
  in
  { M.temporal = full; order; spatial = full_spatial }

(* the paper's Algorithm 4 mapping: L1 tile (K2,P7,C2,R3), L2 loops P2 K2 C2 *)
let algorithm4 =
  M.make_exn conv1d
    [
      lm [ ("K", 2); ("P", 7); ("C", 2); ("R", 3) ];
      lm ~order:[ "P"; "K"; "C"; "R" ] [ ("K", 2); ("P", 2); ("C", 2) ];
      lm [];
    ]

let test_make_ok () =
  Alcotest.(check int) "levels" 3 (M.num_levels algorithm4);
  Alcotest.(check int) "tile K at L1" 2 (M.tile_at algorithm4 ~level:0 "K");
  Alcotest.(check int) "tile K at L2" 4 (M.tile_at algorithm4 ~level:1 "K");
  Alcotest.(check int) "top tile P" 14 (M.tile_at algorithm4 ~level:2 "P");
  Alcotest.(check int) "top equals bound" (W.bound conv1d "P") (M.tile_at algorithm4 ~level:2 "P")

let test_make_rejects () =
  let bad_product =
    M.make conv1d [ lm [ ("K", 3) ]; lm []; lm [ ("C", 4); ("P", 14); ("R", 3) ] ]
  in
  (match bad_product with
  | Error msg -> Alcotest.(check bool) "names dim" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected product violation");
  let bad_order =
    M.make conv1d
      [
        { M.temporal = ones; order = [ "K"; "C"; "P" ]; spatial = ones };
        lm [];
        lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
      ]
  in
  (match bad_order with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected order violation");
  let bad_factor = M.make conv1d [ lm [ ("K", 0) ]; lm []; lm [] ] in
  match bad_factor with Error _ -> () | Ok _ -> Alcotest.fail "expected factor violation"

let expect_error what = function
  | Error msg -> Alcotest.(check bool) (what ^ " names the violation") true (String.length msg > 0)
  | Ok _ -> Alcotest.failf "%s: expected rejection" what

let test_make_missing_dimension () =
  (* a temporal factor list that omits a workload dimension entirely *)
  let missing_r d = List.filter (fun (d', _) -> d' <> d) ones in
  expect_error "missing dim in temporal"
    (M.make conv1d
       [
         { M.temporal = missing_r "R"; order = dims; spatial = ones };
         lm [];
         lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
       ]);
  (* an unknown extra dimension is just as invalid *)
  expect_error "unknown dim in temporal"
    (M.make conv1d
       [
         { M.temporal = ("Z", 1) :: ones; order = dims; spatial = ones };
         lm [];
         lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
       ]);
  expect_error "missing dim in spatial"
    (M.make conv1d
       [
         { M.temporal = ones; order = dims; spatial = missing_r "K" };
         lm [];
         lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
       ])

let test_make_product_mismatch () =
  (* per-dimension factor product must equal the workload bound *)
  expect_error "product under bound"
    (M.make conv1d [ lm [ ("P", 7) ]; lm []; lm [ ("K", 4); ("C", 4); ("R", 3) ] ]);
  expect_error "product over bound"
    (M.make conv1d
       [ lm [ ("P", 14) ]; lm [ ("P", 2) ]; lm [ ("K", 4); ("C", 4); ("R", 3) ] ])

let test_make_duplicate_order () =
  expect_error "duplicate dims in order"
    (M.make conv1d
       [
         { M.temporal = ones; order = [ "K"; "K"; "C"; "P" ]; spatial = ones };
         lm [];
         lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
       ]);
  expect_error "order with foreign dim"
    (M.make conv1d
       [
         { M.temporal = ones; order = [ "K"; "C"; "P"; "Z" ]; spatial = ones };
         lm [];
         lm [ ("K", 4); ("C", 4); ("P", 14); ("R", 3) ];
       ])

let test_footprints () =
  (* L1 tile of Algorithm 4: ofmap 7*2, weight 2*2*3, ifmap (7+3-1)*2 *)
  let fp name = M.footprint_at conv1d algorithm4 ~level:0 (W.find_operand conv1d name) in
  Alcotest.(check (float 0.0)) "ofmap" 14.0 (fp "ofmap");
  Alcotest.(check (float 0.0)) "weight" 12.0 (fp "weight");
  Alcotest.(check (float 0.0)) "ifmap" 18.0 (fp "ifmap")

let test_spatial () =
  let m =
    M.make_exn conv1d
      [
        lm [ ("P", 7); ("R", 3) ];
        lm ~spatial:[ ("K", 2); ("C", 2) ] [ ("K", 2); ("C", 2); ("P", 2) ];
        lm [];
      ]
  in
  Alcotest.(check int) "spatial product L2" 4 (M.spatial_product m ~level:1);
  Alcotest.(check int) "total spatial" 4 (M.total_spatial m);
  (* spatial factors at level 1 are part of the level-1 tile *)
  Alcotest.(check int) "tile K at L2 includes unroll" 4 (M.tile_at m ~level:1 "K")

let test_single_level () =
  let m = M.single_level conv1d ~num_levels:3 in
  Alcotest.(check int) "levels" 3 (M.num_levels m);
  Alcotest.(check int) "inner tile is 1" 1 (M.tile_at m ~level:1 "P");
  Alcotest.(check int) "top covers bound" 14 (M.tile_at m ~level:2 "P")

let test_loops_outermost_first () =
  let loops = M.loops_outermost_first algorithm4 in
  (* bound-1 loops are dropped; outermost (highest level) first *)
  Alcotest.(check bool) "no unit loops" true (List.for_all (fun (_, _, b) -> b > 1) loops);
  let levels = List.map (fun (l, _, _) -> l) loops in
  Alcotest.(check bool) "descending levels" true (List.sort (fun a b -> compare b a) levels = levels);
  match loops with
  | (1, "P", 2) :: _ -> ()
  | (l, d, b) :: _ -> Alcotest.failf "outermost is L%d %s:%d, expected L1 P:2" l d b
  | [] -> Alcotest.fail "no loops"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_roundtrip_info () =
  let s = M.to_string algorithm4 in
  Alcotest.(check bool) "mentions L2 loops" true (contains s "for P in 2");
  Alcotest.(check bool) "mentions L1 tile loop" true (contains s "for R in 3")

let qcheck_props =
  let open QCheck in
  let factor_split n =
    (* random (a, b) with a*b = n *)
    Gen.map
      (fun i ->
        let ds = Sun_util.Factor.divisors n in
        let a = List.nth ds (i mod List.length ds) in
        (a, n / a))
      Gen.(0 -- 100)
  in
  [
    Test.make ~name:"tile_at top always equals bound" ~count:100
      (make Gen.(tup2 (factor_split 12) (factor_split 8)))
      (fun ((k1, k2), (p1, p2)) ->
        let w = C.matmul ~m:12 ~n:8 ~k:5 () in
        let dims = [ "M"; "N"; "K" ] in
        let ones = List.map (fun d -> (d, 1)) dims in
        let level t = { M.temporal = t; order = dims; spatial = ones } in
        let m =
          M.make_exn w
            [
              level [ ("M", k1); ("N", p1); ("K", 5) ];
              level [ ("M", k2); ("N", p2); ("K", 1) ];
            ]
        in
        M.tile_at m ~level:1 "M" = 12 && M.tile_at m ~level:1 "N" = 8);
    Test.make ~name:"footprint_at non-decreasing in level" ~count:100
      (make Gen.(tup2 (factor_split 12) (factor_split 8)))
      (fun ((k1, k2), (p1, p2)) ->
        let w = C.matmul ~m:12 ~n:8 ~k:5 () in
        let dims = [ "M"; "N"; "K" ] in
        let ones = List.map (fun d -> (d, 1)) dims in
        let level t = { M.temporal = t; order = dims; spatial = ones } in
        let m =
          M.make_exn w
            [
              level [ ("M", k1); ("N", p1); ("K", 1) ];
              level [ ("M", k2); ("N", p2); ("K", 5) ];
            ]
        in
        List.for_all
          (fun op ->
            M.footprint_at w m ~level:0 op <= M.footprint_at w m ~level:1 op)
          w.W.operands);
  ]

let () =
  Alcotest.run "sun_mapping"
    [
      ( "structure",
        [
          Alcotest.test_case "make ok" `Quick test_make_ok;
          Alcotest.test_case "make rejects" `Quick test_make_rejects;
          Alcotest.test_case "missing dimension" `Quick test_make_missing_dimension;
          Alcotest.test_case "factor product mismatch" `Quick test_make_product_mismatch;
          Alcotest.test_case "duplicate dims in order" `Quick test_make_duplicate_order;
          Alcotest.test_case "single_level" `Quick test_single_level;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "footprints" `Quick test_footprints;
          Alcotest.test_case "spatial" `Quick test_spatial;
          Alcotest.test_case "loops flattening" `Quick test_loops_outermost_first;
          Alcotest.test_case "pretty printing" `Quick test_pp_roundtrip_info;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
